//! Cross-crate integration tests: every range filter in the workspace
//! (Proteus, 1PBF, 2PBF, SuRF variants, Rosetta) honors the same contract
//! through the `RangeFilter` trait — no false negatives ever, sane false
//! positive behaviour, and `decode(encode(f))` indistinguishable from `f`.

use proptest::prelude::*;
use proteus::core::key::u64_key;
use proteus::core::{
    KeySet, NoFilter, OnePbf, OnePbfOptions, Proteus, ProteusOptions, RangeFilter, SampleQueries,
    TwoPbf, TwoPbfFilterOptions,
};
use proteus::filters::{FilterCodec, Rosetta, RosettaOptions, Surf, SurfSuffix};
use proteus::workloads::{Dataset, QueryGen, Workload};

fn all_filters(keys: &KeySet, samples: &SampleQueries, m_bits: u64) -> Vec<Box<dyn RangeFilter>> {
    let two_opts = TwoPbfFilterOptions {
        model: proteus::core::model::two_pbf::TwoPbfOptions {
            max_l2_values: 16,
            threads: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    vec![
        Box::new(Proteus::train(keys, samples, m_bits, &ProteusOptions::default())),
        Box::new(OnePbf::train(keys, samples, m_bits, &OnePbfOptions::default())),
        Box::new(TwoPbf::train(keys, samples, m_bits, &two_opts)),
        Box::new(Surf::build(keys, SurfSuffix::Base)),
        Box::new(Surf::build(keys, SurfSuffix::Hash(8))),
        Box::new(Surf::build(keys, SurfSuffix::Real(8))),
        Box::new(Rosetta::train(keys, samples, m_bits, &RosettaOptions::default())),
    ]
}

#[test]
fn no_false_negatives_on_every_dataset() {
    for dataset in [Dataset::Uniform, Dataset::Normal, Dataset::Books, Dataset::Facebook] {
        let raw = dataset.generate(3_000, 17);
        let keys = KeySet::from_u64(&raw);
        let samples = SampleQueries::from_u64(
            &QueryGen::new(Workload::Uniform { rmax: 1 << 10 }, &raw, &[], 5).empty_ranges(300),
        );
        for filter in all_filters(&keys, &samples, 3_000 * 12) {
            for &k in raw.iter().step_by(61) {
                assert!(
                    filter.may_contain(&u64_key(k)),
                    "{} false negative on {} point {k:#x}",
                    filter.name(),
                    dataset.name()
                );
                let lo = u64_key(k.saturating_sub(3));
                let hi = u64_key(k.saturating_add(3));
                assert!(
                    filter.may_contain_range(&lo, &hi),
                    "{} false negative on {} range around {k:#x}",
                    filter.name(),
                    dataset.name()
                );
            }
            // Full-space range must always be positive on non-empty sets.
            assert!(filter.may_contain_range(&u64_key(0), &u64_key(u64::MAX)));
        }
    }
}

#[test]
fn trained_filters_filter_most_empty_queries() {
    let raw = Dataset::Uniform.generate(5_000, 23);
    let keys = KeySet::from_u64(&raw);
    let workload = Workload::Correlated { rmax: 64, corr_degree: 1 << 10 };
    let samples =
        SampleQueries::from_u64(&QueryGen::new(workload.clone(), &raw, &[], 7).empty_ranges(2_000));
    let eval =
        SampleQueries::from_u64(&QueryGen::new(workload, &raw, &[], 1234).empty_ranges(2_000));
    // The self-designing filters must achieve a reasonable FPR on a
    // workload they were trained for (small correlated ranges, 14 BPK).
    for filter in [
        Box::new(Proteus::train(&keys, &samples, 5_000 * 14, &ProteusOptions::default()))
            as Box<dyn RangeFilter>,
        Box::new(OnePbf::train(&keys, &samples, 5_000 * 14, &OnePbfOptions::default())),
    ] {
        let fps = eval.iter().filter(|(lo, hi)| filter.may_contain_range(lo, hi)).count();
        let fpr = fps as f64 / eval.len() as f64;
        assert!(fpr < 0.25, "{}: fpr {fpr}", filter.name());
    }
}

/// Round-trip a filter through the persistent codec and check it is
/// observationally identical on the given probes.
fn assert_roundtrip_identical(filter: &dyn RangeFilter, probes: &[(u64, u64)]) {
    let bytes = FilterCodec::encode(filter).unwrap_or_else(|e| {
        panic!("{} failed to encode: {e}", filter.name());
    });
    let decoded = FilterCodec::decode(&bytes).unwrap();
    assert!(!decoded.degraded, "{} decoded degraded", filter.name());
    let back = decoded.filter;
    assert_eq!(back.name(), filter.name());
    assert_eq!(back.size_bits(), filter.size_bits(), "{} size_bits drift", filter.name());
    for &(lo, hi) in probes {
        let (lo_k, hi_k) = (u64_key(lo), u64_key(hi));
        assert_eq!(
            back.may_contain_range(&lo_k, &hi_k),
            filter.may_contain_range(&lo_k, &hi_k),
            "{} range [{lo:#x},{hi:#x}]",
            filter.name()
        );
        assert_eq!(
            back.may_contain(&lo_k),
            filter.may_contain(&lo_k),
            "{} point {lo:#x}",
            filter.name()
        );
    }
}

#[test]
fn every_filter_kind_roundtrips_on_every_dataset() {
    for dataset in [Dataset::Uniform, Dataset::Normal, Dataset::Books, Dataset::Facebook] {
        let raw = dataset.generate(2_000, 29);
        let keys = KeySet::from_u64(&raw);
        let samples = SampleQueries::from_u64(
            &QueryGen::new(Workload::Uniform { rmax: 1 << 12 }, &raw, &[], 5).empty_ranges(200),
        );
        // Probes: members, near-misses, and far-away ranges.
        let probes: Vec<(u64, u64)> = raw
            .iter()
            .step_by(43)
            .flat_map(|&k| {
                [
                    (k, k),
                    (k.saturating_sub(17), k.saturating_add(17)),
                    (k ^ (1 << 45), k ^ (1 << 45)),
                ]
            })
            .collect();
        for filter in all_filters(&keys, &samples, 2_000 * 12) {
            assert_roundtrip_identical(filter.as_ref(), &probes);
        }
        assert_roundtrip_identical(&NoFilter, &probes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized contract check: arbitrary key sets, arbitrary budgets,
    /// arbitrary query ranges — positives may be wrong, negatives never.
    #[test]
    fn randomized_no_false_negatives(
        seed in 0u64..1000,
        n_keys in 50usize..500,
        bpk in 6u64..20,
        spread in 1u64..(1 << 40),
    ) {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let raw: Vec<u64> = (0..n_keys).map(|_| next() % spread.max(1)).collect();
        let keys = KeySet::from_u64(&raw);
        let mut samples = SampleQueries::from_u64(
            &(0..50).map(|_| {
                let lo = next() % spread.max(1);
                (lo, lo.saturating_add(next() % 100))
            }).collect::<Vec<_>>(),
        );
        samples.retain_empty(&keys);
        for filter in all_filters(&keys, &samples, n_keys as u64 * bpk) {
            // Every key, every tight range around a key.
            for &k in raw.iter().step_by(7) {
                prop_assert!(filter.may_contain(&u64_key(k)), "{}", filter.name());
                let lo = u64_key(k.saturating_sub(next() % 50));
                let hi = u64_key(k.saturating_add(next() % 50));
                prop_assert!(filter.may_contain_range(&lo, &hi), "{}", filter.name());
            }
        }
    }

    /// Randomized round-trip property: across datasets and memory budgets,
    /// the decoded filter answers exactly like the original on arbitrary
    /// probes (members, misses, and wide ranges alike).
    #[test]
    fn randomized_codec_roundtrip(
        seed in 0u64..1000,
        n_keys in 40usize..400,
        bpk in 6u64..20,
        dataset_pick in 0usize..4,
    ) {
        let dataset = [Dataset::Uniform, Dataset::Normal, Dataset::Books, Dataset::Facebook]
            [dataset_pick];
        let raw = dataset.generate(n_keys, seed.wrapping_add(7));
        let keys = KeySet::from_u64(&raw);
        let mut samples = SampleQueries::from_u64(
            &QueryGen::new(Workload::Uniform { rmax: 1 << 16 }, &raw, &[], seed)
                .empty_ranges(60),
        );
        samples.retain_empty(&keys);
        let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut probes: Vec<(u64, u64)> = raw
            .iter()
            .step_by(11)
            .map(|&k| (k.saturating_sub(next() % 64), k.saturating_add(next() % 64)))
            .collect();
        for _ in 0..40 {
            let lo = next();
            probes.push((lo, lo.saturating_add(next() % (1 << 20))));
        }
        for filter in all_filters(&keys, &samples, n_keys as u64 * bpk) {
            let bytes = FilterCodec::encode(filter.as_ref()).unwrap();
            let back = FilterCodec::decode(&bytes).unwrap().filter;
            prop_assert_eq!(back.size_bits(), filter.size_bits(), "{}", filter.name());
            for &(lo, hi) in &probes {
                let (lo_k, hi_k) = (u64_key(lo), u64_key(hi));
                prop_assert_eq!(
                    back.may_contain_range(&lo_k, &hi_k),
                    filter.may_contain_range(&lo_k, &hi_k),
                    "{} [{:#x},{:#x}]", filter.name(), lo, hi
                );
            }
        }
    }
}

/// Compile-time `Send`/`Sync` contract (the concurrent LSM store shares
/// filters across its reader threads and builds them on background
/// workers): the `Db`, every `RangeFilter` implementation in the
/// workspace, and every `FilterFactory` must be `Send + Sync`. Removing
/// a bound anywhere breaks this test at compile time.
#[test]
fn filters_and_db_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    // The store itself and its factory extension point.
    assert_send_sync::<proteus::lsm::Db>();
    assert_send_sync::<proteus::lsm::NoFilterFactory>();
    assert_send_sync::<proteus::lsm::ProteusFactory>();
    assert_send_sync::<std::sync::Arc<dyn proteus::lsm::FilterFactory>>();
    // Every RangeFilter implementation in the workspace.
    assert_send_sync::<NoFilter>();
    assert_send_sync::<Proteus>();
    assert_send_sync::<OnePbf>();
    assert_send_sync::<TwoPbf>();
    assert_send_sync::<proteus::core::CountingProteus>();
    assert_send_sync::<Surf>();
    assert_send_sync::<Rosetta>();
    assert_send_sync::<proteus::filters::Arf>();
    // Trait objects as the Db actually holds them.
    assert_send_sync::<Box<dyn RangeFilter>>();
}

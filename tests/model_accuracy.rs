//! Integration test of the paper's central claim (§5.1, Fig. 4): the CPFPR
//! model's expected FPR matches the observed FPR across the design space,
//! and the self-selected design is near-optimal among evaluated designs.

use proteus::core::model::one_pbf::{OnePbfDesign, OnePbfModel};
use proteus::core::model::proteus::{ProteusDesign, ProteusModel, ProteusModelOptions};
use proteus::core::{
    KeySet, OnePbf, OnePbfOptions, Proteus, ProteusOptions, RangeFilter, SampleQueries,
};
use proteus::workloads::{Dataset, QueryGen, Workload};

fn observed(filter: &dyn RangeFilter, eval: &SampleQueries) -> f64 {
    let fps = eval.iter().filter(|(lo, hi)| filter.may_contain_range(lo, hi)).count();
    fps as f64 / eval.len().max(1) as f64
}

#[test]
fn one_pbf_model_tracks_reality_across_designs() {
    let raw = Dataset::Uniform.generate(20_000, 3);
    let keys = KeySet::from_u64(&raw);
    let workload = Workload::Uniform { rmax: 1 << 10 };
    let samples =
        SampleQueries::from_u64(&QueryGen::new(workload.clone(), &raw, &[], 5).empty_ranges(5_000));
    let eval = SampleQueries::from_u64(&QueryGen::new(workload, &raw, &[], 77).empty_ranges(5_000));
    let model = OnePbfModel::build(&keys, &samples);
    let m = 20_000 * 10;
    for l in (24..=64usize).step_by(8) {
        let expected = model.expected_fpr(&keys, l, m);
        let filter = OnePbf::build_with_prefix_len(
            &keys,
            OnePbfDesign { prefix_len: l, expected_fpr: expected },
            m,
            &OnePbfOptions::default(),
        );
        let obs = observed(&filter, &eval);
        assert!(
            (expected - obs).abs() < 0.06,
            "1PBF l={l}: expected {expected:.4} observed {obs:.4}"
        );
    }
}

#[test]
fn proteus_model_tracks_reality_and_selects_well() {
    let raw = Dataset::Normal.generate(20_000, 9);
    let keys = KeySet::from_u64(&raw);
    let workload =
        Workload::Split { uniform_rmax: 1 << 14, correlated_rmax: 32, corr_degree: 1 << 10 };
    let samples =
        SampleQueries::from_u64(&QueryGen::new(workload.clone(), &raw, &[], 5).empty_ranges(5_000));
    let eval = SampleQueries::from_u64(&QueryGen::new(workload, &raw, &[], 99).empty_ranges(5_000));
    let m = 20_000 * 12;
    let model = ProteusModel::build(&keys, &samples, m, &ProteusModelOptions::default());

    // Accuracy across a design sample.
    let mut worst = 0.0f64;
    let mut evaluated: Vec<(usize, usize, f64)> = Vec::new();
    for &l1 in model.l1_candidates() {
        for l2 in [l1 + 4, l1 + 16, 48, 56, 62, 64] {
            if l2 <= l1 || l2 > 64 {
                continue;
            }
            let Some(expected) = model.expected_fpr(&keys, l1, l2, m) else { continue };
            let design = ProteusDesign {
                trie_depth_bits: l1,
                bloom_prefix_len: l2,
                expected_fpr: expected,
                trie_mem_bits: model.trie_mem_for(l1).unwrap(),
            };
            let filter = Proteus::build_with_design(&keys, design, m, &ProteusOptions::default());
            let obs = observed(&filter, &eval);
            worst = worst.max((expected - obs).abs());
            evaluated.push((l1, l2, obs));
        }
    }
    assert!(worst < 0.08, "max model error {worst:.4}");

    // The chosen design's observed FPR must be within noise of the best
    // evaluated design (the Fig. 5 claim: Proteus picks near-optimal).
    let chosen = Proteus::train(&keys, &samples, m, &ProteusOptions::default());
    let chosen_obs = observed(&chosen, &eval);
    let best_obs = evaluated.iter().map(|&(_, _, o)| o).fold(f64::INFINITY, f64::min);
    assert!(
        chosen_obs <= best_obs + 0.05,
        "chosen design ({:?}) observed {chosen_obs:.4} vs best evaluated {best_obs:.4}",
        chosen.design()
    );
}

#[test]
fn proteus_beats_brittle_designs_on_adversarial_split() {
    // §5.1's adversarial case: short correlated + long uniform queries.
    // Single-technique designs (pure Bloom at one length) must lose to the
    // hybrid chosen by the model.
    let raw = Dataset::Normal.generate(20_000, 4);
    let keys = KeySet::from_u64(&raw);
    let workload =
        Workload::Split { uniform_rmax: 1 << 16, correlated_rmax: 16, corr_degree: 1 << 8 };
    let samples =
        SampleQueries::from_u64(&QueryGen::new(workload.clone(), &raw, &[], 5).empty_ranges(4_000));
    let eval = SampleQueries::from_u64(&QueryGen::new(workload, &raw, &[], 55).empty_ranges(4_000));
    let m = 20_000 * 10;
    let trained = Proteus::train(&keys, &samples, m, &ProteusOptions::default());
    let trained_fpr = observed(&trained, &eval);

    for l2 in [40usize, 64] {
        let fixed = Proteus::build_with_design(
            &keys,
            ProteusDesign {
                trie_depth_bits: 0,
                bloom_prefix_len: l2,
                expected_fpr: 0.0,
                trie_mem_bits: 0,
            },
            m,
            &ProteusOptions::default(),
        );
        let fixed_fpr = observed(&fixed, &eval);
        assert!(
            trained_fpr <= fixed_fpr + 0.02,
            "trained {trained_fpr:.4} vs fixed l2={l2} {fixed_fpr:.4}"
        );
    }
}

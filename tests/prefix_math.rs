//! Property tests for the bit-level prefix arithmetic that the whole CPFPR
//! model rests on, cross-checked against plain u64 reference computations
//! and against wide-key equivalents.

use proptest::prelude::*;
use proteus::core::key::{
    bit_slice, end_region_counts, increment_prefix, lcp_bits, mask_tail, pad_key, prefix_count,
    set_tail_ones, u64_key,
};

proptest! {
    #[test]
    fn lcp_matches_xor_reference(a: u64, b: u64) {
        let want = if a == b { 64 } else { (a ^ b).leading_zeros() as usize };
        prop_assert_eq!(lcp_bits(&u64_key(a), &u64_key(b)), want);
    }

    #[test]
    fn prefix_count_matches_shift_reference(x: u64, y: u64, l in 1usize..=64) {
        let (lo, hi) = (x.min(y), x.max(y));
        let shift = 64 - l;
        let want = (hi >> shift) - (lo >> shift) + 1;
        prop_assert_eq!(prefix_count(&u64_key(lo), &u64_key(hi), l, u64::MAX), want);
    }

    #[test]
    fn prefix_count_saturates_consistently(x: u64, y: u64, l in 1usize..=64, cap in 1u64..10_000) {
        let (lo, hi) = (x.min(y), x.max(y));
        let exact = prefix_count(&u64_key(lo), &u64_key(hi), l, u64::MAX);
        let capped = prefix_count(&u64_key(lo), &u64_key(hi), l, cap);
        prop_assert_eq!(capped, exact.min(cap));
    }

    #[test]
    fn wide_keys_agree_with_u64_on_low_bits(x: u64, y: u64, l in 1usize..=64) {
        // Embed the u64s in the low 8 bytes of 24-byte keys with equal
        // high parts: all the arithmetic must agree with the u64 case at
        // shifted prefix lengths.
        let (lo, hi) = (x.min(y), x.max(y));
        let mut wlo = vec![0xABu8; 16];
        wlo.extend_from_slice(&u64_key(lo));
        let mut whi = vec![0xABu8; 16];
        whi.extend_from_slice(&u64_key(hi));
        prop_assert_eq!(
            prefix_count(&wlo, &whi, 128 + l, u64::MAX),
            prefix_count(&u64_key(lo), &u64_key(hi), l, u64::MAX)
        );
        prop_assert_eq!(lcp_bits(&wlo, &whi), 128 + lcp_bits(&u64_key(lo), &u64_key(hi)));
    }

    #[test]
    fn end_regions_match_reference(x: u64, y: u64, l1 in 1usize..63, extra in 1usize..32) {
        let (lo, hi) = (x.min(y), x.max(y));
        let l2 = (l1 + extra).min(64);
        prop_assume!(l2 > l1);
        let (gl, gr) = end_region_counts(&u64_key(lo), &u64_key(hi), l1, l2, u64::MAX);
        // Reference on u64: count l2-prefixes of [lo,hi] within the first
        // and last l1-regions.
        let s2 = 64 - l2;
        let (lo2, hi2) = (lo >> s2, hi >> s2);
        let s1 = 64 - l1;
        let (lo1, hi1) = (lo >> s1, hi >> s1);
        let q2 = hi2 - lo2 + 1;
        let (wl, wr) = if lo1 == hi1 {
            (q2, q2)
        } else {
            let region = 1u64 << (l2 - l1);
            let first_end = ((lo1 + 1) << (l2 - l1)) - 1;
            let last_start = hi1 << (l2 - l1);
            let _ = region;
            (first_end - lo2 + 1, hi2 - last_start + 1)
        };
        prop_assert_eq!((gl, gr), (wl, wr), "lo={:#x} hi={:#x} l1={} l2={}", lo, hi, l1, l2);
    }

    #[test]
    fn increment_prefix_is_addition(x: u64, l in 1usize..=64) {
        let mut k = u64_key(x);
        mask_tail(&mut k, l);
        let masked = u64::from_be_bytes(k);
        let overflow = increment_prefix(&mut k, l);
        let step = 1u64 << (64 - l);
        let expect_overflow = masked.checked_add(step).is_none();
        prop_assert_eq!(overflow, expect_overflow);
        if !overflow {
            prop_assert_eq!(u64::from_be_bytes(k), masked.wrapping_add(step));
        }
    }

    #[test]
    fn mask_and_ones_bracket_the_region(x: u64, l in 0usize..=64) {
        let mut lo = u64_key(x);
        mask_tail(&mut lo, l);
        let mut hi = u64_key(x);
        set_tail_ones(&mut hi, l);
        let lo_v = u64::from_be_bytes(lo);
        let hi_v = u64::from_be_bytes(hi);
        prop_assert!(lo_v <= x && x <= hi_v);
        if l > 0 && l < 64 {
            prop_assert_eq!(hi_v - lo_v + 1, 1u64 << (64 - l));
        } else if l == 0 {
            prop_assert_eq!((lo_v, hi_v), (0, u64::MAX));
        }
        prop_assert_eq!(lcp_bits(&lo, &hi) >= l, true);
    }

    #[test]
    fn bit_slice_matches_shift_mask(x: u64, from in 0usize..64, width in 1usize..=32) {
        let to = (from + width).min(64);
        let want = (x << from) >> (64 - (to - from)) ;
        let want = if to == from { 0 } else { want };
        prop_assert_eq!(bit_slice(&u64_key(x), from, to, u64::MAX), want);
    }

    #[test]
    fn padding_preserves_lexicographic_order(a: Vec<u8>, b: Vec<u8>) {
        let width = 40;
        let (pa, pb) = (pad_key(&a, width), pad_key(&b, width));
        let ta: &[u8] = &a[..a.len().min(width)];
        let tb: &[u8] = &b[..b.len().min(width)];
        // NUL padding preserves order except when one truncated key is a
        // NUL-extension of the other (identical semantics to §7.1).
        if ta.iter().rev().take_while(|&&c| c == 0).count() == 0
            && tb.iter().rev().take_while(|&&c| c == 0).count() == 0
        {
            prop_assert_eq!(ta.cmp(tb), pa.cmp(&pb));
        }
    }
}

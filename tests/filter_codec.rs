//! The persistent filter format, pinned and abused.
//!
//! * **Golden fixtures** — small encoded filters committed under
//!   `tests/fixtures/` assert byte-exact encode output and successful
//!   decode, freezing the v1 wire format against accidental drift. To
//!   regenerate after an *intentional* format change (which must also bump
//!   `FORMAT_VERSION`), run:
//!   `PROTEUS_REGEN_FIXTURES=1 cargo test --test filter_codec`.
//! * **Fuzz-style robustness** — decoding arbitrary bytes, truncations at
//!   every prefix length, and single-byte corruptions of valid encodings
//!   must return `Err(CodecError)`: never a panic, never a filter that
//!   could produce a false negative.

use proteus::core::model::one_pbf::OnePbfDesign;
use proteus::core::model::proteus::ProteusDesign;
use proteus::core::model::two_pbf::TwoPbfDesign;
use proteus::core::{
    NoFilter, OnePbf, OnePbfOptions, Proteus, ProteusOptions, RangeFilter, TwoPbf,
    TwoPbfFilterOptions,
};
use proteus::filters::{FilterCodec, Rosetta, RosettaOptions, Surf, SurfSuffix};
use std::path::PathBuf;

fn splitmix(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The frozen fixture key set: 64 deterministic keys. Do not change — the
/// committed fixtures encode filters built over exactly these keys.
fn fixture_keys() -> proteus::core::KeySet {
    let mut s = 0x0F1E_2D3C_4B5A_6978u64;
    let mut keys: Vec<u64> = (0..64).map(|_| splitmix(&mut s)).collect();
    keys.sort_unstable();
    proteus::core::KeySet::from_u64(&keys)
}

/// Every fixture: (file name, deterministically constructed filter).
///
/// All constructions use *fixed* designs — never the trained model — so
/// future model improvements cannot shift fixture bytes; only a wire-format
/// change can, and that is exactly what this test is meant to catch.
fn fixtures() -> Vec<(&'static str, Box<dyn RangeFilter>)> {
    let ks = fixture_keys();
    let m = 64 * 16;
    vec![
        ("nofilter.bin", Box::new(NoFilter) as Box<dyn RangeFilter>),
        (
            "proteus_l16_l40.bin",
            Box::new(Proteus::build_with_design(
                &ks,
                ProteusDesign {
                    trie_depth_bits: 16,
                    bloom_prefix_len: 40,
                    expected_fpr: 0.015625,
                    trie_mem_bits: 512,
                },
                m,
                &ProteusOptions::default(),
            )),
        ),
        (
            "one_pbf_l32.bin",
            Box::new(OnePbf::build_with_prefix_len(
                &ks,
                OnePbfDesign { prefix_len: 32, expected_fpr: 0.03125 },
                m,
                &OnePbfOptions::default(),
            )),
        ),
        (
            "two_pbf_l24_l48.bin",
            Box::new(TwoPbf::build_with_design(
                &ks,
                TwoPbfDesign { l1: 24, l2: 48, split: 0.5, expected_fpr: 0.0625 },
                m,
                &TwoPbfFilterOptions::default(),
            )),
        ),
        ("surf_base.bin", Box::new(Surf::build(&ks, SurfSuffix::Base))),
        ("surf_hash8.bin", Box::new(Surf::build(&ks, SurfSuffix::Hash(8)))),
        ("surf_real8.bin", Box::new(Surf::build(&ks, SurfSuffix::Real(8)))),
        (
            "rosetta_4l.bin",
            Box::new(Rosetta::build_with_levels(&ks, m, 4, 0.7, &RosettaOptions::default())),
        ),
    ]
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn golden_fixtures_pin_the_v1_wire_format() {
    let dir = fixture_dir();
    let regen = std::env::var_os("PROTEUS_REGEN_FIXTURES").is_some();
    if regen {
        std::fs::create_dir_all(&dir).unwrap();
    }
    for (name, filter) in fixtures() {
        let encoded = FilterCodec::encode(filter.as_ref()).unwrap();
        let path = dir.join(name);
        if regen {
            std::fs::write(&path, &encoded).unwrap();
            continue;
        }
        let golden = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing fixture {name} ({e}); run with PROTEUS_REGEN_FIXTURES=1")
        });
        assert_eq!(
            encoded, golden,
            "{name}: encode output drifted from the committed v1 fixture — \
             if the format change is intentional, bump FORMAT_VERSION and \
             regenerate the fixtures"
        );
        // The committed bytes must also decode into a working filter.
        let decoded = FilterCodec::decode(&golden).unwrap();
        assert!(!decoded.degraded, "{name}");
        assert_eq!(decoded.filter.name(), filter.name(), "{name}");
        assert_eq!(decoded.filter.size_bits(), filter.size_bits(), "{name}");
    }
}

#[test]
fn truncation_at_every_prefix_length_errors() {
    for (name, filter) in fixtures() {
        let encoded = FilterCodec::encode(filter.as_ref()).unwrap();
        for cut in 0..encoded.len() {
            assert!(
                FilterCodec::decode(&encoded[..cut]).is_err(),
                "{name}: truncation to {cut}/{} bytes must fail decode",
                encoded.len()
            );
        }
    }
}

#[test]
fn single_byte_corruption_anywhere_errors() {
    for (name, filter) in fixtures() {
        let encoded = FilterCodec::encode(filter.as_ref()).unwrap();
        for i in 0..encoded.len() {
            for flip in [0x01u8, 0xFF] {
                let mut bad = encoded.clone();
                bad[i] ^= flip;
                assert!(
                    FilterCodec::decode(&bad).is_err(),
                    "{name}: corrupting byte {i} (xor {flip:#04x}) must fail decode"
                );
            }
        }
    }
}

#[test]
fn arbitrary_bytes_error_without_panicking() {
    let mut s = 0xACE0_FBA5_E000_0001u64;
    for trial in 0..200 {
        let len = (splitmix(&mut s) % 512) as usize;
        let blob: Vec<u8> = (0..len).map(|_| splitmix(&mut s) as u8).collect();
        assert!(FilterCodec::decode(&blob).is_err(), "trial {trial} len {len}");
    }
    // Blobs that start with the right magic but carry garbage after it.
    for trial in 0..200 {
        let len = 4 + (splitmix(&mut s) % 256) as usize;
        let mut blob: Vec<u8> = (0..len).map(|_| splitmix(&mut s) as u8).collect();
        blob[..4].copy_from_slice(b"PRFC");
        assert!(FilterCodec::decode(&blob).is_err(), "magic trial {trial}");
    }
}

#[test]
fn future_filter_kind_degrades_to_nofilter_not_error() {
    // Forward compatibility: a valid envelope from a newer build with an
    // unknown kind tag keeps serving (degraded) instead of failing the DB.
    let sealed = proteus::core::codec::seal_raw(42, &[1, 2, 3]);
    let decoded = FilterCodec::decode(&sealed).unwrap();
    assert!(decoded.degraded);
    assert_eq!(decoded.filter.name(), "NoFilter");
}

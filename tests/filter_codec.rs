//! The persistent filter format, pinned and abused.
//!
//! * **Golden fixtures** — small encoded filters committed under
//!   `tests/fixtures/v2/` assert byte-exact encode output and successful
//!   decode, freezing the current (v2) wire format against accidental
//!   drift. To regenerate after an *intentional* format change (which must
//!   also bump `FORMAT_VERSION`), run:
//!   `PROTEUS_REGEN_FIXTURES=1 cargo test --test filter_codec`.
//! * **v1 compatibility** — the PR-2 era fixtures under
//!   `tests/fixtures/v1/` are frozen forever (never regenerated): every
//!   one must keep decoding into a working filter, with the codec-v2
//!   training fingerprint defaulting to "none".
//! * **Fuzz-style robustness** — decoding arbitrary bytes, truncations at
//!   every prefix length, and single-byte corruptions of valid encodings
//!   must return `Err(CodecError)`: never a panic, never a filter that
//!   could produce a false negative.

use proteus::core::model::one_pbf::OnePbfDesign;
use proteus::core::model::proteus::ProteusDesign;
use proteus::core::model::two_pbf::TwoPbfDesign;
use proteus::core::{
    NoFilter, OnePbf, OnePbfOptions, Proteus, ProteusOptions, RangeFilter, TwoPbf,
    TwoPbfFilterOptions,
};
use proteus::filters::{FilterCodec, Rosetta, RosettaOptions, Surf, SurfSuffix};
use std::path::PathBuf;

fn splitmix(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The frozen fixture key set: 64 deterministic keys. Do not change — the
/// committed fixtures encode filters built over exactly these keys.
fn fixture_keys() -> proteus::core::KeySet {
    let mut s = 0x0F1E_2D3C_4B5A_6978u64;
    let mut keys: Vec<u64> = (0..64).map(|_| splitmix(&mut s)).collect();
    keys.sort_unstable();
    proteus::core::KeySet::from_u64(&keys)
}

/// Every fixture: (file name, deterministically constructed filter).
///
/// All constructions use *fixed* designs — never the trained model — so
/// future model improvements cannot shift fixture bytes; only a wire-format
/// change can, and that is exactly what this test is meant to catch.
fn fixtures() -> Vec<(&'static str, Box<dyn RangeFilter>)> {
    let ks = fixture_keys();
    let m = 64 * 16;
    vec![
        ("nofilter.bin", Box::new(NoFilter) as Box<dyn RangeFilter>),
        (
            "proteus_l16_l40.bin",
            Box::new(Proteus::build_with_design(
                &ks,
                ProteusDesign {
                    trie_depth_bits: 16,
                    bloom_prefix_len: 40,
                    expected_fpr: 0.015625,
                    trie_mem_bits: 512,
                },
                m,
                &ProteusOptions::default(),
            )),
        ),
        (
            "one_pbf_l32.bin",
            Box::new(OnePbf::build_with_prefix_len(
                &ks,
                OnePbfDesign { prefix_len: 32, expected_fpr: 0.03125 },
                m,
                &OnePbfOptions::default(),
            )),
        ),
        (
            "two_pbf_l24_l48.bin",
            Box::new(TwoPbf::build_with_design(
                &ks,
                TwoPbfDesign { l1: 24, l2: 48, split: 0.5, expected_fpr: 0.0625 },
                m,
                &TwoPbfFilterOptions::default(),
            )),
        ),
        ("surf_base.bin", Box::new(Surf::build(&ks, SurfSuffix::Base))),
        ("surf_hash8.bin", Box::new(Surf::build(&ks, SurfSuffix::Hash(8)))),
        ("surf_real8.bin", Box::new(Surf::build(&ks, SurfSuffix::Real(8)))),
        (
            "rosetta_4l.bin",
            Box::new(Rosetta::build_with_levels(&ks, m, 4, 0.7, &RosettaOptions::default())),
        ),
    ]
}

fn fixture_dir(version: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(version)
}

/// The deterministic training fingerprint persisted in the fingerprinted
/// golden fixture: queries at fixed positions/lengths over the fixture
/// key range.
fn fixture_sketch() -> proteus::core::QuerySketch {
    let ks = fixture_keys();
    let bounds: Vec<(Vec<u8>, Vec<u8>)> = (0..256u64)
        .map(|i| {
            let lo = i.wrapping_mul(0x0123_4567_89AB_CDEF);
            (lo.to_be_bytes().to_vec(), lo.saturating_add(1 + i * 512).to_be_bytes().to_vec())
        })
        .collect();
    proteus::core::QuerySketch::from_queries(
        bounds.iter().map(|(l, h)| (l.as_slice(), h.as_slice())),
        ks.key(0),
        ks.key(ks.len() - 1),
    )
}

#[test]
fn golden_fixtures_pin_the_v2_wire_format() {
    let dir = fixture_dir("v2");
    let regen = std::env::var_os("PROTEUS_REGEN_FIXTURES").is_some();
    if regen {
        std::fs::create_dir_all(&dir).unwrap();
    }
    // Every kind without a fingerprint, plus one fingerprinted envelope
    // (the sketch section is part of the wire format too).
    let mut encodings: Vec<(String, Vec<u8>)> = fixtures()
        .into_iter()
        .map(|(name, f)| (name.to_string(), FilterCodec::encode(f.as_ref()).unwrap()))
        .collect();
    let fingerprinted = fixtures().remove(1).1; // the Proteus fixture
    encodings.push((
        "proteus_l16_l40_fp.bin".to_string(),
        FilterCodec::encode_with_fingerprint(fingerprinted.as_ref(), &fixture_sketch()).unwrap(),
    ));
    for (name, encoded) in encodings {
        let path = dir.join(&name);
        if regen {
            std::fs::write(&path, &encoded).unwrap();
            continue;
        }
        let golden = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing fixture {name} ({e}); run with PROTEUS_REGEN_FIXTURES=1")
        });
        assert_eq!(
            encoded, golden,
            "{name}: encode output drifted from the committed v2 fixture — \
             if the format change is intentional, bump FORMAT_VERSION and \
             regenerate the fixtures"
        );
        // The committed bytes must also decode into a working filter.
        let decoded = FilterCodec::decode(&golden).unwrap();
        assert!(!decoded.degraded, "{name}");
    }
}

#[test]
fn v2_fingerprint_fixture_roundtrips_sketch() {
    let golden = std::fs::read(fixture_dir("v2").join("proteus_l16_l40_fp.bin"));
    let Ok(golden) = golden else {
        return; // regen run hasn't produced it yet; the golden test covers it
    };
    let decoded = FilterCodec::decode(&golden).unwrap();
    let sketch = decoded.fingerprint.expect("fingerprinted fixture must carry its sketch");
    assert_eq!(sketch, fixture_sketch());
    assert_eq!(sketch.divergence(&fixture_sketch()), 0.0);
}

#[test]
fn golden_v1_fixtures_still_decode_with_no_fingerprint() {
    // The v1 fixtures are frozen history: bytes written by the PR-2 codec.
    // They are never regenerated — a build that cannot decode them has
    // broken compatibility with every database on disk.
    let dir = fixture_dir("v1");
    for (name, filter) in fixtures() {
        let golden = std::fs::read(dir.join(name))
            .unwrap_or_else(|e| panic!("missing frozen v1 fixture {name} ({e})"));
        let decoded = FilterCodec::decode(&golden)
            .unwrap_or_else(|e| panic!("v1 fixture {name} no longer decodes: {e:?}"));
        assert!(!decoded.degraded, "{name}");
        assert!(decoded.fingerprint.is_none(), "{name}: v1 must default to no fingerprint");
        assert_eq!(decoded.filter.name(), filter.name(), "{name}");
        assert_eq!(decoded.filter.size_bits(), filter.size_bits(), "{name}");
        // And the v1 bytes remain corruption-proof under the v2 decoder.
        for cut in 0..golden.len() {
            assert!(FilterCodec::decode(&golden[..cut]).is_err(), "{name} cut {cut}");
        }
        for i in 0..golden.len() {
            let mut bad = golden.clone();
            bad[i] ^= 0x01;
            assert!(FilterCodec::decode(&bad).is_err(), "{name} corrupt byte {i}");
        }
    }
}

#[test]
fn truncation_at_every_prefix_length_errors() {
    for (name, filter) in fixtures() {
        let encoded = FilterCodec::encode(filter.as_ref()).unwrap();
        for cut in 0..encoded.len() {
            assert!(
                FilterCodec::decode(&encoded[..cut]).is_err(),
                "{name}: truncation to {cut}/{} bytes must fail decode",
                encoded.len()
            );
        }
    }
}

#[test]
fn single_byte_corruption_anywhere_errors() {
    for (name, filter) in fixtures() {
        let encoded = FilterCodec::encode(filter.as_ref()).unwrap();
        for i in 0..encoded.len() {
            for flip in [0x01u8, 0xFF] {
                let mut bad = encoded.clone();
                bad[i] ^= flip;
                assert!(
                    FilterCodec::decode(&bad).is_err(),
                    "{name}: corrupting byte {i} (xor {flip:#04x}) must fail decode"
                );
            }
        }
    }
}

#[test]
fn arbitrary_bytes_error_without_panicking() {
    let mut s = 0xACE0_FBA5_E000_0001u64;
    for trial in 0..200 {
        let len = (splitmix(&mut s) % 512) as usize;
        let blob: Vec<u8> = (0..len).map(|_| splitmix(&mut s) as u8).collect();
        assert!(FilterCodec::decode(&blob).is_err(), "trial {trial} len {len}");
    }
    // Blobs that start with the right magic but carry garbage after it.
    for trial in 0..200 {
        let len = 4 + (splitmix(&mut s) % 256) as usize;
        let mut blob: Vec<u8> = (0..len).map(|_| splitmix(&mut s) as u8).collect();
        blob[..4].copy_from_slice(b"PRFC");
        assert!(FilterCodec::decode(&blob).is_err(), "magic trial {trial}");
    }
}

#[test]
fn future_filter_kind_degrades_to_nofilter_not_error() {
    // Forward compatibility: a valid envelope from a newer build with an
    // unknown kind tag keeps serving (degraded) instead of failing the DB.
    let sealed = proteus::core::codec::seal_raw(42, &[1, 2, 3]);
    let decoded = FilterCodec::decode(&sealed).unwrap();
    assert!(decoded.degraded);
    assert_eq!(decoded.filter.name(), "NoFilter");
}

//! End-to-end integration: the LSM store with each filter factory serves
//! correct answers, and the trained filters genuinely cut I/O for empty
//! range Seeks (the §6 claim at test scale).

use proteus::core::key::u64_key;
use proteus::lsm::{Db, DbConfig, FilterFactory, NoFilterFactory, ProteusFactory, WriteBatch};
use proteus::workloads::{Dataset, QueryGen, Workload};
use std::collections::BTreeSet;
use std::sync::Arc;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("proteus-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn small_cfg(bpk: f64) -> DbConfig {
    DbConfig::builder()
        .memtable_bytes(128 << 10)
        .sst_target_bytes(128 << 10)
        .level_base_bytes(512 << 10)
        .bits_per_key(bpk)
        .sample_every(1)
        .build()
        .unwrap()
}

struct SurfFactoryLocal;
impl FilterFactory for SurfFactoryLocal {
    fn build(
        &self,
        keys: &proteus::core::KeySet,
        _samples: &proteus::core::SampleQueries,
        _m_bits: u64,
    ) -> Box<dyn proteus::core::RangeFilter> {
        Box::new(proteus::filters::Surf::build(keys, proteus::filters::SurfSuffix::Real(4)))
    }
    fn name(&self) -> String {
        "surf".into()
    }
}

struct RosettaFactoryLocal;
impl FilterFactory for RosettaFactoryLocal {
    fn build(
        &self,
        keys: &proteus::core::KeySet,
        samples: &proteus::core::SampleQueries,
        m_bits: u64,
    ) -> Box<dyn proteus::core::RangeFilter> {
        Box::new(proteus::filters::Rosetta::train(
            keys,
            samples,
            m_bits,
            &proteus::filters::RosettaOptions::default(),
        ))
    }
    fn name(&self) -> String {
        "rosetta".into()
    }
}

fn run_correctness(factory: Arc<dyn FilterFactory>, tag: &str) {
    let dir = tmpdir(tag);
    let raw = Dataset::Uniform.generate(15_000, 11);
    let db = Db::open(&dir, small_cfg(12.0), factory).unwrap();
    let mut mirror = BTreeSet::new();
    for (i, &k) in raw.iter().enumerate() {
        let mut v = vec![0u8; 96];
        v[48..56].copy_from_slice(&(i as u64).to_le_bytes());
        db.put_u64(k, &v).unwrap();
        mirror.insert(k);
    }
    db.flush_and_settle().unwrap();

    // Mixed workload: some overlapping, some empty; answers must match the
    // ground-truth mirror exactly on non-empty, and never report false
    // negatives.
    let mut gen = QueryGen::new(Workload::Uniform { rmax: 1 << 30 }, &raw, &[], 3);
    for _ in 0..2_000 {
        let (lo, hi) = gen.next_range();
        let truth = mirror.range(lo..=hi).next().is_some();
        let got = db.seek_u64(lo, hi).unwrap();
        assert!(got || !truth, "{tag}: false negative [{lo},{hi}]");
        if truth {
            assert!(got, "{tag}: missed non-empty range");
        }
    }
    // Point queries for every 50th key.
    for &k in raw.iter().step_by(50) {
        assert!(db.seek(&u64_key(k), &u64_key(k)).unwrap(), "{tag}: lost key {k}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lsm_correct_with_proteus_filters() {
    run_correctness(Arc::new(ProteusFactory::default()), "proteus");
}

#[test]
fn lsm_correct_with_surf_filters() {
    run_correctness(Arc::new(SurfFactoryLocal), "surf");
}

#[test]
fn lsm_correct_with_rosetta_filters() {
    run_correctness(Arc::new(RosettaFactoryLocal), "rosetta");
}

#[test]
fn lsm_correct_without_filters() {
    run_correctness(Arc::new(NoFilterFactory), "nofilter");
}

#[test]
fn reopened_db_serves_from_persisted_filters_without_retraining() {
    let dir = tmpdir("reopen-e2e");
    let raw = Dataset::Uniform.generate(20_000, 41);
    let mut mirror = BTreeSet::new();
    let cfg = small_cfg(12.0);

    // Phase 1: build a multi-level database with trained Proteus filters,
    // then drop it (simulating process exit).
    let (filter_bits, sst_count, level_counts) = {
        let db = Db::open(&dir, cfg.clone(), Arc::new(ProteusFactory::default())).unwrap();
        let seed: Vec<(Vec<u8>, Vec<u8>)> = (0..2_000u64)
            .map(|i| {
                let lo = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (u64_key(lo).to_vec(), u64_key(lo.saturating_add(1 << 10)).to_vec())
            })
            .collect();
        db.seed_queries(seed);
        for (i, &k) in raw.iter().enumerate() {
            let mut v = vec![0u8; 96];
            v[..8].copy_from_slice(&(i as u64).to_le_bytes());
            db.put_u64(k, &v).unwrap();
            mirror.insert(k);
        }
        db.flush_and_settle().unwrap();
        assert!(db.sst_count() > 1, "want a multi-file database");
        (db.filter_bits(), db.sst_count(), db.level_file_counts())
    };

    // Phase 2: reopen the directory cold and verify recovery.
    let db = Db::open(&dir, cfg, Arc::new(ProteusFactory::default())).unwrap();
    assert_eq!(db.level_file_counts(), level_counts, "level manifest");
    assert_eq!(db.stats().ssts_recovered.get(), sst_count as u64);

    // No false negatives: every key findable as point and range.
    for &k in raw.iter().step_by(37) {
        assert!(db.seek_u64(k, k).unwrap(), "lost key {k:#x} across reopen");
        assert!(db.seek_u64(k.saturating_sub(9), k.saturating_add(9)).unwrap());
    }
    // Mixed workload answers still match ground truth.
    let mut gen = QueryGen::new(Workload::Uniform { rmax: 1 << 28 }, &raw, &[], 77);
    for _ in 0..1_000 {
        let (lo, hi) = gen.next_range();
        let truth = mirror.range(lo..=hi).next().is_some();
        let got = db.seek_u64(lo, hi).unwrap();
        assert!(got || !truth, "false negative [{lo:#x},{hi:#x}] after reopen");
    }

    // Filters were reloaded from their SST filter blocks, not retrained:
    // the memory footprint is bit-identical and no build ever ran.
    assert_eq!(db.filter_bits(), filter_bits, "filter_bits must survive reopen");
    assert_eq!(db.stats().filters_built.get(), 0, "no filter retraining on reopen");
    assert_eq!(db.stats().filters_loaded.get(), sst_count as u64);
    assert_eq!(db.stats().filters_degraded.get(), 0);
    assert!(db.stats().filter_load_ns.get() > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deletes_survive_compaction_and_reopen_without_resurrection() {
    // The v2 tombstone lifecycle end to end: delete a third of a settled
    // multi-level store (singles + atomic batches), verify exact `get`
    // answers and ordered `range` scans against a mirror, then reopen
    // cold and verify nothing resurrected and nothing live was lost.
    let dir = tmpdir("delete-e2e");
    let raw = Dataset::Uniform.generate(20_000, 73);
    let cfg = small_cfg(12.0);
    let mut mirror: BTreeSet<u64> = BTreeSet::new();

    let db = Db::open(&dir, cfg.clone(), Arc::new(ProteusFactory::default())).unwrap();
    for &k in &raw {
        db.put_u64(k, &k.to_le_bytes()).unwrap();
        mirror.insert(k);
    }
    db.flush_and_settle().unwrap();

    // Delete every third key: half through single deletes, half through
    // WriteBatches (each batch also re-puts one key, exercising in-batch
    // ordering).
    let mut batch = WriteBatch::new();
    for (n, &k) in raw.iter().step_by(3).enumerate() {
        if n % 2 == 0 {
            db.delete_u64(k).unwrap();
        } else {
            batch.delete_u64(k);
            if batch.len() == 64 {
                db.write(std::mem::take(&mut batch)).unwrap();
            }
        }
        mirror.remove(&k);
    }
    db.write(batch).unwrap();
    db.flush_and_settle().unwrap();
    assert!(db.stats().deletes.get() > 0);
    assert!(
        db.stats().tombstones_dropped.get() > 0,
        "bottom-level compaction should drop tombstones"
    );

    let verify = |db: &Db, tag: &str| {
        for (n, &k) in raw.iter().enumerate() {
            if n % 50 != 0 {
                continue;
            }
            let want = mirror.contains(&k).then(|| k.to_le_bytes().to_vec());
            assert_eq!(db.get_u64(k).unwrap(), want, "{tag}: get({k:#x})");
        }
        // Ordered scans across a few windows match the mirror exactly.
        let mut sorted: Vec<u64> = mirror.iter().copied().collect();
        sorted.sort_unstable();
        for w in sorted.chunks(997).take(5) {
            let (lo, hi) = (w[0], *w.last().unwrap());
            let got: Vec<u64> = db
                .range_u64(lo..=hi)
                .unwrap()
                .map(|e| e.map(|(k, _)| proteus::core::key::key_u64(&k)))
                .collect::<proteus::lsm::Result<_>>()
                .unwrap();
            assert_eq!(got, w.to_vec(), "{tag}: scan [{lo:#x},{hi:#x}]");
        }
    };
    verify(&db, "settled");

    // A cold reopen recovers tombstones like any other entry: no
    // resurrection, no loss, filters loaded not retrained.
    drop(db);
    let db = Db::open(&dir, cfg, Arc::new(ProteusFactory::default())).unwrap();
    assert_eq!(db.stats().filters_built.get(), 0, "reopen must not retrain");
    verify(&db, "reopened");
    // Deleted keys stay dead even as seeks (point emptiness).
    for &k in raw.iter().step_by(3).step_by(17) {
        assert!(!db.seek_u64(k, k).unwrap(), "deleted {k:#x} resurrected as seek");
        assert_eq!(db.get_u64(k).unwrap(), None, "deleted {k:#x} resurrected as get");
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn proteus_filters_reduce_io_versus_no_filter() {
    // Clustered keys, correlated empty queries: a trained filter should
    // eliminate nearly all block reads that the no-filter baseline pays.
    let raw: Vec<u64> = (0..20_000u64).map(|i| i << 20).collect();
    let queries: Vec<(u64, u64)> = (0..4_000u64)
        .map(|i| {
            let lo = ((i * 13) % 20_000) << 20 | 0x10000;
            (lo, lo + 0x8000)
        })
        .collect();
    let seed: Vec<(Vec<u8>, Vec<u8>)> = queries
        .iter()
        .take(2_000)
        .map(|&(lo, hi)| (u64_key(lo).to_vec(), u64_key(hi).to_vec()))
        .collect();

    let run = |factory: Arc<dyn FilterFactory>, tag: &str| -> (u64, u64) {
        let dir = tmpdir(tag);
        let db = Db::open(&dir, small_cfg(14.0), factory).unwrap();
        db.seed_queries(seed.clone());
        for &k in &raw {
            db.put_u64(k, &[7u8; 64]).unwrap();
        }
        db.flush_and_settle().unwrap();
        let before = db.stats().snapshot();
        for &(lo, hi) in &queries {
            assert!(!db.seek_u64(lo, hi).unwrap(), "query must be empty");
        }
        let delta = db.stats().snapshot().delta(&before);
        let _ = std::fs::remove_dir_all(&dir);
        (delta.blocks_read + delta.cache_hits, delta.filter_negatives)
    };

    let (io_proteus, negs) = run(Arc::new(ProteusFactory::default()), "io-proteus");
    let (io_none, _) = run(Arc::new(NoFilterFactory), "io-none");
    assert!(negs > 3_000, "filters should screen most probes: {negs}");
    assert!(
        io_proteus * 5 < io_none.max(5),
        "proteus block accesses {io_proteus} vs no-filter {io_none}"
    );
}

#[test]
fn concurrent_readers_match_ground_truth_during_load() {
    // End-to-end concurrency: four reader threads verify answers against
    // a frozen prefix of the dataset while the writer keeps loading (and
    // the background workers flush, train Proteus filters and compact).
    let dir = tmpdir("concurrent-e2e");
    let raw = Dataset::Uniform.generate(24_000, 97);
    let (frozen, rest) = raw.split_at(8_000);
    let frozen_set: BTreeSet<u64> = frozen.iter().copied().collect();

    let db = Db::open(&dir, small_cfg(12.0), Arc::new(ProteusFactory::default())).unwrap();
    for &k in frozen {
        db.put_u64(k, &[3u8; 64]).unwrap();
    }
    db.flush_and_settle().unwrap();

    std::thread::scope(|s| {
        let (db, frozen_set) = (&db, &frozen_set);
        s.spawn(move || {
            for &k in rest {
                db.put_u64(k, &[5u8; 64]).unwrap();
            }
        });
        for t in 0..4u64 {
            s.spawn(move || {
                // Point lookups over the frozen prefix are exact ground
                // truth even while the writer races ahead.
                for &k in frozen.iter().skip(t as usize).step_by(7) {
                    assert!(db.seek_u64(k, k).unwrap(), "frozen key {k:#x} missing");
                }
                // Gap probes: empty unless a concurrent insert landed
                // there — never assert emptiness, just exercise the path.
                let mut x = 0x9E37_79B9u64 ^ t;
                for _ in 0..2_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let lo = x % (1 << 48);
                    let got = db.seek_u64(lo, lo + 100).unwrap();
                    if frozen_set.range(lo..=lo + 100).next().is_some() {
                        assert!(got, "false negative [{lo:#x}, +100]");
                    }
                }
            });
        }
    });

    db.flush_and_settle().unwrap();
    for &k in raw.iter().step_by(61) {
        assert!(db.seek_u64(k, k).unwrap(), "key {k:#x} lost after concurrent load");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adaptive_lifecycle_recovers_fpr_after_workload_shift() {
    // The self-design loop, closed online: filters trained for a uniform
    // long-range workload face a hard shift to correlated short ranges
    // (the paper's Fig. 7/8 transition). The adaptive pass must flag the
    // decayed files, re-train their filters on the live sample queue, cut
    // the observed FPR back down, and persist the re-trained filters so a
    // reopen serves them without any retraining.
    let dir = tmpdir("adaptive-e2e");
    let raw = Dataset::Uniform.generate(20_000, 7);
    let mirror: BTreeSet<u64> = raw.iter().copied().collect();
    let cfg = small_cfg(12.0)
        .to_builder()
        .adapt_enabled(false) // drive passes via adapt_now() for determinism
        .adapt_min_probes(100)
        .adapt_fpr_threshold(0.02)
        .adapt_divergence_threshold(0.4)
        .queue_capacity(2_000) // small queue => the live sample tracks the shift
        .build()
        .unwrap();

    let train_w = Workload::Uniform { rmax: 1 << 15 };
    let shift_w = Workload::Correlated { rmax: 32, corr_degree: 1 << 10 };

    let db = Db::open(&dir, cfg.clone(), Arc::new(ProteusFactory::default())).unwrap();
    let seeds = QueryGen::new(train_w.clone(), &raw, &[], 0xA).empty_ranges(2_000);
    db.seed_queries(seeds.iter().map(|&(lo, hi)| (u64_key(lo).to_vec(), u64_key(hi).to_vec())));
    for &k in &raw {
        db.put_u64(k, &[9u8; 64]).unwrap();
    }
    db.flush_and_settle().unwrap();

    // Run a batch of certified-empty queries; returns the observed filter
    // FPR of the batch. Every answer is checked against ground truth.
    let run = |db: &Db, w: &Workload, n: usize, seed: u64| -> f64 {
        let before = db.stats().snapshot();
        for (lo, hi) in QueryGen::new(w.clone(), &raw, &[], seed).empty_ranges(n) {
            let got = db.seek_u64(lo, hi).unwrap();
            assert!(mirror.range(lo..=hi).next().is_none() || got, "[{lo:#x},{hi:#x}]");
        }
        db.stats().snapshot().delta(&before).observed_fpr()
    };

    let fpr_matched = run(&db, &train_w, 3_000, 1);
    let fpr_shifted = run(&db, &shift_w, 3_000, 2);
    assert!(
        fpr_shifted > fpr_matched,
        "the shift must hurt: matched {fpr_matched:.4} vs shifted {fpr_shifted:.4}"
    );

    // The queue now holds only post-shift samples; one adaptive pass must
    // flag and re-train the decayed filters.
    let retrained = db.adapt_now().unwrap();
    assert!(retrained > 0, "no filters re-trained after a hard workload shift");
    assert_eq!(db.stats().filters_retrained.get(), retrained as u64);
    assert!(db.stats().drift_flags.get() >= retrained as u64);
    assert!(db.stats().retrain_ns.get() > 0);

    let fpr_adapted = run(&db, &shift_w, 3_000, 3);
    assert!(
        fpr_adapted < fpr_shifted,
        "re-training must recover FPR: shifted {fpr_shifted:.4} vs adapted {fpr_adapted:.4}"
    );

    // Zero false negatives throughout: every key still findable.
    for &k in raw.iter().step_by(53) {
        assert!(db.seek_u64(k, k).unwrap(), "key {k:#x} lost after re-training");
    }

    // Re-trained filter blocks are durable: a cold reopen loads them
    // without any retraining and keeps the adapted FPR.
    let filter_bits = db.filter_bits();
    let sst_count = db.sst_count();
    drop(db);
    let db = Db::open(&dir, cfg, Arc::new(ProteusFactory::default())).unwrap();
    let fpr_reopened = run(&db, &shift_w, 3_000, 4);
    assert_eq!(db.stats().filters_built.get(), 0, "reopen must not retrain");
    assert_eq!(db.stats().filters_loaded.get(), sst_count as u64);
    assert_eq!(db.filter_bits(), filter_bits, "re-trained filters must reload bit-identically");
    assert!(
        fpr_reopened < fpr_shifted,
        "adapted FPR must survive reopen: {fpr_reopened:.4} vs shifted {fpr_shifted:.4}"
    );
    for &k in raw.iter().step_by(101) {
        assert!(db.seek_u64(k, k).unwrap(), "key {k:#x} lost across reopen");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn background_adapter_thread_retrains_on_its_own() {
    // Same shift as above, but the third background worker (enabled via
    // `adapt_enabled`) must notice and re-train without any explicit
    // adapt_now() call.
    let dir = tmpdir("adaptive-bg");
    let raw = Dataset::Uniform.generate(10_000, 23);
    let cfg = small_cfg(12.0)
        .to_builder()
        .adapt_enabled(true)
        .adapt_interval(std::time::Duration::from_millis(20))
        .adapt_min_probes(100)
        .adapt_fpr_threshold(0.02)
        .adapt_divergence_threshold(0.4)
        .queue_capacity(1_000)
        .build()
        .unwrap();

    let train_w = Workload::Uniform { rmax: 1 << 15 };
    let shift_w = Workload::Correlated { rmax: 32, corr_degree: 1 << 10 };
    let db = Db::open(&dir, cfg, Arc::new(ProteusFactory::default())).unwrap();
    let seeds = QueryGen::new(train_w, &raw, &[], 0xB).empty_ranges(1_000);
    db.seed_queries(seeds.iter().map(|&(lo, hi)| (u64_key(lo).to_vec(), u64_key(hi).to_vec())));
    for &k in &raw {
        db.put_u64(k, &[4u8; 64]).unwrap();
    }
    db.flush_and_settle().unwrap();

    // Shifted traffic; keep seeking until the background worker reacts
    // (bounded: ~15s of 20ms scan intervals is three orders of magnitude
    // more than it needs).
    let mut reacted = false;
    for round in 0..300u64 {
        for (lo, hi) in QueryGen::new(shift_w.clone(), &raw, &[], 0xC0 + round).empty_ranges(200) {
            let _ = db.seek_u64(lo, hi).unwrap();
        }
        if db.stats().filters_retrained.get() > 0 {
            reacted = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(reacted, "background adapter never re-trained a filter");
    // Store still correct under and after the concurrent rewrite.
    for &k in raw.iter().step_by(41) {
        assert!(db.seek_u64(k, k).unwrap(), "key {k:#x} lost during background re-training");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Facade crate re-exporting the full Proteus workspace.
//!
//! See the individual crates for details:
//! - [`proteus_core`] (re-exported as `core`) — Proteus filter + CPFPR model
//! - [`proteus_filters`] (`filters`) — SuRF, Rosetta and ARF baselines
//! - [`proteus_amq`] (`amq`) — Bloom filter variants and hashing
//! - [`proteus_succinct`] (`succinct`) — rank/select bit vectors, LOUDS-DS trie
//! - [`proteus_lsm`] (`lsm`) — LSM-tree key-value store harness
//! - [`proteus_server`] (`server`) — sharded TCP front-end + wire protocol
//! - [`proteus_workloads`] (`workloads`) — datasets and query generators

pub use proteus_amq as amq;
pub use proteus_core as core;
pub use proteus_filters as filters;
pub use proteus_lsm as lsm;
pub use proteus_server as server;
pub use proteus_succinct as succinct;
pub use proteus_workloads as workloads;

// The embeddable-store surface (API v2), re-exported at the facade root
// so `proteus::Db` + `proteus::WriteBatch` is all an application needs.
pub use proteus_lsm::{Db, DbConfig, DbConfigBuilder, RangeIter, WriteBatch};

// The network surface: run the store as a service (`proteus::Server`) or
// talk to one (`proteus::Client`).
pub use proteus_server::{Client, Server};

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access, so this crate implements the
//! subset of proptest 1.x that the workspace's property tests use:
//!
//! * the [`proptest!`] macro with both parameter forms — `x: Type`
//!   (arbitrary) and `x in strategy` — mixed freely in one signature, plus
//!   the `#![proptest_config(..)]` header;
//! * range strategies (`0u64..1000`, `1usize..=64`) and [`arbitrary::any`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from upstream, deliberate for an offline reproduction:
//! no shrinking (a failing case reports its values but is not minimized),
//! no failure-persistence files, and a fixed RNG seed per test function so
//! runs are reproducible in CI. The default case count matches upstream
//! (256).

// Vendored offline stand-in: kept byte-faithful to the subset of the real
// crate's API the workspace uses; exempt from the workspace lint bar.
#![allow(clippy::all)]
pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Entry point: expands each contained function into a `#[test]` that runs
/// the body over many sampled inputs.
///
/// Matches upstream usage: attributes (including `#[test]` and doc comments)
/// are passed through, an optional `#![proptest_config(expr)]` header sets
/// the per-function configuration.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: munch the test functions one at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(&config, stringify!($name));
            $crate::__proptest_params!(runner, $body, [] $($params)*);
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Internal: normalize the parameter list into `(pattern, strategy)` pairs,
/// accepting both `name: Type` and `pat in strategy` forms, then emit the
/// sampling loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_params {
    // Terminal: all parameters normalized; run the cases.
    ($runner:ident, $body:block, [$(($pat:pat, $strat:expr))*]) => {
        $runner.run(|__proptest_rng: &mut $crate::test_runner::TestRng| {
            $(let $pat = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)*
            $body
            ::core::result::Result::Ok(())
        });
    };
    // `name: Type` — draw from the type's Arbitrary impl.
    ($runner:ident, $body:block, [$($acc:tt)*] $name:ident : $ty:ty) => {
        $crate::__proptest_params!($runner, $body,
            [$($acc)* ($name, ($crate::arbitrary::any::<$ty>()))]);
    };
    ($runner:ident, $body:block, [$($acc:tt)*] $name:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_params!($runner, $body,
            [$($acc)* ($name, ($crate::arbitrary::any::<$ty>()))] $($rest)*);
    };
    // `pat in strategy` — sample the given strategy.
    ($runner:ident, $body:block, [$($acc:tt)*] $pat:pat in $strat:expr) => {
        $crate::__proptest_params!($runner, $body, [$($acc)* ($pat, ($strat))]);
    };
    ($runner:ident, $body:block, [$($acc:tt)*] $pat:pat in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_params!($runner, $body, [$($acc)* ($pat, ($strat))] $($rest)*);
    };
}

/// Assert within a proptest body; failure reports the condition (plus an
/// optional formatted message) without aborting the whole process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), left, right
        );
    }};
}

/// Inequality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discard the current case (does not count toward the case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn mixed_param_forms(a: u64, b in 1usize..=8, c: bool) {
            prop_assert!(b >= 1 && b <= 8);
            let _ = (a, c);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_u8_arbitrary_varies(v: Vec<u8>) {
            prop_assert!(v.len() <= 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn config_header_is_honored(x: u64) {
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics_with_values() {
        proptest_inner();
        fn proptest_inner() {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                #[allow(unused)]
                fn always_fails(x in 0u8..4) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        }
    }
}

//! The per-test driver: configuration, the deterministic RNG cases are
//! drawn from, and the pass/reject/fail plumbing `prop_assert!` relies on.

/// Per-test configuration. Only the knobs this workspace uses.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required for a pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs out; draw a fresh case.
    Reject,
    /// `prop_assert!` (or friends) failed with this message.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic RNG handed to strategies — the workspace's vendored
/// `rand::rngs::StdRng`, seeded from the test's name, so every test
/// function gets a distinct but reproducible stream (upstream proptest
/// uses OS entropy plus a persistence file; an offline reproduction wants
/// CI runs to be bit-identical instead).
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        use rand::SeedableRng;
        TestRng { inner: rand::rngs::StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_0F0F_F0F0) }
    }

    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// Unbiased draw from `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        use rand::Rng;
        debug_assert!(span > 0);
        self.inner.gen_range(0..span)
    }
}

/// Runs the sampled body `config.cases` times, retrying rejected cases.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    name: &'static str,
}

impl TestRunner {
    pub fn new(config: &ProptestConfig, name: &'static str) -> Self {
        // Seed from the test name so distinct tests explore distinct inputs
        // but each test is reproducible run-to-run.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { config: config.clone(), rng: TestRng::from_seed(h), name }
    }

    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            match case(&mut self.rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest '{}': too many prop_assume! rejections \
                             ({rejected}) before reaching {} cases",
                            self.name, self.config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case failed ('{}', after {passed} passing cases): {msg}",
                        self.name
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_counts_only_passes() {
        let mut runner = TestRunner::new(&ProptestConfig::with_cases(10), "t");
        let mut calls = 0u32;
        runner.run(|_| {
            calls += 1;
            if calls % 2 == 0 {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(calls >= 19, "10 passes need at least 19 calls, saw {calls}");
    }

    #[test]
    #[should_panic(expected = "too many prop_assume!")]
    fn runner_gives_up_on_endless_rejection() {
        let cfg = ProptestConfig { cases: 1, max_global_rejects: 50 };
        TestRunner::new(&cfg, "t").run(|_| Err(TestCaseError::Reject));
    }

    #[test]
    fn rng_is_reproducible() {
        let mut a = TestRng::from_seed(5);
        let mut b = TestRng::from_seed(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::from_seed(1);
        for span in [1u64, 2, 3, 7, 1 << 40] {
            for _ in 0..100 {
                assert!(rng.below(span) < span);
            }
        }
    }
}

//! `any::<T>()` — the strategy behind the `name: Type` parameter form.
//!
//! Integers mix uniform draws with occasional boundary values (0, 1, MAX),
//! since bit-arithmetic bugs live at the edges; upstream proptest gets the
//! same effect through shrinking, which this stand-in does not implement.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a default sampling distribution.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // 1-in-8 cases draw a boundary value.
                if rng.below(8) == 0 {
                    match rng.below(3) {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        _ => <$t>::MAX,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(65) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_hit_boundaries_eventually() {
        let mut rng = TestRng::from_seed(6);
        let strat = any::<u64>();
        let mut zero = false;
        let mut max = false;
        for _ in 0..2_000 {
            match strat.sample(&mut rng) {
                0 => zero = true,
                u64::MAX => max = true,
                _ => {}
            }
        }
        assert!(zero && max);
    }

    #[test]
    fn vec_lengths_vary() {
        let mut rng = TestRng::from_seed(7);
        let strat = any::<Vec<u8>>();
        let lens: Vec<usize> = (0..50).map(|_| strat.sample(&mut rng).len()).collect();
        assert!(lens.iter().any(|&l| l == 0) || lens.iter().any(|&l| l > 32));
        assert!(lens.iter().all(|&l| l <= 64));
    }
}

//! Strategies: things a value can be sampled from. Upstream proptest builds
//! an elaborate composable tree with shrinking; the offline stand-in only
//! needs uniform sampling over ranges and `any::<T>()`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of values for one proptest parameter.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Inclusive range covering the full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_range_bounds() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..1_000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = TestRng::from_seed(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..200 {
            match (1usize..=4).sample(&mut rng) {
                1 => lo_seen = true,
                4 => hi_seen = true,
                v => assert!((1..=4).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = TestRng::from_seed(4);
        assert_eq!((7u32..=7).sample(&mut rng), 7);
    }
}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this crate implements the
//! subset of criterion 0.5's API the workspace benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `criterion_group!`/`criterion_main!` —
//! with a deliberately simple measurement loop: a short warm-up, then timed
//! batches until the configured measurement time (or iteration cap) is
//! reached, reporting the mean time per iteration. There is no statistical
//! analysis, HTML report, or baseline comparison; the numbers are honest
//! wall-clock means, good enough to compare filters against each other on
//! the same machine.
//!
//! Measurement only happens under `cargo bench`, which invokes the binary
//! with a `--bench` argument (the same contract real criterion relies on).
//! Run any other way — e.g. a `harness = false` bench target executed by
//! `cargo test` — each closure runs exactly once as an instant smoke test.
//!
//! One extension over the upstream API: every completed benchmark is
//! recorded in a process-wide registry and can be drained with
//! [`take_results`]. `harness = false` bench targets use this to write
//! machine-readable `BENCH_*.json` trajectories next to the human
//! console output (upstream criterion would offer `--save-baseline`;
//! offline we persist the numbers ourselves).

// Vendored offline stand-in: kept byte-faithful to the subset of the real
// crate's API the workspace uses; exempt from the workspace lint bar.
#![allow(clippy::all)]
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed benchmark, as recorded by the process-wide registry.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark name (`group/function`).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration (0.0 in smoke mode).
    pub mean_ns: f64,
    /// Iterations measured (1 in smoke mode).
    pub iters: u64,
    /// False when the closure ran once as a smoke test (no `--bench`).
    pub measured: bool,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drain every benchmark result recorded so far (offline extension; see
/// the module docs).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().unwrap())
}

/// Top-level harness handle; collects configuration shared by all groups.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` when running bench targets via `cargo
        // bench` and nothing bench-specific otherwise; measure only then.
        let test_mode = !std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        let cfg = (self.sample_size, self.measurement_time, self.warm_up_time, self.test_mode);
        run_one(&name, cfg, f);
        self
    }
}

/// A named set of related benchmarks, printed under a common prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.cfg(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.cfg(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn cfg(&self) -> (usize, Duration, Duration, bool) {
        (
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.measurement_time.unwrap_or(self.criterion.measurement_time),
            self.criterion.warm_up_time,
            self.criterion.test_mode,
        )
    }
}

/// Identifier for one benchmark instance within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; its `iter` runs the measured routine.
pub struct Bencher {
    mode: BenchMode,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
    iters: u64,
}

enum BenchMode {
    /// Smoke-test: run the routine once (used under `cargo test`).
    Test,
    /// Measure for roughly this long after warm-up.
    Measure { warm_up: Duration, measure: Duration, max_batches: usize },
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BenchMode::Test => {
                std::hint::black_box(routine());
                self.mean_ns = 0.0;
                self.iters = 1;
            }
            BenchMode::Measure { warm_up, measure, max_batches } => {
                // Warm-up: also estimates per-iteration cost to size batches.
                let wu_start = Instant::now();
                let mut wu_iters: u64 = 0;
                while wu_start.elapsed() < warm_up {
                    std::hint::black_box(routine());
                    wu_iters += 1;
                }
                let per_iter = wu_start.elapsed().as_secs_f64() / wu_iters.max(1) as f64;
                // Size batches so that max_batches of them fill the whole
                // configured measurement time (upstream criterion's
                // contract: both knobs are honored together).
                let batch_secs = measure.as_secs_f64() / max_batches.max(1) as f64;
                let batch = ((batch_secs / per_iter.max(1e-9)) as u64).clamp(1, 1 << 22);

                let mut total_ns = 0.0;
                let mut total_iters: u64 = 0;
                let start = Instant::now();
                let mut batches = 0;
                while start.elapsed() < measure && batches < max_batches {
                    let t = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(routine());
                    }
                    total_ns += t.elapsed().as_nanos() as f64;
                    total_iters += batch;
                    batches += 1;
                }
                self.mean_ns = total_ns / total_iters.max(1) as f64;
                self.iters = total_iters;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    (sample_size, measurement_time, warm_up_time, test_mode): (usize, Duration, Duration, bool),
    mut f: F,
) {
    let mut bencher = Bencher {
        mode: if test_mode {
            BenchMode::Test
        } else {
            BenchMode::Measure {
                warm_up: warm_up_time,
                measure: measurement_time,
                max_batches: sample_size,
            }
        },
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    RESULTS.lock().unwrap().push(BenchResult {
        name: name.to_string(),
        mean_ns: bencher.mean_ns,
        iters: bencher.iters,
        measured: !test_mode,
    });
    if test_mode {
        println!("test {name} ... ok (bench smoke)");
    } else {
        println!(
            "{name:<50} {:>12} /iter  ({} iterations)",
            format_ns(bencher.mean_ns),
            bencher.iters
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
            test_mode: false,
        };
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(2),
            test_mode: true,
        };
        let data = vec![1u64, 2, 3];
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
        assert_eq!(BenchmarkId::new("f", 10).0, "f/10");
    }
}

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this reproduction has no network access, so the
//! workspace vendors the *subset* of rand 0.8's API it actually uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits;
//! * [`rngs::StdRng`] — here a xoshiro256** generator seeded through
//!   splitmix64 (deterministic; **not** the same stream as upstream
//!   `StdRng`, which is fine because the reproduction fixes its own seeds);
//! * `gen::<T>()` for the primitive types the workloads draw, and
//!   `gen_range` over half-open and inclusive integer ranges.
//!
//! The statistical quality of xoshiro256** is more than sufficient for the
//! synthetic datasets and query workloads generated here.

// Vendored offline stand-in: kept byte-faithful to the subset of the real
// crate's API the workspace uses; exempt from the workspace lint bar.
#![allow(clippy::all)]
use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`], mirroring
/// rand's `Standard` distribution.
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`], mirroring rand's `SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Unbiased uniform draw from `[0, span)` by rejection sampling (Lemire's
/// nearly-divisionless method would also do; rejection keeps it obvious).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// The user-facing sampling interface; blanket-implemented for every
/// [`RngCore`], as in upstream rand.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Fill a byte slice with random data (upstream rand's `Fill` is generic
    /// over more slice types; only `[u8]` is used in this workspace).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let x: u32 = rng.gen_range(2..=2);
            assert_eq!(x, 2);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }
}

//! 2PBF: a pair of prefix Bloom filters (§3.1, Eq. 4) — "equivalent to an
//! instance of Rosetta that uses only 2 filters" (§4).
//!
//! Range queries walk the coarse (l1) regions of the query; every l1-region
//! that the first filter cannot rule out is expanded into its l2-prefixes
//! and probed in the second filter.

use crate::codec::{ByteReader, CodecError, FilterKind, WireWrite};
use crate::key::{increment_prefix, mask_tail, set_tail_ones, u64_key};
use crate::keyset::KeySet;
use crate::model::two_pbf::{TwoPbfDesign, TwoPbfModel, TwoPbfOptions};
use crate::prefix_bf::PrefixBloom;
use crate::sample::SampleQueries;
use crate::RangeFilter;
use proteus_amq::hash::HashFamily;

/// Construction options for [`TwoPbf`].
#[derive(Debug, Clone)]
pub struct TwoPbfFilterOptions {
    /// Hash family for both prefix Bloom filters.
    pub hash_family: HashFamily,
    /// Per-query probe budget shared by the two filters.
    pub probe_cap: u64,
    /// Hash seed (the second filter derives its own from it).
    pub seed: u32,
    /// Model search options (memory splits, coarse l2 grid, threads).
    pub model: TwoPbfOptions,
}

impl Default for TwoPbfFilterOptions {
    fn default() -> Self {
        TwoPbfFilterOptions {
            hash_family: HashFamily::Murmur3,
            probe_cap: crate::proteus::DEFAULT_PROBE_CAP,
            seed: 0x2B1F_2B1F,
            model: TwoPbfOptions::default(),
        }
    }
}

/// Two stacked prefix Bloom filters with model-selected prefix lengths and
/// memory split.
#[derive(Debug, Clone)]
pub struct TwoPbf {
    bf1: PrefixBloom,
    bf2: PrefixBloom,
    design: TwoPbfDesign,
    width: usize,
    probe_cap: u64,
}

impl TwoPbf {
    /// Self-design over the (l1, l2, split) space.
    pub fn train(
        keys: &KeySet,
        samples: &SampleQueries,
        m_bits: u64,
        opts: &TwoPbfFilterOptions,
    ) -> Self {
        let model = TwoPbfModel::build(keys, samples, m_bits, &opts.model);
        let design = model.best_design();
        Self::build_with_design(keys, design, m_bits, opts)
    }

    /// Build a fixed design (Fig. 4b sweeps the space).
    pub fn build_with_design(
        keys: &KeySet,
        design: TwoPbfDesign,
        m_bits: u64,
        opts: &TwoPbfFilterOptions,
    ) -> Self {
        let m1 = (m_bits as f64 * design.split) as u64;
        let m2 = m_bits - m1;
        let bf1 = PrefixBloom::build(keys, design.l1, m1, opts.hash_family, opts.seed);
        let bf2 = PrefixBloom::build(keys, design.l2, m2, opts.hash_family, opts.seed ^ 0x9E37);
        TwoPbf { bf1, bf2, design, width: keys.width(), probe_cap: opts.probe_cap }
    }

    /// The instantiated design.
    pub fn design(&self) -> TwoPbfDesign {
        self.design
    }

    /// Closed-range emptiness query.
    pub fn query(&self, lo: &[u8], hi: &[u8]) -> bool {
        debug_assert!(lo <= hi);
        let l1 = self.design.l1;
        let mut budget = self.probe_cap;
        // Walk the l1-regions of [lo, hi].
        let mut region = lo.to_vec();
        mask_tail(&mut region, l1);
        let mut last_region = hi.to_vec();
        mask_tail(&mut last_region, l1);
        let mut from = vec![0u8; self.width];
        let mut to = vec![0u8; self.width];
        loop {
            if budget == 0 {
                return true;
            }
            budget -= 1;
            if self.bf1.contains_prefix_of(&region) {
                // Expand into l2 probes clamped to Q.
                from.copy_from_slice(&region);
                if from[..] > lo[..] {
                    // region start is inside Q
                } else {
                    from.copy_from_slice(lo);
                }
                to.copy_from_slice(&region);
                set_tail_ones(&mut to, l1);
                if to[..] > hi[..] {
                    to.copy_from_slice(hi);
                }
                if self.bf2.query_window(&from, &to, &mut budget) {
                    return true;
                }
            }
            if region == last_region || increment_prefix(&mut region, l1) {
                return false;
            }
        }
    }

    /// [`TwoPbf::query`] with `u64` bounds.
    pub fn query_u64(&self, lo: u64, hi: u64) -> bool {
        self.query(&u64_key(lo), &u64_key(hi))
    }

    /// Memory footprint in bits (both filters).
    pub fn size_bits(&self) -> u64 {
        self.bf1.size_bits() + self.bf2.size_bits()
    }

    /// Serialize the filter payload (design + both Bloom filters).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u32(self.width as u32);
        out.put_u64(self.probe_cap);
        out.put_u64(self.design.l1 as u64);
        out.put_u64(self.design.l2 as u64);
        out.put_f64(self.design.split);
        out.put_f64(self.design.expected_fpr);
        self.bf1.encode_into(out);
        self.bf2.encode_into(out);
    }

    /// Decode a payload written by [`TwoPbf::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<TwoPbf, CodecError> {
        let width = r.u32()? as usize;
        if width == 0 {
            return Err(CodecError::Invalid("2pbf width zero"));
        }
        let probe_cap = r.u64()?;
        let design = TwoPbfDesign {
            l1: r.u64()? as usize,
            l2: r.u64()? as usize,
            split: r.f64()?,
            expected_fpr: r.f64()?,
        };
        if design.l1 == 0 || design.l1 > design.l2 || design.l2 > width * 8 {
            return Err(CodecError::Invalid("2pbf prefix lengths"));
        }
        let bf1 = PrefixBloom::decode_from(r)?;
        let bf2 = PrefixBloom::decode_from(r)?;
        Ok(TwoPbf { bf1, bf2, design, width, probe_cap })
    }
}

impl RangeFilter for TwoPbf {
    fn may_contain_range(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.query(lo, hi)
    }
    fn size_bits(&self) -> u64 {
        self.size_bits()
    }
    fn name(&self) -> String {
        format!(
            "2PBF(l1={}, l2={}, split={:.1})",
            self.design.l1, self.design.l2, self.design.split
        )
    }
    fn encode_payload(&self) -> Option<(FilterKind, Vec<u8>)> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        Some((FilterKind::TwoPbf, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(s: &mut u64) -> u64 {
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn setup(n: usize, rmax: u64, seed: u64) -> (Vec<u64>, KeySet, SampleQueries) {
        let mut s = seed;
        let keys: Vec<u64> = (0..n).map(|_| splitmix(&mut s)).collect();
        let ks = KeySet::from_u64(&keys);
        let mut q = SampleQueries::new(8);
        while q.len() < 300 {
            let lo = splitmix(&mut s) % (u64::MAX - rmax - 2);
            let hi = lo + 2 + splitmix(&mut s) % rmax;
            if !ks.range_overlaps(&u64_key(lo), &u64_key(hi)) {
                q.push(&u64_key(lo), &u64_key(hi));
            }
        }
        (keys, ks, q)
    }

    fn fast_opts() -> TwoPbfFilterOptions {
        TwoPbfFilterOptions {
            model: TwoPbfOptions { max_l2_values: 16, threads: 2, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn no_false_negatives() {
        let (keys, ks, samples) = setup(1500, 1 << 10, 21);
        let f = TwoPbf::train(&ks, &samples, 1500 * 12, &fast_opts());
        for &k in keys.iter().step_by(11) {
            assert!(f.query_u64(k, k), "point {k} design {:?}", f.design());
            assert!(f.query_u64(k.saturating_sub(20), k.saturating_add(20)));
        }
    }

    #[test]
    fn explicit_design_queries_both_levels() {
        let (keys, ks, _) = setup(1000, 16, 5);
        let design = TwoPbfDesign { l1: 24, l2: 56, split: 0.5, expected_fpr: 0.0 };
        let f = TwoPbf::build_with_design(&ks, design, 1000 * 14, &fast_opts());
        for &k in keys.iter().step_by(17) {
            assert!(f.query_u64(k, k));
        }
        // Far-away small queries should mostly be negative.
        let mut s = 404u64;
        let mut fps = 0;
        for _ in 0..500 {
            let lo = splitmix(&mut s);
            let hi = lo.saturating_add(8);
            if ks.range_overlaps(&u64_key(lo), &u64_key(hi)) {
                continue;
            }
            if f.query_u64(lo, hi) {
                fps += 1;
            }
        }
        assert!(fps < 150, "{fps}/500");
    }

    #[test]
    fn budget_makes_giant_ranges_safe_positives() {
        let (_, ks, _) = setup(100, 16, 6);
        let design = TwoPbfDesign { l1: 60, l2: 64, split: 0.5, expected_fpr: 0.0 };
        let mut opts = fast_opts();
        opts.probe_cap = 128;
        let f = TwoPbf::build_with_design(&ks, design, 100 * 20, &opts);
        // 2^40-wide query at l1=60 has ~2^36 regions: budget exhausts.
        assert!(f.query_u64(1 << 20, 1 << 40));
    }
}

//! A prefix Bloom filter: a Bloom filter over the `l`-bit prefixes of the
//! key set, with range queries that probe every `l`-bit region overlapping
//! the query window (§2.1, §3.1).

use crate::codec::{ByteReader, CodecError, WireWrite};
use crate::key::{increment_prefix, lcp_bits, mask_tail};
use crate::keyset::KeySet;
use proteus_amq::hash::{HashFamily, PrefixHasher};
use proteus_amq::BloomFilter;

/// Bloom filter over fixed-length key prefixes.
#[derive(Debug, Clone)]
pub struct PrefixBloom {
    bloom: BloomFilter,
    hasher: PrefixHasher,
    /// Prefix length in bits.
    prefix_len: usize,
    /// Canonical key width in bytes.
    width: usize,
}

impl PrefixBloom {
    /// Build over the distinct `prefix_len`-bit prefixes of `keys`, using
    /// `m_bits` of memory. The expected insertion count (which fixes the
    /// hash count) is |K_prefix_len|, computed exactly from the sorted keys.
    pub fn build(
        keys: &KeySet,
        prefix_len: usize,
        m_bits: u64,
        family: HashFamily,
        seed: u32,
    ) -> Self {
        assert!(prefix_len >= 1 && prefix_len <= keys.bits());
        let n = keys.unique_prefixes(prefix_len);
        let mut bloom = BloomFilter::new(m_bits, n);
        let hasher = PrefixHasher::new(family, seed);
        // Insert each distinct prefix once: a key starts a new prefix iff it
        // shares fewer than `prefix_len` bits with its predecessor.
        let mut prev: Option<&[u8]> = None;
        for key in keys.iter() {
            let fresh = match prev {
                None => true,
                Some(p) => lcp_bits(p, key) < prefix_len,
            };
            if fresh {
                bloom.insert(hasher.hash_prefix(key, prefix_len as u32));
            }
            prev = Some(key);
        }
        PrefixBloom { bloom, hasher, prefix_len, width: keys.width() }
    }

    /// The prefix length (bits) the filter hashes.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Memory footprint in bits.
    pub fn size_bits(&self) -> u64 {
        self.bloom.size_bits()
    }

    /// Serialize: geometry, hasher (family + seed), then the Bloom filter.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u32(self.prefix_len as u32);
        out.put_u32(self.width as u32);
        self.hasher.encode_into(out);
        self.bloom.encode_into(out);
    }

    /// Decode a payload written by [`PrefixBloom::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<PrefixBloom, CodecError> {
        let prefix_len = r.u32()? as usize;
        let width = r.u32()? as usize;
        if width == 0 || prefix_len == 0 || prefix_len > width * 8 {
            return Err(CodecError::Invalid("prefix bloom geometry"));
        }
        let hasher = PrefixHasher::decode_from(r)?;
        let bloom = BloomFilter::decode_from(r)?;
        Ok(PrefixBloom { bloom, hasher, prefix_len, width })
    }

    /// Probe the single prefix of `key`.
    #[inline]
    pub fn contains_prefix_of(&self, key: &[u8]) -> bool {
        self.bloom.contains(self.hasher.hash_prefix(key, self.prefix_len as u32))
    }

    /// Probe every `prefix_len`-bit region overlapping the closed window
    /// `[from, to]` (full-width canonical bounds). Returns `true` on the
    /// first positive probe. `budget` is decremented per probe; when it
    /// reaches zero the filter conservatively answers `true` (never a false
    /// negative) — the probe cap discussed in DESIGN.md.
    pub fn query_window(&self, from: &[u8], to: &[u8], budget: &mut u64) -> bool {
        debug_assert_eq!(from.len(), self.width);
        debug_assert_eq!(to.len(), self.width);
        debug_assert!(from <= to);
        let mut cur = from.to_vec();
        mask_tail(&mut cur, self.prefix_len);
        let mut end = to.to_vec();
        mask_tail(&mut end, self.prefix_len);
        loop {
            if *budget == 0 {
                return true;
            }
            *budget -= 1;
            if self.bloom.contains(self.hasher.hash_prefix(&cur, self.prefix_len as u32)) {
                return true;
            }
            if cur == end || increment_prefix(&mut cur, self.prefix_len) {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::u64_key;

    fn build_u64(keys: &[u64], l: usize, bpk: u64) -> (KeySet, PrefixBloom) {
        let ks = KeySet::from_u64(keys);
        let m = ks.len() as u64 * bpk;
        let pb = PrefixBloom::build(&ks, l, m, HashFamily::Murmur3, 1);
        (ks, pb)
    }

    #[test]
    fn no_false_negatives_for_members() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 7_919_777).collect();
        for l in [8usize, 24, 48, 64] {
            let (_, pb) = build_u64(&keys, l, 16);
            for &k in &keys {
                assert!(pb.contains_prefix_of(&u64_key(k)), "l={l} key={k}");
            }
        }
    }

    #[test]
    fn range_probe_finds_members() {
        let keys: Vec<u64> = vec![1 << 40, 5 << 40, 9 << 40];
        let (_, pb) = build_u64(&keys, 64, 16);
        // A window containing a key must be positive regardless of budget
        // exhaustion behaviour.
        let mut budget = u64::MAX;
        assert!(pb.query_window(&u64_key((1 << 40) - 3), &u64_key((1 << 40) + 3), &mut budget));
    }

    #[test]
    fn empty_window_is_mostly_negative() {
        let keys: Vec<u64> = (0..2000u64).map(|i| i << 40).collect();
        let (_, pb) = build_u64(&keys, 24, 14);
        // Windows in the upper half of the space, far from keys: with 24-bit
        // prefixes the probes hit empty regions.
        let mut fps = 0;
        for i in 0..500u64 {
            let lo = (1 << 63) + i * (1 << 30);
            let mut budget = 1 << 20;
            if pb.query_window(&u64_key(lo), &u64_key(lo + (1 << 29)), &mut budget) {
                fps += 1;
            }
        }
        assert!(fps < 50, "{fps}/500 false positives");
    }

    #[test]
    fn budget_exhaustion_returns_safe_positive() {
        let keys: Vec<u64> = vec![42];
        let (_, pb) = build_u64(&keys, 64, 16);
        let mut budget = 4;
        // Query spanning far more than 4 regions with no keys: budget runs
        // out -> positive.
        assert!(pb.query_window(&u64_key(1 << 20), &u64_key(1 << 40), &mut budget));
        assert_eq!(budget, 0);
    }

    #[test]
    fn window_iteration_counts_regions() {
        let keys: Vec<u64> = vec![u64::MAX]; // keep the filter non-empty
        let (_, pb) = build_u64(&keys, 8, 1 << 12);
        // Window spanning exactly 3 8-bit regions: 3 probes.
        let mut budget = 100;
        let r = pb.query_window(
            &u64_key(0x01_00_00_00_00_00_00_00),
            &u64_key(0x03_FF_FF_FF_FF_FF_FF_FF),
            &mut budget,
        );
        assert!(!r);
        assert_eq!(budget, 97);
    }

    #[test]
    fn prefix_insert_dedupes() {
        // 1000 keys sharing 8 distinct top bytes: at l = 8 only 8 inserts.
        let keys: Vec<u64> = (0..1000u64).map(|i| ((i % 8) << 56) | i).collect();
        let ks = KeySet::from_u64(&keys);
        let pb = PrefixBloom::build(&ks, 8, 1 << 16, HashFamily::Murmur3, 1);
        // All 8 top-byte regions positive, the rest nearly all negative.
        let mut pos = 0;
        for b in 0..=255u64 {
            let probe = u64_key(b << 56);
            if pb.contains_prefix_of(&probe) {
                pos += 1;
            }
        }
        assert!((8..20).contains(&pos), "{pos} positive top bytes");
    }
}

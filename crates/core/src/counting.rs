//! Approximate range counts — the §4.1 extension.
//!
//! "While Proteus does not support range queries other than emptiness
//! queries, replacing the Bloom filter with a counting Bloom filter would
//! provide this functionality." This module does exactly that: the trained
//! design's Bloom filter is swapped for a counting Bloom filter whose
//! counters accumulate *key multiplicities per l2-prefix*. A range count
//! sums the count-min estimates of every l2-prefix overlapping the range
//! (the same probe pattern as an emptiness query, pruned by the trie), so:
//!
//! * the estimate never undercounts (count-min never underestimates, and
//!   boundary prefixes overcount by at most the keys sharing them);
//! * a range the trie resolves as empty counts exactly zero;
//! * probe cost matches emptiness-query cost at the same design.

use crate::key::{increment_prefix, mask_tail, set_tail_ones, u64_key};
use crate::keyset::KeySet;
use crate::model::proteus::{ProteusModel, ProteusModelOptions};
use crate::sample::SampleQueries;
use crate::trie::ProteusTrie;
use proteus_amq::hash::{HashFamily, PrefixHasher};
use proteus_amq::CountingBloomFilter;
use proteus_succinct::Visit;

/// Options for [`CountingProteus`].
#[derive(Debug, Clone)]
pub struct CountingProteusOptions {
    /// Hash family for the counting Bloom filter.
    pub hash_family: HashFamily,
    /// Per-query probe budget (prefixes probed per count).
    pub probe_cap: u64,
    /// Hash seed.
    pub seed: u32,
    /// Options forwarded to the CPFPR design search.
    pub model: ProteusModelOptions,
}

impl Default for CountingProteusOptions {
    fn default() -> Self {
        CountingProteusOptions {
            hash_family: HashFamily::Murmur3,
            probe_cap: crate::proteus::DEFAULT_PROBE_CAP,
            seed: 0xC0_47,
            model: ProteusModelOptions::default(),
        }
    }
}

/// Proteus with a counting Bloom filter: supports emptiness *and*
/// approximate range counts at the granularity of the trained l2 prefix.
#[derive(Debug, Clone)]
pub struct CountingProteus {
    trie: Option<ProteusTrie>,
    counts: CountingBloomFilter,
    hasher: PrefixHasher,
    l1: usize,
    l2: usize,
    width: usize,
    probe_cap: u64,
}

impl CountingProteus {
    /// Self-design with the CPFPR model (counting filters get a quarter of
    /// the slots per bit, which [`CountingBloomFilter`] accounts for), then
    /// build with per-prefix key multiplicities.
    pub fn train(
        keys: &KeySet,
        samples: &SampleQueries,
        m_bits: u64,
        opts: &CountingProteusOptions,
    ) -> Self {
        let model = ProteusModel::build(keys, samples, m_bits, &opts.model);
        let design = model.best_design(keys, m_bits);
        let l1 = design.trie_depth_bits;
        // A counting filter must exist for counts; default to full length
        // if the emptiness-optimal design was trie-only.
        let l2 = if design.bloom_prefix_len > l1 { design.bloom_prefix_len } else { keys.bits() };
        let trie = (l1 > 0 && !keys.is_empty()).then(|| ProteusTrie::build(keys, l1 / 8));
        let trie_bits = trie.as_ref().map_or(0, |t| t.size_bits());
        let hasher = PrefixHasher::new(opts.hash_family, opts.seed);
        let mut counts =
            CountingBloomFilter::new(m_bits.saturating_sub(trie_bits), keys.unique_prefixes(l2));
        // One increment per key (not per distinct prefix): counters hold
        // per-prefix key multiplicities.
        for key in keys.iter() {
            counts.insert(hasher.hash_prefix(key, l2 as u32));
        }
        CountingProteus {
            trie,
            counts,
            hasher,
            l1,
            l2,
            width: keys.width(),
            probe_cap: opts.probe_cap,
        }
    }

    /// The instantiated `(l1, l2)` design in bits.
    pub fn design_bits(&self) -> (usize, usize) {
        (self.l1, self.l2)
    }

    /// Memory footprint in bits (trie + counting filter).
    pub fn size_bits(&self) -> u64 {
        self.trie.as_ref().map_or(0, |t| t.size_bits()) + self.counts.size_bits()
    }

    /// Emptiness query (same contract as [`crate::Proteus`]).
    pub fn query(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.count_estimate(lo, hi) > 0
    }

    /// Upper-bound estimate of the number of keys in `[lo, hi]`, at
    /// l2-prefix granularity: interior prefixes contribute their exact
    /// multiplicities (plus count-min collision noise), boundary prefixes
    /// contribute every key they hold. Returns `u64::MAX` if the probe
    /// budget is exhausted.
    pub fn count_estimate(&self, lo: &[u8], hi: &[u8]) -> u64 {
        debug_assert!(lo <= hi);
        let mut budget = self.probe_cap;
        let mut total = 0u64;
        let mut exhausted = false;
        {
            let mut probe_window = |from: &[u8], to: &[u8], budget: &mut u64| -> u64 {
                let mut cur = from.to_vec();
                mask_tail(&mut cur, self.l2);
                let mut end = to.to_vec();
                mask_tail(&mut end, self.l2);
                let mut sum = 0u64;
                loop {
                    if *budget == 0 {
                        exhausted = true;
                        return sum;
                    }
                    *budget -= 1;
                    sum += self.counts.count_estimate(self.hasher.hash_prefix(&cur, self.l2 as u32))
                        as u64;
                    if cur == end || increment_prefix(&mut cur, self.l2) {
                        return sum;
                    }
                }
            };
            match &self.trie {
                None => {
                    total = probe_window(lo, hi, &mut budget);
                }
                Some(trie) => {
                    let d = trie.depth_bytes();
                    let mut from = vec![0u8; self.width];
                    let mut to = vec![0u8; self.width];
                    trie.visit_leaves(lo, hi, |leaf| {
                        if leaf == &lo[..d] {
                            from.copy_from_slice(lo);
                        } else {
                            from[..d].copy_from_slice(leaf);
                            mask_tail(&mut from, d * 8);
                        }
                        if leaf == &hi[..d] {
                            to.copy_from_slice(hi);
                        } else {
                            to[..d].copy_from_slice(leaf);
                            set_tail_ones(&mut to, d * 8);
                        }
                        total += probe_window(&from, &to, &mut budget);
                        if budget == 0 {
                            Visit::Stop
                        } else {
                            Visit::Continue
                        }
                    });
                }
            }
        }
        if exhausted {
            u64::MAX
        } else {
            total
        }
    }

    /// Convenience u64 form.
    pub fn count_estimate_u64(&self, lo: u64, hi: u64) -> u64 {
        self.count_estimate(&u64_key(lo), &u64_key(hi))
    }
}

impl crate::RangeFilter for CountingProteus {
    fn may_contain_range(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.query(lo, hi)
    }
    fn size_bits(&self) -> u64 {
        self.size_bits()
    }
    fn name(&self) -> String {
        format!("CountingProteus(l1={}, l2={})", self.l1, self.l2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(s: &mut u64) -> u64 {
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Clustered keys (dense within a 2^32 span) + medium-range samples so
    /// the model picks a granularity at which key windows are enumerable.
    fn build(n: usize) -> (Vec<u64>, CountingProteus) {
        let mut s = 11u64;
        let base = 0xAB00_0000_0000_0000u64;
        let keys: Vec<u64> = (0..n).map(|_| base | (splitmix(&mut s) >> 32)).collect();
        let ks = KeySet::from_u64(&keys);
        let mut samples = SampleQueries::new(8);
        let mut t = 1u64;
        while samples.len() < 300 {
            let lo = base | (splitmix(&mut t) >> 32).min(u64::MAX - (1 << 18) - 2);
            let hi = lo + 2 + splitmix(&mut t) % (1 << 18);
            if !ks.range_overlaps(&u64_key(lo), &u64_key(hi)) {
                samples.push(&u64_key(lo), &u64_key(hi));
            }
        }
        // Counting filters need ~4x the memory of plain ones: 32 BPK.
        let f = CountingProteus::train(
            &ks,
            &samples,
            n as u64 * 32,
            &CountingProteusOptions::default(),
        );
        (keys, f)
    }

    #[test]
    fn counts_upper_bound_truth_on_key_windows() {
        let (keys, f) = build(3_000);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        // Windows of 20 consecutive keys: truth = 20 (plus boundary slop).
        let mut checked = 0;
        for w in sorted.chunks(20).take(50) {
            let (lo, hi) = (w[0], *w.last().unwrap());
            let est = f.count_estimate_u64(lo, hi);
            if est == u64::MAX {
                continue; // window too wide for the chosen granularity
            }
            checked += 1;
            assert!(est >= w.len() as u64, "estimate {est} < truth {}", w.len());
        }
        assert!(checked > 10, "too few enumerable windows ({checked})");
    }

    #[test]
    fn mid_gap_ranges_count_zero() {
        let (keys, f) = build(3_000);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let (_, l2) = f.design_bits();
        let granularity = 1u64 << (64 - l2).min(63);
        let mut zeros = 0;
        let mut trials = 0;
        for w in sorted.windows(2) {
            let gap = w[1] - w[0];
            // Mid-gap probe at least one granule away from both keys.
            if gap > granularity.saturating_mul(8) {
                let mid = w[0] + gap / 2;
                trials += 1;
                if f.count_estimate_u64(mid, mid + granularity / 2) == 0 {
                    zeros += 1;
                }
            }
            if trials == 200 {
                break;
            }
        }
        assert!(trials > 20, "test needs wide gaps (got {trials})");
        assert!(zeros * 10 > trials * 7, "{zeros}/{trials} mid-gap ranges counted zero");
    }

    #[test]
    fn emptiness_contract_holds() {
        let (keys, f) = build(1_000);
        for &k in keys.iter().step_by(17) {
            assert!(f.query(&u64_key(k), &u64_key(k)));
            assert!(f.count_estimate_u64(k, k) >= 1);
        }
    }

    #[test]
    fn duplicate_heavy_prefixes_accumulate() {
        // 50 keys inside one 2^16-wide cluster: a window over the cluster
        // must count at least 50.
        let mut keys: Vec<u64> = (0..50u64).map(|i| (7u64 << 40) | (i * 100)).collect();
        keys.extend((1..1000u64).map(|i| i << 44));
        let ks = KeySet::from_u64(&keys);
        let mut samples = SampleQueries::new(8);
        for i in 0..100u64 {
            let lo = (3u64 << 40) | (i << 20);
            samples.push(&u64_key(lo), &u64_key(lo + (1 << 18)));
        }
        samples.retain_empty(&ks);
        let f = CountingProteus::train(
            &ks,
            &samples,
            keys.len() as u64 * 40,
            &CountingProteusOptions::default(),
        );
        let est = f.count_estimate_u64(7 << 40, (7 << 40) | (1 << 20));
        assert!(est >= 50, "cluster count {est} < 50");
    }

    #[test]
    fn budget_exhaustion_saturates() {
        let (_, f) = build(500);
        let (_, l2) = f.design_bits();
        if l2 > 20 {
            // An astronomically wide range cannot be enumerated: saturate
            // rather than lying low.
            assert_eq!(f.count_estimate_u64(0, u64::MAX), u64::MAX);
        }
    }
}

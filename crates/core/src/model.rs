//! The Contextual Prefix FPR (CPFPR) model — §3 and §4.3 of the paper.
//!
//! The model predicts, for every candidate design of a prefix-based range
//! filter, the expected false positive rate over a sample of empty queries.
//! Everything reduces to three per-query quantities relative to the key set
//! (computed once, in [`QueryCtx`]):
//!
//! * `a = lcp(pred, lo)` — proximity of the query's lower bound to the
//!   closest key below it;
//! * `b = lcp(succ, hi)` — proximity of the upper bound to the closest key
//!   above it;
//! * `c = lcp(lo, hi)` — how wide the query itself is.
//!
//! From these: `lcp(Q, K) = max(a, b)`; the first `l`-region of Q contains a
//! key iff `max(a, min(b, c)) ≥ l`; the last iff `max(b, min(a, c)) ≥ l`.
//!
//! Per-design FPR evaluation batches queries into exponentially sized bins
//! of Bloom-probe counts (§4.3 "Calculate Configuration FPRs"), so each
//! design costs at most `k` batched evaluations regardless of sample size.

pub mod one_pbf;
pub mod proteus;
pub mod two_pbf;

use crate::keyset::KeySet;
use crate::sample::SampleQueries;

/// Saturation point for all region counts in the model. Counts beyond this
/// make the no-false-positive probability indistinguishable from zero, so
/// exact values past it are irrelevant.
pub const COUNT_SATURATION: u64 = 1 << 40;

/// Per-query context extracted once from the key set (§4.3 "Count Query
/// Prefixes"). All fields are LCP lengths in bits.
#[derive(Debug, Clone, Copy)]
pub struct QueryCtx {
    /// lcp(predecessor key, lo).
    pub a: u16,
    /// lcp(successor key, hi).
    pub b: u16,
    /// lcp(lo, hi).
    pub c: u16,
}

impl QueryCtx {
    /// lcp(Q, K): the deepest granularity at which the query is
    /// indistinguishable from the key set.
    #[inline]
    pub fn lcp_total(self) -> usize {
        self.a.max(self.b) as usize
    }

    /// Is the first `l`-bit region of Q occupied by a key?
    #[inline]
    pub fn first_occupied(self, l: usize) -> bool {
        (self.a.max(self.b.min(self.c)) as usize) >= l
    }

    /// Is the last `l`-bit region of Q occupied by a key?
    #[inline]
    pub fn last_occupied(self, l: usize) -> bool {
        (self.b.max(self.a.min(self.c)) as usize) >= l
    }

    /// Does Q fit inside a single `l`-bit region?
    #[inline]
    pub fn single_region(self, l: usize) -> bool {
        self.c as usize >= l
    }
}

/// Extract contexts for every sample query. The samples must already be
/// empty w.r.t. `keys` (see [`SampleQueries::retain_empty`]).
pub fn extract_contexts(keys: &KeySet, samples: &SampleQueries) -> Vec<QueryCtx> {
    // The paper sorts the left bounds and advances a cursor instead of
    // independent binary searches; with our flat sorted keys the binary
    // search is already cache-friendly and O(|S| log |K|) is negligible, so
    // we keep the simpler form.
    samples
        .iter()
        .map(|(lo, hi)| {
            let (a, b) = keys.neighbor_lcps(lo, hi);
            QueryCtx { a: a as u16, b: b as u16, c: crate::key::lcp_bits(lo, hi) as u16 }
        })
        .collect()
}

/// Exponential probe-count bins plus the two degenerate classes
/// (guaranteed false positives and trie-resolved queries).
///
/// Bin `i ≥ 1` holds queries needing a probe count in `[2^(i-1), 2^i)`,
/// together with the sum of counts so the batched evaluation can use the
/// bin average (§4.3).
#[derive(Debug, Clone)]
pub struct ProbeBins {
    counts: Vec<u64>,
    sums: Vec<u64>,
    /// Queries guaranteed to be false positives (lcp(Q,K) ≥ filter
    /// granularity).
    pub guaranteed: u64,
    /// Queries resolved before reaching the Bloom filter (zero probes).
    pub resolved: u64,
}

const BIN_COUNT: usize = 66;

impl Default for ProbeBins {
    fn default() -> Self {
        ProbeBins {
            counts: vec![0; BIN_COUNT],
            sums: vec![0; BIN_COUNT],
            guaranteed: 0,
            resolved: 0,
        }
    }
}

impl ProbeBins {
    /// Record a query needing `n` Bloom probes (`n = 0` means resolved).
    #[inline]
    pub fn add(&mut self, n: u64) {
        if n == 0 {
            self.resolved += 1;
            return;
        }
        let bin = 64 - n.leading_zeros() as usize; // floor(log2 n) + 1
        self.counts[bin] += 1;
        self.sums[bin] = self.sums[bin].saturating_add(n);
    }

    /// Total queries recorded (including degenerate classes).
    pub fn total(&self) -> u64 {
        self.guaranteed + self.resolved + self.counts.iter().sum::<u64>()
    }

    /// Mean probes per query across all recorded queries (guaranteed
    /// queries still probe — the structure cannot know they will hit).
    /// Used by the latency-aware design objective.
    pub fn mean_probes(&self, n_samples: u64) -> f64 {
        if n_samples == 0 {
            return 0.0;
        }
        let total: u64 = self.sums.iter().sum();
        total as f64 / n_samples as f64
    }

    /// Expected FPR given a per-probe false positive probability `p`:
    /// one batched `1 - (1-p)^avg` per non-empty bin.
    pub fn expected_fpr(&self, p: f64, n_samples: u64) -> f64 {
        if n_samples == 0 {
            return 0.0;
        }
        let mut fp = self.guaranteed as f64;
        if p >= 1.0 {
            fp += self.counts.iter().sum::<u64>() as f64;
        } else if p > 0.0 {
            let log1mp = (1.0 - p).ln();
            for i in 1..BIN_COUNT {
                if self.counts[i] > 0 {
                    let avg = self.sums[i] as f64 / self.counts[i] as f64;
                    fp += self.counts[i] as f64 * (1.0 - (avg * log1mp).exp());
                }
            }
        }
        fp / n_samples as f64
    }
}

/// Incremental per-bit scan state for one query: maintains, as the prefix
/// length grows one bit at a time, the saturating values of
/// `hi_l - lo_l` (region-count numerator), the query offset within an
/// anchor region, and its complement. This turns the per-design geometry of
/// §3.1 into O(1) work per bit.
#[derive(Debug, Clone, Copy)]
pub struct BitScan {
    /// `hi_l - lo_l`, saturating; `|Q_l| = d + 1`.
    pub d: u64,
    /// Bits `[anchor, l)` of `lo` (offset of lo in its anchor region).
    pub off_lo: u64,
    /// `2^(l-anchor) - off_lo` (distance from lo to its region end).
    pub comp_lo: u64,
    /// Bits `[anchor, l)` of `hi`.
    pub off_hi: u64,
}

impl BitScan {
    /// Start a scan anchored at bit `anchor` (the trie depth / l1).
    /// `d` must be seeded with `hi_anchor - lo_anchor`; use
    /// [`BitScan::seed`].
    pub fn seed(lo: &[u8], hi: &[u8], anchor: usize) -> Self {
        let d = crate::key::prefix_count(lo, hi, anchor, COUNT_SATURATION) - 1;
        BitScan { d, off_lo: 0, comp_lo: 1, off_hi: 0 }
    }

    /// Advance past bit `l` (0-indexed): incorporate `lo`'s and `hi`'s bit
    /// `l` into all counters.
    #[inline]
    pub fn step(&mut self, lo_bit: bool, hi_bit: bool) {
        let lo_b = lo_bit as u64;
        let hi_b = hi_bit as u64;
        self.d = (self.d.saturating_mul(2) + hi_b - lo_b).min(COUNT_SATURATION);
        self.off_lo = (self.off_lo.saturating_mul(2) + lo_b).min(COUNT_SATURATION);
        self.comp_lo = (self.comp_lo.saturating_mul(2) - lo_b).min(COUNT_SATURATION);
        self.off_hi = (self.off_hi.saturating_mul(2) + hi_b).min(COUNT_SATURATION);
    }

    /// `|Q_l|` at the current position.
    #[inline]
    pub fn regions(&self) -> u64 {
        (self.d + 1).min(COUNT_SATURATION)
    }

    /// `|L|`: l2-prefixes of Q inside the first anchor region.
    #[inline]
    pub fn left_count(&self) -> u64 {
        self.comp_lo.min(self.regions())
    }

    /// `|R|`: l2-prefixes of Q inside the last anchor region.
    #[inline]
    pub fn right_count(&self) -> u64 {
        (self.off_hi + 1).min(self.regions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{end_region_counts, get_bit, prefix_count, u64_key};

    #[test]
    fn ctx_occupancy_logic() {
        // Key at lcp 40 below lo, key at lcp 10 above hi, narrow query (c=50).
        let ctx = QueryCtx { a: 40, b: 10, c: 50 };
        assert_eq!(ctx.lcp_total(), 40);
        assert!(ctx.first_occupied(40));
        assert!(!ctx.first_occupied(41));
        // Last region occupied through the pred key when Q is narrow:
        // min(a, c) = 40 >= l for l <= 40.
        assert!(ctx.last_occupied(40));
        assert!(!ctx.last_occupied(41));
        // Wide query: the pred key no longer reaches the last region.
        let wide = QueryCtx { a: 40, b: 10, c: 5 };
        assert!(wide.first_occupied(40));
        assert!(!wide.last_occupied(11));
        assert!(wide.last_occupied(10));
    }

    #[test]
    fn extract_contexts_matches_manual() {
        let keys = KeySet::from_u64(&[1000, 2000]);
        let samples = SampleQueries::from_u64(&[(1200, 1300)]);
        let ctxs = extract_contexts(&keys, &samples);
        assert_eq!(ctxs.len(), 1);
        let ctx = ctxs[0];
        assert_eq!(ctx.a as usize, crate::key::lcp_bits(&u64_key(1000), &u64_key(1200)));
        assert_eq!(ctx.b as usize, crate::key::lcp_bits(&u64_key(2000), &u64_key(1300)));
        assert_eq!(ctx.c as usize, crate::key::lcp_bits(&u64_key(1200), &u64_key(1300)));
    }

    #[test]
    fn bins_batch_correctly() {
        let mut bins = ProbeBins::default();
        bins.add(0); // resolved
        bins.add(1);
        bins.add(3);
        bins.add(3);
        bins.guaranteed += 1;
        assert_eq!(bins.total(), 5);
        // p = 0.5: expected = [1 (guaranteed) + (1-0.5^1) + 2*(1-0.5^3)] / 5.
        let got = bins.expected_fpr(0.5, 5);
        let want = (1.0 + 0.5 + 2.0 * (1.0 - 0.125)) / 5.0;
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        // Degenerate p values.
        assert_eq!(bins.expected_fpr(0.0, 5), 1.0 / 5.0);
        assert_eq!(bins.expected_fpr(1.0, 5), 4.0 / 5.0);
    }

    #[test]
    fn bin_boundaries() {
        let mut bins = ProbeBins::default();
        // n = 1 -> bin 1; n in [2,3] -> bin 2; n in [4,7] -> bin 3.
        bins.add(1);
        bins.add(2);
        bins.add(3);
        bins.add(4);
        assert_eq!(bins.counts[1], 1);
        assert_eq!(bins.counts[2], 2);
        assert_eq!(bins.counts[3], 1);
        assert_eq!(bins.sums[2], 5);
    }

    #[test]
    fn bitscan_matches_direct_computation() {
        let pairs = [
            (100u64, 5_000u64),
            (0, u64::MAX),
            (u64::MAX - 3, u64::MAX),
            (0x7FFF_FFFF_FFFF_FF00, 0x8000_0000_0000_00FF),
            (42, 42),
        ];
        for (lo_v, hi_v) in pairs {
            let (lo, hi) = (u64_key(lo_v), u64_key(hi_v));
            for anchor in [0usize, 8, 24, 32] {
                let mut scan = BitScan::seed(&lo, &hi, anchor);
                for l in anchor + 1..=64 {
                    scan.step(get_bit(&lo, l - 1), get_bit(&hi, l - 1));
                    let want_q = prefix_count(&lo, &hi, l, COUNT_SATURATION);
                    assert_eq!(
                        scan.regions(),
                        want_q,
                        "q lo={lo_v:#x} hi={hi_v:#x} a={anchor} l={l}"
                    );
                    if anchor > 0 {
                        let (want_l, want_r) =
                            end_region_counts(&lo, &hi, anchor, l, COUNT_SATURATION);
                        // end_region_counts collapses to |Q_l| when Q fits in
                        // one anchor region; BitScan reports raw L/R, which
                        // also equal |Q_l| in that case.
                        assert_eq!(scan.left_count(), want_l, "L anchor={anchor} l={l}");
                        assert_eq!(scan.right_count(), want_r, "R anchor={anchor} l={l}");
                    }
                }
            }
        }
    }
}

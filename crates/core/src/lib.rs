//! # proteus-core
//!
//! A from-scratch reproduction of **Proteus: A Self-Designing Range Filter**
//! (Knorr, Lemaire, Lim et al., SIGMOD 2022).
//!
//! Proteus answers approximate range-emptiness queries: given a key set `K`
//! and a query `[lo, hi]`, it returns `false` only when `K ∩ [lo, hi] = ∅`
//! (no false negatives, tunable false positives). Its design — a
//! uniform-depth succinct trie over `l1`-bit prefixes combined with a Bloom
//! filter over `l2`-bit prefixes — is chosen per workload by the Contextual
//! Prefix FPR (CPFPR) model from a sample of empty queries.
//!
//! ## Quick start
//!
//! ```
//! use proteus_core::{KeySet, SampleQueries, Proteus, ProteusOptions, key::u64_key};
//!
//! // The data to protect and a sample of (empty) queries like the workload's.
//! let keys = KeySet::from_u64(&[100, 2_000, 30_000, 400_000]);
//! let mut samples = SampleQueries::from_u64(&[(150, 170), (5_000, 5_100)]);
//! samples.retain_empty(&keys);
//!
//! // Self-design within a 10 bits-per-key budget.
//! let filter = Proteus::train(&keys, &samples, 10 * keys.len() as u64,
//!                             &ProteusOptions::default());
//!
//! assert!(filter.query_u64(2_000, 2_000));      // member: always positive
//! assert!(filter.query_u64(90, 110));           // overlapping range: positive
//! ```
//!
//! ## Crate layout
//!
//! * [`key`] — canonical keys and bit-level prefix arithmetic;
//! * [`keyset`] — sorted key set + the statistics Algorithm 1 extracts;
//! * [`sample`] — sample queries and Chernoff-bound sizing (Table 1);
//! * [`model`] — the CPFPR model for 1PBF (Eq. 1), 2PBF (Eq. 4) and
//!   Proteus (Eq. 5 / Algorithm 1);
//! * [`prefix_bf`] / [`trie`] — the two structural components;
//! * [`proteus`], [`one_pbf`], [`two_pbf`] — the three Protean Range
//!   Filters evaluated in the paper.

#![warn(missing_docs)]

pub mod codec;
pub mod counting;
pub mod key;
pub mod keyset;
pub mod model;
pub mod one_pbf;
pub mod prefix_bf;
pub mod proteus;
pub mod sample;
pub mod sketch;
pub mod sync;
pub mod trie;
pub mod two_pbf;

pub use codec::{CodecError, FilterKind};
pub use counting::{CountingProteus, CountingProteusOptions};
pub use keyset::KeySet;
pub use one_pbf::{OnePbf, OnePbfOptions};
pub use proteus::{Proteus, ProteusOptions, DEFAULT_PROBE_CAP};
pub use sample::SampleQueries;
pub use sketch::QuerySketch;
pub use trie::ProteusTrie;
pub use two_pbf::{TwoPbf, TwoPbfFilterOptions};

/// The common interface all range filters in this workspace implement —
/// Proteus, 1PBF, 2PBF here; SuRF and Rosetta in `proteus-filters`. The LSM
/// harness plugs any of them into its SST files through this trait.
pub trait RangeFilter: Send + Sync {
    /// May the closed range `[lo, hi]` contain a key? `false` is exact
    /// (guaranteed empty); `true` may be a false positive. Bounds are
    /// canonical fixed-width keys (see [`key`]).
    fn may_contain_range(&self, lo: &[u8], hi: &[u8]) -> bool;

    /// Point-query form.
    fn may_contain(&self, key: &[u8]) -> bool {
        self.may_contain_range(key, key)
    }

    /// Memory footprint of the filter in bits.
    fn size_bits(&self) -> u64;

    /// Human-readable name including the instantiated design.
    fn name(&self) -> String;

    /// Serialize this filter for the persistent SST filter block: the
    /// stable wire tag plus the kind-specific payload (no envelope — the
    /// caller seals it with magic, version and checksum; see
    /// [`codec::seal`]). `None` means the filter has no persistent form
    /// (e.g. ARF): its SST gets no filter block, and after a reopen that
    /// file serves unfiltered probes (recovery never retrains filters).
    fn encode_payload(&self) -> Option<(FilterKind, Vec<u8>)> {
        None
    }
}

/// A pass-through filter: every query may contain keys — the no-filter
/// baseline in which every Seek pays the I/O. Lives in `proteus-core` so
/// the persistent filter codec can decode unknown future filter kinds into
/// it as the safe degradation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFilter;

impl RangeFilter for NoFilter {
    fn may_contain_range(&self, _lo: &[u8], _hi: &[u8]) -> bool {
        true
    }
    fn size_bits(&self) -> u64 {
        0
    }
    fn name(&self) -> String {
        "NoFilter".to_string()
    }
    fn encode_payload(&self) -> Option<(FilterKind, Vec<u8>)> {
        Some((FilterKind::NoFilter, Vec::new()))
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use key::u64_key;

    #[test]
    fn trait_objects_dispatch() {
        let keys = KeySet::from_u64(&[10, 20, 30]);
        let samples = SampleQueries::from_u64(&[(12, 14), (40, 50)]);
        let filters: Vec<Box<dyn RangeFilter>> = vec![
            Box::new(Proteus::train(&keys, &samples, 512, &ProteusOptions::default())),
            Box::new(OnePbf::train(&keys, &samples, 512, &OnePbfOptions::default())),
            Box::new(TwoPbf::train(&keys, &samples, 512, &TwoPbfFilterOptions::default())),
        ];
        for f in &filters {
            assert!(f.may_contain(&u64_key(20)), "{}", f.name());
            assert!(f.may_contain_range(&u64_key(25), &u64_key(35)), "{}", f.name());
            assert!(f.size_bits() > 0, "{}", f.name());
            assert!(!f.name().is_empty());
        }
    }
}

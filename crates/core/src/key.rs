//! Bit-level prefix arithmetic over canonical keys.
//!
//! Every filter in this workspace canonicalizes keys to fixed-width
//! big-endian byte arrays: `u64` keys become 8 bytes (preserving integer
//! order), variable-length strings are padded with trailing NUL bytes to the
//! filter's width (preserving lexicographic order, §7.1 of the paper). All
//! CPFPR quantities — LCPs, region counts |Q_l|, end-region sizes |L| and
//! |R| — reduce to the saturating big-integer helpers in this module, which
//! work unchanged for 64-bit integers and 1440-bit strings.
//!
//! Bit indexing is big-endian: bit 0 is the most significant bit of byte 0,
//! so "the first `l` bits" of a key is its length-`l` prefix in the paper's
//! sense.

/// Canonicalize a `u64` into its 8-byte big-endian form (order-preserving).
#[inline]
pub fn u64_key(x: u64) -> [u8; 8] {
    x.to_be_bytes()
}

/// Read back a canonical 8-byte key as a `u64`.
#[inline]
pub fn key_u64(k: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&k[..8]);
    u64::from_be_bytes(b)
}

/// Pad `s` with trailing NUL bytes to `width` bytes (§7.1: "padding short
/// keys and queries with trailing null bytes to a chosen prefix length").
/// Truncates if `s` is longer than `width`.
pub fn pad_key(s: &[u8], width: usize) -> Vec<u8> {
    let mut v = vec![0u8; width];
    let n = s.len().min(width);
    v[..n].copy_from_slice(&s[..n]);
    v
}

/// Length in bits of the longest common prefix of two equal-width keys.
pub fn lcp_bits(a: &[u8], b: &[u8]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        if x != y {
            return i * 8 + (x ^ y).leading_zeros() as usize;
        }
    }
    a.len() * 8
}

/// Length in bytes of the longest common prefix.
pub fn lcp_bytes(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Zero all bits at positions ≥ `l` (i.e. keep only the `l`-bit prefix).
pub fn mask_tail(buf: &mut [u8], l: usize) {
    let full = l / 8;
    let rem = l % 8;
    if full < buf.len() {
        if rem != 0 {
            buf[full] &= 0xFFu8 << (8 - rem);
            for b in &mut buf[full + 1..] {
                *b = 0;
            }
        } else {
            for b in &mut buf[full..] {
                *b = 0;
            }
        }
    }
}

/// Set all bits at positions ≥ `l` to one (the largest key sharing the
/// `l`-bit prefix).
pub fn set_tail_ones(buf: &mut [u8], l: usize) {
    let full = l / 8;
    let rem = l % 8;
    if full < buf.len() {
        if rem != 0 {
            buf[full] |= 0xFFu8 >> rem;
            for b in &mut buf[full + 1..] {
                *b = 0xFF;
            }
        } else {
            for b in &mut buf[full..] {
                *b = 0xFF;
            }
        }
    }
}

/// Add one at bit position `l - 1` — i.e. step to the next `l`-bit prefix —
/// leaving bits ≥ `l` untouched (callers keep them zeroed). Returns `true`
/// on overflow past the all-ones prefix.
pub fn increment_prefix(buf: &mut [u8], l: usize) -> bool {
    if l == 0 {
        return true;
    }
    let mut bit = l - 1;
    loop {
        let byte = bit / 8;
        let mask = 0x80u8 >> (bit % 8);
        if buf[byte] & mask == 0 {
            buf[byte] |= mask;
            return false;
        }
        buf[byte] &= !mask;
        if bit == 0 {
            return true;
        }
        bit -= 1;
    }
}

/// Value of bit `i` of the key.
#[inline]
pub fn get_bit(buf: &[u8], i: usize) -> bool {
    (buf[i / 8] >> (7 - i % 8)) & 1 == 1
}

/// The value of bits `[from, to)` as an integer, saturating at `cap`.
///
/// Used for the in-region offsets that determine the paper's end-region
/// sizes |L| and |R| (§3.1): bits `l1..l2` of a bound give its position
/// within its `l1`-region at `l2` granularity.
pub fn bit_slice(buf: &[u8], from: usize, to: usize, cap: u64) -> u64 {
    debug_assert!(from <= to && to <= buf.len() * 8);
    let mut acc: u64 = 0;
    let mut i = from;
    // Byte-aligned fast path once aligned.
    while i < to {
        if i.is_multiple_of(8) && i + 8 <= to {
            if acc > (cap >> 8) {
                return cap;
            }
            acc = (acc << 8) | buf[i / 8] as u64;
            i += 8;
        } else {
            if acc > (cap >> 1) {
                return cap;
            }
            acc = (acc << 1) | get_bit(buf, i) as u64;
            i += 1;
        }
        if acc >= cap {
            // acc can only grow (shift-or); once at cap it stays saturated.
            // Continue scanning is pointless.
            return cap;
        }
    }
    acc.min(cap)
}

/// Number of distinct `l`-bit prefixes intersecting `[lo, hi]` — the
/// paper's |Q_l| — saturating at `cap`. Assumes `lo <= hi`.
///
/// Computed as `hi_l - lo_l + 1` by byte-wise big-integer subtraction that
/// saturates early, so it is exact for arbitrarily wide keys.
pub fn prefix_count(lo: &[u8], hi: &[u8], l: usize, cap: u64) -> u64 {
    debug_assert_eq!(lo.len(), hi.len());
    debug_assert!(lo <= hi);
    if l == 0 {
        return 1;
    }
    let cap = cap.max(1) as i128;
    let full = l / 8;
    let rem = l % 8;
    let mut d: i128 = 0;
    for i in 0..full {
        d = d * 256 + (hi[i] as i128 - lo[i] as i128);
        if d > cap {
            return cap as u64;
        }
    }
    if rem != 0 {
        let mask = 0xFFu8 << (8 - rem);
        d = (d << rem)
            + (((hi[full] & mask) >> (8 - rem)) as i128 - ((lo[full] & mask) >> (8 - rem)) as i128);
        if d > cap {
            return cap as u64;
        }
    }
    debug_assert!(d >= 0, "lo > hi");
    ((d + 1) as u64).min(cap as u64)
}

/// Sizes of the paper's end regions at the (l1, l2) design point:
///
/// * `|L|` — l2-prefixes of Q inside the *first* l1-region of Q;
/// * `|R|` — l2-prefixes of Q inside the *last* l1-region of Q.
///
/// When Q spans a single l1-region both equal |Q_l2|. Saturates at `cap`.
pub fn end_region_counts(lo: &[u8], hi: &[u8], l1: usize, l2: usize, cap: u64) -> (u64, u64) {
    debug_assert!(l1 < l2);
    let q_l2 = prefix_count(lo, hi, l2, cap);
    if lcp_bits(lo, hi) >= l1 {
        // Single l1-region.
        return (q_l2, q_l2);
    }
    // |L| = 2^(l2-l1) - offset(lo) — computed as a running complement so it
    // stays exact under saturation (the direct subtraction of two saturated
    // quantities would collapse to zero); |R| = offset(hi) + 1.
    let mut comp_lo: u64 = 1;
    let mut off_hi: u64 = 0;
    for bit in l1..l2 {
        comp_lo = (comp_lo.saturating_mul(2) - get_bit(lo, bit) as u64).min(cap);
        off_hi = (off_hi.saturating_mul(2) + get_bit(hi, bit) as u64).min(cap);
    }
    (comp_lo.min(q_l2), off_hi.saturating_add(1).min(q_l2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_canonical_preserves_order() {
        let mut vals = [0u64, 1, 255, 256, 1 << 32, u64::MAX - 1, u64::MAX];
        vals.sort_unstable();
        let keys: Vec<[u8; 8]> = vals.iter().map(|&v| u64_key(v)).collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
        for (&v, k) in vals.iter().zip(&keys) {
            assert_eq!(key_u64(k), v);
        }
    }

    #[test]
    fn lcp_bits_reference() {
        assert_eq!(lcp_bits(&u64_key(0), &u64_key(0)), 64);
        assert_eq!(lcp_bits(&u64_key(0), &u64_key(1)), 63);
        assert_eq!(lcp_bits(&u64_key(0), &u64_key(1 << 63)), 0);
        assert_eq!(lcp_bits(&u64_key(0xFF00), &u64_key(0xFF01)), 63);
        assert_eq!(lcp_bits(&u64_key(0xAB00), &u64_key(0xABFF)), 56);
        // Cross-check with a u64 reference for random pairs.
        let mut s = 99u64;
        for _ in 0..500 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = s;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = s;
            let want = if a == b { 64 } else { (a ^ b).leading_zeros() as usize };
            assert_eq!(lcp_bits(&u64_key(a), &u64_key(b)), want);
        }
    }

    #[test]
    fn mask_and_tail_ops() {
        let mut k = u64_key(0xFFFF_FFFF_FFFF_FFFF);
        mask_tail(&mut k, 12);
        assert_eq!(key_u64(&k), 0xFFF0_0000_0000_0000);
        set_tail_ones(&mut k, 12);
        assert_eq!(key_u64(&k), u64::MAX);
        let mut k = u64_key(0xABCD_0000_0000_0000);
        mask_tail(&mut k, 16);
        assert_eq!(key_u64(&k), 0xABCD_0000_0000_0000);
        set_tail_ones(&mut k, 64);
        assert_eq!(key_u64(&k), 0xABCD_0000_0000_0000);
        mask_tail(&mut k, 0);
        assert_eq!(key_u64(&k), 0);
    }

    #[test]
    fn increment_prefix_counts_regions() {
        // Iterating 4-bit prefixes from 0 should visit all 16 and overflow.
        let mut buf = [0u8; 2];
        let mut seen = vec![buf[0] >> 4];
        loop {
            if increment_prefix(&mut buf, 4) {
                break;
            }
            seen.push(buf[0] >> 4);
        }
        assert_eq!(seen, (0..16).collect::<Vec<u8>>());
    }

    #[test]
    fn increment_prefix_carries_across_bytes() {
        let mut k = u64_key(0x00FF_FFFF_0000_0000);
        assert!(!increment_prefix(&mut k, 32));
        assert_eq!(key_u64(&k), 0x0100_0000_0000_0000);
        let mut k = u64_key(u64::MAX);
        assert!(increment_prefix(&mut k, 64));
        let mut k = [0u8; 8];
        assert!(increment_prefix(&mut k, 0));
    }

    #[test]
    fn bit_slice_extracts_values() {
        let k = u64_key(0xABCD_EF01_2345_6789);
        assert_eq!(bit_slice(&k, 0, 16, u64::MAX), 0xABCD);
        assert_eq!(bit_slice(&k, 8, 24, u64::MAX), 0xCDEF);
        assert_eq!(bit_slice(&k, 4, 12, u64::MAX), 0xBC);
        assert_eq!(bit_slice(&k, 0, 64, u64::MAX), 0xABCD_EF01_2345_6789);
        assert_eq!(bit_slice(&k, 60, 64, u64::MAX), 0x9);
        assert_eq!(bit_slice(&k, 30, 30, u64::MAX), 0);
        // Saturation.
        assert_eq!(bit_slice(&k, 0, 64, 1000), 1000);
    }

    #[test]
    fn prefix_count_matches_u64_reference() {
        let cases = [
            (0u64, 0u64, 64usize),
            (0, 1, 64),
            (0, 1, 63),
            (100, 200, 64),
            (100, 200, 57),
            (0x7FFF_FFFF_FFFF_FFFF, 0x8000_0000_0000_0000, 64),
            (0x7FFF_FFFF_FFFF_FFFF, 0x8000_0000_0000_0000, 1),
            (u64::MAX - 5, u64::MAX, 64),
            (0, u64::MAX, 8),
        ];
        for (lo, hi, l) in cases {
            let want = if l == 0 {
                1
            } else {
                let shift = 64 - l;
                (hi >> shift) - (lo >> shift) + 1
            };
            let got = prefix_count(&u64_key(lo), &u64_key(hi), l, u64::MAX);
            assert_eq!(got, want, "lo={lo:#x} hi={hi:#x} l={l}");
        }
    }

    #[test]
    fn prefix_count_saturates() {
        let lo = u64_key(0);
        let hi = u64_key(u64::MAX);
        assert_eq!(prefix_count(&lo, &hi, 64, 1 << 20), 1 << 20);
        assert_eq!(prefix_count(&lo, &hi, 0, 1 << 20), 1);
        // The 0x7FFF..->0x8000.. adjacent pair stays exact despite a 64-bit
        // wide differing window.
        let lo = u64_key(0x7FFF_FFFF_FFFF_FFFF);
        let hi = u64_key(0x8000_0000_0000_0000);
        assert_eq!(prefix_count(&lo, &hi, 64, 1 << 20), 2);
    }

    #[test]
    fn prefix_count_on_wide_keys() {
        // 32-byte keys: the same arithmetic must hold.
        let mut lo = vec![0u8; 32];
        let mut hi = vec![0u8; 32];
        lo[31] = 10;
        hi[31] = 250;
        assert_eq!(prefix_count(&lo, &hi, 256, u64::MAX), 241);
        assert_eq!(prefix_count(&lo, &hi, 248, u64::MAX), 1);
        hi[0] = 1; // astronomically large range
        assert_eq!(prefix_count(&lo, &hi, 256, 1 << 30), 1 << 30);
    }

    #[test]
    fn end_regions_single_region() {
        // Q within one l1-region: both ends equal |Q_l2|.
        let lo = u64_key(0xAB00);
        let hi = u64_key(0xAB0F);
        let (l, r) = end_region_counts(&lo, &hi, 32, 64, u64::MAX);
        assert_eq!(l, 16);
        assert_eq!(r, 16);
    }

    #[test]
    fn end_regions_split() {
        // lo = ...0xFE, hi = next l1-region start + 2: |L| = 2 (0xFE, 0xFF),
        // |R| = 3 (0x00..0x02).
        let lo = u64_key(0x01FE);
        let hi = u64_key(0x0202);
        let (l, r) = end_region_counts(&lo, &hi, 56, 64, u64::MAX);
        assert_eq!(l, 2);
        assert_eq!(r, 3);
    }

    #[test]
    fn end_regions_clamped_by_query() {
        // Wide l1 regions but a narrow query spanning two of them.
        let lo = u64_key(0x0000_0000_FFFF_FFFE);
        let hi = u64_key(0x0000_0001_0000_0001);
        let (l, r) = end_region_counts(&lo, &hi, 32, 64, u64::MAX);
        assert_eq!(l, 2);
        assert_eq!(r, 2);
    }

    #[test]
    fn pad_key_preserves_order_for_strings() {
        let a = pad_key(b"apple", 16);
        let b = pad_key(b"applesauce", 16);
        let c = pad_key(b"banana", 16);
        assert!(a < b && b < c);
        assert_eq!(a.len(), 16);
        // Truncation beyond width.
        let t = pad_key(b"0123456789", 4);
        assert_eq!(&t, b"0123");
    }
}

//! Sample query handling and the paper's Chernoff-bound sample sizing
//! (§4.3 "Sample Size", Table 1).
//!
//! Proteus configures itself from a set of *empty* sample range queries.
//! [`SampleQueries`] stores them canonically and can certify emptiness
//! against a [`KeySet`]. The bound helpers reproduce Table 1:
//! `Pr(p ∈ [p̂-δ, p̂+δ]) ≥ 1 - min(2e^(-2Nδ²), e^(-Nδ²/(2p)) + e^(-Nδ²/(3p)))`.

use crate::key::u64_key;
use crate::keyset::KeySet;

/// A set of closed-interval sample queries in canonical key form.
#[derive(Debug, Clone, Default)]
pub struct SampleQueries {
    lo: Vec<u8>,
    hi: Vec<u8>,
    width: usize,
    n: usize,
}

impl SampleQueries {
    /// An empty sample for `width`-byte canonical keys.
    pub fn new(width: usize) -> Self {
        SampleQueries { lo: Vec::new(), hi: Vec::new(), width, n: 0 }
    }

    /// Build from canonical byte bounds.
    pub fn from_bounds(bounds: &[(Vec<u8>, Vec<u8>)], width: usize) -> Self {
        let mut s = Self::new(width);
        for (lo, hi) in bounds {
            s.push(lo, hi);
        }
        s
    }

    /// Build from `u64` closed ranges.
    pub fn from_u64(ranges: &[(u64, u64)]) -> Self {
        let mut s = Self::new(8);
        for &(lo, hi) in ranges {
            s.push(&u64_key(lo), &u64_key(hi));
        }
        s
    }

    /// Append one closed-range query (bounds must be canonical and
    /// ordered).
    pub fn push(&mut self, lo: &[u8], hi: &[u8]) {
        assert_eq!(lo.len(), self.width);
        assert_eq!(hi.len(), self.width);
        assert!(lo <= hi, "query bounds out of order");
        self.lo.extend_from_slice(lo);
        self.hi.extend_from_slice(hi);
        self.n += 1;
    }

    /// Number of sample queries.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty sample.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Canonical key width in bytes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Lower bound of the `i`-th query.
    pub fn lo(&self, i: usize) -> &[u8] {
        &self.lo[i * self.width..(i + 1) * self.width]
    }

    /// Upper bound of the `i`-th query.
    pub fn hi(&self, i: usize) -> &[u8] {
        &self.hi[i * self.width..(i + 1) * self.width]
    }

    /// Iterate the queries as `(lo, hi)` slices.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> + '_ {
        (0..self.n).map(|i| (self.lo(i), self.hi(i)))
    }

    /// Drop every sample that intersects the key set, keeping only genuine
    /// empty queries (the model's input contract). Returns the number
    /// removed.
    pub fn retain_empty(&mut self, keys: &KeySet) -> usize {
        let mut new_lo = Vec::with_capacity(self.lo.len());
        let mut new_hi = Vec::with_capacity(self.hi.len());
        let mut kept = 0usize;
        for i in 0..self.n {
            if !keys.range_overlaps(self.lo(i), self.hi(i)) {
                new_lo.extend_from_slice(self.lo(i));
                new_hi.extend_from_slice(self.hi(i));
                kept += 1;
            }
        }
        let removed = self.n - kept;
        self.lo = new_lo;
        self.hi = new_hi;
        self.n = kept;
        removed
    }
}

/// The additive two-term Chernoff tail `e^(-Nδ²/(2p)) + e^(-Nδ²/(3p))`
/// maximized over `p ≤ p_max` (the paper evaluates at `p = 0.1`); this is
/// the right-hand side of Table 1.
pub fn chernoff_tail(n_delta_sq: f64, p_max: f64) -> f64 {
    // Both terms increase with p, so the bound is attained at p = p_max.
    (-n_delta_sq / (2.0 * p_max)).exp() + (-n_delta_sq / (3.0 * p_max)).exp()
}

/// Probability that the estimated FPR deviates from the truth by more than
/// δ, for `n` samples and true FPR at most `p_max`:
/// `min(2e^(-2Nδ²), chernoff_tail)`.
pub fn fpr_estimate_error_bound(n: usize, delta: f64, p_max: f64) -> f64 {
    let nd2 = n as f64 * delta * delta;
    (2.0 * (-2.0 * nd2).exp()).min(chernoff_tail(nd2, p_max))
}

/// Smallest sample size guaranteeing `Pr(|p̂ - p| > δ) ≤ err` for FPRs up
/// to `p_max` — how a user should size the sample queue.
pub fn required_sample_size(delta: f64, p_max: f64, err: f64) -> usize {
    let mut n = 1usize;
    while fpr_estimate_error_bound(n, delta, p_max) > err {
        n *= 2;
        if n > 1 << 40 {
            return n;
        }
    }
    // Binary search the exact threshold inside (n/2, n].
    let (mut lo, mut hi) = (n / 2, n);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if fpr_estimate_error_bound(mid, delta, p_max) > err {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        // Table 1 of the paper: bounds for Nδ² ∈ {1,...,5}, p ≤ 0.1. Rows
        // 2-5 match e^(-Nδ²/(2p)) + e^(-Nδ²/(3p)) at p = 0.1 exactly; the
        // printed row 1 (0.00425) computes to 0.0425 — the paper appears to
        // have dropped a factor of ten there (see EXPERIMENTS.md), so we
        // assert the formula's value.
        let expected =
            [(1.0, 0.0425), (2.0, 0.00132), (3.0, 0.00005), (4.0, 0.000002), (5.0, 0.0000001)];
        for (nd2, bound) in expected {
            let got = chernoff_tail(nd2, 0.1);
            // Table 1 rounds up; we must be at or below each printed bound
            // and within rounding distance of it.
            assert!(got <= bound * 1.01, "Nδ²={nd2}: {got} > {bound}");
            assert!(got > bound * 0.3, "Nδ²={nd2}: {got} ≪ {bound}");
        }
    }

    #[test]
    fn paper_sample_size_examples() {
        // §4.3: 10,000 queries at δ = 0.01 give Nδ² = 1;
        //        50,000 queries at δ = 0.01 give Nδ² = 5 -> error ≤ 1e-7.
        assert!(fpr_estimate_error_bound(10_000, 0.01, 0.1) <= 0.0425 * 1.01);
        assert!(fpr_estimate_error_bound(50_000, 0.01, 0.1) <= 0.0000001 * 1.01);
    }

    #[test]
    fn required_sample_size_is_consistent() {
        let n = required_sample_size(0.01, 0.1, 0.0425);
        assert!(n <= 10_000, "paper's 10K example should satisfy the bound, got {n}");
        assert!(fpr_estimate_error_bound(n, 0.01, 0.1) <= 0.0425);
        if n > 1 {
            assert!(fpr_estimate_error_bound(n - 1, 0.01, 0.1) > 0.0425);
        }
    }

    #[test]
    fn retain_empty_filters_overlapping_samples() {
        let keys = KeySet::from_u64(&[100, 200, 300]);
        let mut s = SampleQueries::from_u64(&[
            (10, 20),   // empty
            (150, 180), // empty
            (190, 210), // overlaps 200
            (300, 400), // overlaps 300
            (301, 400), // empty
        ]);
        let removed = s.retain_empty(&keys);
        assert_eq!(removed, 2);
        assert_eq!(s.len(), 3);
        let got: Vec<(u64, u64)> =
            s.iter().map(|(l, h)| (crate::key::key_u64(l), crate::key::key_u64(h))).collect();
        assert_eq!(got, vec![(10, 20), (150, 180), (301, 400)]);
    }

    #[test]
    fn bounds_accessors() {
        let s = SampleQueries::from_u64(&[(1, 5), (7, 7)]);
        assert_eq!(s.len(), 2);
        assert_eq!(crate::key::key_u64(s.lo(1)), 7);
        assert_eq!(crate::key::key_u64(s.hi(0)), 5);
        assert_eq!(s.width(), 8);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_inverted_bounds() {
        let mut s = SampleQueries::new(8);
        s.push(&u64_key(10), &u64_key(5));
    }
}

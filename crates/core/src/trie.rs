//! The Proteus trie: a uniform-depth FST over key-prefix branches (§4.1).
//!
//! Unlike SuRF, every branch extends to the chosen trie depth; a branch that
//! becomes unique earlier is truncated in the LOUDS structure and its
//! remaining bytes are stored explicitly ("rather than using the LOUDS-DS
//! trie encoding", §4.1). The trie therefore represents exactly the set of
//! depth-byte key prefixes, K_l1.

use crate::codec::{ByteReader, CodecError, WireWrite};
use crate::key::lcp_bytes;
use crate::keyset::KeySet;
use proteus_succinct::{Fst, FstBuilder, ValueStore, Visit};

/// Uniform-depth succinct trie over the `depth_bytes`-byte prefixes of a
/// key set.
#[derive(Debug, Clone)]
pub struct ProteusTrie {
    fst: Fst,
    depth_bytes: usize,
}

impl ProteusTrie {
    /// Build from the sorted key set. `depth_bytes` must be ≥ 1 and at most
    /// the key width.
    pub fn build(keys: &KeySet, depth_bytes: usize) -> Self {
        assert!(depth_bytes >= 1 && depth_bytes <= keys.width());
        let d = depth_bytes;
        // Branches: each key truncated at min(uniqueness depth, d) bytes;
        // keys sharing a d-byte prefix collapse into one branch.
        let n = keys.len();
        let mut branches: Vec<&[u8]> = Vec::with_capacity(n);
        let mut suffixes: Vec<&[u8]> = Vec::with_capacity(n);
        for i in 0..n {
            let key = keys.key(i);
            let prev_lcp = if i > 0 { lcp_bytes(keys.key(i - 1), key) } else { 0 };
            let next_lcp = if i + 1 < n { lcp_bytes(key, keys.key(i + 1)) } else { 0 };
            let ub = (prev_lcp.max(next_lcp) + 1).min(d);
            if ub == d && prev_lcp >= d {
                // Same d-byte prefix as the previous key: already represented.
                continue;
            }
            branches.push(&key[..ub]);
            suffixes.push(&key[ub..d]);
        }
        let (mut fst, slot_to_idx) = FstBuilder::new().build(&branches);
        // Reorder suffixes into slot order.
        let by_slot: Vec<&[u8]> = slot_to_idx.iter().map(|&i| suffixes[i as usize]).collect();
        fst.set_values(ValueStore::from_byte_suffixes(&by_slot));
        ProteusTrie { fst, depth_bytes }
    }

    /// Trie depth in bytes.
    pub fn depth_bytes(&self) -> usize {
        self.depth_bytes
    }

    /// Trie depth in bits (`l1`).
    pub fn depth_bits(&self) -> usize {
        self.depth_bytes * 8
    }

    /// Number of distinct branches (= |K_l1|).
    pub fn len(&self) -> usize {
        self.fst.len()
    }

    /// True for a trie with no branches.
    pub fn is_empty(&self) -> bool {
        self.fst.is_empty()
    }

    /// Memory footprint in bits.
    pub fn size_bits(&self) -> u64 {
        self.fst.size_bits()
    }

    /// Serialize depth + the underlying FST.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u32(self.depth_bytes as u32);
        self.fst.encode_into(out);
    }

    /// Decode a payload written by [`ProteusTrie::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<ProteusTrie, CodecError> {
        let depth_bytes = r.u32()? as usize;
        if depth_bytes == 0 {
            return Err(CodecError::Invalid("trie depth zero"));
        }
        let fst = Fst::decode_from(r)?;
        Ok(ProteusTrie { fst, depth_bytes })
    }

    /// Visit every stored `depth_bytes`-byte key prefix within the closed
    /// window `[lo, hi]` (canonical full-width bounds; only their first
    /// `depth_bytes` bytes matter), in ascending order. The visitor receives
    /// the reconstructed full prefix. Returns `true` if the visitor stopped.
    pub fn visit_leaves<F>(&self, lo: &[u8], hi: &[u8], mut f: F) -> bool
    where
        F: FnMut(&[u8]) -> Visit,
    {
        let d = self.depth_bytes;
        let lo_d = &lo[..d];
        let hi_d = &hi[..d];
        let mut full = Vec::with_capacity(d);
        self.fst.visit_overlapping(lo_d, hi_d, &mut |branch, slot| {
            full.clear();
            full.extend_from_slice(branch);
            full.extend_from_slice(self.fst.values().bytes(slot));
            debug_assert_eq!(full.len(), d);
            // Branches that are proper prefixes of a bound are reported
            // conservatively by the FST; the reconstructed prefix decides
            // exactly.
            if full.as_slice() < lo_d || full.as_slice() > hi_d {
                return Visit::Continue;
            }
            f(&full)
        })
    }

    /// Does any stored prefix fall within `[lo, hi]`?
    pub fn overlaps(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.visit_leaves(lo, hi, |_| Visit::Stop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::u64_key;

    fn collect(trie: &ProteusTrie, lo: u64, hi: u64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        trie.visit_leaves(&u64_key(lo), &u64_key(hi), |p| {
            out.push(p.to_vec());
            Visit::Continue
        });
        out
    }

    fn reference(keys: &[u64], d: usize, lo: u64, hi: u64) -> Vec<Vec<u8>> {
        let mut prefixes: Vec<Vec<u8>> = keys.iter().map(|&k| u64_key(k)[..d].to_vec()).collect();
        prefixes.sort();
        prefixes.dedup();
        let lo_d = u64_key(lo)[..d].to_vec();
        let hi_d = u64_key(hi)[..d].to_vec();
        prefixes.into_iter().filter(|p| *p >= lo_d && *p <= hi_d).collect()
    }

    #[test]
    fn trie_represents_exactly_k_l1() {
        let keys: Vec<u64> =
            vec![0x1111_0000_0000_0000, 0x1111_2222_0000_0000, 0x9999_0000_0000_0001, 42];
        let ks = KeySet::from_u64(&keys);
        for d in 1..=8usize {
            let trie = ProteusTrie::build(&ks, d);
            assert_eq!(trie.len() as u64, ks.unique_prefixes(d * 8), "depth {d}");
            let got = collect(&trie, 0, u64::MAX);
            assert_eq!(got, reference(&keys, d, 0, u64::MAX), "depth {d}");
        }
    }

    #[test]
    fn window_queries_match_reference() {
        let mut s = 77u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let keys: Vec<u64> = (0..500).map(|_| rng()).collect();
        let ks = KeySet::from_u64(&keys);
        for d in [2usize, 4, 8] {
            let trie = ProteusTrie::build(&ks, d);
            for _ in 0..50 {
                let a = rng();
                let b = rng();
                let (lo, hi) = (a.min(b), a.max(b));
                assert_eq!(collect(&trie, lo, hi), reference(&keys, d, lo, hi), "d={d}");
            }
        }
    }

    #[test]
    fn overlaps_answers_emptiness() {
        let keys: Vec<u64> = vec![100 << 32, 200 << 32];
        let ks = KeySet::from_u64(&keys);
        let trie = ProteusTrie::build(&ks, 4);
        assert!(trie.overlaps(&u64_key(100 << 32), &u64_key(100 << 32)));
        assert!(trie.overlaps(&u64_key(0), &u64_key(u64::MAX)));
        // At 4-byte depth, keys live in regions 100 and 200 (of the top 32
        // bits); region 150 is empty.
        assert!(!trie.overlaps(&u64_key(150 << 32), &u64_key((151 << 32) - 1)));
        // Sub-region granularity is invisible to the trie: anything inside
        // an occupied 32-bit region reports overlap.
        assert!(trie.overlaps(&u64_key(100 << 32 | 5), &u64_key(100 << 32 | 9)));
    }

    #[test]
    fn suffix_reconstruction_is_exact() {
        // A single key forces maximal truncation: branch 1 byte, suffix d-1.
        let ks = KeySet::from_u64(&[0xDEAD_BEEF_CAFE_F00D]);
        let trie = ProteusTrie::build(&ks, 8);
        let got = collect(&trie, 0, u64::MAX);
        assert_eq!(got, vec![u64_key(0xDEAD_BEEF_CAFE_F00D).to_vec()]);
        // Precise window checks around the reconstructed key.
        assert!(trie.overlaps(&u64_key(0xDEAD_BEEF_CAFE_F00D), &u64_key(u64::MAX)));
        assert!(!trie.overlaps(&u64_key(0xDEAD_BEEF_CAFE_F00E), &u64_key(u64::MAX)));
        assert!(!trie.overlaps(&u64_key(0), &u64_key(0xDEAD_BEEF_CAFE_F00C)));
    }

    #[test]
    fn size_tracks_estimate() {
        let mut s = 3u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let keys: Vec<u64> = (0..20_000).map(|_| rng()).collect();
        let ks = KeySet::from_u64(&keys);
        for d in [2usize, 3, 5, 8] {
            let trie = ProteusTrie::build(&ks, d);
            let actual = trie.size_bits() as f64;
            let est = ks.trie_mem_bits(d) as f64;
            let ratio = actual / est;
            assert!(
                (0.5..2.0).contains(&ratio),
                "depth {d}: actual {actual} vs estimate {est} (ratio {ratio:.2})"
            );
        }
    }
}

//! The versioned filter envelope: the self-describing, checksummed wire
//! format wrapping every serialized range filter.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"PRFC"
//! 4       2     format version (little-endian; currently 1)
//! 6       1     filter-kind tag (see [`FilterKind`])
//! 7       1     reserved (0)
//! 8       8     payload length (little-endian u64)
//! 16      n     kind-specific payload
//! 16+n    4     CRC-32 over bytes [0, 16+n)
//! ```
//!
//! [`seal`] builds the envelope; [`unseal`] verifies magic, version,
//! length and checksum and hands back `(kind tag, payload)`. Decoding is
//! total: corrupt, truncated or version-mismatched bytes produce a typed
//! [`CodecError`], never a panic. Dispatch over the kind tag lives one
//! crate up, in `proteus_filters::codec::FilterCodec`, which can see every
//! filter type in the workspace; *unknown* kind tags inside a valid
//! envelope are not an error there — they degrade to [`crate::NoFilter`]
//! so newer files stay readable (queries just lose their filter).

pub use proteus_succinct::codec::{crc32, ByteReader, CodecError, WireWrite};

/// Leading magic of every serialized filter ("Proteus Range Filter Codec").
pub const FILTER_MAGIC: [u8; 4] = *b"PRFC";

/// Current envelope format version. Bump on any incompatible payload or
/// envelope change; decoders reject versions they do not know.
pub const FORMAT_VERSION: u16 = 1;

/// Envelope bytes before the payload.
pub const HEADER_LEN: usize = 16;

/// Envelope bytes around an `n`-byte payload.
pub const fn envelope_len(payload_len: usize) -> usize {
    HEADER_LEN + payload_len + 4
}

/// Stable wire tags for every serializable filter kind in the workspace.
///
/// Tags are part of the on-disk format: never renumber, only append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FilterKind {
    /// The pass-through no-filter baseline (empty payload).
    NoFilter = 0,
    /// Proteus (trie + prefix Bloom + design).
    Proteus = 1,
    /// Single self-designing prefix Bloom filter.
    OnePbf = 2,
    /// Two stacked prefix Bloom filters.
    TwoPbf = 3,
    /// SuRF in any suffix mode (Base / Hash / Real).
    Surf = 4,
    /// Rosetta (per-level prefix Bloom filters).
    Rosetta = 5,
}

impl FilterKind {
    pub fn from_tag(tag: u8) -> Option<FilterKind> {
        match tag {
            0 => Some(FilterKind::NoFilter),
            1 => Some(FilterKind::Proteus),
            2 => Some(FilterKind::OnePbf),
            3 => Some(FilterKind::TwoPbf),
            4 => Some(FilterKind::Surf),
            5 => Some(FilterKind::Rosetta),
            _ => None,
        }
    }
}

/// Wrap `payload` in the v1 envelope for `kind`.
pub fn seal(kind: FilterKind, payload: &[u8]) -> Vec<u8> {
    seal_raw(kind as u8, payload)
}

/// [`seal`] with an arbitrary kind tag — used by forward-compatibility
/// tests that fabricate envelopes from "future" filter kinds.
pub fn seal_raw(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(envelope_len(payload.len()));
    out.extend_from_slice(&FILTER_MAGIC);
    out.put_u16(FORMAT_VERSION);
    out.put_u8(tag);
    out.put_u8(0);
    out.put_u64(payload.len() as u64);
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.put_u32(crc);
    out
}

/// Verify an envelope and return `(kind tag, payload)`. The tag is returned
/// raw (not as [`FilterKind`]) so callers can treat unknown tags as a
/// graceful degradation rather than corruption.
pub fn unseal(bytes: &[u8]) -> Result<(u8, &[u8]), CodecError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(4)?;
    if magic != FILTER_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let kind = r.u8()?;
    let _reserved = r.u8()?;
    let payload_len = r.len_for(1)?;
    let payload = r.take(payload_len)?;
    let stored_crc = r.u32()?;
    r.finish()?;
    let body_len = HEADER_LEN + payload_len;
    if crc32(&bytes[..body_len]) != stored_crc {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok((kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_roundtrip() {
        let payload = b"some filter payload";
        let sealed = seal(FilterKind::Proteus, payload);
        assert_eq!(sealed.len(), envelope_len(payload.len()));
        let (kind, body) = unseal(&sealed).unwrap();
        assert_eq!(kind, FilterKind::Proteus as u8);
        assert_eq!(body, payload);
    }

    #[test]
    fn empty_payload_is_valid() {
        let sealed = seal(FilterKind::NoFilter, &[]);
        let (kind, body) = unseal(&sealed).unwrap();
        assert_eq!(kind, 0);
        assert!(body.is_empty());
    }

    #[test]
    fn every_truncation_fails() {
        let sealed = seal(FilterKind::Rosetta, &[1, 2, 3, 4, 5]);
        for cut in 0..sealed.len() {
            assert!(unseal(&sealed[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn every_single_byte_corruption_fails() {
        let sealed = seal(FilterKind::Surf, b"payload-bytes");
        for i in 0..sealed.len() {
            for bit in [1u8, 0x80] {
                let mut bad = sealed.clone();
                bad[i] ^= bit;
                assert!(unseal(&bad).is_err(), "flip at byte {i}");
            }
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let mut sealed = seal(FilterKind::NoFilter, &[]);
        sealed[0] = b'X';
        assert_eq!(unseal(&sealed), Err(CodecError::BadMagic));
        let mut sealed = seal(FilterKind::NoFilter, &[]);
        sealed[4] = 2;
        // Version check fires before the checksum so the error names the
        // real problem.
        assert_eq!(unseal(&sealed), Err(CodecError::UnsupportedVersion(2)));
    }

    #[test]
    fn unknown_kind_tag_survives_unseal() {
        // A future filter kind: the envelope is valid, the tag unknown.
        let mut raw = Vec::new();
        raw.extend_from_slice(&FILTER_MAGIC);
        raw.put_u16(FORMAT_VERSION);
        raw.put_u8(250);
        raw.put_u8(0);
        raw.put_u64(0);
        let crc = crc32(&raw);
        raw.put_u32(crc);
        let (kind, _) = unseal(&raw).unwrap();
        assert_eq!(kind, 250);
        assert!(FilterKind::from_tag(kind).is_none());
    }

    #[test]
    fn kind_tags_are_stable() {
        // Wire contract: these numbers are frozen.
        assert_eq!(FilterKind::NoFilter as u8, 0);
        assert_eq!(FilterKind::Proteus as u8, 1);
        assert_eq!(FilterKind::OnePbf as u8, 2);
        assert_eq!(FilterKind::TwoPbf as u8, 3);
        assert_eq!(FilterKind::Surf as u8, 4);
        assert_eq!(FilterKind::Rosetta as u8, 5);
        for t in 0..=5u8 {
            assert_eq!(FilterKind::from_tag(t).map(|k| k as u8), Some(t));
        }
    }
}

//! The versioned filter envelope: the self-describing, checksummed wire
//! format wrapping every serialized range filter.
//!
//! ```text
//! offset    size  field
//! 0         4     magic  b"PRFC"
//! 4         2     format version (little-endian; currently 2)
//! 6         1     filter-kind tag (see [`FilterKind`])
//! 7         1     reserved (0)
//! 8         8     payload length (little-endian u64)
//! 16        n     kind-specific payload
//! 16+n      4     v2 only: training-fingerprint length f (little-endian
//!                 u32; 0 = no fingerprint)
//! 20+n      f     v2 only: fingerprint bytes ([`crate::QuerySketch`] wire
//!                 form — the prefix histogram of the sample queries the
//!                 filter was trained on)
//! (end−4)   4     CRC-32 over every preceding byte
//! ```
//!
//! Version 1 (the PR-2 format) is the same envelope without the
//! fingerprint section; v1 bytes still decode, with a "no fingerprint"
//! default — the adaptive lifecycle simply has no training distribution to
//! compare against for such filters and falls back to observed-FPR
//! triggers alone.
//!
//! [`seal`] / [`seal_with_fingerprint`] build the envelope; [`unseal`]
//! verifies magic, version, length and checksum and hands back an
//! [`Unsealed`] view. Decoding is total: corrupt, truncated or
//! version-mismatched bytes produce a typed [`CodecError`], never a panic.
//! Dispatch over the kind tag lives one crate up, in
//! `proteus_filters::codec::FilterCodec`, which can see every filter type
//! in the workspace; *unknown* kind tags inside a valid envelope are not an
//! error there — they degrade to [`crate::NoFilter`] so newer files stay
//! readable (queries just lose their filter).

pub use proteus_succinct::codec::{crc32, ByteReader, CodecError, WireWrite};

/// Leading magic of every serialized filter ("Proteus Range Filter Codec").
pub const FILTER_MAGIC: [u8; 4] = *b"PRFC";

/// Current envelope format version. Bump on any incompatible payload or
/// envelope change; decoders reject versions they do not know but keep
/// decoding every older version listed in [`MIN_FORMAT_VERSION`]..=current.
pub const FORMAT_VERSION: u16 = 2;

/// Oldest envelope version this build still decodes.
pub const MIN_FORMAT_VERSION: u16 = 1;

/// Envelope bytes before the payload.
pub const HEADER_LEN: usize = 16;

/// Envelope bytes around an `n`-byte payload with an `f`-byte fingerprint
/// (current version).
pub const fn envelope_len(payload_len: usize, fingerprint_len: usize) -> usize {
    HEADER_LEN + payload_len + 4 + fingerprint_len + 4
}

/// Stable wire tags for every serializable filter kind in the workspace.
///
/// Tags are part of the on-disk format: never renumber, only append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FilterKind {
    /// The pass-through no-filter baseline (empty payload).
    NoFilter = 0,
    /// Proteus (trie + prefix Bloom + design).
    Proteus = 1,
    /// Single self-designing prefix Bloom filter.
    OnePbf = 2,
    /// Two stacked prefix Bloom filters.
    TwoPbf = 3,
    /// SuRF in any suffix mode (Base / Hash / Real).
    Surf = 4,
    /// Rosetta (per-level prefix Bloom filters).
    Rosetta = 5,
}

impl FilterKind {
    /// The stable wire tag this kind serializes as.
    pub const fn tag(self) -> u8 {
        // lint: allow(truncating-cast): `#[repr(u8)]` discriminants fit by construction
        self as u8
    }

    /// Map a raw wire tag back to its kind; `None` for tags this build
    /// does not know (a filter written by a newer version).
    pub fn from_tag(tag: u8) -> Option<FilterKind> {
        match tag {
            0 => Some(FilterKind::NoFilter),
            1 => Some(FilterKind::Proteus),
            2 => Some(FilterKind::OnePbf),
            3 => Some(FilterKind::TwoPbf),
            4 => Some(FilterKind::Surf),
            5 => Some(FilterKind::Rosetta),
            _ => None,
        }
    }
}

/// A verified envelope: the raw kind tag (not [`FilterKind`], so callers
/// can treat unknown tags as graceful degradation rather than corruption),
/// the kind-specific payload, and the optional v2 training fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unsealed<'a> {
    /// Envelope format version the bytes were written with (1 or 2).
    pub version: u16,
    /// Raw filter-kind tag.
    pub tag: u8,
    /// Kind-specific payload bytes.
    pub payload: &'a [u8],
    /// Training-fingerprint bytes, when present (v2 envelopes with a
    /// non-empty fingerprint section). v1 envelopes always decode to
    /// `None` — the "no fingerprint" default.
    pub fingerprint: Option<&'a [u8]>,
}

/// Wrap `payload` in the current envelope for `kind`, with no fingerprint.
pub fn seal(kind: FilterKind, payload: &[u8]) -> Vec<u8> {
    seal_raw(kind.tag(), payload)
}

/// Wrap `payload` in the current envelope together with a training
/// fingerprint (the serialized [`crate::QuerySketch`] of the sample the
/// filter was trained on).
pub fn seal_with_fingerprint(kind: FilterKind, payload: &[u8], fingerprint: &[u8]) -> Vec<u8> {
    seal_parts(kind.tag(), payload, fingerprint)
}

/// [`seal`] with an arbitrary kind tag — used by forward-compatibility
/// tests that fabricate envelopes from "future" filter kinds.
pub fn seal_raw(tag: u8, payload: &[u8]) -> Vec<u8> {
    seal_parts(tag, payload, &[])
}

fn seal_parts(tag: u8, payload: &[u8], fingerprint: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(envelope_len(payload.len(), fingerprint.len()));
    out.extend_from_slice(&FILTER_MAGIC);
    out.put_u16(FORMAT_VERSION);
    out.put_u8(tag);
    out.put_u8(0);
    out.put_u64(payload.len() as u64);
    out.extend_from_slice(payload);
    // A fingerprint is a bounded `QuerySketch` serialization, orders of
    // magnitude below 4 GiB; the assert documents the wire-width invariant.
    debug_assert!(u32::try_from(fingerprint.len()).is_ok());
    // lint: allow(truncating-cast): bounded sketch length, asserted above
    out.put_u32(fingerprint.len() as u32);
    out.extend_from_slice(fingerprint);
    let crc = crc32(&out);
    out.put_u32(crc);
    out
}

/// Build a version-1 envelope (no fingerprint section) — kept so the
/// v1→v2 compatibility tests can fabricate genuine v1 bytes.
pub fn seal_v1(kind: FilterKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&FILTER_MAGIC);
    out.put_u16(1);
    out.put_u8(kind.tag());
    out.put_u8(0);
    out.put_u64(payload.len() as u64);
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.put_u32(crc);
    out
}

/// Verify an envelope (any supported version) and return its parts.
pub fn unseal(bytes: &[u8]) -> Result<Unsealed<'_>, CodecError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(4)?;
    if magic != FILTER_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let tag = r.u8()?;
    let _reserved = r.u8()?;
    let payload_len = r.len_for(1)?;
    let payload = r.take(payload_len)?;
    let fingerprint = if version >= 2 {
        let f_len = r.u32()? as usize;
        let f = r.take(f_len)?;
        (!f.is_empty()).then_some(f)
    } else {
        None
    };
    let stored_crc = r.u32()?;
    r.finish()?;
    if crc32(&bytes[..bytes.len() - 4]) != stored_crc {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(Unsealed { version, tag, payload, fingerprint })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden fixture: the envelope header bytes are part of the on-disk
    /// format. If this test needs updating, the format changed — bump
    /// [`FORMAT_VERSION`] and extend the decoder instead of editing the
    /// expectation.
    #[test]
    fn envelope_header_golden_bytes() {
        let sealed = seal(FilterKind::NoFilter, &[]);
        assert_eq!(&sealed[..4], b"PRFC");
        assert_eq!(sealed[..4], FILTER_MAGIC);
        assert_eq!(u16::from_le_bytes([sealed[4], sealed[5]]), FORMAT_VERSION);
        assert_eq!(FORMAT_VERSION, 2);
        // The compatibility floor: v1 envelopes must keep decoding for as
        // long as MIN_FORMAT_VERSION says they do.
        assert_eq!(MIN_FORMAT_VERSION, 1);
        let v1 = seal_v1(FilterKind::NoFilter, &[]);
        assert_eq!(u16::from_le_bytes([v1[4], v1[5]]), MIN_FORMAT_VERSION);
        assert!(unseal(&v1).is_ok());
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let payload = b"some filter payload";
        let sealed = seal(FilterKind::Proteus, payload);
        assert_eq!(sealed.len(), envelope_len(payload.len(), 0));
        let u = unseal(&sealed).unwrap();
        assert_eq!(u.version, FORMAT_VERSION);
        assert_eq!(u.tag, FilterKind::Proteus as u8);
        assert_eq!(u.payload, payload);
        assert_eq!(u.fingerprint, None);
    }

    #[test]
    fn fingerprint_roundtrips() {
        let payload = b"payload";
        let fp = [7u8; 40];
        let sealed = seal_with_fingerprint(FilterKind::OnePbf, payload, &fp);
        assert_eq!(sealed.len(), envelope_len(payload.len(), fp.len()));
        let u = unseal(&sealed).unwrap();
        assert_eq!(u.payload, payload);
        assert_eq!(u.fingerprint, Some(fp.as_slice()));
    }

    #[test]
    fn v1_envelopes_still_decode_without_fingerprint() {
        let payload = b"legacy v1 payload";
        let sealed = seal_v1(FilterKind::TwoPbf, payload);
        let u = unseal(&sealed).unwrap();
        assert_eq!(u.version, 1);
        assert_eq!(u.tag, FilterKind::TwoPbf as u8);
        assert_eq!(u.payload, payload);
        assert_eq!(u.fingerprint, None, "v1 must default to no fingerprint");
        // v1 corruption and truncation still fail.
        for cut in 0..sealed.len() {
            assert!(unseal(&sealed[..cut]).is_err(), "cut {cut}");
        }
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x10;
            assert!(unseal(&bad).is_err(), "flip at byte {i}");
        }
    }

    #[test]
    fn empty_payload_is_valid() {
        let sealed = seal(FilterKind::NoFilter, &[]);
        let u = unseal(&sealed).unwrap();
        assert_eq!(u.tag, 0);
        assert!(u.payload.is_empty());
    }

    #[test]
    fn every_truncation_fails() {
        let sealed = seal(FilterKind::Rosetta, &[1, 2, 3, 4, 5]);
        for cut in 0..sealed.len() {
            assert!(unseal(&sealed[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn every_single_byte_corruption_fails() {
        let sealed = seal(FilterKind::Surf, b"payload-bytes");
        for i in 0..sealed.len() {
            for bit in [1u8, 0x80] {
                let mut bad = sealed.clone();
                bad[i] ^= bit;
                assert!(unseal(&bad).is_err(), "flip at byte {i}");
            }
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let mut sealed = seal(FilterKind::NoFilter, &[]);
        sealed[0] = b'X';
        assert_eq!(unseal(&sealed).unwrap_err(), CodecError::BadMagic);
        // Versions outside [MIN_FORMAT_VERSION, FORMAT_VERSION] are
        // rejected before the checksum so the error names the real problem.
        for bad_version in [0u8, FORMAT_VERSION as u8 + 1] {
            let mut sealed = seal(FilterKind::NoFilter, &[]);
            sealed[4] = bad_version;
            assert_eq!(
                unseal(&sealed).unwrap_err(),
                CodecError::UnsupportedVersion(bad_version as u16)
            );
        }
    }

    #[test]
    fn unknown_kind_tag_survives_unseal() {
        // A future filter kind: the envelope is valid, the tag unknown.
        let raw = seal_raw(250, &[]);
        let u = unseal(&raw).unwrap();
        assert_eq!(u.tag, 250);
        assert!(FilterKind::from_tag(u.tag).is_none());
    }

    #[test]
    fn kind_tags_are_stable() {
        // Wire contract: these numbers are frozen.
        assert_eq!(FilterKind::NoFilter as u8, 0);
        assert_eq!(FilterKind::Proteus as u8, 1);
        assert_eq!(FilterKind::OnePbf as u8, 2);
        assert_eq!(FilterKind::TwoPbf as u8, 3);
        assert_eq!(FilterKind::Surf as u8, 4);
        assert_eq!(FilterKind::Rosetta as u8, 5);
        for t in 0..=5u8 {
            assert_eq!(FilterKind::from_tag(t).map(|k| k as u8), Some(t));
        }
    }
}

//! Sorted key-set statistics: everything Algorithm 1 extracts from the key
//! set.
//!
//! * `|K_l|` — unique key prefixes for every bit length, from successive
//!   LCPs of the sorted keys ("Count Key Prefixes", §4.3, O(|K|));
//! * per-byte-level trie shape (shared-prefix node counts, edge counts,
//!   uniqueness depths) driving `trieMem` ("Calculate Trie Memory", §4.3);
//! * predecessor/successor searches giving each sample query's proximity to
//!   the key set ("Count Query Prefixes", §4.3).

use crate::key::{lcp_bits, pad_key, u64_key};
use proteus_succinct::cost;

/// An immutable, sorted, deduplicated key set in canonical form, with the
/// statistics the CPFPR model needs.
#[derive(Debug, Clone)]
pub struct KeySet {
    /// Flat storage: `n` keys of `width` bytes each, ascending.
    data: Vec<u8>,
    width: usize,
    n: usize,
    /// `k_l[l]` = |K_l| for every bit length `0..=width*8`.
    k_l: Vec<u64>,
    /// `u_d[d]` = number of keys whose branch is unique within the first `d`
    /// bytes (uniqueness depth ≤ d), for `0..=width`.
    u_d: Vec<u64>,
}

impl KeySet {
    /// Build from canonical keys (must all be `width` bytes). Sorts and
    /// deduplicates.
    pub fn new(mut keys: Vec<Vec<u8>>, width: usize) -> Self {
        assert!(keys.iter().all(|k| k.len() == width), "keys must be canonical width");
        keys.sort_unstable();
        keys.dedup();
        let n = keys.len();
        let mut data = Vec::with_capacity(n * width);
        for k in &keys {
            data.extend_from_slice(k);
        }
        Self::from_sorted_flat(data, width)
    }

    /// Build from `u64` keys.
    pub fn from_u64(keys: &[u64]) -> Self {
        let mut sorted: Vec<u64> = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut data = Vec::with_capacity(sorted.len() * 8);
        for k in &sorted {
            data.extend_from_slice(&u64_key(*k));
        }
        Self::from_sorted_flat(data, 8)
    }

    /// Build from byte strings, padding to `width` (§7.1 semantics).
    pub fn from_strings<S: AsRef<[u8]>>(keys: &[S], width: usize) -> Self {
        let padded: Vec<Vec<u8>> = keys.iter().map(|k| pad_key(k.as_ref(), width)).collect();
        Self::new(padded, width)
    }

    /// Build from a flat buffer of canonical keys that is already sorted
    /// and deduplicated (zero-copy path for SST construction).
    pub fn from_sorted_canonical(data: Vec<u8>, width: usize) -> Self {
        debug_assert!(width > 0 && data.len().is_multiple_of(width));
        debug_assert!(
            data.chunks_exact(width).zip(data.chunks_exact(width).skip(1)).all(|(a, b)| a < b),
            "keys must be strictly ascending"
        );
        Self::from_sorted_flat(data, width)
    }

    fn from_sorted_flat(data: Vec<u8>, width: usize) -> Self {
        let n = data.len().checked_div(width).unwrap_or(0);
        let bits = width * 8;

        // Histogram of consecutive-pair LCPs -> |K_l| for all l.
        // |K_l| = n - #{pairs with lcp >= l}.
        let mut lcp_hist = vec![0u64; bits + 1];
        // Per-key uniqueness byte depth -> u_d.
        let mut u_hist = vec![0u64; width + 2];
        let key = |i: usize| &data[i * width..(i + 1) * width];
        let mut prev_lcp_bits = 0usize; // lcp with previous key
        for i in 0..n {
            let next_lcp = if i + 1 < n { lcp_bits(key(i), key(i + 1)) } else { 0 };
            if i + 1 < n {
                lcp_hist[next_lcp] += 1;
            }
            let max_lcp_bytes = (prev_lcp_bits.max(next_lcp)) / 8;
            let u = (max_lcp_bytes + 1).min(width);
            u_hist[u] += 1;
            prev_lcp_bits = next_lcp;
        }

        let mut k_l = vec![0u64; bits + 1];
        let mut pairs_ge = 0u64; // #{pairs with lcp >= l}, scanned from l = bits down
        for l in (0..=bits).rev() {
            pairs_ge += lcp_hist[l];
            k_l[l] = (n as u64).saturating_sub(pairs_ge);
        }
        if n > 0 {
            k_l[0] = 1; // the single empty prefix
        }

        let mut u_d = vec![0u64; width + 1];
        let mut acc = 0u64;
        for d in 0..=width {
            acc += u_hist[d];
            u_d[d] = acc;
        }

        KeySet { data, width, n, k_l, u_d }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a key set with no keys.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Key width in bytes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Key length in bits (the paper's maximum key length `k`).
    pub fn bits(&self) -> usize {
        self.width * 8
    }

    /// The `i`-th key (ascending).
    pub fn key(&self, i: usize) -> &[u8] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Iterator over keys in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.n).map(|i| self.key(i))
    }

    /// |K_l|: the number of unique `l`-bit key prefixes.
    pub fn unique_prefixes(&self, l: usize) -> u64 {
        self.k_l[l.min(self.bits())]
    }

    /// Number of keys whose branch becomes unique within `d` bytes.
    pub fn unique_by_depth(&self, d: usize) -> u64 {
        self.u_d[d.min(self.width)]
    }

    /// Index of the first key ≥ `probe`.
    pub fn lower_bound(&self, probe: &[u8]) -> usize {
        let mut lo = 0usize;
        let mut hi = self.n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid) < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Does any key fall within the closed range `[lo, hi]`?
    pub fn range_overlaps(&self, lo: &[u8], hi: &[u8]) -> bool {
        let idx = self.lower_bound(lo);
        idx < self.n && self.key(idx) <= hi
    }

    /// Proximity of an *empty* query `[lo, hi]` to the key set, in bits:
    /// `(lcp(pred, lo), lcp(succ, hi))` where pred is the largest key < lo
    /// and succ the smallest key > hi. Returns 0 for missing neighbors.
    /// These two numbers determine every occupancy test in the CPFPR model:
    ///
    /// * the first l-region of Q is occupied iff `max(a, min(b, lcp(lo,hi))) ≥ l`,
    /// * the last  l-region of Q is occupied iff `max(b, min(a, lcp(lo,hi))) ≥ l`,
    /// * `lcp(Q, K) = max(a, b)`.
    pub fn neighbor_lcps(&self, lo: &[u8], hi: &[u8]) -> (usize, usize) {
        debug_assert!(!self.range_overlaps(lo, hi), "query must be empty");
        let idx = self.lower_bound(lo);
        let a = if idx > 0 { lcp_bits(self.key(idx - 1), lo) } else { 0 };
        let b = if idx < self.n { lcp_bits(self.key(idx), hi) } else { 0 };
        (a, b)
    }

    /// Estimated memory (bits) of a uniform-depth Proteus trie of
    /// `depth_bytes`, mirroring the real structure: LOUDS levels with the
    /// size-optimal dense/sparse cutoff plus explicit suffix bytes for
    /// branches that become unique early (§4.1/§4.3).
    pub fn trie_mem_bits(&self, depth_bytes: usize) -> u64 {
        if depth_bytes == 0 || self.n == 0 {
            return 0;
        }
        let d = depth_bytes.min(self.width);
        let levels = self.trie_levels(d);
        let (_, louds_bits) = cost::optimal_cutoff(&levels);
        let mut suffix_bytes = 0u64;
        for depth in 1..d {
            let newly_unique = self.u_d[depth] - self.u_d[depth - 1];
            suffix_bytes += newly_unique * (d - depth) as u64;
        }
        let branches = self.trie_branch_count(d);
        louds_bits + cost::byte_suffix_bits(suffix_bytes, branches)
    }

    /// Per-level `(nodes, outgoing edges)` of the uniform-depth trie, for
    /// levels `0..depth_bytes`.
    pub fn trie_levels(&self, depth_bytes: usize) -> Vec<(u64, u64)> {
        let d = depth_bytes.min(self.width);
        let kb = |level: usize| -> u64 {
            if level == 0 {
                if self.n > 0 {
                    1
                } else {
                    0
                }
            } else {
                self.k_l[level * 8]
            }
        };
        (0..d)
            .map(|lvl| {
                let nodes = kb(lvl).saturating_sub(self.u_d[lvl]);
                let edges = kb(lvl + 1).saturating_sub(self.u_d[lvl]);
                (nodes, edges)
            })
            .collect()
    }

    /// Number of distinct branches in the uniform-depth trie — exactly
    /// |K_{8·depth}| since the trie represents the set of depth-byte key
    /// prefixes.
    pub fn trie_branch_count(&self, depth_bytes: usize) -> u64 {
        self.unique_prefixes(depth_bytes.min(self.width) * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::key_u64;

    #[test]
    fn sorted_dedup_construction() {
        let ks = KeySet::from_u64(&[5, 3, 5, 1, 3]);
        assert_eq!(ks.len(), 3);
        let vals: Vec<u64> = ks.iter().map(key_u64).collect();
        assert_eq!(vals, vec![1, 3, 5]);
    }

    #[test]
    fn unique_prefix_counts_match_brute_force() {
        let keys: Vec<u64> = vec![
            0x0000_0000_0000_0000,
            0x0000_0000_0000_0001,
            0x00FF_0000_0000_0000,
            0x0100_0000_0000_0000,
            0xFFFF_FFFF_0000_0000,
            0xFFFF_FFFF_8000_0000,
        ];
        let ks = KeySet::from_u64(&keys);
        for l in 0..=64usize {
            let mut prefixes: Vec<u64> =
                keys.iter().map(|&k| if l == 0 { 0 } else { k >> (64 - l) }).collect();
            prefixes.sort_unstable();
            prefixes.dedup();
            assert_eq!(ks.unique_prefixes(l), prefixes.len() as u64, "l={l}");
        }
    }

    #[test]
    fn uniqueness_depths() {
        // 0x00AB, 0x00CD share byte 0; 0x7F00 is unique from byte 1.
        let keys = vec![vec![0x00, 0xAB], vec![0x00, 0xCD], vec![0x7F, 0x00]];
        let ks = KeySet::new(keys, 2);
        assert_eq!(ks.unique_by_depth(0), 0);
        assert_eq!(ks.unique_by_depth(1), 1); // 0x7F00
        assert_eq!(ks.unique_by_depth(2), 3);
        // Trie shape at depth 2: root (2 edges), one shared node (2 edges).
        assert_eq!(ks.trie_levels(2), vec![(1, 2), (1, 2)]);
        assert_eq!(ks.trie_branch_count(2), 3);
    }

    #[test]
    fn neighbor_lcps_locate_queries() {
        let ks = KeySet::from_u64(&[100, 200, 300]);
        // Empty query strictly between 100 and 200.
        let (a, b) = ks.neighbor_lcps(&u64_key(150), &u64_key(160));
        assert_eq!(a, lcp_bits(&u64_key(100), &u64_key(150)));
        assert_eq!(b, lcp_bits(&u64_key(200), &u64_key(160)));
        // Query below all keys: no predecessor.
        let (a, b) = ks.neighbor_lcps(&u64_key(1), &u64_key(50));
        assert_eq!(a, 0);
        assert_eq!(b, lcp_bits(&u64_key(100), &u64_key(50)));
        // Query above all keys: no successor.
        let (_, b) = ks.neighbor_lcps(&u64_key(400), &u64_key(500));
        assert_eq!(b, 0);
    }

    #[test]
    fn range_overlap_detection() {
        let ks = KeySet::from_u64(&[100, 200]);
        assert!(ks.range_overlaps(&u64_key(100), &u64_key(100)));
        assert!(ks.range_overlaps(&u64_key(50), &u64_key(150)));
        assert!(ks.range_overlaps(&u64_key(150), &u64_key(250)));
        assert!(!ks.range_overlaps(&u64_key(101), &u64_key(199)));
        assert!(!ks.range_overlaps(&u64_key(201), &u64_key(u64::MAX)));
        assert!(!ks.range_overlaps(&u64_key(0), &u64_key(99)));
    }

    #[test]
    fn trie_mem_grows_with_depth() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 997_351).collect();
        let ks = KeySet::from_u64(&keys);
        let mut last = 0;
        for d in 1..=8 {
            let m = ks.trie_mem_bits(d);
            assert!(m >= last, "trie mem must be monotone in depth: d={d}");
            last = m;
        }
        assert_eq!(ks.trie_mem_bits(0), 0);
    }

    #[test]
    fn trie_mem_reasonable_scale() {
        // 10k clustered keys: a 2-byte-deep trie has very few nodes and
        // should cost far less than the full-depth trie.
        let keys: Vec<u64> = (0..10_000u64).map(|i| (i / 64) << 40 | (i % 64)).collect();
        let ks = KeySet::from_u64(&keys);
        assert!(ks.trie_mem_bits(2) < ks.trie_mem_bits(8) / 4);
    }

    #[test]
    fn string_keys_pad_and_sort() {
        let ks = KeySet::from_strings(&[b"pear".as_ref(), b"apple", b"fig"], 8);
        assert_eq!(ks.len(), 3);
        assert_eq!(&ks.key(0)[..5], b"apple");
        assert_eq!(&ks.key(1)[..3], b"fig");
        assert_eq!(ks.key(1)[3], 0);
        assert_eq!(&ks.key(2)[..4], b"pear");
    }

    #[test]
    fn empty_keyset() {
        let ks = KeySet::from_u64(&[]);
        assert!(ks.is_empty());
        assert_eq!(ks.unique_prefixes(10), 0);
        assert_eq!(ks.trie_mem_bits(4), 0);
        assert!(!ks.range_overlaps(&u64_key(0), &u64_key(u64::MAX)));
    }

    #[test]
    fn single_key_set() {
        let ks = KeySet::from_u64(&[42]);
        assert_eq!(ks.unique_prefixes(0), 1);
        assert_eq!(ks.unique_prefixes(64), 1);
        assert_eq!(ks.unique_by_depth(1), 1);
        assert_eq!(ks.trie_branch_count(8), 1);
        assert!(ks.trie_mem_bits(8) > 0);
    }
}

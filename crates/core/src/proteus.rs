//! The Proteus self-designing range filter (§4).
//!
//! Proteus combines a uniform-depth succinct trie (depth `l1` bits) with a
//! prefix Bloom filter (prefix length `l2 > l1` bits). Construction feeds a
//! sample of empty queries through the CPFPR model (Algorithm 1) to choose
//! `(l1, l2)`; either component may be dropped entirely, so the filter can
//! be purely deterministic or purely probabilistic as the workload demands.

use crate::codec::{ByteReader, CodecError, FilterKind, WireWrite};
use crate::key::{mask_tail, pad_key, set_tail_ones, u64_key};
use crate::keyset::KeySet;
use crate::model::proteus::{ProteusDesign, ProteusModel, ProteusModelOptions};
use crate::prefix_bf::PrefixBloom;
use crate::sample::SampleQueries;
use crate::trie::ProteusTrie;
use crate::RangeFilter;
use proteus_amq::hash::HashFamily;
use proteus_succinct::Visit;

/// Default per-query Bloom probe cap (see DESIGN.md: past this the modeled
/// FPR is ≈ 1 anyway, so the safe positive is indistinguishable).
pub const DEFAULT_PROBE_CAP: u64 = 65_536;

/// Construction options for [`Proteus`].
#[derive(Debug, Clone)]
pub struct ProteusOptions {
    /// Hash family for the prefix Bloom filter (Murmur3 for integers,
    /// CLHash for strings, per §4.3/§7.1).
    pub hash_family: HashFamily,
    /// Per-query probe budget.
    pub probe_cap: u64,
    /// CPFPR search options (coarse l2 grid, threads).
    pub model: ProteusModelOptions,
    /// Hash seed (fixed for reproducibility).
    pub seed: u32,
}

impl Default for ProteusOptions {
    fn default() -> Self {
        ProteusOptions {
            hash_family: HashFamily::Murmur3,
            probe_cap: DEFAULT_PROBE_CAP,
            model: ProteusModelOptions::default(),
            seed: 0x1CEB_00DA,
        }
    }
}

/// The Proteus range filter.
#[derive(Debug, Clone)]
pub struct Proteus {
    trie: Option<ProteusTrie>,
    bloom: Option<PrefixBloom>,
    design: ProteusDesign,
    width: usize,
    probe_cap: u64,
}

impl Proteus {
    /// Self-design and build: run the CPFPR model over `samples` and
    /// instantiate the best design within `m_bits` of memory (Algorithm 1
    /// followed by construction). Samples must be empty queries; use
    /// [`SampleQueries::retain_empty`] first if unsure.
    pub fn train(
        keys: &KeySet,
        samples: &SampleQueries,
        m_bits: u64,
        opts: &ProteusOptions,
    ) -> Self {
        let model = ProteusModel::build(keys, samples, m_bits, &opts.model);
        let design = model.best_design(keys, m_bits);
        Self::build_with_design(keys, design, m_bits, opts)
    }

    /// Build a fixed design (used by the model-validation experiments that
    /// sweep the whole design space, Fig. 4c).
    pub fn build_with_design(
        keys: &KeySet,
        design: ProteusDesign,
        m_bits: u64,
        opts: &ProteusOptions,
    ) -> Self {
        let l1 = design.trie_depth_bits;
        let l2 = design.bloom_prefix_len;
        debug_assert!(l1.is_multiple_of(8), "trie depths are byte-granular");
        let trie = (l1 > 0 && !keys.is_empty()).then(|| ProteusTrie::build(keys, l1 / 8));
        let trie_bits = trie.as_ref().map_or(0, |t| t.size_bits());
        let bloom = (l2 > 0 && !keys.is_empty()).then(|| {
            let bf_bits = m_bits.saturating_sub(trie_bits);
            PrefixBloom::build(keys, l2, bf_bits, opts.hash_family, opts.seed)
        });
        Proteus { trie, bloom, design, width: keys.width(), probe_cap: opts.probe_cap }
    }

    /// The design the model selected.
    pub fn design(&self) -> ProteusDesign {
        self.design
    }

    /// Canonical key width in bytes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Closed-range emptiness query over canonical keys.
    pub fn query(&self, lo: &[u8], hi: &[u8]) -> bool {
        debug_assert_eq!(lo.len(), self.width);
        debug_assert_eq!(hi.len(), self.width);
        debug_assert!(lo <= hi);
        let mut budget = self.probe_cap;
        match (&self.trie, &self.bloom) {
            (None, None) => true, // no structure: must answer positive
            (Some(trie), None) => trie.overlaps(lo, hi),
            (None, Some(bloom)) => bloom.query_window(lo, hi, &mut budget),
            (Some(trie), Some(bloom)) => {
                let d = trie.depth_bytes();
                let mut from = vec![0u8; self.width];
                let mut to = vec![0u8; self.width];
                trie.visit_leaves(lo, hi, |leaf| {
                    // Clamp the Bloom probe window to the intersection of Q
                    // with this leaf's l1-region.
                    if leaf == &lo[..d] {
                        from.copy_from_slice(lo);
                    } else {
                        from[..d].copy_from_slice(leaf);
                        mask_tail(&mut from, d * 8);
                    }
                    if leaf == &hi[..d] {
                        to.copy_from_slice(hi);
                    } else {
                        to[..d].copy_from_slice(leaf);
                        set_tail_ones(&mut to, d * 8);
                    }
                    if bloom.query_window(&from, &to, &mut budget) {
                        Visit::Stop
                    } else {
                        Visit::Continue
                    }
                })
            }
        }
    }

    /// Convenience: query over `u64` bounds (closed interval).
    pub fn query_u64(&self, lo: u64, hi: u64) -> bool {
        self.query(&u64_key(lo), &u64_key(hi))
    }

    /// Convenience: query over raw (unpadded) string bounds.
    pub fn query_str(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.query(&pad_key(lo, self.width), &pad_key(hi, self.width))
    }

    /// Total memory of trie + Bloom filter in bits.
    pub fn size_bits(&self) -> u64 {
        self.trie.as_ref().map_or(0, |t| t.size_bits())
            + self.bloom.as_ref().map_or(0, |b| b.size_bits())
    }

    /// Serialize the built filter (structure + chosen design; no training
    /// state, so a decoded filter answers without re-running the model).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u32(self.width as u32);
        out.put_u64(self.probe_cap);
        out.put_u64(self.design.trie_depth_bits as u64);
        out.put_u64(self.design.bloom_prefix_len as u64);
        out.put_f64(self.design.expected_fpr);
        out.put_u64(self.design.trie_mem_bits);
        out.put_u8(u8::from(self.trie.is_some()) | (u8::from(self.bloom.is_some()) << 1));
        if let Some(trie) = &self.trie {
            trie.encode_into(out);
        }
        if let Some(bloom) = &self.bloom {
            bloom.encode_into(out);
        }
    }

    /// Decode a payload written by [`Proteus::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Proteus, CodecError> {
        let width = r.u32()? as usize;
        if width == 0 {
            return Err(CodecError::Invalid("proteus width zero"));
        }
        let probe_cap = r.u64()?;
        let design = ProteusDesign {
            trie_depth_bits: r.u64()? as usize,
            bloom_prefix_len: r.u64()? as usize,
            expected_fpr: r.f64()?,
            trie_mem_bits: r.u64()?,
        };
        let flags = r.u8()?;
        if flags & !0b11 != 0 {
            return Err(CodecError::Invalid("proteus component flags"));
        }
        let trie = (flags & 1 != 0).then(|| ProteusTrie::decode_from(r)).transpose()?;
        let bloom = (flags & 2 != 0).then(|| PrefixBloom::decode_from(r)).transpose()?;
        if let Some(t) = &trie {
            if t.depth_bytes() > width {
                return Err(CodecError::Invalid("proteus trie deeper than key"));
            }
        }
        Ok(Proteus { trie, bloom, design, width, probe_cap })
    }
}

impl RangeFilter for Proteus {
    fn may_contain_range(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.query(lo, hi)
    }
    fn size_bits(&self) -> u64 {
        self.size_bits()
    }
    fn name(&self) -> String {
        format!("Proteus(l1={}, l2={})", self.design.trie_depth_bits, self.design.bloom_prefix_len)
    }
    fn encode_payload(&self) -> Option<(FilterKind, Vec<u8>)> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        Some((FilterKind::Proteus, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(s: &mut u64) -> u64 {
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut s = seed;
        (0..n).map(|_| splitmix(&mut s)).collect()
    }

    fn empty_queries(ks: &KeySet, n: usize, rmax: u64, seed: u64) -> SampleQueries {
        let mut s = seed;
        let mut q = SampleQueries::new(8);
        while q.len() < n {
            let lo = splitmix(&mut s) % (u64::MAX - rmax - 2);
            let hi = lo + 2 + splitmix(&mut s) % rmax;
            if !ks.range_overlaps(&u64_key(lo), &u64_key(hi)) {
                q.push(&u64_key(lo), &u64_key(hi));
            }
        }
        q
    }

    #[test]
    fn no_false_negatives_across_designs() {
        let raw = uniform_keys(2000, 1);
        let ks = KeySet::from_u64(&raw);
        let m = 2000 * 12;
        let opts = ProteusOptions::default();
        let designs = [(0usize, 64usize), (0, 40), (16, 48), (16, 0), (24, 64)];
        for (l1, l2) in designs {
            if l1 > 0 && ks.trie_mem_bits(l1 / 8) > m {
                continue;
            }
            let design = ProteusDesign {
                trie_depth_bits: l1,
                bloom_prefix_len: l2,
                expected_fpr: 0.0,
                trie_mem_bits: 0,
            };
            let f = Proteus::build_with_design(&ks, design, m, &opts);
            for &k in raw.iter().step_by(7) {
                assert!(f.query_u64(k, k), "point fn for {k} at ({l1},{l2})");
                assert!(
                    f.query_u64(k.saturating_sub(10), k.saturating_add(10)),
                    "range fn for {k} at ({l1},{l2})"
                );
            }
        }
    }

    #[test]
    fn trained_filter_beats_mistuned_designs() {
        let raw = uniform_keys(3000, 2);
        let ks = KeySet::from_u64(&raw);
        let m = 3000 * 12;
        let samples = empty_queries(&ks, 2000, 1 << 14, 3);
        let f = Proteus::train(&ks, &samples, m, &ProteusOptions::default());

        let eval = |filter: &Proteus| -> f64 {
            let queries = empty_queries(&ks, 2000, 1 << 14, 99);
            let fps = queries.iter().filter(|(lo, hi)| filter.may_contain_range(lo, hi)).count();
            fps as f64 / queries.len() as f64
        };
        let trained_fpr = eval(&f);
        // A deliberately bad design for large ranges: full-length prefixes.
        let bad = Proteus::build_with_design(
            &ks,
            ProteusDesign {
                trie_depth_bits: 0,
                bloom_prefix_len: 64,
                expected_fpr: 0.0,
                trie_mem_bits: 0,
            },
            m,
            &ProteusOptions { probe_cap: 1 << 16, ..Default::default() },
        );
        let bad_fpr = eval(&bad);
        assert!(
            trained_fpr < bad_fpr * 0.8 || trained_fpr < 0.01,
            "trained {trained_fpr} vs bad {bad_fpr}"
        );
        // Model prediction should be in the neighborhood of reality.
        let predicted = f.design().expected_fpr;
        assert!(
            (trained_fpr - predicted).abs() < 0.1,
            "predicted {predicted} observed {trained_fpr}"
        );
    }

    #[test]
    fn memory_budget_respected() {
        let raw = uniform_keys(5000, 4);
        let ks = KeySet::from_u64(&raw);
        let samples = empty_queries(&ks, 500, 1 << 10, 5);
        for bpk in [8u64, 12, 18] {
            let m = 5000 * bpk;
            let f = Proteus::train(&ks, &samples, m, &ProteusOptions::default());
            // Allow a few percent of slack for rank-directory rounding.
            assert!(
                (f.size_bits() as f64) < m as f64 * 1.10 + 4096.0,
                "bpk {bpk}: used {} of {m}",
                f.size_bits()
            );
        }
    }

    #[test]
    fn empty_keyset_never_matches() {
        let ks = KeySet::from_u64(&[]);
        let samples = SampleQueries::from_u64(&[(5, 10)]);
        let f = Proteus::train(&ks, &samples, 1024, &ProteusOptions::default());
        assert!(!f.query_u64(0, u64::MAX) || f.size_bits() == 0);
    }

    #[test]
    fn string_keys_roundtrip() {
        let width = 16;
        let names = [&b"alpha"[..], b"beta", b"gamma", b"delta", b"epsilon"];
        let ks = KeySet::from_strings(&names, width);
        let mut samples = SampleQueries::new(width);
        samples.push(&pad_key(b"zeta", width), &pad_key(b"zeta~~~", width));
        samples.push(&pad_key(b"aaaa", width), &pad_key(b"aaab", width));
        let f = Proteus::train(
            &ks,
            &samples,
            5 * 128,
            &ProteusOptions { hash_family: HashFamily::ClHash, ..Default::default() },
        );
        for n in names {
            assert!(f.query_str(n, n), "{}", String::from_utf8_lossy(n));
        }
        assert!(f.query_str(b"alp", b"alz"));
    }
}

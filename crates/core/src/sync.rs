//! Lock-doctor: rank-checked synchronization primitives.
//!
//! Every lock in the workspace is a [`Mutex`] or [`RwLock`] from this
//! module, constructed with a [`Rank`] from the canonical hierarchy in
//! [`rank`]. A thread may only acquire a lock whose rank is **strictly
//! lower** than every lock it already holds — acquisitions run "down" the
//! hierarchy, which makes cross-thread acquisition cycles (deadlocks)
//! impossible by construction.
//!
//! In debug builds (`cfg(debug_assertions)`) or with the `lock-doctor`
//! feature enabled, the wrappers are instrumented: each thread keeps a
//! stack of the locks it holds, a global acquisition-order graph collects
//! first-witness call sites for every observed rank pair, and any rank
//! inversion or order-graph cycle panics with **both** acquisition sites
//! named (the one being taken and the one already held). Hold and
//! contention nanoseconds are reported through a per-lock
//! [`LockObserver`], which the LSM store wires into its `Stats` counters.
//!
//! In release builds without the feature the wrappers are transparent
//! newtypes around `std::sync` with no extra state, no `Drop` glue and no
//! timing calls — `size_of` is identical and guards are the std guards
//! themselves.
//!
//! The `proteus-lint` pass enforces that no code outside this module
//! touches `std::sync::{Mutex, RwLock, Condvar}` directly.

use std::sync::Arc;

/// A level in the canonical lock hierarchy. Locks must be acquired in
/// strictly decreasing [`Rank::level`] order within a thread.
///
/// The levels in [`rank`] are deliberately spaced so future locks can
/// slot between existing ones without renumbering the world.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rank {
    level: u16,
    name: &'static str,
}

impl Rank {
    /// Define a rank. Levels must be unique per name; two distinct locks
    /// may share a rank only if they are never held simultaneously by one
    /// thread (the doctor treats same-level nesting as an inversion).
    pub const fn new(level: u16, name: &'static str) -> Rank {
        Rank { level, name }
    }

    /// Numeric level; higher acquires first.
    pub const fn level(&self) -> u16 {
        self.level
    }

    /// Human-readable name used in panic messages and the order graph.
    pub const fn name(&self) -> &'static str {
        self.name
    }
}

/// The canonical lock hierarchy (acquire top-to-bottom). The table in
/// `ARCHITECTURE.md` § "Lock hierarchy & analysis tooling" documents the
/// why behind each ordering edge.
pub mod rank {
    use super::Rank;

    /// Adaptive re-training pass serialization (`adapt_lock` in the LSM
    /// `Db`). Held across manifest edits, gate checks and SST filter
    /// rewrites, so it sits above everything.
    pub const ADAPT: Rank = Rank::new(90, "adapt");
    /// The MemTable state (`RwLock<MemState>`): writers append under it
    /// and it nests over the WAL (append/rotate) and the gate
    /// (rotation publish).
    pub const MEMTABLE: Rank = Rank::new(80, "memtable");
    /// The flush/compaction coordination gate (`Mutex<Coord>` plus its
    /// condvars).
    pub const GATE: Rank = Rank::new(70, "gate");
    /// The write-ahead-log interior (segment writer + group-commit
    /// state).
    pub const WAL: Rank = Rank::new(60, "wal");
    /// The manifest (`RwLock<Arc<Version>>` of live levels).
    pub const MANIFEST: Rank = Rank::new(50, "manifest");
    /// Per-SST lazily-decoded metadata (pending filter bytes, training
    /// fingerprint).
    pub const SST_META: Rank = Rank::new(40, "sst-meta");
    /// One shard of the sharded block cache. Shards are never nested
    /// with each other (guards are dropped between shards), so a single
    /// rank covers all sixteen.
    pub const CACHE_SHARD: Rank = Rank::new(30, "cache-shard");
    /// The sample-query queue.
    pub const QUERY_QUEUE: Rank = Rank::new(20, "query-queue");
    /// The server's connection-handle registry.
    pub const SERVER_CONNS: Rank = Rank::new(15, "server-conns");
    /// Leaf-level scratch state (e.g. the CPFPR trainers' result-slot
    /// collectors). Never nests over anything.
    pub const SCRATCH: Rank = Rank::new(10, "scratch");
}

/// Receives one event per completed lock hold (on guard drop, and on the
/// release half of a condvar wait). `contended_ns` is time spent blocked
/// acquiring; `hold_ns` is time the guard was held. Only called in
/// instrumented builds.
pub trait LockObserver: Send + Sync + 'static {
    /// Report one acquisition/release cycle of a lock with rank `rank`.
    fn lock_event(&self, rank: Rank, contended_ns: u64, hold_ns: u64);
}

/// True when lock-doctor instrumentation is compiled in (debug build or
/// the `lock-doctor` feature).
pub const fn doctor_enabled() -> bool {
    cfg!(any(debug_assertions, feature = "lock-doctor"))
}

#[cfg(any(debug_assertions, feature = "lock-doctor"))]
mod imp {
    use super::{LockObserver, Rank};
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::fmt;
    use std::mem::ManuallyDrop;
    use std::ops::{Deref, DerefMut};
    use std::panic::Location;
    use std::sync::{Arc, LockResult, OnceLock, PoisonError, TryLockError, WaitTimeoutResult};
    use std::time::{Duration, Instant};

    #[derive(Clone, Copy)]
    struct Held {
        token: u64,
        level: u16,
        name: &'static str,
        site: &'static Location<'static>,
    }

    thread_local! {
        static HELD: RefCell<(u64, Vec<Held>)> = const { RefCell::new((0, Vec::new())) };
    }

    /// First-witness sites for one observed acquisition edge
    /// `from` → `to` ("a thread holding `from` acquired `to`").
    struct Edge {
        from_site: &'static Location<'static>,
        to_site: &'static Location<'static>,
    }

    /// `graph[a][b]` exists iff some thread acquired `b` while holding
    /// `a`. With the strict rank check active a cycle can only appear if
    /// two locks share a level; the graph check catches that case (and
    /// any future relaxation of the rank rule) with real witnesses.
    type Graph = HashMap<&'static str, HashMap<&'static str, Edge>>;

    fn graph() -> &'static std::sync::Mutex<Graph> {
        static GRAPH: OnceLock<std::sync::Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| std::sync::Mutex::new(HashMap::new()))
    }

    fn find_path(g: &Graph, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
        let mut stack = vec![vec![from]];
        let mut seen = vec![from];
        while let Some(path) = stack.pop() {
            let last = path[path.len() - 1];
            if last == to {
                return Some(path);
            }
            if let Some(nexts) = g.get(last) {
                for &n in nexts.keys() {
                    if !seen.contains(&n) {
                        seen.push(n);
                        let mut p = path.clone();
                        p.push(n);
                        stack.push(p);
                    }
                }
            }
        }
        None
    }

    /// Record `held → new` in the global order graph, then fail if the
    /// graph now contains a cycle through the new edge.
    fn record_edge(held: &Held, rank: Rank, site: &'static Location<'static>) {
        let mut g = graph().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        g.entry(held.name)
            .or_default()
            .entry(rank.name())
            .or_insert(Edge { from_site: held.site, to_site: site });
        if let Some(path) = find_path(&g, rank.name(), held.name) {
            let witness = &g[held.name][rank.name()];
            let mut cycle = path.join(" -> ");
            cycle.push_str(" -> ");
            cycle.push_str(rank.name());
            // lint: allow(no-panic): the doctor reports violations by panicking
            panic!(
                "lock-doctor: acquisition-order cycle: {cycle}; closing edge \
                 `{held_name}` (held, acquired at {held_site}) -> `{new_name}` \
                 (acquiring at {new_site}); first witness for that edge: \
                 {w_from} -> {w_to}",
                held_name = held.name,
                held_site = held.site,
                new_name = rank.name(),
                new_site = site,
                w_from = witness.from_site,
                w_to = witness.to_site,
            );
        }
    }

    /// The acquisition check: every held lock must outrank the new one.
    /// Panics name both sites. Called *before* blocking on the lock so a
    /// would-be deadlock is reported instead of hung.
    fn check_acquire(rank: Rank, site: &'static Location<'static>) {
        HELD.with(|held| {
            let held = held.borrow();
            if let Some(lowest) = held.1.iter().min_by_key(|h| h.level) {
                if rank.level() >= lowest.level {
                    // lint: allow(no-panic): the doctor reports violations by panicking
                    panic!(
                        "lock-doctor: rank inversion: acquiring `{new_name}` \
                         (rank {new_level}) at {new_site} while holding \
                         `{held_name}` (rank {held_level}) acquired at \
                         {held_site}; locks must be taken in strictly \
                         decreasing rank order — see the lock hierarchy \
                         table in ARCHITECTURE.md",
                        new_name = rank.name(),
                        new_level = rank.level(),
                        new_site = site,
                        held_name = lowest.name,
                        held_level = lowest.level,
                        held_site = lowest.site,
                    );
                }
            }
            if let Some(top) = held.1.last() {
                let top = *top;
                drop(held);
                record_edge(&top, rank, site);
            }
        });
    }

    /// Push a successfully acquired lock onto the thread's held stack,
    /// returning the token its guard will pop with.
    fn push_held(rank: Rank, site: &'static Location<'static>) -> u64 {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            held.0 += 1;
            let token = held.0;
            held.1.push(Held { token, level: rank.level(), name: rank.name(), site });
            token
        })
    }

    fn pop_held(token: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(i) = held.1.iter().rposition(|h| h.token == token) {
                held.1.remove(i);
            }
        });
    }

    /// The ranks (level, name) of locks the current thread holds,
    /// acquisition order. Test/diagnostic hook.
    pub fn held_ranks() -> Vec<(u16, &'static str)> {
        HELD.with(|held| held.borrow().1.iter().map(|h| (h.level, h.name)).collect())
    }

    struct DoctorShared {
        rank: Rank,
        observer: Option<Arc<dyn LockObserver>>,
    }

    impl DoctorShared {
        fn observe(&self, contended_ns: u64, hold_ns: u64) {
            if let Some(obs) = &self.observer {
                obs.lock_event(self.rank, contended_ns, hold_ns);
            }
        }
    }

    /// Book-keeping one live guard carries.
    struct GuardDoc<'a> {
        shared: &'a DoctorShared,
        token: u64,
        acquired: Instant,
        contended_ns: u64,
    }

    impl GuardDoc<'_> {
        /// Close out this hold: pop the held stack and report the event.
        fn finish(&self) {
            let hold_ns = self.acquired.elapsed().as_nanos() as u64;
            pop_held(self.token);
            self.shared.observe(self.contended_ns, hold_ns);
        }
    }

    /// `lock()`-style acquisition with the doctor checks around an
    /// arbitrary pair of try/block closures. Returns the inner guard (or
    /// poisoned inner guard), the contention time, and the held token.
    fn acquire<G, P>(
        shared: &DoctorShared,
        site: &'static Location<'static>,
        try_acquire: impl FnOnce() -> Result<Result<G, P>, ()>,
        block_acquire: impl FnOnce() -> Result<G, P>,
    ) -> (Result<G, P>, u64, u64) {
        check_acquire(shared.rank, site);
        let (res, contended_ns) = match try_acquire() {
            Ok(res) => (res, 0),
            Err(()) => {
                let start = Instant::now();
                let res = block_acquire();
                (res, start.elapsed().as_nanos() as u64)
            }
        };
        let token = push_held(shared.rank, site);
        (res, contended_ns, token)
    }

    /// A rank-checked [`std::sync::Mutex`].
    pub struct Mutex<T: ?Sized> {
        doc: DoctorShared,
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// A mutex at `rank` in the lock hierarchy.
        pub fn new(rank: Rank, value: T) -> Self {
            Mutex {
                doc: DoctorShared { rank, observer: None },
                inner: std::sync::Mutex::new(value),
            }
        }

        /// A mutex whose hold/contention times are reported to
        /// `observer` (instrumented builds only; the observer is unused
        /// in release builds without `lock-doctor`).
        pub fn with_observer(rank: Rank, value: T, observer: Arc<dyn LockObserver>) -> Self {
            Mutex {
                doc: DoctorShared { rank, observer: Some(observer) },
                inner: std::sync::Mutex::new(value),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire, checking the lock hierarchy. Mirrors
        /// [`std::sync::Mutex::lock`]: a poisoned lock still returns the
        /// (wrapped) guard inside the error.
        #[track_caller]
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let site = Location::caller();
            let (res, contended_ns, token) = acquire(
                &self.doc,
                site,
                || match self.inner.try_lock() {
                    Ok(g) => Ok(Ok(g)),
                    Err(TryLockError::Poisoned(p)) => Ok(Err(p)),
                    Err(TryLockError::WouldBlock) => Err(()),
                },
                || self.inner.lock(),
            );
            let wrap = |inner| MutexGuard {
                inner: ManuallyDrop::new(inner),
                doc: GuardDoc { shared: &self.doc, token, acquired: Instant::now(), contended_ns },
            };
            match res {
                Ok(g) => Ok(wrap(g)),
                Err(p) => Err(PoisonError::new(wrap(p.into_inner()))),
            }
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// Guard for [`Mutex`]; pops the held-lock stack and reports hold
    /// time on drop.
    pub struct MutexGuard<'a, T: ?Sized> {
        inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
        doc: GuardDoc<'a>,
    }

    impl<'a, T: ?Sized> MutexGuard<'a, T> {
        /// Close out the hold and hand back the std guard (for
        /// [`Condvar::wait`], which must pass it to the std condvar
        /// without running our `Drop`).
        fn suspend(mut self) -> (std::sync::MutexGuard<'a, T>, &'a DoctorShared) {
            self.doc.finish();
            let shared = self.doc.shared;
            // SAFETY: `self` is forgotten immediately after, so the
            // inner guard is moved out exactly once and our Drop (which
            // would drop it again) never runs.
            let inner = unsafe { ManuallyDrop::take(&mut self.inner) };
            std::mem::forget(self);
            (inner, shared)
        }

        /// Re-wrap a std guard handed back by a condvar, re-running the
        /// acquisition bookkeeping.
        fn resume(
            inner: std::sync::MutexGuard<'a, T>,
            shared: &'a DoctorShared,
            site: &'static Location<'static>,
        ) -> Self {
            check_acquire(shared.rank, site);
            let token = push_held(shared.rank, site);
            MutexGuard {
                inner: ManuallyDrop::new(inner),
                doc: GuardDoc { shared, token, acquired: Instant::now(), contended_ns: 0 },
            }
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            self.doc.finish();
            // SAFETY: drop runs exactly once; `suspend` forgets `self`
            // before this could run on a moved-out guard.
            unsafe { ManuallyDrop::drop(&mut self.inner) };
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            (**self).fmt(f)
        }
    }

    /// A condition variable for [`Mutex`]. Waiting releases the hold
    /// (popping the held-lock stack, so the doctor knows the lock is
    /// free during the wait) and re-runs the acquisition checks on
    /// wake-up.
    #[derive(Default)]
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// An empty condvar.
        pub fn new() -> Self {
            Condvar { inner: std::sync::Condvar::new() }
        }

        /// Mirror of [`std::sync::Condvar::wait`].
        #[track_caller]
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let site = Location::caller();
            let (inner, shared) = guard.suspend();
            match self.inner.wait(inner) {
                Ok(g) => Ok(MutexGuard::resume(g, shared, site)),
                Err(p) => Err(PoisonError::new(MutexGuard::resume(p.into_inner(), shared, site))),
            }
        }

        /// Mirror of [`std::sync::Condvar::wait_timeout`].
        #[track_caller]
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            let site = Location::caller();
            let (inner, shared) = guard.suspend();
            match self.inner.wait_timeout(inner, dur) {
                Ok((g, t)) => Ok((MutexGuard::resume(g, shared, site), t)),
                Err(p) => {
                    let (g, t) = p.into_inner();
                    Err(PoisonError::new((MutexGuard::resume(g, shared, site), t)))
                }
            }
        }

        /// Wake one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wake all waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// A rank-checked [`std::sync::RwLock`]. Read and write acquisitions
    /// follow the same strictly-decreasing rule (a read lock still
    /// blocks writers, so it participates in deadlock cycles all the
    /// same).
    pub struct RwLock<T: ?Sized> {
        doc: DoctorShared,
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// An rwlock at `rank` in the lock hierarchy.
        pub fn new(rank: Rank, value: T) -> Self {
            RwLock {
                doc: DoctorShared { rank, observer: None },
                inner: std::sync::RwLock::new(value),
            }
        }

        /// An rwlock reporting hold/contention times to `observer`.
        pub fn with_observer(rank: Rank, value: T, observer: Arc<dyn LockObserver>) -> Self {
            RwLock {
                doc: DoctorShared { rank, observer: Some(observer) },
                inner: std::sync::RwLock::new(value),
            }
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Shared acquisition; mirrors [`std::sync::RwLock::read`].
        #[track_caller]
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            let site = Location::caller();
            let (res, contended_ns, token) = acquire(
                &self.doc,
                site,
                || match self.inner.try_read() {
                    Ok(g) => Ok(Ok(g)),
                    Err(TryLockError::Poisoned(p)) => Ok(Err(p)),
                    Err(TryLockError::WouldBlock) => Err(()),
                },
                || self.inner.read(),
            );
            let wrap = |inner| RwLockReadGuard {
                inner: ManuallyDrop::new(inner),
                doc: GuardDoc { shared: &self.doc, token, acquired: Instant::now(), contended_ns },
            };
            match res {
                Ok(g) => Ok(wrap(g)),
                Err(p) => Err(PoisonError::new(wrap(p.into_inner()))),
            }
        }

        /// Exclusive acquisition; mirrors [`std::sync::RwLock::write`].
        #[track_caller]
        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            let site = Location::caller();
            let (res, contended_ns, token) = acquire(
                &self.doc,
                site,
                || match self.inner.try_write() {
                    Ok(g) => Ok(Ok(g)),
                    Err(TryLockError::Poisoned(p)) => Ok(Err(p)),
                    Err(TryLockError::WouldBlock) => Err(()),
                },
                || self.inner.write(),
            );
            let wrap = |inner| RwLockWriteGuard {
                inner: ManuallyDrop::new(inner),
                doc: GuardDoc { shared: &self.doc, token, acquired: Instant::now(), contended_ns },
            };
            match res {
                Ok(g) => Ok(wrap(g)),
                Err(p) => Err(PoisonError::new(wrap(p.into_inner()))),
            }
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// Shared guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        inner: ManuallyDrop<std::sync::RwLockReadGuard<'a, T>>,
        doc: GuardDoc<'a>,
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            self.doc.finish();
            // SAFETY: drop runs exactly once and the guard is never
            // moved out (read guards have no `suspend`).
            unsafe { ManuallyDrop::drop(&mut self.inner) };
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            (**self).fmt(f)
        }
    }

    /// Exclusive guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        inner: ManuallyDrop<std::sync::RwLockWriteGuard<'a, T>>,
        doc: GuardDoc<'a>,
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            self.doc.finish();
            // SAFETY: drop runs exactly once and the guard is never
            // moved out (write guards have no `suspend`).
            unsafe { ManuallyDrop::drop(&mut self.inner) };
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            (**self).fmt(f)
        }
    }
}

#[cfg(not(any(debug_assertions, feature = "lock-doctor")))]
mod imp {
    use super::{LockObserver, Rank};
    use std::fmt;
    use std::sync::{Arc, LockResult};

    /// The ranks of locks the current thread holds. Always empty in
    /// uninstrumented builds.
    pub fn held_ranks() -> Vec<(u16, &'static str)> {
        Vec::new()
    }

    /// Uninstrumented [`std::sync::Mutex`] newtype: the rank is checked
    /// only in instrumented builds, and guards are the std guards
    /// themselves.
    pub struct Mutex<T: ?Sized> {
        inner: std::sync::Mutex<T>,
    }

    /// In uninstrumented builds the guard *is* the std guard — no drop
    /// glue, no timing.
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
    /// Std read guard (uninstrumented builds).
    pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
    /// Std write guard (uninstrumented builds).
    pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
    /// Std condvar (uninstrumented builds): the guard aliases above make
    /// the std wait methods line up exactly.
    pub use std::sync::Condvar;

    impl<T> Mutex<T> {
        /// A mutex at `rank` (unchecked in this build).
        #[inline]
        pub fn new(_rank: Rank, value: T) -> Self {
            Mutex { inner: std::sync::Mutex::new(value) }
        }

        /// Observer variant; the observer is dropped in this build.
        #[inline]
        pub fn with_observer(rank: Rank, value: T, _observer: Arc<dyn LockObserver>) -> Self {
            Mutex::new(rank, value)
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Plain [`std::sync::Mutex::lock`].
        #[inline]
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            self.inner.lock()
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// Uninstrumented [`std::sync::RwLock`] newtype.
    pub struct RwLock<T: ?Sized> {
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// An rwlock at `rank` (unchecked in this build).
        #[inline]
        pub fn new(_rank: Rank, value: T) -> Self {
            RwLock { inner: std::sync::RwLock::new(value) }
        }

        /// Observer variant; the observer is dropped in this build.
        #[inline]
        pub fn with_observer(rank: Rank, value: T, _observer: Arc<dyn LockObserver>) -> Self {
            RwLock::new(rank, value)
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Plain [`std::sync::RwLock::read`].
        #[inline]
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            self.inner.read()
        }

        /// Plain [`std::sync::RwLock::write`].
        #[inline]
        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            self.inner.write()
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }
}

pub use imp::{held_ranks, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A no-op observer handle, handy as a default in tests.
pub fn no_observer() -> Option<Arc<dyn LockObserver>> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(rank::SCRATCH, 1u32);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(rank::SCRATCH, vec![1, 2, 3]);
        assert_eq!(l.read().unwrap().len(), 3);
        l.write().unwrap().push(4);
        assert_eq!(l.read().unwrap().len(), 4);
    }

    #[test]
    fn descending_acquisition_is_fine() {
        let hi = Mutex::new(rank::MEMTABLE, ());
        let lo = Mutex::new(rank::WAL, ());
        let _a = hi.lock().unwrap();
        let _b = lo.lock().unwrap();
        if doctor_enabled() {
            assert_eq!(
                held_ranks(),
                vec![(rank::MEMTABLE.level(), "memtable"), (rank::WAL.level(), "wal")]
            );
        }
    }

    #[test]
    fn held_stack_pops_on_drop() {
        if !doctor_enabled() {
            return;
        }
        let m = Mutex::new(rank::GATE, ());
        {
            let _g = m.lock().unwrap();
            assert_eq!(held_ranks(), vec![(rank::GATE.level(), "gate")]);
        }
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn non_lifo_guard_drop_keeps_stack_consistent() {
        if !doctor_enabled() {
            return;
        }
        let hi = Mutex::new(rank::MEMTABLE, ());
        let lo = Mutex::new(rank::WAL, ());
        let a = hi.lock().unwrap();
        let b = lo.lock().unwrap();
        drop(a); // out of order
        assert_eq!(held_ranks(), vec![(rank::WAL.level(), "wal")]);
        drop(b);
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn observer_sees_hold_events() {
        struct Count(AtomicU64);
        impl LockObserver for Count {
            fn lock_event(&self, rank: Rank, _c: u64, _h: u64) {
                assert_eq!(rank.name(), "scratch");
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let counter = Arc::new(Count(AtomicU64::new(0)));
        let m = Mutex::with_observer(rank::SCRATCH, (), counter.clone());
        drop(m.lock().unwrap());
        drop(m.lock().unwrap());
        if doctor_enabled() {
            assert_eq!(counter.0.load(Ordering::Relaxed), 2);
        }
    }

    #[test]
    fn poisoned_lock_returns_guard_in_error() {
        let m = Arc::new(Mutex::new(rank::SCRATCH, 7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert_eq!(*g, 7);
        if doctor_enabled() {
            assert_eq!(held_ranks().len(), 1);
        }
    }
}

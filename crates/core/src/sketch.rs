//! A fixed-size prefix histogram summarizing *where* a query sample lands
//! in a key range — the "training fingerprint" the adaptive filter
//! lifecycle persists next to each filter.
//!
//! The paper's self-design loop (§4, §6.1) trains each SST's filter on a
//! snapshot of the sample query queue. If the live query distribution later
//! drifts away from the one the filter was trained on, the model's FPR
//! estimate — and the chosen `(l1, l2)` design — silently stop applying.
//! [`QuerySketch`] makes that drift measurable: it buckets the lower bound
//! of every sample query into [`SKETCH_BUCKETS`] equal-width slices of a
//! fixed anchor range (an SST's `[min_key, max_key]`), so two sketches
//! built over the same anchors can be compared with a total-variation
//! distance in `[0, 1]` regardless of sample counts.
//!
//! The sketch is deliberately tiny (64 × `u32` + a total) so it can ride
//! along inside the persistent filter envelope (codec v2) and survive a
//! crash/reopen together with the filter it fingerprints.
//!
//! Each query contributes to two sub-histograms: *where* its lower bound
//! falls ([`POSITION_BUCKETS`] equal slices of the anchor range) and *how
//! long* it is ([`LENGTH_BUCKETS`] log₂ classes). The paper's workload
//! shifts (§6.1, Figs. 7–8) change the range-*length* distribution
//! (uniform 2¹⁵-long ranges vs correlated 32-long ranges) at least as
//! often as the position distribution, and the CPFPR-chosen `(l1, l2)`
//! design is highly sensitive to query length — so both axes must count
//! as drift.

use crate::codec::{ByteReader, CodecError, WireWrite};

/// Buckets for the query-position sub-histogram.
pub const POSITION_BUCKETS: usize = 48;

/// Buckets for the log₂ range-length sub-histogram.
pub const LENGTH_BUCKETS: usize = 16;

/// Total histogram buckets. Fixed: the serialized form depends on it.
pub const SKETCH_BUCKETS: usize = POSITION_BUCKETS + LENGTH_BUCKETS;

/// Serialized size in bytes: `u64` total + [`SKETCH_BUCKETS`] × `u32`.
pub const SKETCH_WIRE_LEN: usize = 8 + SKETCH_BUCKETS * 4;

/// Read 8 bytes of a canonical key starting at byte `skip` as a
/// big-endian `u64` (zero-padded on the right past the key's end).
/// Order-preserving for keys that agree on their first `skip` bytes.
///
/// `skip` is the length of the common prefix of the *anchor* keys: for
/// wide keys (e.g. §7 string workloads) a deep-level SST's `min_key` and
/// `max_key` often share their leading bytes, and a window pinned to
/// byte 0 would collapse every query into one bucket. Skipping the
/// anchors' shared prefix puts the 8-byte window where the file's key
/// range actually varies. Queries outside the anchor range are detected
/// by a full lexicographic comparison *before* windowing (see
/// [`SketchBuilder::observe`]), so the window value only ever positions
/// in-range queries.
fn key_head(key: &[u8], skip: usize) -> u64 {
    let mut b = [0u8; 8];
    if skip < key.len() {
        let n = (key.len() - skip).min(8);
        // Right-align short suffixes (equal-width keys ⇒ equal suffix
        // lengths ⇒ order still preserved), so window differences measure
        // real key-space distance instead of being inflated by 8−n bytes
        // of trailing zero padding — the length classes depend on that.
        b[8 - n..].copy_from_slice(&key[skip..skip + n]);
    }
    u64::from_be_bytes(b)
}

/// A 64-bucket histogram of query positions within an anchor key range.
///
/// Build one with [`QuerySketch::builder`] anchored at a key range, feed it
/// query lower bounds, and compare it to another sketch *built over the
/// same anchors* with [`QuerySketch::divergence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySketch {
    counts: [u32; SKETCH_BUCKETS],
    total: u64,
}

impl Default for QuerySketch {
    fn default() -> Self {
        QuerySketch { counts: [0; SKETCH_BUCKETS], total: 0 }
    }
}

/// Accumulates queries into a [`QuerySketch`] relative to an anchor range.
#[derive(Debug, Clone)]
pub struct SketchBuilder {
    /// Full anchor keys for the in/out-of-range decision.
    min_key: Vec<u8>,
    max_key: Vec<u8>,
    /// Bytes the anchors agree on; the windows below start there.
    skip: usize,
    /// 8-byte windows of the anchors after `skip`.
    lo: u64,
    hi: u64,
    sketch: QuerySketch,
}

impl SketchBuilder {
    /// Record one query `[lo, hi]`: one count in a position bucket (where
    /// `lo` falls within the anchors) and one in a length bucket
    /// (`⌊log₂⌋`-class of the range length).
    pub fn observe(&mut self, query_lo: &[u8], query_hi: &[u8]) {
        // Out-of-range and degenerate cases resolve on the full keys, so
        // the windowed arithmetic below only ever positions queries that
        // genuinely fall inside the anchor range.
        let pos = if self.hi <= self.lo || query_lo[..] <= self.min_key[..] {
            0
        } else if query_lo[..] >= self.max_key[..] {
            POSITION_BUCKETS - 1
        } else {
            let k = key_head(query_lo, self.skip);
            // Scale (k - lo) / (hi - lo) to a bucket without overflow.
            (k.saturating_sub(self.lo) as u128 * POSITION_BUCKETS as u128
                / (self.hi - self.lo) as u128)
                .min(POSITION_BUCKETS as u128 - 1) as usize
        };
        let len = key_head(query_hi, self.skip).saturating_sub(key_head(query_lo, self.skip));
        // Length class: 0 for point queries, else 1 + ⌊log₂ len⌋, clamped.
        let class = (64 - len.leading_zeros() as usize).min(LENGTH_BUCKETS - 1);
        self.sketch.counts[pos] = self.sketch.counts[pos].saturating_add(1);
        let lb = POSITION_BUCKETS + class;
        self.sketch.counts[lb] = self.sketch.counts[lb].saturating_add(1);
        self.sketch.total += 1;
    }

    /// Finish and return the sketch.
    pub fn finish(self) -> QuerySketch {
        self.sketch
    }
}

impl QuerySketch {
    /// Start a builder anchored at `[min_key, max_key]` (canonical keys —
    /// typically an SST file's key range). Both sketches of a comparison
    /// must use the same anchors.
    pub fn builder(min_key: &[u8], max_key: &[u8]) -> SketchBuilder {
        // Pin the 8-byte windows past the anchors' common prefix so wide
        // keys whose leading bytes agree across the whole file still get
        // position/length resolution (see `key_head`).
        let skip = min_key.iter().zip(max_key.iter()).take_while(|(a, b)| a == b).count();
        SketchBuilder {
            min_key: min_key.to_vec(),
            max_key: max_key.to_vec(),
            skip,
            lo: key_head(min_key, skip),
            hi: key_head(max_key, skip),
            sketch: QuerySketch::default(),
        }
    }

    /// Build directly from an iterator of query `(lo, hi)` bounds.
    pub fn from_queries<'a>(
        queries: impl IntoIterator<Item = (&'a [u8], &'a [u8])>,
        min_key: &[u8],
        max_key: &[u8],
    ) -> QuerySketch {
        let mut b = Self::builder(min_key, max_key);
        for (lo, hi) in queries {
            b.observe(lo, hi);
        }
        b.finish()
    }

    /// Queries observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when no queries were observed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Drift between two sketches built over the same anchors: the *larger*
    /// of the total-variation distances of the position and length
    /// sub-histograms (`0.5 · Σ |p_i − q_i|` each), in `[0, 1]`. Taking the
    /// max means a pure position shift and a pure range-length shift both
    /// register at full strength. `0` means indistinguishable; `1` means
    /// disjoint on some axis. Comparing with an empty sketch returns `0`
    /// (no evidence of drift).
    pub fn divergence(&self, other: &QuerySketch) -> f64 {
        if self.total == 0 || other.total == 0 {
            return 0.0;
        }
        let (sn, on) = (self.total as f64, other.total as f64);
        let tv = |range: std::ops::Range<usize>| {
            let mut t = 0.0;
            for i in range {
                t += (self.counts[i] as f64 / sn - other.counts[i] as f64 / on).abs();
            }
            t / 2.0
        };
        tv(0..POSITION_BUCKETS).max(tv(POSITION_BUCKETS..SKETCH_BUCKETS))
    }

    /// Serialize to the fixed [`SKETCH_WIRE_LEN`]-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SKETCH_WIRE_LEN);
        out.put_u64(self.total);
        for &c in &self.counts {
            out.put_u32(c);
        }
        out
    }

    /// Decode the wire form written by [`QuerySketch::encode`].
    pub fn decode(bytes: &[u8]) -> Result<QuerySketch, CodecError> {
        let mut r = ByteReader::new(bytes);
        let total = r.u64()?;
        let mut counts = [0u32; SKETCH_BUCKETS];
        for c in counts.iter_mut() {
            *c = r.u32()?;
        }
        r.finish()?;
        Ok(QuerySketch { counts, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::u64_key;

    /// Sketch of width-8 ranges `[p, p+8]` at the given points.
    fn sketch_of(points: &[u64], lo: u64, hi: u64) -> QuerySketch {
        let bounds: Vec<([u8; 8], [u8; 8])> =
            points.iter().map(|&p| (u64_key(p), u64_key(p.saturating_add(8)))).collect();
        QuerySketch::from_queries(
            bounds.iter().map(|(l, h)| (l.as_slice(), h.as_slice())),
            &u64_key(lo),
            &u64_key(hi),
        )
    }

    #[test]
    fn identical_distributions_have_zero_divergence() {
        let pts: Vec<u64> = (0..1000).map(|i| i * 97 % 10_000).collect();
        let a = sketch_of(&pts, 0, 10_000);
        let b = sketch_of(&pts, 0, 10_000);
        assert_eq!(a.divergence(&b), 0.0);
        assert_eq!(a.total(), 1000);
    }

    #[test]
    fn disjoint_distributions_have_full_divergence() {
        let a = sketch_of(&(0..500).collect::<Vec<_>>(), 0, 100_000);
        let b = sketch_of(&(90_000..90_500).collect::<Vec<_>>(), 0, 100_000);
        assert!((a.divergence(&b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_distribution_resampled_is_close() {
        // Two independent samples of one distribution must diverge far
        // less than a genuine shift does.
        let a: Vec<u64> = (0..2000u64).map(|i| (i.wrapping_mul(2_654_435_761)) % 50_000).collect();
        let b: Vec<u64> =
            (0..2000u64).map(|i| (i.wrapping_mul(0x9E37_79B9) + 7) % 50_000).collect();
        let shifted: Vec<u64> =
            (0..2000u64).map(|i| 50_000 + (i.wrapping_mul(2_654_435_761)) % 1_000).collect();
        let sa = sketch_of(&a, 0, 100_000);
        let sb = sketch_of(&b, 0, 100_000);
        let ss = sketch_of(&shifted, 0, 100_000);
        assert!(sa.divergence(&sb) < 0.15, "resample: {}", sa.divergence(&sb));
        assert!(sa.divergence(&ss) > 0.8, "shift: {}", sa.divergence(&ss));
    }

    #[test]
    fn out_of_range_queries_clamp_to_end_buckets() {
        let a = sketch_of(&[0, 1, 2], 1000, 2000);
        let b = sketch_of(&[5000, 6000], 1000, 2000);
        assert!((a.divergence(&b) - 1.0).abs() < 1e-9, "ends are distinct buckets");
    }

    #[test]
    fn degenerate_anchor_range_is_safe() {
        let s = sketch_of(&[5, 10, 15], 42, 42);
        assert_eq!(s.total(), 3);
        assert_eq!(s.divergence(&s), 0.0);
    }

    #[test]
    fn empty_sketch_never_signals_drift() {
        let a = QuerySketch::default();
        let b = sketch_of(&[1, 2, 3], 0, 100);
        assert!(a.is_empty());
        assert_eq!(a.divergence(&b), 0.0);
        assert_eq!(b.divergence(&a), 0.0);
    }

    #[test]
    fn wire_roundtrip() {
        let s = sketch_of(&(0..300).map(|i| i * 31).collect::<Vec<_>>(), 0, 10_000);
        let bytes = s.encode();
        assert_eq!(bytes.len(), SKETCH_WIRE_LEN);
        let back = QuerySketch::decode(&bytes).unwrap();
        assert_eq!(back, s);
        // Truncations fail cleanly.
        for cut in 0..bytes.len() {
            assert!(QuerySketch::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(QuerySketch::decode(&long).is_err());
    }

    #[test]
    fn range_length_shift_alone_registers_as_drift() {
        // Same positions, very different lengths: the length axis must
        // carry the signal even though the position histograms agree.
        let pos: Vec<u64> = (0..1000).map(|i| i * 64 % 60_000).collect();
        let short: Vec<([u8; 8], [u8; 8])> =
            pos.iter().map(|&p| (u64_key(p), u64_key(p + 16))).collect();
        let long: Vec<([u8; 8], [u8; 8])> =
            pos.iter().map(|&p| (u64_key(p), u64_key(p + (1 << 15)))).collect();
        let (a0, a1) = (u64_key(0), u64_key(100_000));
        let s = QuerySketch::from_queries(short.iter().map(|(l, h)| (&l[..], &h[..])), &a0, &a1);
        let l = QuerySketch::from_queries(long.iter().map(|(l, h)| (&l[..], &h[..])), &a0, &a1);
        assert!((s.divergence(&l) - 1.0).abs() < 1e-9, "got {}", s.divergence(&l));
    }

    #[test]
    fn wide_keys_with_shared_prefix_still_resolve_drift() {
        // 16-byte keys that all agree on their first 8 bytes (a deep-level
        // SST of string keys): the window must move past the shared prefix
        // instead of collapsing every query into one bucket.
        let wide = |tail: u64| {
            let mut k = vec![0xABu8; 16];
            k[8..16].copy_from_slice(&tail.to_be_bytes());
            k
        };
        let (min, max) = (wide(0), wide(1 << 40));
        let sketch = |base: u64| {
            let bounds: Vec<(Vec<u8>, Vec<u8>)> = (0..200u64)
                .map(|i| (wide(base + (i << 28)), wide(base + (i << 28) + 64)))
                .collect();
            QuerySketch::from_queries(
                bounds.iter().map(|(l, h)| (l.as_slice(), h.as_slice())),
                &min,
                &max,
            )
        };
        let a = sketch(0);
        let b = sketch(0);
        let shifted = sketch(1 << 39);
        assert_eq!(a.divergence(&b), 0.0);
        assert!(
            a.divergence(&shifted) > 0.5,
            "position shift inside the shared-prefix keyspace must register: {}",
            a.divergence(&shifted)
        );
    }

    #[test]
    fn short_width_keys_bucket_consistently() {
        // 4-byte keys: head is zero-padded, order preserved.
        let lo = [0u8, 0, 0, 0];
        let hi = [0xFFu8, 0, 0, 0];
        let mut b = QuerySketch::builder(&lo, &hi);
        b.observe(&[0x01, 0, 0, 0], &[0x02, 0, 0, 0]);
        b.observe(&[0xF0, 0, 0, 0], &[0xF1, 0, 0, 0]);
        let s = b.finish();
        assert_eq!(s.total(), 2);
        let mut b2 = QuerySketch::builder(&lo, &hi);
        b2.observe(&[0x01, 0, 0, 0], &[0x02, 0, 0, 0]);
        b2.observe(&[0xF0, 0, 0, 0], &[0xF1, 0, 0, 0]);
        assert_eq!(s.divergence(&b2.finish()), 0.0);
    }
}

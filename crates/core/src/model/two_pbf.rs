//! CPFPR model for a pair of prefix Bloom filters — Eq. 2–4 of the paper.
//!
//! The arXiv rendering of Eq. 4 subtracts the end-region and middle-region
//! "all-negative" terms; independence of the per-region probes makes the
//! consistent form a product (DESIGN.md §2.3). With `p1`/`p2` the two
//! filters' point FPRs, `w = l2 - l1`, `q1 = |Q_l1|`:
//!
//! ```text
//! P(no FP) = f_L · f_R · ((1-p1) + p1·(1-p2)^(2^w))^(q1 - 2)
//! f_end    = (1-p2)^|end|                 if the end l1-region holds a key
//!            (1-p1) + p1·(1-p2)^|end|     otherwise
//! ```
//!
//! and the binomial sum over middle-region false positives collapses by the
//! binomial theorem — which also removes the overflow the paper reports for
//! ranges beyond 2^15 (§4.3, Table 2 discussion).

use super::{extract_contexts, BitScan, QueryCtx, COUNT_SATURATION};
use crate::key::get_bit;
use crate::keyset::KeySet;
use crate::sample::SampleQueries;
use proteus_amq::standard_bloom_fpr;

/// A 2PBF design: two prefix lengths and the memory split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPbfDesign {
    /// Prefix length of the first (coarser) filter, in bits.
    pub l1: usize,
    /// Prefix length of the second (finer) filter, in bits.
    pub l2: usize,
    /// Fraction of memory given to the first (shorter-prefix) filter.
    pub split: f64,
    /// FPR the model predicts for this design.
    pub expected_fpr: f64,
}

/// Options for the 2PBF design search.
#[derive(Debug, Clone)]
pub struct TwoPbfOptions {
    /// Memory splits to evaluate; the paper tests one symmetric and two
    /// asymmetric allocations (§4.3): 40-60, 50-50, 60-40.
    pub splits: Vec<f64>,
    /// Evaluate at most this many l2 values per l1 (0 = all).
    pub max_l2_values: usize,
    /// Parallelize accumulation across l1 candidates.
    pub threads: usize,
}

impl Default for TwoPbfOptions {
    fn default() -> Self {
        TwoPbfOptions { splits: vec![0.4, 0.5, 0.6], max_l2_values: 0, threads: 1 }
    }
}

/// Per-query geometry for one (l1, l2) pair, the inputs to Eq. 4.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    /// |Q_l1| (saturating).
    q1: u64,
    /// |L|, |R| at l2 granularity (saturating).
    left: u64,
    right: u64,
    /// |Q_l2| for the single-region case.
    q2: u64,
    single: bool,
    first_occ: bool,
    last_occ: bool,
    guaranteed: bool,
}

/// The 2PBF model: evaluates expected FPR per design directly (the paper
/// notes 2PBF modeling is the expensive case because the first filter's
/// probabilistic outcomes must all be considered; the closed form keeps it
/// to a handful of exponentials per query-design pair).
#[derive(Debug)]
pub struct TwoPbfModel {
    /// Summed P(FP) per (l1 index, l2, split index).
    fp_sums: Vec<f64>,
    l1_values: Vec<usize>,
    l2_values: Vec<usize>,
    splits: Vec<f64>,
    bits: usize,
    n_samples: u64,
}

impl TwoPbfModel {
    /// Run the 2PBF modeling pass (Eq. 4) over every feasible
    /// `(l1, l2, split)` under the memory budget.
    pub fn build(
        keys: &KeySet,
        samples: &SampleQueries,
        m_bits: u64,
        opts: &TwoPbfOptions,
    ) -> Self {
        let bits = keys.bits();
        let l1_values: Vec<usize> = (1..bits).collect();
        let l2_values: Vec<usize> = if opts.max_l2_values == 0 || opts.max_l2_values >= bits {
            (2..=bits).collect()
        } else {
            let n = opts.max_l2_values;
            (1..=n).map(|i| ((i * (bits - 1)).div_ceil(n) + 1).min(bits)).collect()
        };
        let ctxs = extract_contexts(keys, samples);
        let n_samples = samples.len() as u64;
        let n_l2 = l2_values.len();
        let n_s = opts.splits.len();

        // Precompute point FPRs per prefix length and split.
        let p1_table: Vec<Vec<f64>> = opts
            .splits
            .iter()
            .map(|&s| {
                (0..=bits)
                    .map(|l| {
                        standard_bloom_fpr((m_bits as f64 * s) as u64, keys.unique_prefixes(l))
                    })
                    .collect()
            })
            .collect();
        let p2_table: Vec<Vec<f64>> = opts
            .splits
            .iter()
            .map(|&s| {
                (0..=bits)
                    .map(|l| {
                        standard_bloom_fpr(
                            (m_bits as f64 * (1.0 - s)) as u64,
                            keys.unique_prefixes(l),
                        )
                    })
                    .collect()
            })
            .collect();

        let eval_l1 = |l1: usize| -> Vec<f64> {
            let mut sums = vec![0.0f64; n_l2 * n_s];
            for (i, (lo, hi)) in samples.iter().enumerate() {
                let ctx = ctxs[i];
                let mut scan = BitScan::seed(lo, hi, l1);
                let q1 = crate::key::prefix_count(lo, hi, l1, COUNT_SATURATION);
                let mut vi = 0usize;
                while vi < n_l2 && l2_values[vi] <= l1 {
                    vi += 1;
                }
                if vi >= n_l2 {
                    continue;
                }
                #[allow(clippy::needless_range_loop)] // l2 indexes two parallel tables
                for l2 in l1 + 1..=bits {
                    scan.step(get_bit(lo, l2 - 1), get_bit(hi, l2 - 1));
                    if l2_values[vi] != l2 {
                        continue;
                    }
                    let g = geometry(ctx, l1, l2, q1, &scan);
                    for (si, _) in opts.splits.iter().enumerate() {
                        let p1 = p1_table[si][l1];
                        let p2 = p2_table[si][l2];
                        sums[(vi * n_s) + si] += fp_probability(&g, p1, p2, l2 - l1);
                    }
                    vi += 1;
                    if vi >= n_l2 {
                        break;
                    }
                }
            }
            sums
        };

        let per_l1: Vec<Vec<f64>> = if opts.threads > 1 {
            let mut results: Vec<Option<Vec<f64>>> = (0..l1_values.len()).map(|_| None).collect();
            let next = std::sync::atomic::AtomicUsize::new(0);
            let slots = crate::sync::Mutex::new(crate::sync::rank::SCRATCH, &mut results);
            std::thread::scope(|scope| {
                for _ in 0..opts.threads.min(l1_values.len().max(1)) {
                    scope.spawn(|| loop {
                        let c = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if c >= l1_values.len() {
                            break;
                        }
                        let r = eval_l1(l1_values[c]);
                        // A worker panic propagates out of the scope, so a
                        // poisoned scratch lock is unreachable here; recover
                        // rather than panic to keep this path panic-free.
                        slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner)[c] =
                            Some(r);
                    });
                }
            });
            // Every index was claimed by exactly one worker and the scope
            // joined them all, so each slot is filled; `unwrap_or_default`
            // keeps positional alignment without a panic path.
            results.into_iter().map(Option::unwrap_or_default).collect()
        } else {
            l1_values.iter().map(|&l1| eval_l1(l1)).collect()
        };

        let mut fp_sums = Vec::with_capacity(l1_values.len() * n_l2 * n_s);
        for sums in per_l1 {
            fp_sums.extend(sums);
        }
        TwoPbfModel { fp_sums, l1_values, l2_values, splits: opts.splits.clone(), bits, n_samples }
    }

    /// Expected FPR of design `(l1, l2, split_index)`.
    pub fn expected_fpr(&self, l1: usize, l2: usize, split_idx: usize) -> Option<f64> {
        if self.n_samples == 0 {
            return Some(0.0);
        }
        let ci = self.l1_values.iter().position(|&v| v == l1)?;
        let li = self.l2_values.iter().position(|&v| v == l2)?;
        let idx = (ci * self.l2_values.len() + li) * self.splits.len() + split_idx;
        self.fp_sums.get(idx).map(|&s| s / self.n_samples as f64)
    }

    /// Best design over the whole space (ties to later candidates).
    pub fn best_design(&self) -> TwoPbfDesign {
        let mut best = TwoPbfDesign { l1: 1, l2: 2, split: 0.5, expected_fpr: f64::INFINITY };
        for (ci, &l1) in self.l1_values.iter().enumerate() {
            for (li, &l2) in self.l2_values.iter().enumerate() {
                if l2 <= l1 {
                    continue;
                }
                for (si, &split) in self.splits.iter().enumerate() {
                    let idx = (ci * self.l2_values.len() + li) * self.splits.len() + si;
                    let fpr = self.fp_sums[idx] / self.n_samples.max(1) as f64;
                    if fpr <= best.expected_fpr {
                        best = TwoPbfDesign { l1, l2, split, expected_fpr: fpr };
                    }
                }
            }
        }
        best
    }

    /// Key width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The memory splits the model evaluated.
    pub fn splits(&self) -> &[f64] {
        &self.splits
    }
}

fn geometry(ctx: QueryCtx, l1: usize, l2: usize, q1: u64, scan: &BitScan) -> Geometry {
    Geometry {
        q1,
        left: scan.left_count(),
        right: scan.right_count(),
        q2: scan.regions(),
        single: ctx.single_region(l1),
        first_occ: ctx.first_occupied(l1),
        last_occ: ctx.last_occupied(l1),
        guaranteed: ctx.lcp_total() >= l2,
    }
}

/// Eq. 4 in product form: the probability this empty query produces a false
/// positive.
fn fp_probability(g: &Geometry, p1: f64, p2: f64, w: usize) -> f64 {
    if g.guaranteed {
        return 1.0;
    }
    let log1mp2 = if p2 >= 1.0 { f64::NEG_INFINITY } else { (1.0 - p2).ln() };
    // (1-p2)^n with saturating n.
    let pow2 = |n: u64| -> f64 {
        if n == 0 {
            1.0
        } else if log1mp2 == f64::NEG_INFINITY {
            0.0
        } else {
            (n as f64 * log1mp2).exp()
        }
    };
    if g.single {
        // One l1-region; occupied iff the query survived the guaranteed
        // check while lcp(Q,K) >= l1.
        let clear2 = pow2(g.q2);
        let no_fp = if g.first_occ || g.last_occ { clear2 } else { (1.0 - p1) + p1 * clear2 };
        return 1.0 - no_fp;
    }
    let f_left = if g.first_occ { pow2(g.left) } else { (1.0 - p1) + p1 * pow2(g.left) };
    let f_right = if g.last_occ { pow2(g.right) } else { (1.0 - p1) + p1 * pow2(g.right) };
    let region = if w >= 63 { COUNT_SATURATION } else { 1u64 << w };
    let g_mid = (1.0 - p1) + p1 * pow2(region);
    let n_mid = g.q1.saturating_sub(2);
    let mids = if n_mid == 0 {
        1.0
    } else if g_mid <= 0.0 {
        0.0
    } else {
        (n_mid as f64 * g_mid.ln()).exp()
    };
    (1.0 - f_left * f_right * mids).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::u64_key;

    fn splitmix(s: &mut u64) -> u64 {
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn setup(n_keys: usize, n_q: usize, rmax: u64) -> (KeySet, SampleQueries) {
        let mut s = 42u64;
        let keys: Vec<u64> = (0..n_keys).map(|_| splitmix(&mut s)).collect();
        let ks = KeySet::from_u64(&keys);
        let mut q = SampleQueries::new(8);
        while q.len() < n_q {
            let lo = splitmix(&mut s) % (u64::MAX - rmax - 2);
            let hi = lo + 2 + splitmix(&mut s) % rmax;
            let (l, h) = (u64_key(lo), u64_key(hi));
            if !ks.range_overlaps(&l, &h) {
                q.push(&l, &h);
            }
        }
        (ks, q)
    }

    #[test]
    fn fp_probability_degenerate_cases() {
        let g = Geometry {
            q1: 5,
            left: 3,
            right: 2,
            q2: 100,
            single: false,
            first_occ: false,
            last_occ: false,
            guaranteed: true,
        };
        assert_eq!(fp_probability(&g, 0.01, 0.01, 10), 1.0);

        // Perfect filters (p = 0) and unoccupied ends: no false positives.
        let g = Geometry { guaranteed: false, ..g };
        assert_eq!(fp_probability(&g, 0.0, 0.0, 10), 0.0);

        // Occupied end with p2 = 1: certain false positive.
        let g = Geometry { first_occ: true, ..g };
        assert!((fp_probability(&g, 0.0, 1.0, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fp_probability_monotone_in_p() {
        let g = Geometry {
            q1: 10,
            left: 4,
            right: 7,
            q2: 1000,
            single: false,
            first_occ: true,
            last_occ: false,
            guaranteed: false,
        };
        let mut last = 0.0;
        for i in 1..20 {
            let p = i as f64 * 0.05;
            let fp = fp_probability(&g, p, p, 8);
            assert!(fp >= last - 1e-12, "monotone in p: {fp} < {last}");
            last = fp;
        }
    }

    #[test]
    fn single_region_uses_q2() {
        // Narrow query, occupied region: FP prob = 1 - (1-p2)^q2 regardless
        // of p1.
        let g = Geometry {
            q1: 1,
            left: 9,
            right: 9,
            q2: 9,
            single: true,
            first_occ: true,
            last_occ: true,
            guaranteed: false,
        };
        let fp_a = fp_probability(&g, 0.9, 0.1, 8);
        let fp_b = fp_probability(&g, 0.0, 0.1, 8);
        assert!((fp_a - fp_b).abs() < 1e-12);
        assert!((fp_a - (1.0 - 0.9f64.powi(9))).abs() < 1e-9);
    }

    #[test]
    fn model_builds_and_selects() {
        let (keys, samples) = setup(2000, 300, 1 << 12);
        let m = 2000u64 * 12;
        let opts = TwoPbfOptions { max_l2_values: 16, ..Default::default() };
        let model = TwoPbfModel::build(&keys, &samples, m, &opts);
        let design = model.best_design();
        assert!(design.l1 < design.l2);
        assert!(design.expected_fpr.is_finite());
        assert!((0.0..=1.0).contains(&design.expected_fpr));
        // The chosen design must beat (or match) a deliberately bad one
        // (both prefixes at maximum length).
        let bad = model.expected_fpr(63, 64, 1).unwrap();
        assert!(design.expected_fpr <= bad + 1e-12);
    }

    #[test]
    fn threading_is_deterministic() {
        let (keys, samples) = setup(500, 100, 256);
        let m = 500u64 * 10;
        let opts = TwoPbfOptions { max_l2_values: 8, ..Default::default() };
        let a = TwoPbfModel::build(&keys, &samples, m, &opts);
        let b = TwoPbfModel::build(&keys, &samples, m, &TwoPbfOptions { threads: 4, ..opts });
        for l1 in [5usize, 20, 40] {
            for &l2 in b.l2_values.clone().iter() {
                if l2 <= l1 {
                    continue;
                }
                for si in 0..3 {
                    let fa = a.expected_fpr(l1, l2, si);
                    let fb = b.expected_fpr(l1, l2, si);
                    match (fa, fb) {
                        (Some(x), Some(y)) => assert!((x - y).abs() < 1e-12),
                        (None, None) => {}
                        other => panic!("mismatch {other:?}"),
                    }
                }
            }
        }
    }
}

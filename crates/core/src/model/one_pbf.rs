//! CPFPR model for a single prefix Bloom filter — Eq. 1 of the paper.
//!
//! For an empty query Q and a prefix length `l`:
//!
//! ```text
//! P_fp(Q) = 1 - (1-p)^|Q_l|   if lcp(Q,K) < l
//!           1                 if l ≤ lcp(Q,K)
//! ```

use super::{extract_contexts, BitScan, ProbeBins};
use crate::key::get_bit;
use crate::keyset::KeySet;
use crate::sample::SampleQueries;
use proteus_amq::standard_bloom_fpr;

/// Accumulated model state for every candidate prefix length of a 1PBF.
#[derive(Debug, Clone)]
pub struct OnePbfModel {
    /// `bins[l]` for prefix lengths `1..=bits` (index 0 unused).
    bins: Vec<ProbeBins>,
    n_samples: u64,
    bits: usize,
}

/// A selected 1PBF design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnePbfDesign {
    /// Chosen prefix length in bits.
    pub prefix_len: usize,
    /// Modeled expected FPR.
    pub expected_fpr: f64,
}

impl OnePbfModel {
    /// Scan the sample queries once, accumulating probe-count bins for every
    /// prefix length.
    pub fn build(keys: &KeySet, samples: &SampleQueries) -> Self {
        let bits = keys.bits();
        let ctxs = extract_contexts(keys, samples);
        let mut bins: Vec<ProbeBins> = vec![ProbeBins::default(); bits + 1];
        for (i, (lo, hi)) in samples.iter().enumerate() {
            let ctx = ctxs[i];
            let lcp_total = ctx.lcp_total();
            let mut scan = BitScan::seed(lo, hi, 0);
            for (l, bin) in bins.iter_mut().enumerate().skip(1) {
                scan.step(get_bit(lo, l - 1), get_bit(hi, l - 1));
                if l <= lcp_total {
                    bin.guaranteed += 1;
                } else {
                    bin.add(scan.regions());
                }
            }
        }
        OnePbfModel { bins, n_samples: samples.len() as u64, bits }
    }

    /// Expected FPR (Eq. 1, batched over bins) for prefix length `l` given
    /// `m_bits` of Bloom memory.
    pub fn expected_fpr(&self, keys: &KeySet, l: usize, m_bits: u64) -> f64 {
        let p = standard_bloom_fpr(m_bits, keys.unique_prefixes(l));
        self.bins[l].expected_fpr(p, self.n_samples)
    }

    /// Best design over all prefix lengths (ties favor longer prefixes,
    /// matching Algorithm 1's `≤` comparisons).
    pub fn best_design(&self, keys: &KeySet, m_bits: u64) -> OnePbfDesign {
        let mut best = OnePbfDesign { prefix_len: 1, expected_fpr: f64::INFINITY };
        for l in 1..=self.bits {
            let fpr = self.expected_fpr(keys, l, m_bits);
            if fpr <= best.expected_fpr {
                best = OnePbfDesign { prefix_len: l, expected_fpr: fpr };
            }
        }
        best
    }

    /// Sample queries the model was accumulated from.
    pub fn n_samples(&self) -> u64 {
        self.n_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::u64_key;

    fn uniform_keys(n: u64, seed: u64) -> Vec<u64> {
        // splitmix-based deterministic pseudo-uniform keys
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    /// Build empty uniform range queries against the key set.
    fn empty_uniform_queries(keys: &KeySet, n: usize, rmax: u64, seed: u64) -> SampleQueries {
        let mut s = seed;
        let mut rng = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut out = SampleQueries::new(8);
        while out.len() < n {
            let lo = rng() % (u64::MAX - rmax);
            let hi = lo + 2 + rng() % rmax.max(1);
            let (lo_k, hi_k) = (u64_key(lo), u64_key(hi));
            if !keys.range_overlaps(&lo_k, &hi_k) {
                out.push(&lo_k, &hi_k);
            }
        }
        out
    }

    #[test]
    fn short_prefixes_probe_few_regions() {
        let keys = KeySet::from_u64(&uniform_keys(2000, 1));
        let samples = empty_uniform_queries(&keys, 500, 1 << 10, 7);
        let model = OnePbfModel::build(&keys, &samples);
        // At l = 64 - 10, each query spans at most 2 regions; the expected
        // FPR with generous memory should be near the Bloom point FPR.
        let m = 2000 * 16;
        let fpr_coarse = model.expected_fpr(&keys, 54, m);
        let fpr_full = model.expected_fpr(&keys, 64, m);
        assert!(fpr_coarse < fpr_full, "coarse {fpr_coarse} vs full {fpr_full}");
    }

    #[test]
    fn too_short_prefixes_are_guaranteed_fps() {
        // With keys uniform over the full 64-bit space, 2000 keys have
        // lcp(Q,K) around 11+ bits on average — prefix length 1 or 2 is
        // indistinguishable (every region is occupied).
        let keys = KeySet::from_u64(&uniform_keys(2000, 3));
        let samples = empty_uniform_queries(&keys, 300, 1 << 8, 11);
        let model = OnePbfModel::build(&keys, &samples);
        let fpr = model.expected_fpr(&keys, 2, 2000 * 16);
        assert!(fpr > 0.95, "2-bit prefixes should be ~always occupied: {fpr}");
    }

    #[test]
    fn best_design_balances_range_and_proximity() {
        let keys = KeySet::from_u64(&uniform_keys(5000, 5));
        let samples = empty_uniform_queries(&keys, 500, 1 << 12, 13);
        let model = OnePbfModel::build(&keys, &samples);
        let design = model.best_design(&keys, 5000 * 10);
        // Uniform queries with RMAX 2^12: the classic sweet spot is at or
        // below 64 - log2(RMAX) = 52 bits (Fig. 4a), well above the
        // occupied-region cliff.
        assert!(design.prefix_len <= 53, "chose {}", design.prefix_len);
        assert!(design.prefix_len >= 12, "chose {}", design.prefix_len);
        assert!(design.expected_fpr < 0.2, "fpr {}", design.expected_fpr);
    }

    #[test]
    fn guaranteed_fraction_is_monotone_in_prefix_len() {
        let keys = KeySet::from_u64(&uniform_keys(1000, 9));
        let samples = empty_uniform_queries(&keys, 200, 16, 17);
        let model = OnePbfModel::build(&keys, &samples);
        for l in 1..64 {
            assert!(
                model.bins[l].guaranteed >= model.bins[l + 1].guaranteed,
                "guaranteed counts must shrink with longer prefixes"
            );
        }
    }
}

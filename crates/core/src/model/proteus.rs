//! CPFPR model for Proteus (trie + prefix Bloom filter) — Eq. 5 and
//! Algorithm 1 of the paper.
//!
//! For trie depth `l1` and Bloom prefix length `l2` (`l1 < l2`):
//!
//! ```text
//! P_fp(Q) = 0                         if lcp(Q,K) < l1      (trie resolves)
//!           1 - (1-p)^(I2|L| + I3|R|) if l1 ≤ lcp(Q,K) < l2 (ends reach BF)
//!           1                         if l2 ≤ lcp(Q,K)      (indistinguishable)
//! ```
//!
//! where I2/I3 indicate whether the first/last `l1`-region of Q is occupied
//! by a key, and |L|, |R| are the `l2`-prefix counts inside those regions.
//! When Q fits inside a single occupied `l1`-region the probe count is
//! |Q_l2| (the region is shared, not doubled).

use super::{extract_contexts, BitScan, ProbeBins, QueryCtx};
use crate::key::get_bit;
use crate::keyset::KeySet;
use crate::sample::SampleQueries;
use proteus_amq::standard_bloom_fpr;

/// A Proteus design point: trie depth and Bloom prefix length, in bits.
/// `l2 == 0` means "no Bloom filter" (trie-only); `l1 == 0` means "no trie"
/// (pure prefix Bloom filter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProteusDesign {
    /// Trie depth `l1` in bits (byte-aligned; 0 = no trie).
    pub trie_depth_bits: usize,
    /// Bloom prefix length `l2` in bits (0 = no Bloom filter).
    pub bloom_prefix_len: usize,
    /// FPR the CPFPR model predicts for this design.
    pub expected_fpr: f64,
    /// Estimated trie memory at this design (bits).
    pub trie_mem_bits: u64,
}

/// Options controlling the design search.
#[derive(Debug, Clone)]
pub struct ProteusModelOptions {
    /// Evaluate at most this many Bloom prefix lengths per trie depth,
    /// uniformly spaced (§7.2's coarse search for long keys; 0 = all).
    pub max_bloom_lengths: usize,
    /// Parallelize accumulation across trie depths.
    pub threads: usize,
}

impl Default for ProteusModelOptions {
    fn default() -> Self {
        ProteusModelOptions { max_bloom_lengths: 0, threads: 1 }
    }
}

/// Accumulated per-design probe statistics for Proteus.
#[derive(Debug, Clone)]
pub struct ProteusModel {
    /// Trie depth candidates in bits (byte-aligned, ascending, starting at 0).
    l1_candidates: Vec<usize>,
    /// Estimated trie memory per candidate.
    trie_mem: Vec<u64>,
    /// Queries resolved by the trie alone, per candidate.
    resolved: Vec<u64>,
    /// `bins[c][l2]` for candidate `c`; index l2 in bits (0 unused).
    bins: Vec<Vec<ProbeBins>>,
    /// Which l2 values were evaluated (per candidate, shared list).
    l2_values: Vec<usize>,
    n_samples: u64,
}

impl ProteusModel {
    /// Run the modeling pass of Algorithm 1: extract per-query context and
    /// accumulate probe-count bins for every feasible (l1, l2) design under
    /// the memory budget `m_bits`.
    pub fn build(
        keys: &KeySet,
        samples: &SampleQueries,
        m_bits: u64,
        opts: &ProteusModelOptions,
    ) -> Self {
        let bits = keys.bits();
        // Trie depth candidates: every byte depth whose trie fits the budget
        // (Algorithm 1 line 6: "for tLen ← 0 such that trieMem(tLen) ≤ m").
        let mut l1_candidates = vec![0usize];
        let mut trie_mem = vec![0u64];
        for d in 1..=keys.width() {
            let mem = keys.trie_mem_bits(d);
            if mem <= m_bits {
                l1_candidates.push(d * 8);
                trie_mem.push(mem);
            } else {
                break;
            }
        }

        // Bloom prefix lengths to evaluate (coarse search for long keys).
        let l2_values: Vec<usize> = if opts.max_bloom_lengths == 0 || opts.max_bloom_lengths >= bits
        {
            (1..=bits).collect()
        } else {
            let n = opts.max_bloom_lengths;
            (1..=n).map(|i| (i * bits).div_ceil(n)).collect()
        };

        let ctxs = extract_contexts(keys, samples);
        let n_samples = samples.len() as u64;

        let accumulate = |c: usize| -> (u64, Vec<ProbeBins>) {
            let l1 = l1_candidates[c];
            let mut resolved = 0u64;
            let mut bins: Vec<ProbeBins> = vec![ProbeBins::default(); bits + 1];
            for (i, (lo, hi)) in samples.iter().enumerate() {
                let ctx = ctxs[i];
                let lcp_total = ctx.lcp_total();
                if lcp_total < l1 {
                    resolved += 1;
                    continue;
                }
                accumulate_query(lo, hi, ctx, l1, bits, &l2_values, &mut bins);
            }
            (resolved, bins)
        };

        let results: Vec<(u64, Vec<ProbeBins>)> = if opts.threads > 1 && l1_candidates.len() > 1 {
            let mut results: Vec<Option<(u64, Vec<ProbeBins>)>> =
                (0..l1_candidates.len()).map(|_| None).collect();
            let next = std::sync::atomic::AtomicUsize::new(0);
            let slots = crate::sync::Mutex::new(crate::sync::rank::SCRATCH, &mut results);
            std::thread::scope(|scope| {
                for _ in 0..opts.threads.min(l1_candidates.len()) {
                    scope.spawn(|| loop {
                        let c = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if c >= l1_candidates.len() {
                            break;
                        }
                        let r = accumulate(c);
                        // A worker panic propagates out of the scope, so a
                        // poisoned scratch lock is unreachable here; recover
                        // rather than panic to keep this path panic-free.
                        slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner)[c] =
                            Some(r);
                    });
                }
            });
            // Every index was claimed by exactly one worker and the scope
            // joined them all, so each slot is filled; `unwrap_or_default`
            // keeps positional alignment without a panic path.
            results.into_iter().map(Option::unwrap_or_default).collect()
        } else {
            (0..l1_candidates.len()).map(accumulate).collect()
        };

        let (resolved, bins) = results.into_iter().unzip();
        ProteusModel { l1_candidates, trie_mem, resolved, bins, l2_values, n_samples }
    }

    /// Expected FPR of the design `(l1, l2)` under budget `m_bits`.
    /// `l2 == 0` evaluates the trie-only design.
    pub fn expected_fpr(&self, keys: &KeySet, l1: usize, l2: usize, m_bits: u64) -> Option<f64> {
        let c = self.l1_candidates.iter().position(|&v| v == l1)?;
        if self.n_samples == 0 {
            return Some(0.0);
        }
        if l2 == 0 {
            return Some(1.0 - self.resolved[c] as f64 / self.n_samples as f64);
        }
        if l2 <= l1 || l2 > keys.bits() {
            return None;
        }
        let bf_bits = m_bits.saturating_sub(self.trie_mem[c]);
        let p = standard_bloom_fpr(bf_bits, keys.unique_prefixes(l2));
        // Unconditional probability: queries the trie resolves never reach
        // the Bloom filter.
        let bf_fpr = self.bins[c][l2].expected_fpr(p, self.n_samples - self.resolved[c]);
        Some(bf_fpr * (self.n_samples - self.resolved[c]) as f64 / self.n_samples as f64)
    }

    /// Algorithm 1's selection loop: the design minimizing expected FPR,
    /// ties going to later candidates (the paper's `≤` comparisons).
    pub fn best_design(&self, keys: &KeySet, m_bits: u64) -> ProteusDesign {
        let mut best = ProteusDesign {
            trie_depth_bits: 0,
            bloom_prefix_len: 0,
            expected_fpr: f64::INFINITY,
            trie_mem_bits: 0,
        };
        for (c, &l1) in self.l1_candidates.iter().enumerate() {
            // Trie-only design (bLen = 0 in Algorithm 1 line 17).
            // `l1` comes from our own candidate list, so the model always
            // has an answer; skip defensively rather than panic.
            let Some(t_fpr) = self.expected_fpr(keys, l1, 0, m_bits) else { continue };
            if t_fpr <= best.expected_fpr {
                best = ProteusDesign {
                    trie_depth_bits: l1,
                    bloom_prefix_len: 0,
                    expected_fpr: t_fpr,
                    trie_mem_bits: self.trie_mem[c],
                };
            }
            if self.trie_mem[c] >= m_bits {
                continue;
            }
            for &l2 in &self.l2_values {
                if l2 <= l1 {
                    continue;
                }
                let Some(fpr) = self.expected_fpr(keys, l1, l2, m_bits) else { continue };
                if fpr <= best.expected_fpr {
                    best = ProteusDesign {
                        trie_depth_bits: l1,
                        bloom_prefix_len: l2,
                        expected_fpr: fpr,
                        trie_mem_bits: self.trie_mem[c],
                    };
                }
            }
        }
        best
    }

    /// §9's "higher order optimization" extension: select the design
    /// minimizing `FPR + probe_cost_weight · E[Bloom probes per query]`,
    /// trading a little FPR for fewer hash probes (CPU). With weight 0 this
    /// is exactly [`ProteusModel::best_design`]; §6.3's observation that
    /// Rosetta's low-FPR/high-CPU designs can *increase* end-to-end latency
    /// is the motivation.
    pub fn best_design_latency_aware(
        &self,
        keys: &KeySet,
        m_bits: u64,
        probe_cost_weight: f64,
    ) -> ProteusDesign {
        let mut best = ProteusDesign {
            trie_depth_bits: 0,
            bloom_prefix_len: 0,
            expected_fpr: f64::INFINITY,
            trie_mem_bits: 0,
        };
        let mut best_score = f64::INFINITY;
        for (c, &l1) in self.l1_candidates.iter().enumerate() {
            // `l1` comes from our own candidate list, so the model always
            // has an answer; skip defensively rather than panic.
            let Some(t_fpr) = self.expected_fpr(keys, l1, 0, m_bits) else { continue };
            if t_fpr <= best_score {
                best_score = t_fpr; // trie-only designs probe nothing
                best = ProteusDesign {
                    trie_depth_bits: l1,
                    bloom_prefix_len: 0,
                    expected_fpr: t_fpr,
                    trie_mem_bits: self.trie_mem[c],
                };
            }
            if self.trie_mem[c] >= m_bits {
                continue;
            }
            for &l2 in &self.l2_values {
                if l2 <= l1 {
                    continue;
                }
                let Some(fpr) = self.expected_fpr(keys, l1, l2, m_bits) else { continue };
                let probes = self.expected_probes(c, l2);
                let score = fpr + probe_cost_weight * probes;
                if score <= best_score {
                    best_score = score;
                    best = ProteusDesign {
                        trie_depth_bits: l1,
                        bloom_prefix_len: l2,
                        expected_fpr: fpr,
                        trie_mem_bits: self.trie_mem[c],
                    };
                }
            }
        }
        best
    }

    /// Mean Bloom probes per sample query at design (candidate c, l2).
    fn expected_probes(&self, c: usize, l2: usize) -> f64 {
        if self.n_samples == 0 {
            return 0.0;
        }
        self.bins[c][l2].mean_probes(self.n_samples)
    }

    /// The trie depths (bits) the model evaluated.
    pub fn l1_candidates(&self) -> &[usize] {
        &self.l1_candidates
    }

    /// The Bloom prefix lengths (bits) the model evaluated.
    pub fn l2_values(&self) -> &[usize] {
        &self.l2_values
    }

    /// Estimated trie memory at depth `l1`, if it was a candidate.
    pub fn trie_mem_for(&self, l1: usize) -> Option<u64> {
        self.l1_candidates.iter().position(|&v| v == l1).map(|c| self.trie_mem[c])
    }
}

/// Accumulate one non-resolved query into the per-l2 bins of trie depth
/// `l1`: the Eq. 5 probe counts as the Bloom prefix length sweeps upward.
fn accumulate_query(
    lo: &[u8],
    hi: &[u8],
    ctx: QueryCtx,
    l1: usize,
    bits: usize,
    l2_values: &[usize],
    bins: &mut [ProbeBins],
) {
    let lcp_total = ctx.lcp_total();
    let first_occ = ctx.first_occupied(l1);
    let last_occ = ctx.last_occupied(l1);
    let single = ctx.single_region(l1);
    let mut scan = BitScan::seed(lo, hi, l1);
    let mut vi = 0usize;
    while vi < l2_values.len() && l2_values[vi] <= l1 {
        vi += 1;
    }
    if vi >= l2_values.len() {
        return;
    }
    for (l2, bin) in bins.iter_mut().enumerate().take(bits + 1).skip(l1 + 1) {
        scan.step(get_bit(lo, l2 - 1), get_bit(hi, l2 - 1));
        if l2_values[vi] != l2 {
            continue;
        }
        vi += 1;
        if l2 <= lcp_total {
            bin.guaranteed += 1;
        } else {
            let probes = if single {
                // Both query ends share the (occupied) l1-region.
                scan.regions()
            } else {
                let mut n = 0u64;
                if first_occ {
                    n += scan.left_count();
                }
                if last_occ {
                    n += scan.right_count();
                }
                n
            };
            bin.add(probes);
        }
        if vi >= l2_values.len() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::u64_key;

    fn splitmix(s: &mut u64) -> u64 {
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn normal_keys(n: usize, seed: u64) -> Vec<u64> {
        // Clustered keys (top 24 bits constant) so short tries are cheap.
        let mut s = seed;
        (0..n).map(|_| (0xABu64 << 56) | (splitmix(&mut s) >> 24)).collect()
    }

    fn correlated_queries(
        keys: &[u64],
        ks: &KeySet,
        n: usize,
        corr: u64,
        seed: u64,
    ) -> SampleQueries {
        let mut s = seed;
        let mut out = SampleQueries::new(8);
        while out.len() < n {
            let k = keys[(splitmix(&mut s) % keys.len() as u64) as usize];
            let lo = k + 1 + splitmix(&mut s) % corr;
            let hi = lo + splitmix(&mut s) % 16;
            let (l, h) = (u64_key(lo), u64_key(hi));
            if !ks.range_overlaps(&l, &h) {
                out.push(&l, &h);
            }
        }
        out
    }

    #[test]
    fn trie_resolves_distant_queries() {
        let raw = normal_keys(2000, 1);
        let keys = KeySet::from_u64(&raw);
        // Queries far from keys: different top byte.
        let mut samples = SampleQueries::new(8);
        let mut s = 5u64;
        for _ in 0..200 {
            let lo = splitmix(&mut s) % (1u64 << 50);
            samples.push(&u64_key(lo), &u64_key(lo + 100));
        }
        samples.retain_empty(&keys);
        let model =
            ProteusModel::build(&keys, &samples, 2000 * 10, &ProteusModelOptions::default());
        // An 8-bit (1-byte) trie distinguishes the 0xAB.. cluster from the
        // low key space: everything resolves.
        let fpr = model.expected_fpr(&keys, 8, 0, 2000 * 10).unwrap();
        assert!(fpr < 0.01, "trie-only fpr {fpr}");
        // No trie, no Bloom prefix: not a valid design; l1=0,l2=0 -> fpr 1.
        let fpr0 = model.expected_fpr(&keys, 0, 0, 2000 * 10).unwrap();
        assert!(fpr0 > 0.99);
    }

    #[test]
    fn correlated_queries_need_the_bloom_filter() {
        let raw = normal_keys(3000, 2);
        let keys = KeySet::from_u64(&raw);
        let samples = correlated_queries(&raw, &keys, 500, 1 << 10, 77);
        let m = 3000 * 12;
        let model = ProteusModel::build(&keys, &samples, m, &ProteusModelOptions::default());
        let design = model.best_design(&keys, m);
        // Correlated queries pass any affordable trie; a Bloom filter must
        // be part of the design and its prefix must reach past the
        // correlation distance.
        assert!(design.bloom_prefix_len > 0, "design {design:?}");
        assert!(design.expected_fpr < 0.5, "design {design:?}");
        let trie_only = model.expected_fpr(&keys, design.trie_depth_bits, 0, m).unwrap();
        assert!(design.expected_fpr < trie_only);
    }

    #[test]
    fn deeper_tries_resolve_more() {
        let raw = normal_keys(2000, 3);
        let keys = KeySet::from_u64(&raw);
        let samples = correlated_queries(&raw, &keys, 300, 1 << 20, 99);
        let model = ProteusModel::build(&keys, &samples, 1 << 24, &ProteusModelOptions::default());
        let mut last = 0u64;
        for (c, _) in model.l1_candidates.iter().enumerate() {
            assert!(model.resolved[c] >= last, "resolution monotone in depth");
            last = model.resolved[c];
        }
    }

    #[test]
    fn coarse_search_subsamples_l2() {
        let raw = normal_keys(500, 4);
        let keys = KeySet::from_u64(&raw);
        let samples = correlated_queries(&raw, &keys, 100, 256, 5);
        let opts = ProteusModelOptions { max_bloom_lengths: 16, threads: 1 };
        let model = ProteusModel::build(&keys, &samples, 500 * 10, &opts);
        assert_eq!(model.l2_values().len(), 16);
        assert_eq!(*model.l2_values().last().unwrap(), 64);
        let design = model.best_design(&keys, 500 * 10);
        assert!(design.expected_fpr.is_finite());
    }

    #[test]
    fn threaded_matches_single_threaded() {
        let raw = normal_keys(1000, 6);
        let keys = KeySet::from_u64(&raw);
        let samples = correlated_queries(&raw, &keys, 200, 1 << 8, 15);
        let m = 1000 * 14;
        let a = ProteusModel::build(&keys, &samples, m, &ProteusModelOptions::default());
        let b = ProteusModel::build(
            &keys,
            &samples,
            m,
            &ProteusModelOptions { threads: 4, ..Default::default() },
        );
        let da = a.best_design(&keys, m);
        let db = b.best_design(&keys, m);
        assert_eq!(da.trie_depth_bits, db.trie_depth_bits);
        assert_eq!(da.bloom_prefix_len, db.bloom_prefix_len);
        assert!((da.expected_fpr - db.expected_fpr).abs() < 1e-12);
    }

    #[test]
    fn latency_aware_objective_trades_probes_for_fpr() {
        let raw = normal_keys(2000, 12);
        let keys = KeySet::from_u64(&raw);
        // Large-range queries: low-FPR designs use long prefixes with many
        // probes; a probe penalty should push toward shorter prefixes.
        let samples = correlated_queries(&raw, &keys, 300, 1 << 16, 31);
        let m = 2000 * 12;
        let model = ProteusModel::build(&keys, &samples, m, &ProteusModelOptions::default());
        let plain = model.best_design_latency_aware(&keys, m, 0.0);
        let base = model.best_design(&keys, m);
        assert_eq!(
            (plain.trie_depth_bits, plain.bloom_prefix_len),
            (base.trie_depth_bits, base.bloom_prefix_len),
            "zero weight must match the FPR-only objective"
        );
        let heavy = model.best_design_latency_aware(&keys, m, 0.05);
        // The penalized objective never picks a design with more expected
        // probes at equal-or-worse FPR than the plain one.
        assert!(heavy.expected_fpr >= plain.expected_fpr - 1e-12);
        if heavy.bloom_prefix_len > 0 && plain.bloom_prefix_len > 0 {
            assert!(
                heavy.bloom_prefix_len <= plain.bloom_prefix_len,
                "probe penalty should not lengthen prefixes: {plain:?} -> {heavy:?}"
            );
        }
    }

    #[test]
    fn design_respects_memory_budget() {
        let raw = normal_keys(2000, 8);
        let keys = KeySet::from_u64(&raw);
        let samples = correlated_queries(&raw, &keys, 200, 1 << 8, 25);
        for bpk in [6u64, 10, 18] {
            let m = 2000 * bpk;
            let model = ProteusModel::build(&keys, &samples, m, &ProteusModelOptions::default());
            let design = model.best_design(&keys, m);
            assert!(design.trie_mem_bits <= m, "bpk {bpk}: {design:?}");
        }
    }
}

//! 1PBF: a single self-designing prefix Bloom filter (§4, Eq. 1).
//!
//! The simplest Protean Range Filter: one prefix Bloom filter whose prefix
//! length is chosen by the CPFPR model.

use crate::codec::{ByteReader, CodecError, FilterKind, WireWrite};
use crate::key::u64_key;
use crate::keyset::KeySet;
use crate::model::one_pbf::{OnePbfDesign, OnePbfModel};
use crate::prefix_bf::PrefixBloom;
use crate::sample::SampleQueries;
use crate::RangeFilter;
use proteus_amq::hash::HashFamily;

/// Construction options for [`OnePbf`].
#[derive(Debug, Clone)]
pub struct OnePbfOptions {
    /// Hash family for the prefix Bloom filter.
    pub hash_family: HashFamily,
    /// Per-query probe budget (prefixes probed before giving up as
    /// positive).
    pub probe_cap: u64,
    /// Hash seed.
    pub seed: u32,
}

impl Default for OnePbfOptions {
    fn default() -> Self {
        OnePbfOptions {
            hash_family: HashFamily::Murmur3,
            probe_cap: crate::proteus::DEFAULT_PROBE_CAP,
            seed: 0x0B5E_55ED,
        }
    }
}

/// A single prefix Bloom filter with model-selected prefix length.
#[derive(Debug, Clone)]
pub struct OnePbf {
    bloom: PrefixBloom,
    design: OnePbfDesign,
    width: usize,
    probe_cap: u64,
}

impl OnePbf {
    /// Self-design: pick the prefix length minimizing modeled FPR.
    pub fn train(
        keys: &KeySet,
        samples: &SampleQueries,
        m_bits: u64,
        opts: &OnePbfOptions,
    ) -> Self {
        let model = OnePbfModel::build(keys, samples);
        let design = model.best_design(keys, m_bits);
        Self::build_with_prefix_len(keys, design, m_bits, opts)
    }

    /// Build with an explicit design (Fig. 4a sweeps the whole space).
    pub fn build_with_prefix_len(
        keys: &KeySet,
        design: OnePbfDesign,
        m_bits: u64,
        opts: &OnePbfOptions,
    ) -> Self {
        let bloom =
            PrefixBloom::build(keys, design.prefix_len, m_bits, opts.hash_family, opts.seed);
        OnePbf { bloom, design, width: keys.width(), probe_cap: opts.probe_cap }
    }

    /// The instantiated design.
    pub fn design(&self) -> OnePbfDesign {
        self.design
    }

    /// Closed-range emptiness query on canonical keys.
    pub fn query(&self, lo: &[u8], hi: &[u8]) -> bool {
        let mut budget = self.probe_cap;
        self.bloom.query_window(lo, hi, &mut budget)
    }

    /// [`OnePbf::query`] with `u64` bounds.
    pub fn query_u64(&self, lo: u64, hi: u64) -> bool {
        self.query(&u64_key(lo), &u64_key(hi))
    }

    /// Memory footprint in bits.
    pub fn size_bits(&self) -> u64 {
        self.bloom.size_bits()
    }

    /// Serialize the filter payload (design + Bloom filter).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u32(self.width as u32);
        out.put_u64(self.probe_cap);
        out.put_u64(self.design.prefix_len as u64);
        out.put_f64(self.design.expected_fpr);
        self.bloom.encode_into(out);
    }

    /// Decode a payload written by [`OnePbf::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<OnePbf, CodecError> {
        let width = r.u32()? as usize;
        if width == 0 {
            return Err(CodecError::Invalid("1pbf width zero"));
        }
        let probe_cap = r.u64()?;
        let design = OnePbfDesign { prefix_len: r.u64()? as usize, expected_fpr: r.f64()? };
        let bloom = PrefixBloom::decode_from(r)?;
        Ok(OnePbf { bloom, design, width, probe_cap })
    }
}

impl RangeFilter for OnePbf {
    fn may_contain_range(&self, lo: &[u8], hi: &[u8]) -> bool {
        debug_assert_eq!(lo.len(), self.width);
        self.query(lo, hi)
    }
    fn size_bits(&self) -> u64 {
        self.size_bits()
    }
    fn name(&self) -> String {
        format!("1PBF(l={})", self.design.prefix_len)
    }
    fn encode_payload(&self) -> Option<(FilterKind, Vec<u8>)> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        Some((FilterKind::OnePbf, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(s: &mut u64) -> u64 {
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn setup(n: usize, rmax: u64) -> (Vec<u64>, KeySet, SampleQueries) {
        let mut s = 11u64;
        let keys: Vec<u64> = (0..n).map(|_| splitmix(&mut s)).collect();
        let ks = KeySet::from_u64(&keys);
        let mut q = SampleQueries::new(8);
        while q.len() < 400 {
            let lo = splitmix(&mut s) % (u64::MAX - rmax - 2);
            let hi = lo + 2 + splitmix(&mut s) % rmax;
            if !ks.range_overlaps(&u64_key(lo), &u64_key(hi)) {
                q.push(&u64_key(lo), &u64_key(hi));
            }
        }
        (keys, ks, q)
    }

    #[test]
    fn no_false_negatives() {
        let (keys, ks, samples) = setup(2000, 1 << 10);
        let f = OnePbf::train(&ks, &samples, 2000 * 12, &OnePbfOptions::default());
        for &k in keys.iter().step_by(13) {
            assert!(f.query_u64(k, k));
            assert!(f.query_u64(k.saturating_sub(5), k.saturating_add(5)));
        }
    }

    #[test]
    fn trained_prefix_respects_range_size() {
        let (_, ks, samples) = setup(3000, 1 << 16);
        let f = OnePbf::train(&ks, &samples, 3000 * 12, &OnePbfOptions::default());
        // For RMAX = 2^16 the optimum sits at or below 64 - 16 = 48 bits
        // (Fig. 4a): longer prefixes multiply probes per query.
        assert!(f.design().prefix_len <= 49, "{:?}", f.design());
    }

    #[test]
    fn observed_fpr_near_model() {
        let (_, ks, samples) = setup(3000, 1 << 8);
        let m = 3000 * 14;
        let f = OnePbf::train(&ks, &samples, m, &OnePbfOptions::default());
        let mut s = 999u64;
        let mut fps = 0usize;
        let trials = 3000usize;
        let mut done = 0usize;
        while done < trials {
            let lo = splitmix(&mut s) % (u64::MAX - (1 << 8) - 2);
            let hi = lo + 2 + splitmix(&mut s) % (1 << 8);
            if ks.range_overlaps(&u64_key(lo), &u64_key(hi)) {
                continue;
            }
            done += 1;
            if f.query_u64(lo, hi) {
                fps += 1;
            }
        }
        let observed = fps as f64 / trials as f64;
        let predicted = f.design().expected_fpr;
        assert!(
            (observed - predicted).abs() < 0.05 + predicted,
            "observed {observed} predicted {predicted}"
        );
    }
}

//! Black-box tests for the lock-doctor: the rank-inversion detector must
//! fire and name both acquisition sites, condvar waits must release the
//! held-stack entry for the duration of the wait, and uninstrumented
//! builds must add zero bytes and (within a generous bound) zero time.

use proteus_core::sync::{doctor_enabled, rank, Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Acquiring a higher (or equal) rank while holding a lower one must
/// panic, and the message must carry enough to debug it blind: both lock
/// names, both ranks, and both source locations.
#[test]
fn rank_inversion_panics_naming_both_sites() {
    if !doctor_enabled() {
        return;
    }
    // A fresh thread so the panic can't disturb this thread's held stack.
    let result = std::thread::spawn(|| {
        let wal = Mutex::new(rank::WAL, ());
        let mem = Mutex::new(rank::MEMTABLE, ());
        let _held = wal.lock().unwrap(); // first site
        let _bad = mem.lock(); // second site: 80 while holding 60
    })
    .join();
    let payload = result.expect_err("the inversion must panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a message");
    assert!(msg.contains("rank inversion"), "unexpected message: {msg}");
    assert!(msg.contains("`memtable`") && msg.contains("`wal`"), "names both locks: {msg}");
    assert!(msg.contains("rank 80") && msg.contains("rank 60"), "names both ranks: {msg}");
    // Both acquisition sites are in this file, on different lines.
    let sites: Vec<usize> = msg.match_indices("lock_doctor.rs:").map(|(i, _)| i).collect();
    assert_eq!(sites.len(), 2, "names both acquisition sites: {msg}");
    let first = &msg[sites[0]..msg[sites[0]..].find(' ').map_or(msg.len(), |e| sites[0] + e)];
    let second = &msg[sites[1]..msg[sites[1]..].find(' ').map_or(msg.len(), |e| sites[1] + e)];
    assert_ne!(first, second, "the two sites are distinct lines: {msg}");
}

/// Taking the same rank twice is also an inversion (strictly decreasing
/// order), which is what makes self-deadlock on one mutex detectable.
#[test]
fn same_rank_reentry_panics() {
    if !doctor_enabled() {
        return;
    }
    let result = std::thread::spawn(|| {
        let a = Mutex::new(rank::GATE, ());
        let b = Mutex::new(rank::GATE, ());
        let _first = a.lock().unwrap();
        let _second = b.lock(); // would deadlock if it were the same lock
    })
    .join();
    assert!(result.is_err(), "equal-rank nesting must panic");
}

/// A condvar wait atomically releases the mutex, so the doctor must drop
/// the held-stack entry for the duration of the wait (another thread can
/// take the lock) and restore it when the wait returns.
#[test]
fn condvar_wait_releases_and_reacquires_the_held_entry() {
    let pair = Arc::new((Mutex::new(rank::GATE, false), Condvar::new()));
    let observed_free = Arc::new(AtomicBool::new(false));

    let waiter = {
        let pair = Arc::clone(&pair);
        std::thread::spawn(move || {
            let (m, cv) = &*pair;
            let mut g = m.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
            // Back from the wait: the guard works and, in instrumented
            // builds, the held stack shows the lock again.
            if doctor_enabled() {
                let held = proteus_core::sync::held_ranks();
                assert_eq!(held, vec![(rank::GATE.level(), "gate")], "stack restored after wait");
            }
            *g = false;
        })
    };

    // This thread CAN take the mutex while the waiter is parked — which is
    // only possible if the wait really suspended the guard (and, in
    // instrumented builds, its held-stack entry; a leaked entry would trip
    // the doctor when the waiter's own reacquisition pushes a second one).
    let (m, cv) = &*pair;
    for _ in 0..1000 {
        let mut g = m.lock().unwrap();
        if !*g {
            observed_free.store(true, Ordering::Relaxed);
            *g = true;
            cv.notify_all();
            drop(g);
            break;
        }
        drop(g);
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(observed_free.load(Ordering::Relaxed), "mutex never became free during the wait");
    waiter.join().expect("waiter must not panic");
    // After everything, this thread holds nothing.
    if doctor_enabled() {
        assert!(proteus_core::sync::held_ranks().is_empty());
    }
}

/// Waiting must not unwind the *whole* stack: a wait while holding a
/// higher-rank lock keeps that outer entry (only the condvar's own mutex
/// suspends), so a lower-rank acquisition after the wait still validates.
#[test]
fn condvar_wait_keeps_outer_locks_on_the_stack() {
    if !doctor_enabled() {
        return;
    }
    let outer = Mutex::new(rank::MEMTABLE, ());
    let pair = (Mutex::new(rank::GATE, ()), Condvar::new());
    let _o = outer.lock().unwrap();
    let g = pair.0.lock().unwrap();
    let (g, timeout) = pair.1.wait_timeout(g, Duration::from_millis(5)).unwrap();
    assert!(timeout.timed_out());
    let held = proteus_core::sync::held_ranks();
    assert_eq!(
        held,
        vec![(rank::MEMTABLE.level(), "memtable"), (rank::GATE.level(), "gate")],
        "outer lock survives the wait; inner entry is restored in order"
    );
    drop(g);
    // Descending acquisition still fine after the resume.
    let lo = Mutex::new(rank::WAL, ());
    let _l = lo.lock().unwrap();
}

/// Uninstrumented builds must be zero-cost: the wrappers are the std
/// types plus nothing, and guards are literally the std guards.
#[cfg(not(any(debug_assertions, feature = "lock-doctor")))]
mod no_overhead {
    use super::*;
    use proteus_core::sync::RwLock;
    use std::mem::size_of;

    #[test]
    fn wrappers_add_no_bytes() {
        assert_eq!(size_of::<Mutex<u64>>(), size_of::<std::sync::Mutex<u64>>());
        assert_eq!(size_of::<RwLock<u64>>(), size_of::<std::sync::RwLock<u64>>());
        assert_eq!(size_of::<Condvar>(), size_of::<std::sync::Condvar>());
        assert_eq!(
            size_of::<proteus_core::sync::MutexGuard<'_, u64>>(),
            size_of::<std::sync::MutexGuard<'_, u64>>()
        );
        assert!(!doctor_enabled());
    }

    #[test]
    fn uncontended_lock_unlock_stays_cheap() {
        // A deliberately generous bound (~1µs/op uncontended would be two
        // orders of magnitude above a healthy parking-lot-free mutex):
        // catches an accidentally instrumented release build, not noise.
        let m = Mutex::new(rank::SCRATCH, 0u64);
        let start = std::time::Instant::now();
        for _ in 0..100_000 {
            *m.lock().unwrap() += 1;
        }
        let per_op = start.elapsed().as_nanos() / 100_000;
        assert_eq!(*m.lock().unwrap(), 100_000);
        assert!(per_op < 1_000, "uncontended lock/unlock took {per_op} ns/op");
    }
}

//! End-to-end tests: the sharded server over real TCP sockets.
//!
//! Covers the three server-hardening scenarios from the issue checklist:
//! concurrent clients across shards with acked-write high-water marks,
//! malformed/truncated/oversized frames answered with typed protocol
//! errors (never a panic, never a hang), and kill-and-reconnect proving
//! every shard recovers acked writes through its WAL.

use proptest::prelude::*;
use proteus_lsm::{DbConfig, ProteusFactory};
use proteus_server::protocol::{write_frame, MAX_FRAME_LEN, VERB_GET, VERB_PUT};
use proteus_server::{Client, ClientError, ErrorCode, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn test_config() -> DbConfig {
    // Small MemTables so tests exercise flushes/SSTs, not just the
    // in-memory path; sync Off keeps the filesystem traffic cheap (process
    // exit loses nothing — the recovery test relies on exactly that).
    DbConfig::builder().memtable_bytes(64 << 10).block_cache_bytes(1 << 20).build().unwrap()
}

fn start_server(dir: &std::path::Path, n_shards: usize) -> Server {
    Server::start(
        dir,
        ("127.0.0.1", 0),
        n_shards,
        test_config(),
        Arc::new(ProteusFactory::default()),
    )
    .unwrap()
}

fn key(i: u64) -> [u8; 8] {
    i.to_be_bytes()
}

#[test]
fn roundtrip_through_every_verb() {
    let dir = tempdir();
    let server = start_server(dir.path(), 2);
    let mut c = Client::connect(server.local_addr()).unwrap();

    c.ping().unwrap();
    assert_eq!(c.get(&key(1)).unwrap(), None);
    c.put(&key(1), b"one").unwrap();
    c.put(&key(2), b"two").unwrap();
    assert_eq!(c.get(&key(1)).unwrap(), Some(b"one".to_vec()));
    c.delete(&key(1)).unwrap();
    assert_eq!(c.get(&key(1)).unwrap(), None);
    assert!(c.seek(&key(0), &key(10)).unwrap());
    assert!(!c.seek(&key(100), &key(200)).unwrap());
    let (entries, more) = c.scan(&key(0), &key(10), 0).unwrap();
    assert_eq!(entries, vec![(key(2).to_vec(), b"two".to_vec())]);
    assert!(!more);
    let stats = c.stats().unwrap();
    assert_eq!(stats.len(), 2);
    assert_eq!(stats.iter().map(|s| s.commits).sum::<u64>(), 3, "2 puts + 1 delete");
}

#[test]
fn scans_across_shards_come_back_globally_sorted() {
    let dir = tempdir();
    let server = start_server(dir.path(), 4);
    let mut c = Client::connect(server.local_addr()).unwrap();

    // Keys spread over the whole u64 space so every shard owns some.
    let stride = u64::MAX / 64;
    let keys: Vec<u64> = (0..64).map(|i| i * stride).collect();
    // Insert in shuffled order.
    for (i, &k) in keys.iter().enumerate().rev() {
        c.put(&key(k), format!("v{i}").as_bytes()).unwrap();
    }
    let stats = c.stats().unwrap();
    let per_shard: Vec<u64> = stats.iter().map(|s| s.commits).collect();
    assert!(per_shard.iter().all(|&n| n > 0), "every shard must own keys: {per_shard:?}");

    let (entries, more) = c.scan(&key(0), &key(u64::MAX), 0).unwrap();
    assert!(!more);
    let got: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
    let want: Vec<Vec<u8>> = keys.iter().map(|&k| key(k).to_vec()).collect();
    assert_eq!(got, want, "cross-shard scan must be globally sorted");

    // A limit cuts the scan short and reports `more`.
    let (entries, more) = c.scan(&key(0), &key(u64::MAX), 10).unwrap();
    assert_eq!(entries.len(), 10);
    assert!(more);

    // Seek spans shards too: probe a range owned entirely by the last
    // shard.
    assert!(c.seek(&key(63 * stride), &key(u64::MAX)).unwrap());
}

#[test]
fn concurrent_clients_acked_writes_all_readable() {
    let dir = tempdir();
    let server = start_server(dir.path(), 4);
    let addr = server.local_addr();

    // 8 writer threads, each acking a contiguous key block and recording
    // its high-water mark. Every key at or below an acked high-water mark
    // must be readable afterwards — from any connection.
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 200;
    let marks: Vec<u64> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut high = 0;
                for i in 0..PER_WRITER {
                    // Spread across the key space so all shards get load.
                    let k = (w * PER_WRITER + i) * (u64::MAX / (WRITERS * PER_WRITER));
                    c.put(&key(k), &k.to_le_bytes()).unwrap();
                    high = i; // acked: the server answered Ok
                }
                high
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();

    let mut c = Client::connect(addr).unwrap();
    for (w, &high) in marks.iter().enumerate() {
        for i in 0..=high {
            let k = (w as u64 * PER_WRITER + i) * (u64::MAX / (WRITERS * PER_WRITER));
            assert_eq!(
                c.get(&key(k)).unwrap(),
                Some(k.to_le_bytes().to_vec()),
                "acked write below writer {w}'s high-water mark lost (i={i})"
            );
        }
    }
    let stats = c.stats().unwrap();
    let total: u64 = stats.iter().map(|s| s.commits).sum();
    assert_eq!(total, WRITERS * PER_WRITER);
    assert!(stats.iter().all(|s| s.commits > 0), "load must reach every shard: {stats:?}");
}

#[test]
fn malformed_frames_get_typed_errors_not_panics_or_hangs() {
    let dir = tempdir();
    let server = start_server(dir.path(), 2);
    let addr = server.local_addr();

    // Out-of-bounds key lengths → BadKey, and the connection stays
    // usable. Keys are arbitrary byte strings now, so only the empty key
    // and keys over the configured `max_key_bytes` are rejected.
    let mut c = Client::connect(addr).unwrap();
    match c.get(b"") {
        Err(ClientError::Remote { code: ErrorCode::BadKey, .. }) => {}
        other => panic!("expected BadKey for the empty key, got {other:?}"),
    }
    match c.get(&[7u8; 2000]) {
        Err(ClientError::Remote { code: ErrorCode::BadKey, .. }) => {}
        other => panic!("expected BadKey for an oversized key, got {other:?}"),
    }
    match c.scan(b"", &key(5), 0) {
        Err(ClientError::Remote { code: ErrorCode::BadKey, .. }) => {}
        other => panic!("expected BadKey for scan bounds, got {other:?}"),
    }
    match c.seek(&key(0), &[7u8; 2000]) {
        Err(ClientError::Remote { code: ErrorCode::BadKey, .. }) => {}
        other => panic!("expected BadKey for seek bounds, got {other:?}"),
    }
    c.put(b"short", b"legal").unwrap(); // 5-byte keys are valid now
    assert_eq!(c.get(b"short").unwrap(), Some(b"legal".to_vec()));
    c.ping().unwrap(); // same connection still serves

    // Unknown verb byte → UnknownVerb.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_frame(&mut raw, &[0x7F]).unwrap();
    raw.flush().unwrap();
    assert_eq!(read_status(&mut raw), ErrorCode::UnknownVerb.as_byte());

    // Truncated request body (a GET missing its key run) → BadFrame.
    write_frame(&mut raw, &[VERB_GET]).unwrap();
    raw.flush().unwrap();
    assert_eq!(read_status(&mut raw), ErrorCode::BadFrame.as_byte());

    // Trailing garbage after a well-formed body → BadFrame.
    let mut payload = vec![VERB_PUT];
    payload.extend_from_slice(&8u64.to_le_bytes());
    payload.extend_from_slice(&key(9));
    payload.extend_from_slice(&0u64.to_le_bytes()); // empty value
    payload.push(0xAB); // trailing byte
    write_frame(&mut raw, &payload).unwrap();
    raw.flush().unwrap();
    assert_eq!(read_status(&mut raw), ErrorCode::BadFrame.as_byte());

    // The same connection still serves after every rejection.
    write_frame(&mut raw, &[proteus_server::protocol::VERB_PING]).unwrap();
    raw.flush().unwrap();
    assert_eq!(read_status(&mut raw), 0);

    // Oversized frame length → TooLarge, then the server closes (the
    // stream cannot be resynchronized).
    let huge = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
    raw.write_all(&huge).unwrap();
    raw.flush().unwrap();
    assert_eq!(read_status(&mut raw), ErrorCode::TooLarge.as_byte());
    let mut byte = [0u8; 1];
    assert_eq!(raw.read(&mut byte).unwrap(), 0, "server must close after TooLarge");

    // A torn frame (length prefix promising more than ever arrives) must
    // not wedge the server: the connection dies quietly and new
    // connections still serve.
    let mut torn = TcpStream::connect(addr).unwrap();
    torn.write_all(&100u32.to_le_bytes()).unwrap();
    torn.write_all(&[1, 2, 3]).unwrap(); // 3 of the promised 100 bytes
    drop(torn);
    let mut c2 = Client::connect(addr).unwrap();
    c2.ping().unwrap();
}

/// Read one response frame from a raw socket and return its status byte.
fn read_status(s: &mut TcpStream) -> u8 {
    let mut len = [0u8; 4];
    s.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    s.read_exact(&mut payload).unwrap();
    payload[0]
}

#[test]
fn kill_and_reconnect_recovers_every_shard_through_the_wal() {
    let dir = tempdir();
    const SHARDS: usize = 3;
    const KEYS: u64 = 300;
    let stride = u64::MAX / KEYS;

    // Write with SyncMode::Off and *small enough volume* that the active
    // MemTables never flush: every acked write lives only in WAL +
    // memory when the server dies. (Process exit loses no page-cache
    // writes; SyncMode governs power-loss durability, not process-crash
    // durability.)
    {
        let server = start_server(dir.path(), SHARDS);
        let mut c = Client::connect(server.local_addr()).unwrap();
        for i in 0..KEYS {
            c.put(&key(i * stride), &i.to_le_bytes()).unwrap();
        }
        // Delete a few so tombstones replay too.
        for i in 0..10 {
            c.delete(&key(i * 30 * stride)).unwrap();
        }
        let stats = c.stats().unwrap();
        assert!(
            stats.iter().all(|s| s.commits > 0),
            "every shard must have taken writes: {stats:?}"
        );
        assert_eq!(stats.iter().map(|s| s.flushes).sum::<u64>(), 0, "nothing may have flushed");
        drop(server); // graceful shutdown; Db::drop seals each WAL
    }

    // Restart on the same directory with the same shard count.
    let server = start_server(dir.path(), SHARDS);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.len(), SHARDS);
    for s in &stats {
        assert!(
            s.wal_replayed > 0,
            "shard {} recovered nothing through its WAL: {stats:?}",
            s.shard
        );
    }
    let deleted: Vec<u64> = (0..10).map(|i| i * 30).collect();
    for i in 0..KEYS {
        let got = c.get(&key(i * stride)).unwrap();
        if deleted.contains(&i) {
            assert_eq!(got, None, "tombstone for key {i} lost in recovery");
        } else {
            assert_eq!(got, Some(i.to_le_bytes().to_vec()), "acked key {i} lost in recovery");
        }
    }
}

#[test]
fn shutdown_verb_drains_and_stops_the_server() {
    let dir = tempdir();
    let server = start_server(dir.path(), 2);
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.put(&key(42), b"v").unwrap();
    c.shutdown().unwrap(); // acked before the drain begins
    server.wait(); // observes the flag set by the verb

    // Wait for the drain to finish (drop joins everything), then the
    // listener must be gone.
    drop(server);
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A TIME_WAIT race can let one connect through; it must not
            // serve.
            let mut c = Client::connect(addr).unwrap();
            c.ping().is_err()
        },
        "server still serving after shutdown"
    );

    // Reopen: the acked pre-shutdown write survived.
    let server = start_server(dir.path(), 2);
    let mut c = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c.get(&key(42)).unwrap(), Some(b"v".to_vec()));
}

#[test]
fn string_keys_scan_globally_sorted_across_shards() {
    let dir = tempdir();
    let server = start_server(dir.path(), 4);
    let mut c = Client::connect(server.local_addr()).unwrap();

    // Variable-length keys whose first bytes span the whole space, so
    // every shard owns some; lengths range from 1 byte to ~1 KiB.
    let mut keys: Vec<Vec<u8>> = Vec::new();
    for i in 0..128u32 {
        let first = (i * 2) as u8;
        let mut k = vec![first];
        match i % 4 {
            0 => {}
            1 => k.extend_from_slice(format!("/url/{:03}/page", i).as_bytes()),
            2 => k.extend_from_slice(&[first; 16]),
            _ => k.resize(1 + (i as usize % 900), b'x'),
        }
        keys.push(k);
    }
    keys.sort();
    keys.dedup();
    // Insert in reverse order; values echo the key for byte-exact checks.
    for k in keys.iter().rev() {
        c.put(k, k).unwrap();
    }
    let stats = c.stats().unwrap();
    let per_shard: Vec<u64> = stats.iter().map(|s| s.commits).collect();
    assert!(per_shard.iter().all(|&n| n > 0), "every shard must own keys: {per_shard:?}");

    // One cross-shard scan over everything: globally sorted, complete,
    // byte-exact — zero false negatives through each shard's filters.
    let (entries, more) = c.scan(&[0x00], &[0xFF; 1024], 0).unwrap();
    assert!(!more);
    let got: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
    assert_eq!(got, keys, "cross-shard string scan must be globally sorted and complete");
    for (k, v) in &entries {
        assert_eq!(k, v, "value served under the wrong key");
    }

    // Point ops agree on both sides of a shard boundary prefix.
    assert!(c.seek(&keys[0], keys.last().unwrap()).unwrap());
    c.delete(&keys[3]).unwrap();
    assert_eq!(c.get(&keys[3]).unwrap(), None);
    assert_eq!(c.get(&keys[4]).unwrap(), Some(keys[4].clone()));
}

#[test]
fn malformed_var_len_key_frames_get_typed_errors() {
    let dir = tempdir();
    let server = start_server(dir.path(), 2);
    let addr = server.local_addr();
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // A key length prefix promising more bytes than the frame holds →
    // BadFrame (the decoder must not over-read).
    for promised in [9u64, 1 << 20, u64::MAX] {
        let mut payload = vec![VERB_GET];
        payload.extend_from_slice(&promised.to_le_bytes());
        payload.extend_from_slice(b"tiny"); // 4 actual bytes
        write_frame(&mut raw, &payload).unwrap();
        raw.flush().unwrap();
        assert_eq!(
            read_status(&mut raw),
            ErrorCode::BadFrame.as_byte(),
            "length prefix {promised} must be BadFrame"
        );
    }

    // A well-formed frame carrying an empty key → BadKey (wire-legal,
    // store-illegal).
    let mut payload = vec![VERB_GET];
    payload.extend_from_slice(&0u64.to_le_bytes());
    write_frame(&mut raw, &payload).unwrap();
    raw.flush().unwrap();
    assert_eq!(read_status(&mut raw), ErrorCode::BadKey.as_byte());

    // A well-formed frame carrying a key over `max_key_bytes` → BadKey.
    let mut payload = vec![VERB_PUT];
    payload.extend_from_slice(&1025u64.to_le_bytes());
    payload.extend_from_slice(&[7u8; 1025]);
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.push(b'v');
    write_frame(&mut raw, &payload).unwrap();
    raw.flush().unwrap();
    assert_eq!(read_status(&mut raw), ErrorCode::BadKey.as_byte());

    // A SCAN whose hi bound's length prefix lies → BadFrame; whose hi
    // bound is empty → BadKey.
    let mut payload = vec![proteus_server::protocol::VERB_SCAN];
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.push(b'a');
    payload.extend_from_slice(&500u64.to_le_bytes()); // promises 500, sends 1
    payload.push(b'z');
    payload.extend_from_slice(&0u32.to_le_bytes());
    write_frame(&mut raw, &payload).unwrap();
    raw.flush().unwrap();
    assert_eq!(read_status(&mut raw), ErrorCode::BadFrame.as_byte());

    let mut payload = vec![proteus_server::protocol::VERB_SCAN];
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.push(b'a');
    payload.extend_from_slice(&0u64.to_le_bytes()); // empty hi bound
    payload.extend_from_slice(&0u32.to_le_bytes());
    write_frame(&mut raw, &payload).unwrap();
    raw.flush().unwrap();
    assert_eq!(read_status(&mut raw), ErrorCode::BadKey.as_byte());

    // After every rejection the same connection still serves valid
    // var-len traffic.
    let mut c = Client::connect(addr).unwrap();
    c.put(b"https://example.com/a", b"ok").unwrap();
    assert_eq!(c.get(b"https://example.com/a").unwrap(), Some(b"ok".to_vec()));
    write_frame(&mut raw, &[proteus_server::protocol::VERB_PING]).unwrap();
    raw.flush().unwrap();
    assert_eq!(read_status(&mut raw), 0);
}

// ------------------------------------------------- router property tests

/// Tiny xorshift for deterministic key generation inside proptest cases.
struct KeyRng(u64);

impl KeyRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.0 = x;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x
    }

    /// An arbitrary byte-string key, 1..=64 bytes, arbitrary content.
    fn key(&mut self) -> Vec<u8> {
        let len = 1 + self.next() as usize % 64;
        (0..len).map(|_| self.next() as u8).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Router monotonicity over arbitrary byte-string keys: sorting keys
    /// must sort their shards, every shard is in bounds, and a range's
    /// shard run brackets exactly the shards its keys land in — the
    /// property that lets cross-shard SCAN concatenate per-shard results
    /// without a merge.
    #[test]
    fn router_is_monotone_over_string_keys(seed in 0u64..u64::MAX / 2, n_shards in 1u64..12) {
        let router = proteus_server::Router::new(n_shards as usize);
        let mut rng = KeyRng(seed);
        let mut keys: Vec<Vec<u8>> = (0..200).map(|_| rng.key()).collect();
        keys.sort();
        let mut prev = 0usize;
        for k in &keys {
            let s = router.shard_of(k);
            prop_assert!(s < n_shards as usize, "shard {s} out of bounds");
            prop_assert!(s >= prev, "shard order regressed at {k:?}");
            prev = s;
        }
        // Any [lo, hi] pair: the shard run is exactly shard(lo)..=shard(hi)
        // and contains the shard of every key inside the range.
        let (lo, hi) = (&keys[17], &keys[180]);
        let run = router.shards_for_range(lo, hi);
        for k in &keys[17..=180] {
            prop_assert!(run.contains(&router.shard_of(k)), "key {k:?} outside its range's run");
        }
        // Inverted bounds are an empty run.
        prop_assert_eq!(router.shards_for_range(hi, lo).count(), 0);
    }
}

// ---------------------------------------------------------------- tempdir

/// Minimal self-cleaning temp directory (no external tempfile crate).
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tempdir() -> TempDir {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let pid = std::process::id();
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("proteus-server-test-{pid}-{seq}"));
    std::fs::create_dir_all(&dir).unwrap();
    TempDir(dir)
}

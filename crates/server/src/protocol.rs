//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! ## Frame layout
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! u32 len (little-endian) | payload (len bytes)
//! ```
//!
//! A frame longer than [`MAX_FRAME_LEN`] is rejected with
//! [`ErrorCode::TooLarge`] and the connection is closed (the stream can no
//! longer be resynchronized). Integers are little-endian; keys, values and
//! error messages are length-prefixed byte runs using the same
//! [`WireWrite::put_bytes`] / [`ByteReader::bytes`] runs as the filter
//! codec and the WAL.
//!
//! ## Requests
//!
//! The request payload starts with one verb byte:
//!
//! | verb | byte | body |
//! |------|------|------|
//! | `PING`     | `0x00` | — |
//! | `GET`      | `0x01` | key |
//! | `PUT`      | `0x02` | key, value |
//! | `DEL`      | `0x03` | key |
//! | `SCAN`     | `0x04` | lo key, hi key, `u32` limit (`0` = server cap) |
//! | `SEEK`     | `0x05` | lo key, hi key |
//! | `STATS`    | `0x06` | — |
//! | `SHUTDOWN` | `0x07` | — |
//!
//! Keys are opaque length-prefixed bytes on the wire — arbitrary byte
//! strings; the *server* enforces its configured key-length limit
//! (non-empty, at most `max_key_bytes`) and answers [`ErrorCode::BadKey`]
//! outside it, mirroring [`proteus_lsm::Error::Config`] at the Db API.
//!
//! ## Responses
//!
//! The response payload starts with one status byte. `0x00` is OK and the
//! rest of the payload is verb-specific (see [`Response`]); any other
//! status is an [`ErrorCode`] followed by a length-prefixed UTF-8
//! diagnostic message. A malformed or truncated request body is answered
//! with [`ErrorCode::BadFrame`] — never a panic, never a hang.

use proteus_core::codec::{ByteReader, CodecError, WireWrite};
use std::io::{Read, Write};

/// Hard ceiling on one frame's payload, requests and responses alike
/// (16 MiB). Bounds per-connection memory against hostile length prefixes.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Default server-side cap on `SCAN` entries when the request's `limit` is
/// zero, keeping every response under [`MAX_FRAME_LEN`].
pub const DEFAULT_SCAN_LIMIT: u32 = 10_000;

/// Verb byte: liveness probe, no body.
pub const VERB_PING: u8 = 0x00;
/// Verb byte: exact-key read.
pub const VERB_GET: u8 = 0x01;
/// Verb byte: insert/overwrite one key.
pub const VERB_PUT: u8 = 0x02;
/// Verb byte: delete one key (tombstone).
pub const VERB_DEL: u8 = 0x03;
/// Verb byte: ordered range scan with an entry limit.
pub const VERB_SCAN: u8 = 0x04;
/// Verb byte: closed-range emptiness probe (§6.1 `Seek`).
pub const VERB_SEEK: u8 = 0x05;
/// Verb byte: per-shard statistics snapshot.
pub const VERB_STATS: u8 = 0x06;
/// Verb byte: begin graceful server shutdown after acking.
pub const VERB_SHUTDOWN: u8 = 0x07;

/// Response status `0x00`: success, verb-specific body follows.
pub const STATUS_OK: u8 = 0x00;

/// A typed protocol-level failure, carried in the response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The request payload could not be decoded (truncated body, trailing
    /// bytes, or a corrupt length prefix).
    BadFrame,
    /// The verb byte is not one this server understands.
    UnknownVerb,
    /// A key failed the server's fixed-width validation
    /// ([`proteus_lsm::Error::Config`] at the store boundary).
    BadKey,
    /// The frame length prefix exceeds [`MAX_FRAME_LEN`]; the connection
    /// is closed after this response.
    TooLarge,
    /// The store failed the operation (I/O, corruption, poisoned lock);
    /// the message carries the typed [`proteus_lsm::Error`] rendering.
    Store,
}

impl ErrorCode {
    /// The status byte for this error.
    pub fn as_byte(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 0x01,
            ErrorCode::UnknownVerb => 0x02,
            ErrorCode::BadKey => 0x03,
            ErrorCode::TooLarge => 0x04,
            ErrorCode::Store => 0x05,
        }
    }

    /// Decode a status byte (`None` for `STATUS_OK` or an unknown byte).
    pub fn from_byte(b: u8) -> Option<ErrorCode> {
        match b {
            0x01 => Some(ErrorCode::BadFrame),
            0x02 => Some(ErrorCode::UnknownVerb),
            0x03 => Some(ErrorCode::BadKey),
            0x04 => Some(ErrorCode::TooLarge),
            0x05 => Some(ErrorCode::Store),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::BadFrame => "bad frame",
            ErrorCode::UnknownVerb => "unknown verb",
            ErrorCode::BadKey => "bad key",
            ErrorCode::TooLarge => "frame too large",
            ErrorCode::Store => "store error",
        };
        f.write_str(name)
    }
}

/// One decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Exact-key read.
    Get {
        /// The key to look up (server validates the width).
        key: Vec<u8>,
    },
    /// Insert or overwrite one key.
    Put {
        /// The key to write.
        key: Vec<u8>,
        /// The value bytes.
        value: Vec<u8>,
    },
    /// Delete one key (a tombstone; deleting an absent key is a no-op).
    Delete {
        /// The key to delete.
        key: Vec<u8>,
    },
    /// Ordered scan of `[lo, hi]`, at most `limit` entries (`0` means the
    /// server default, [`DEFAULT_SCAN_LIMIT`]).
    Scan {
        /// Inclusive lower bound.
        lo: Vec<u8>,
        /// Inclusive upper bound.
        hi: Vec<u8>,
        /// Maximum entries to return (`0` = server cap).
        limit: u32,
    },
    /// Closed-range emptiness probe: does any live key exist in `[lo, hi]`?
    Seek {
        /// Inclusive lower bound.
        lo: Vec<u8>,
        /// Inclusive upper bound.
        hi: Vec<u8>,
    },
    /// Per-shard statistics snapshot.
    Stats,
    /// Ack, then begin graceful shutdown (drain in-flight requests, close
    /// every connection, drop every shard cleanly).
    Shutdown,
}

impl Request {
    /// Encode this request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.put_u8(VERB_PING),
            Request::Get { key } => {
                out.put_u8(VERB_GET);
                out.put_bytes(key);
            }
            Request::Put { key, value } => {
                out.put_u8(VERB_PUT);
                out.put_bytes(key);
                out.put_bytes(value);
            }
            Request::Delete { key } => {
                out.put_u8(VERB_DEL);
                out.put_bytes(key);
            }
            Request::Scan { lo, hi, limit } => {
                out.put_u8(VERB_SCAN);
                out.put_bytes(lo);
                out.put_bytes(hi);
                out.put_u32(*limit);
            }
            Request::Seek { lo, hi } => {
                out.put_u8(VERB_SEEK);
                out.put_bytes(lo);
                out.put_bytes(hi);
            }
            Request::Stats => out.put_u8(VERB_STATS),
            Request::Shutdown => out.put_u8(VERB_SHUTDOWN),
        }
        out
    }

    /// Decode a frame payload into a request. Failures are typed for the
    /// response status: an unknown verb byte is `UnknownVerb`, anything
    /// structurally wrong (short body, trailing bytes) is `BadFrame`.
    pub fn decode(payload: &[u8]) -> Result<Request, (ErrorCode, String)> {
        let bad = |e: CodecError| (ErrorCode::BadFrame, e.to_string());
        let mut r = ByteReader::new(payload);
        let verb = r.u8().map_err(bad)?;
        let req = match verb {
            VERB_PING => Request::Ping,
            VERB_GET => Request::Get { key: r.bytes().map_err(bad)?.to_vec() },
            VERB_PUT => Request::Put {
                key: r.bytes().map_err(bad)?.to_vec(),
                value: r.bytes().map_err(bad)?.to_vec(),
            },
            VERB_DEL => Request::Delete { key: r.bytes().map_err(bad)?.to_vec() },
            VERB_SCAN => Request::Scan {
                lo: r.bytes().map_err(bad)?.to_vec(),
                hi: r.bytes().map_err(bad)?.to_vec(),
                limit: r.u32().map_err(bad)?,
            },
            VERB_SEEK => Request::Seek {
                lo: r.bytes().map_err(bad)?.to_vec(),
                hi: r.bytes().map_err(bad)?.to_vec(),
            },
            VERB_STATS => Request::Stats,
            VERB_SHUTDOWN => Request::Shutdown,
            v => return Err((ErrorCode::UnknownVerb, format!("unknown verb byte {v:#04x}"))),
        };
        r.finish().map_err(bad)?;
        Ok(req)
    }
}

/// One shard's statistics snapshot, served by the `STATS` verb. A compact,
/// fixed selection of the store's [`proteus_lsm::Stats`] counters — enough
/// for the load generator to show routing balance and background activity
/// without shipping the whole counter set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index (0-based; shards partition the key space in order).
    pub shard: u32,
    /// Exact-key `get`s served.
    pub gets: u64,
    /// Deletes (tombstones written).
    pub deletes: u64,
    /// Ordered range scans started.
    pub range_scans: u64,
    /// Closed-range `seek` probes.
    pub seeks: u64,
    /// WAL commit records appended (puts + deletes + batches).
    pub commits: u64,
    /// WAL commit records replayed at the last open — nonzero after a
    /// restart proves the shard recovered through the WAL path.
    pub wal_replayed: u64,
    /// MemTable flushes completed.
    pub flushes: u64,
    /// Compactions run.
    pub compactions: u64,
    /// Live SST files.
    pub sst_files: u64,
}

impl ShardStats {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u32(self.shard);
        for v in [
            self.gets,
            self.deletes,
            self.range_scans,
            self.seeks,
            self.commits,
            self.wal_replayed,
            self.flushes,
            self.compactions,
            self.sst_files,
        ] {
            out.put_u64(v);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<ShardStats, CodecError> {
        Ok(ShardStats {
            shard: r.u32()?,
            gets: r.u64()?,
            deletes: r.u64()?,
            range_scans: r.u64()?,
            seeks: r.u64()?,
            commits: r.u64()?,
            wal_replayed: r.u64()?,
            flushes: r.u64()?,
            compactions: r.u64()?,
            sst_files: r.u64()?,
        })
    }
}

/// The decoded body of a successful response. Which variant applies is
/// fixed by the request verb (the protocol does not tag response bodies);
/// [`Response::decode`] therefore takes the verb the client sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `PING` / `PUT` / `DEL` / `SHUTDOWN`: acknowledged, no body.
    Ok,
    /// `GET`: the value, or `None` if the key has no live record.
    Value(Option<Vec<u8>>),
    /// `SCAN`: entries in key order; `more` means the scan stopped at the
    /// entry limit and the range may hold further entries (resume by
    /// re-issuing with `lo` = successor of the last key).
    Entries {
        /// The `(key, value)` entries, ascending by key.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        /// Whether the limit cut the scan short.
        more: bool,
    },
    /// `SEEK`: whether any live key exists in the probed range.
    Found(bool),
    /// `STATS`: one snapshot per shard, in shard order.
    Stats(Vec<ShardStats>),
    /// Any verb: the typed failure and its diagnostic message.
    Error {
        /// The protocol error class.
        code: ErrorCode,
        /// Human-readable detail (UTF-8).
        message: String,
    },
}

impl Response {
    /// Encode this response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Ok => out.put_u8(STATUS_OK),
            Response::Value(v) => {
                out.put_u8(STATUS_OK);
                match v {
                    Some(v) => {
                        out.put_u8(1);
                        out.put_bytes(v);
                    }
                    None => out.put_u8(0),
                }
            }
            Response::Entries { entries, more } => {
                out.put_u8(STATUS_OK);
                out.put_u8(u8::from(*more));
                debug_assert!(u32::try_from(entries.len()).is_ok());
                // lint: allow(truncating-cast): scan batches are bounded far below u32::MAX
                out.put_u32(entries.len() as u32);
                for (k, v) in entries {
                    out.put_bytes(k);
                    out.put_bytes(v);
                }
            }
            Response::Found(found) => {
                out.put_u8(STATUS_OK);
                out.put_u8(u8::from(*found));
            }
            Response::Stats(shards) => {
                out.put_u8(STATUS_OK);
                // lint: allow(truncating-cast): shard counts are tiny (one per CPU)
                out.put_u32(shards.len() as u32);
                for s in shards {
                    s.encode_into(&mut out);
                }
            }
            Response::Error { code, message } => {
                out.put_u8(code.as_byte());
                out.put_bytes(message.as_bytes());
            }
        }
        out
    }

    /// Decode a frame payload as the response to `verb`. Returns an error
    /// string only when the *payload itself* is malformed (a broken or
    /// lying server); a well-formed error status decodes as
    /// [`Response::Error`].
    pub fn decode(verb: u8, payload: &[u8]) -> Result<Response, String> {
        let mut r = ByteReader::new(payload);
        let status = r.u8().map_err(|e| e.to_string())?;
        if status != STATUS_OK {
            let code = ErrorCode::from_byte(status)
                .ok_or_else(|| format!("unknown response status {status:#04x}"))?;
            let message = String::from_utf8_lossy(r.bytes().map_err(|e| e.to_string())?).into();
            r.finish().map_err(|e| e.to_string())?;
            return Ok(Response::Error { code, message });
        }
        let resp = match verb {
            VERB_PING | VERB_PUT | VERB_DEL | VERB_SHUTDOWN => Response::Ok,
            VERB_GET => {
                let present = r.u8().map_err(|e| e.to_string())?;
                match present {
                    0 => Response::Value(None),
                    1 => Response::Value(Some(r.bytes().map_err(|e| e.to_string())?.to_vec())),
                    b => return Err(format!("bad GET presence byte {b:#04x}")),
                }
            }
            VERB_SCAN => {
                let more = r.u8().map_err(|e| e.to_string())? != 0;
                let n = r.u32().map_err(|e| e.to_string())? as usize;
                let mut entries = Vec::with_capacity(n.min(payload.len()));
                for _ in 0..n {
                    let k = r.bytes().map_err(|e| e.to_string())?.to_vec();
                    let v = r.bytes().map_err(|e| e.to_string())?.to_vec();
                    entries.push((k, v));
                }
                Response::Entries { entries, more }
            }
            VERB_SEEK => Response::Found(r.u8().map_err(|e| e.to_string())? != 0),
            VERB_STATS => {
                let n = r.u32().map_err(|e| e.to_string())? as usize;
                let mut shards = Vec::with_capacity(n.min(payload.len()));
                for _ in 0..n {
                    shards.push(ShardStats::decode_from(&mut r).map_err(|e| e.to_string())?);
                }
                Response::Stats(shards)
            }
            v => return Err(format!("cannot decode a response for verb {v:#04x}")),
        };
        r.finish().map_err(|e| e.to_string())?;
        Ok(resp)
    }
}

/// Write one frame (length prefix + payload) to `w`. Does not flush —
/// callers batch the flush per response.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    // lint: allow(truncating-cast): asserted ≤ MAX_FRAME_LEN (16 MiB) above
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame from `r`, blocking until it is complete.
///
/// * `Ok(Some(payload))` — a whole frame arrived;
/// * `Ok(None)` — the stream ended cleanly *before* any byte of a frame
///   (the peer closed between requests);
/// * `Err(InvalidData)` — the length prefix exceeds `max_len` (the caller
///   should answer [`ErrorCode::TooLarge`] and close: the stream cannot be
///   resynchronized);
/// * any other `Err` — transport failure, including an EOF mid-frame.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // First byte by hand so a clean close between frames is `None`, not an
    // error.
    match r.read(&mut len_buf[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut len_buf[1..])?,
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {max_len}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Ping,
            Request::Get { key: k(1) },
            Request::Put { key: k(2), value: b"hello".to_vec() },
            Request::Delete { key: k(3) },
            Request::Scan { lo: k(0), hi: k(9), limit: 128 },
            Request::Seek { lo: k(4), hi: k(5) },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let enc = req.encode();
            assert_eq!(Request::decode(&enc).unwrap(), req, "roundtrip {req:?}");
        }
    }

    #[test]
    fn responses_roundtrip_per_verb() {
        let cases: Vec<(u8, Response)> = vec![
            (VERB_PING, Response::Ok),
            (VERB_PUT, Response::Ok),
            (VERB_GET, Response::Value(None)),
            (VERB_GET, Response::Value(Some(b"v".to_vec()))),
            (
                VERB_SCAN,
                Response::Entries {
                    entries: vec![(k(1), b"a".to_vec()), (k(2), Vec::new())],
                    more: true,
                },
            ),
            (VERB_SEEK, Response::Found(true)),
            (
                VERB_STATS,
                Response::Stats(vec![
                    ShardStats { shard: 0, gets: 7, sst_files: 3, ..Default::default() },
                    ShardStats { shard: 1, commits: 9, wal_replayed: 2, ..Default::default() },
                ]),
            ),
            (VERB_GET, Response::Error { code: ErrorCode::BadKey, message: "width 3 != 8".into() }),
        ];
        for (verb, resp) in cases {
            let enc = resp.encode();
            assert_eq!(Response::decode(verb, &enc).unwrap(), resp, "verb {verb:#04x}");
        }
    }

    #[test]
    fn truncated_and_trailing_request_bodies_are_typed_errors() {
        // Truncated: a PUT missing its value run.
        let mut enc = Vec::new();
        enc.put_u8(VERB_PUT);
        enc.put_bytes(&k(1));
        assert_eq!(Request::decode(&enc).unwrap_err().0, ErrorCode::BadFrame);
        // A length prefix lying past the end of the payload.
        let mut enc = Vec::new();
        enc.put_u8(VERB_GET);
        enc.put_u64(1 << 40);
        assert_eq!(Request::decode(&enc).unwrap_err().0, ErrorCode::BadFrame);
        // Trailing garbage after a well-formed body.
        let mut enc = Request::Get { key: k(1) }.encode();
        enc.push(0xAB);
        assert_eq!(Request::decode(&enc).unwrap_err().0, ErrorCode::BadFrame);
        // Unknown verb byte gets its own class.
        assert_eq!(Request::decode(&[0x7F]).unwrap_err().0, ErrorCode::UnknownVerb);
        // Empty payload (no verb byte at all).
        assert_eq!(Request::decode(&[]).unwrap_err().0, ErrorCode::BadFrame);
    }

    #[test]
    fn frames_roundtrip_and_enforce_the_length_ceiling() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap().unwrap(), b"abc");
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, MAX_FRAME_LEN).unwrap().is_none(), "clean EOF");
        // Oversized length prefix: typed InvalidData, not an allocation.
        let huge = (u32::MAX).to_le_bytes();
        let err = read_frame(&mut &huge[..], MAX_FRAME_LEN).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // EOF mid-frame is an error, not a silent empty frame.
        let mut torn = Vec::new();
        write_frame(&mut torn, b"abcdef").unwrap();
        torn.truncate(torn.len() - 2);
        assert!(read_frame(&mut &torn[..], MAX_FRAME_LEN).is_err());
    }

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::UnknownVerb,
            ErrorCode::BadKey,
            ErrorCode::TooLarge,
            ErrorCode::Store,
        ] {
            assert_eq!(ErrorCode::from_byte(code.as_byte()), Some(code));
        }
        assert_eq!(ErrorCode::from_byte(STATUS_OK), None);
        assert_eq!(ErrorCode::from_byte(0xEE), None);
    }
}

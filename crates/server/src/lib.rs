//! # proteus-server
//!
//! A sharded TCP front-end for the [`proteus_lsm`] store: `N` range-sharded
//! [`proteus_lsm::Db`] instances behind a length-prefixed binary protocol,
//! turning the single-process LSM library into a network service the load
//! generator (`fig_server` in `proteus-bench`) can hammer with thousands
//! of simulated clients.
//!
//! Everything here is `std::net` blocking I/O — no async runtime, no
//! external dependencies — which keeps the crate inside the workspace's
//! vendored-only constraint and makes the threading model trivially
//! auditable:
//!
//! * [`protocol`] — the frame layout, request verbs, response statuses and
//!   typed [`protocol::ErrorCode`]s;
//! * [`router`] — monotone range-sharding of the byte-string key space by
//!   ordered boundary keys (range ops touch a contiguous shard run,
//!   results concatenate already sorted);
//! * [`server`] — the accept loop, thread-per-connection dispatch, and the
//!   graceful-shutdown ordering contract (drain, join, then let
//!   [`proteus_lsm::Db`]'s drop run the final WAL sync);
//! * [`client`] — a minimal blocking client used by the tests, examples
//!   and the load generator.
//!
//! ## Quickstart
//!
//! ```no_run
//! use proteus_server::{Client, Server};
//! use std::sync::Arc;
//!
//! let server = Server::start(
//!     "/tmp/proteus-shards",
//!     ("127.0.0.1", 0), // port 0: pick a free port
//!     4,                // shards
//!     proteus_lsm::DbConfig::default(),
//!     Arc::new(proteus_lsm::ProteusFactory::default()),
//! )?;
//!
//! let mut c = Client::connect(server.local_addr())?;
//! c.put(&7u64.to_be_bytes(), b"value")?;
//! assert_eq!(c.get(&7u64.to_be_bytes())?, Some(b"value".to_vec()));
//! drop(server); // graceful: drain, join, final WAL sync per shard
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod router;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{ErrorCode, Request, Response, ShardStats};
pub use router::Router;
pub use server::Server;

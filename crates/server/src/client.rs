//! A minimal blocking client for the wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues one request at a
//! time (the protocol is strictly request/response per connection — no
//! pipelining). It exists for the integration tests, the examples and the
//! load generator; a production client would add reconnection and
//! pooling, which are out of scope here.

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Request, Response, ShardStats, MAX_FRAME_LEN, VERB_DEL,
    VERB_GET, VERB_PING, VERB_PUT, VERB_SCAN, VERB_SEEK, VERB_SHUTDOWN, VERB_STATS,
};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The transport failed (connect, read, write, or the server closed
    /// the connection mid-exchange).
    Io(std::io::Error),
    /// The server answered with a typed protocol error.
    Remote {
        /// The error class from the response status byte.
        code: ErrorCode,
        /// The server's diagnostic message.
        message: String,
    },
    /// The server's response payload was malformed (a protocol bug or a
    /// corrupted stream).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Remote { code, message } => write!(f, "server: {code}: {message}"),
            ClientError::Protocol(m) => write!(f, "malformed response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Client-side result alias.
pub type Result<T> = std::result::Result<T, ClientError>;

/// One blocking connection to a [`crate::Server`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: BufWriter::new(stream) })
    }

    /// Issue one request and decode the response for its verb.
    fn call(&mut self, req: &Request) -> Result<Response> {
        let payload = req.encode();
        let verb = payload[0];
        write_frame(&mut self.writer, &payload)?;
        self.writer.flush()?;
        let resp_payload = read_frame(&mut self.reader, MAX_FRAME_LEN)?.ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ))
        })?;
        match Response::decode(verb, &resp_payload).map_err(ClientError::Protocol)? {
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            resp => Ok(resp),
        }
    }

    fn unexpected<T>(verb: u8, resp: Response) -> Result<T> {
        Err(ClientError::Protocol(format!(
            "response shape {resp:?} does not match verb {verb:#04x}"
        )))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Ok => Ok(()),
            r => Self::unexpected(VERB_PING, r),
        }
    }

    /// Exact-key read.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.call(&Request::Get { key: key.to_vec() })? {
            Response::Value(v) => Ok(v),
            r => Self::unexpected(VERB_GET, r),
        }
    }

    /// Insert or overwrite one key. On `Ok`, the write is acked: it is in
    /// the owning shard's WAL (durable per that shard's
    /// [`proteus_lsm::SyncMode`]).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        match self.call(&Request::Put { key: key.to_vec(), value: value.to_vec() })? {
            Response::Ok => Ok(()),
            r => Self::unexpected(VERB_PUT, r),
        }
    }

    /// Delete one key (deleting an absent key is a valid no-op).
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        match self.call(&Request::Delete { key: key.to_vec() })? {
            Response::Ok => Ok(()),
            r => Self::unexpected(VERB_DEL, r),
        }
    }

    /// Ordered scan of `[lo, hi]`, at most `limit` entries (`0` = server
    /// default). Returns the entries and whether the limit cut the scan
    /// short.
    #[allow(clippy::type_complexity)]
    pub fn scan(
        &mut self,
        lo: &[u8],
        hi: &[u8],
        limit: u32,
    ) -> Result<(Vec<(Vec<u8>, Vec<u8>)>, bool)> {
        match self.call(&Request::Scan { lo: lo.to_vec(), hi: hi.to_vec(), limit })? {
            Response::Entries { entries, more } => Ok((entries, more)),
            r => Self::unexpected(VERB_SCAN, r),
        }
    }

    /// Closed-range emptiness probe: does any live key exist in `[lo, hi]`?
    pub fn seek(&mut self, lo: &[u8], hi: &[u8]) -> Result<bool> {
        match self.call(&Request::Seek { lo: lo.to_vec(), hi: hi.to_vec() })? {
            Response::Found(found) => Ok(found),
            r => Self::unexpected(VERB_SEEK, r),
        }
    }

    /// Per-shard statistics snapshots, in shard order.
    pub fn stats(&mut self) -> Result<Vec<ShardStats>> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            r => Self::unexpected(VERB_STATS, r),
        }
    }

    /// Ask the server to shut down gracefully. The ack arrives before the
    /// drain begins; the connection is closed by the server afterwards.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            r => Self::unexpected(VERB_SHUTDOWN, r),
        }
    }
}

//! The sharded TCP server: accept loop, per-connection request dispatch,
//! and graceful shutdown.
//!
//! ## Threading model
//!
//! One acceptor thread plus one thread per connection — the classic
//! blocking-I/O shape. The store's [`Db`] takes `&self` on every
//! operation and is `Sync`, so connection threads share the shard vector
//! through one `Arc` with no server-side locking; all cross-thread
//! coordination the server adds is a single shutdown [`AtomicBool`] and
//! the join-handle registry.
//!
//! ## Shutdown order
//!
//! Graceful shutdown ([`Server::shutdown`], also triggered by the
//! `SHUTDOWN` verb and by [`Server::drop`]) must sequence three layers:
//!
//! 1. **Stop accepting**: set the shutdown flag, then self-connect to the
//!    listener so the blocking `accept` observes it and exits.
//! 2. **Drain connections**: connection threads poll the flag between
//!    requests (reads use a short timeout so an idle connection notices
//!    within [`POLL_INTERVAL`]); a request already being served always
//!    runs to completion and its response is flushed — acked writes are
//!    never abandoned mid-frame. All connection threads are joined.
//! 3. **Drop the shards**: only after every thread that can touch a `Db`
//!    has exited are the shards dropped. [`Db::drop`] then runs its own
//!    shutdown (stop workers, final WAL sync), so every acked write is
//!    durable by the time [`Server::shutdown`] returns. Dropping a `Db`
//!    while a connection thread still held a reference would not be
//!    unsafe — `Arc` prevents the use-after-free — but it would defer the
//!    final WAL sync past the point the server claims to have stopped,
//!    which is why the join comes first.

use crate::protocol::{
    write_frame, ErrorCode, Request, Response, ShardStats, DEFAULT_SCAN_LIMIT, MAX_FRAME_LEN,
};
use crate::router::Router;
use proteus_core::sync::{rank, Mutex};
use proteus_lsm::{Db, DbConfig, Error as DbError, FilterFactory};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long an idle connection blocks in `read` before re-checking the
/// shutdown flag. Bounds shutdown latency without a wakeup channel per
/// connection.
pub const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// A running sharded server. Dropping it performs a full graceful
/// shutdown (see the module docs for the ordering contract).
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    local_addr: SocketAddr,
}

struct Shared {
    shards: Vec<Db>,
    router: Router,
    /// Longest key the shards accept (uniform across shards); validated
    /// up front so a malformed key never reaches a store.
    max_key_bytes: usize,
    /// The listener's bound address — the self-connect target that wakes
    /// the blocking accept loop during shutdown.
    listen_addr: SocketAddr,
    shutting_down: AtomicBool,
    /// Join handles for live connection threads. Finished threads are
    /// reaped lazily each accept; shutdown joins whatever remains.
    conns: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Open `n_shards` stores under `dir` (`dir/shard-0000`,
    /// `dir/shard-0001`, ...) and start serving on `addr`.
    ///
    /// Binding to port 0 picks a free port; read it back with
    /// [`Server::local_addr`]. Each shard gets its own directory, WAL and
    /// background workers, all sharing one `cfg` and filter `factory`.
    /// Re-opening an existing `dir` with the same shard count recovers
    /// every shard through its WAL/manifest (a different shard count would
    /// scatter keys to the wrong stores and is the operator's
    /// responsibility to avoid — shard count is not yet persisted).
    pub fn start(
        dir: impl AsRef<Path>,
        addr: impl ToSocketAddrs,
        n_shards: usize,
        cfg: DbConfig,
        factory: Arc<dyn FilterFactory>,
    ) -> std::io::Result<Server> {
        let router = Router::new(n_shards);
        let max_key_bytes = cfg.max_key_bytes();
        let mut shards = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let shard_dir: PathBuf = dir.as_ref().join(format!("shard-{i:04}"));
            std::fs::create_dir_all(&shard_dir)?;
            let db = Db::open(shard_dir, cfg.clone(), Arc::clone(&factory))
                .map_err(|e| std::io::Error::other(format!("opening shard {i}: {e}")))?;
            shards.push(db);
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shards,
            router,
            max_key_bytes,
            listen_addr: local_addr,
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(rank::SERVER_CONNS, Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("proteus-server-accept".into())
                .spawn(move || accept_loop(listener, shared))?
        };
        Ok(Server { shared, acceptor: Some(acceptor), local_addr })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of shards this server routes across.
    pub fn n_shards(&self) -> usize {
        self.shared.router.n_shards()
    }

    /// Whether shutdown has been requested (by [`Server::shutdown`], the
    /// `SHUTDOWN` verb, or drop).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Block until shutdown is requested — by [`Server::shutdown`] from
    /// another thread or by a client's `SHUTDOWN` verb. The standalone
    /// server binary parks here; drop the `Server` afterwards to complete
    /// the drain.
    pub fn wait(&self) {
        while !self.is_shutting_down() {
            std::thread::sleep(POLL_INTERVAL);
        }
    }

    /// Gracefully stop: drain in-flight requests, join every connection
    /// thread, then drop nothing — the shards live until the `Server`
    /// itself drops, so `STATS`-style inspection of `self.shared` stays
    /// valid. Idempotent; concurrent callers all block until the drain
    /// completes.
    pub fn shutdown(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the acceptor: a throwaway self-connection makes the
        // blocking accept() return so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Join the connection threads. Idle ones notice the flag within
        // POLL_INTERVAL; busy ones finish (and flush) their current
        // request first.
        let handles = {
            let mut g = self.shared.conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *g)
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    /// Graceful shutdown, then the shards drop (each [`Db::drop`] stops
    /// its workers and runs the final WAL sync). The join-before-drop
    /// ordering is the contract documented at module level.
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conn_id = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) if shared.shutting_down.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            // The self-connect wakeup (or a client racing shutdown):
            // drop the socket unserved and exit.
            return;
        }
        conn_id += 1;
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("proteus-server-conn-{conn_id}"))
            .spawn(move || {
                let _ = serve_connection(stream, &conn_shared);
            });
        let Ok(handle) = handle else { continue };
        let mut g = shared.conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Reap finished threads so a long-lived server with churning
        // connections doesn't accumulate handles.
        g.retain(|h| !h.is_finished());
        g.push(handle);
    }
}

/// Serve one connection until the peer closes, the transport fails, a
/// frame is oversized, or shutdown drains us. Never panics on malformed
/// input: every decode failure becomes a typed error response.
fn serve_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_frame_polled(&mut reader, shared) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()), // peer closed cleanly, or drained
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Oversized frame: answer TooLarge, then close — the
                // stream cannot be resynchronized past an unread body.
                let resp = Response::Error { code: ErrorCode::TooLarge, message: e.to_string() };
                write_frame(&mut writer, &resp.encode())?;
                return writer.flush();
            }
            Err(e) => return Err(e), // torn frame / transport failure
        };
        let (response, shutdown_after) = dispatch(&payload, shared);
        write_frame(&mut writer, &response.encode())?;
        writer.flush()?;
        if shutdown_after {
            shared.shutting_down.store(true, Ordering::SeqCst);
            // Wake the acceptor exactly like Server::shutdown does; the
            // Server's own shutdown/join still runs at drop.
            let _ = TcpStream::connect(shared.listen_addr);
            return Ok(());
        }
    }
}

/// Read one frame on a socket whose read timeout is [`POLL_INTERVAL`].
///
/// The timeout exists so an *idle* connection re-checks the shutdown flag;
/// it must not tear a frame whose bytes straddle a tick. So: while waiting
/// for a frame's first byte, every timeout is an idle tick (return
/// `Ok(None)` if shutdown was requested — nothing is in flight). Once the
/// first byte has arrived the frame is in flight and timeouts merely
/// retry, preserving progress; if shutdown is requested mid-frame the peer
/// gets one grace interval to finish sending before the read gives up
/// (the request never fully arrived, so abandoning it loses no acked
/// work).
fn read_frame_polled(r: &mut impl Read, shared: &Shared) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return Ok(None); // idle at a frame boundary: drained
        }
        match r.read(&mut len_buf[..1]) {
            Ok(0) => return Ok(None), // clean close between frames
            Ok(_) => break,
            Err(e) if is_poll_tick(&e) => continue,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    read_full(r, &mut len_buf[1..], shared)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, shared)?;
    Ok(Some(payload))
}

/// `read_exact` that survives timeout ticks without losing progress. Once
/// shutdown is requested, allows one further grace tick before giving up
/// on a peer stalled mid-frame.
fn read_full(r: &mut impl Read, mut buf: &mut [u8], shared: &Shared) -> std::io::Result<()> {
    let mut graced = false;
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => buf = &mut std::mem::take(&mut buf)[n..],
            Err(e) if is_poll_tick(&e) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    if graced {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "shutdown drain abandoned a frame stalled mid-transfer",
                        ));
                    }
                    graced = true;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// A read-timeout tick (platform-dependent kind) rather than a real error.
fn is_poll_tick(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Decode and execute one request. Returns the response plus whether the
/// connection should trigger server shutdown after flushing it.
fn dispatch(payload: &[u8], shared: &Shared) -> (Response, bool) {
    let req = match Request::decode(payload) {
        Ok(r) => r,
        Err((code, message)) => return (Response::Error { code, message }, false),
    };
    let resp = match req {
        Request::Ping => Response::Ok,
        Request::Get { key } => match shared.shard_for(&key) {
            Ok(db) => match db.get(&key) {
                Ok(v) => Response::Value(v),
                Err(e) => store_error(e),
            },
            Err(r) => r,
        },
        Request::Put { key, value } => match shared.shard_for(&key) {
            Ok(db) => match db.put(&key, &value) {
                Ok(()) => Response::Ok,
                Err(e) => store_error(e),
            },
            Err(r) => r,
        },
        Request::Delete { key } => match shared.shard_for(&key) {
            Ok(db) => match db.delete(&key) {
                Ok(()) => Response::Ok,
                Err(e) => store_error(e),
            },
            Err(r) => r,
        },
        Request::Scan { lo, hi, limit } => shared.scan(&lo, &hi, limit),
        Request::Seek { lo, hi } => shared.seek(&lo, &hi),
        Request::Stats => Response::Stats(shared.stats()),
        Request::Shutdown => return (Response::Ok, true),
    };
    (resp, false)
}

/// Map a store failure to the wire: key-validation failures are the
/// client's fault ([`ErrorCode::BadKey`]); everything else is a server-side
/// store error carrying the typed rendering.
fn store_error(e: DbError) -> Response {
    let code = match e {
        DbError::Config(_) => ErrorCode::BadKey,
        _ => ErrorCode::Store,
    };
    Response::Error { code, message: e.to_string() }
}

impl Shared {
    /// Validate the key length up front (uniform across shards), then
    /// route. Keys are arbitrary byte strings of 1..=`max_key_bytes`
    /// bytes.
    fn shard_for(&self, key: &[u8]) -> Result<&Db, Response> {
        self.check_key("key", key)?;
        Ok(&self.shards[self.router.shard_of(key)])
    }

    fn check_key(&self, name: &str, key: &[u8]) -> Result<(), Response> {
        if key.is_empty() || key.len() > self.max_key_bytes {
            return Err(Response::Error {
                code: ErrorCode::BadKey,
                message: format!(
                    "{name} is {} bytes; this server stores keys of 1..={} bytes",
                    key.len(),
                    self.max_key_bytes
                ),
            });
        }
        Ok(())
    }

    /// Ordered scan of `[lo, hi]` across the shard run. Shards partition
    /// the key space contiguously and in order, so concatenating per-shard
    /// results in shard order yields a globally sorted answer.
    fn scan(&self, lo: &[u8], hi: &[u8], limit: u32) -> Response {
        if let Err(r) = self.check_bounds(lo, hi) {
            return r;
        }
        let limit = if limit == 0 { DEFAULT_SCAN_LIMIT } else { limit } as usize;
        let mut entries = Vec::new();
        let mut more = false;
        'shards: for s in self.router.shards_for_range(lo, hi) {
            let iter = match self.shards[s]
                .range((Bound::Included(lo.to_vec()), Bound::Included(hi.to_vec())))
            {
                Ok(it) => it,
                Err(e) => return store_error(e),
            };
            for item in iter {
                let (k, v) = match item {
                    Ok(kv) => kv,
                    Err(e) => return store_error(e),
                };
                if entries.len() == limit {
                    more = true;
                    break 'shards;
                }
                entries.push((k, v));
            }
        }
        Response::Entries { entries, more }
    }

    /// Emptiness probe across the shard run, short-circuiting on the first
    /// shard that finds a live key.
    fn seek(&self, lo: &[u8], hi: &[u8]) -> Response {
        if let Err(r) = self.check_bounds(lo, hi) {
            return r;
        }
        for s in self.router.shards_for_range(lo, hi) {
            match self.shards[s].seek(lo, hi) {
                Ok(true) => return Response::Found(true),
                Ok(false) => {}
                Err(e) => return store_error(e),
            }
        }
        Response::Found(false)
    }

    fn check_bounds(&self, lo: &[u8], hi: &[u8]) -> Result<(), Response> {
        self.check_key("lo bound", lo)?;
        self.check_key("hi bound", hi)
    }

    fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, db)| {
                let s = db.stats();
                ShardStats {
                    shard: i as u32,
                    gets: s.gets.get(),
                    deletes: s.deletes.get(),
                    range_scans: s.range_scans.get(),
                    seeks: s.seeks.get(),
                    commits: s.wal_appends.get(),
                    wal_replayed: s.wal_replayed_records.get(),
                    flushes: s.flushes.get(),
                    compactions: s.compactions.get(),
                    sst_files: db.sst_count() as u64,
                }
            })
            .collect()
    }
}

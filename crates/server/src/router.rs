//! Range-sharded key routing.
//!
//! The server partitions the key space across `n` shards by the key's
//! 8-byte big-endian prefix: shard `i` owns the contiguous slice of the
//! `u64` prefix space `[i * 2^64 / n, (i+1) * 2^64 / n)`. Because the
//! store's keys are fixed-width big-endian ([`proteus_core::key::u64_key`]
//! layout), this mapping is **monotone in key order**: every key in shard
//! `i` sorts before every key in shard `i + 1`. Range operations
//! (`SCAN` / `SEEK`) therefore touch only the contiguous shard run
//! [`Router::shards_for_range`] and can concatenate per-shard results in
//! shard order to get a globally sorted answer — no merge needed.
//!
//! Keys narrower than 8 bytes are right-padded with zeros for routing
//! (padding preserves big-endian order); bytes past the eighth never
//! influence the shard, which is fine — they refine order *within* a
//! prefix, and a prefix never straddles shards.

/// Maps fixed-width big-endian keys to one of `n` contiguous range shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Router {
    n_shards: usize,
}

impl Router {
    /// A router over `n_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or exceeds `u32::MAX` (the protocol
    /// carries shard indices as `u32`).
    pub fn new(n_shards: usize) -> Router {
        assert!(n_shards > 0, "a server needs at least one shard");
        assert!(n_shards <= u32::MAX as usize, "shard count must fit in u32");
        Router { n_shards }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard owning `key`. Always in `0..n_shards`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        let mut prefix = [0u8; 8];
        let take = key.len().min(8);
        prefix[..take].copy_from_slice(&key[..take]);
        let p = u64::from_be_bytes(prefix);
        // Multiply-shift split: shard i owns an equal 1/n slice of the
        // prefix space, and the map is monotone (key order => shard order).
        ((p as u128 * self.n_shards as u128) >> 64) as usize
    }

    /// The inclusive run of shards a closed key range `[lo, hi]` can
    /// touch, in ascending shard order. Empty when `lo > hi`.
    pub fn shards_for_range(&self, lo: &[u8], hi: &[u8]) -> std::ops::RangeInclusive<usize> {
        if lo > hi {
            // An empty iteration; `1..=0` is the canonical empty inclusive
            // range over usize.
            #[allow(clippy::reversed_empty_ranges)]
            return 1..=0;
        }
        self.shard_of(lo)..=self.shard_of(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u64) -> [u8; 8] {
        i.to_be_bytes()
    }

    #[test]
    fn every_key_lands_in_bounds_and_routing_is_monotone() {
        for n in [1usize, 2, 3, 4, 7, 16] {
            let r = Router::new(n);
            for step in 0..4096u64 {
                let key = k(step.wrapping_mul(0x0004_0000_0000_0421));
                let s = r.shard_of(&key);
                assert!(s < n, "shard {s} out of bounds for n={n}");
            }
            // Monotone: walk keys in increasing order, shards never go
            // backwards.
            let mut prev = r.shard_of(&k(0));
            for i in 1..=1000u64 {
                let s = r.shard_of(&k(i * (u64::MAX / 1000)));
                assert!(s >= prev, "shard order regressed at i={i} for n={n}");
                prev = s;
            }
            assert_eq!(r.shard_of(&k(0)), 0, "smallest key must hit shard 0");
            assert_eq!(r.shard_of(&k(u64::MAX)), n - 1, "largest key must hit the last shard");
        }
    }

    #[test]
    fn shards_split_the_space_roughly_evenly() {
        let n = 8;
        let r = Router::new(n);
        let mut counts = vec![0u64; n];
        let samples = 64 * 1024u64;
        for i in 0..samples {
            counts[r.shard_of(&k(i * (u64::MAX / samples)))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let ideal = samples / n as u64;
            assert!(c > ideal * 9 / 10 && c < ideal * 11 / 10, "shard {i} unbalanced: {counts:?}");
        }
    }

    #[test]
    fn short_keys_route_like_their_zero_padded_prefix() {
        let r = Router::new(4);
        assert_eq!(r.shard_of(&[0x80, 0x00]), r.shard_of(&[0x80, 0x00, 0, 0, 0, 0, 0, 0]));
        // Bytes past the eighth never change the shard.
        let long = [0xC0, 1, 2, 3, 4, 5, 6, 7, 0xFF, 0xFF];
        assert_eq!(r.shard_of(&long), r.shard_of(&long[..8]));
    }

    #[test]
    fn range_runs_are_contiguous_and_ordered() {
        let r = Router::new(4);
        let lo = k(0);
        let hi = k(u64::MAX);
        assert_eq!(r.shards_for_range(&lo, &hi), 0..=3);
        // A range inside one shard touches only it.
        let lo = k(1);
        let hi = k(2);
        assert_eq!(r.shards_for_range(&lo, &hi), 0..=0);
        // Inverted bounds are an empty run.
        assert_eq!(r.shards_for_range(&hi, &lo).count(), 0);
    }
}

//! Range-sharded key routing.
//!
//! The server partitions the key space across `n` shards by `n - 1`
//! **ordered boundary keys**: shard `i` owns the contiguous slice of key
//! space `[boundary[i-1], boundary[i])` (shard 0 runs from the smallest
//! key, the last shard to the largest). A key routes to the number of
//! boundaries that are `<=` it — a plain lexicographic
//! `partition_point`, so the mapping is **monotone in key order** for
//! keys of *any* length: every key in shard `i` sorts before every key
//! in shard `i + 1`. Range operations (`SCAN` / `SEEK`) therefore touch
//! only the contiguous shard run [`Router::shards_for_range`] and can
//! concatenate per-shard results in shard order to get a globally sorted
//! answer — no merge needed.
//!
//! [`Router::new`] seeds the boundaries with an even split of the 8-byte
//! big-endian prefix space (boundary `i` is the 8-byte key
//! `ceil(i * 2^64 / n)`), which routes fixed-width u64 keys exactly like
//! the earlier multiply-shift router did. Boundary keys are compared as
//! ordinary keys — no padding: a key that is a strict prefix of a
//! boundary sorts (and routes) below it.

/// Maps byte-string keys to one of `n` contiguous range shards by ordered
/// boundary keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Router {
    /// `n_shards - 1` strictly ascending split keys; shard `i` owns
    /// `[boundaries[i-1], boundaries[i])`.
    boundaries: Vec<Vec<u8>>,
}

impl Router {
    /// A router over `n_shards` shards, splitting the 8-byte big-endian
    /// prefix space evenly.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or exceeds `u32::MAX` (the protocol
    /// carries shard indices as `u32`).
    pub fn new(n_shards: usize) -> Router {
        assert!(n_shards > 0, "a server needs at least one shard");
        assert!(n_shards <= u32::MAX as usize, "shard count must fit in u32");
        let boundaries = (1..n_shards)
            .map(|i| {
                let split = ((i as u128) << 64).div_ceil(n_shards as u128) as u64;
                split.to_be_bytes().to_vec()
            })
            .collect();
        Router { boundaries }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The ordered split keys (one fewer than the shard count).
    pub fn boundaries(&self) -> &[Vec<u8>] {
        &self.boundaries
    }

    /// The shard owning `key`: the number of boundary keys `<= key`.
    /// Always in `0..n_shards`, monotone in lexicographic key order.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.boundaries.partition_point(|b| b.as_slice() <= key)
    }

    /// The inclusive run of shards a closed key range `[lo, hi]` can
    /// touch, in ascending shard order. Empty when `lo > hi`.
    pub fn shards_for_range(&self, lo: &[u8], hi: &[u8]) -> std::ops::RangeInclusive<usize> {
        if lo > hi {
            // An empty iteration; `1..=0` is the canonical empty inclusive
            // range over usize.
            #[allow(clippy::reversed_empty_ranges)]
            return 1..=0;
        }
        self.shard_of(lo)..=self.shard_of(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u64) -> [u8; 8] {
        i.to_be_bytes()
    }

    #[test]
    fn every_key_lands_in_bounds_and_routing_is_monotone() {
        for n in [1usize, 2, 3, 4, 7, 16] {
            let r = Router::new(n);
            assert_eq!(r.n_shards(), n);
            for step in 0..4096u64 {
                let key = k(step.wrapping_mul(0x0004_0000_0000_0421));
                let s = r.shard_of(&key);
                assert!(s < n, "shard {s} out of bounds for n={n}");
            }
            // Monotone: walk keys in increasing order, shards never go
            // backwards.
            let mut prev = r.shard_of(&k(0));
            for i in 1..=1000u64 {
                let s = r.shard_of(&k(i * (u64::MAX / 1000)));
                assert!(s >= prev, "shard order regressed at i={i} for n={n}");
                prev = s;
            }
            assert_eq!(r.shard_of(&k(0)), 0, "smallest key must hit shard 0");
            assert_eq!(r.shard_of(&k(u64::MAX)), n - 1, "largest key must hit the last shard");
        }
    }

    #[test]
    fn u64_routing_matches_the_legacy_multiply_shift_split() {
        // The boundary seed must keep routing fixed-width u64 keys exactly
        // where the old `(p * n) >> 64` router put them, so existing
        // sharded directories stay valid.
        for n in [1usize, 2, 3, 5, 8, 13] {
            let r = Router::new(n);
            for step in 0..8192u64 {
                let p = step.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let legacy = ((p as u128 * n as u128) >> 64) as usize;
                assert_eq!(r.shard_of(&k(p)), legacy, "key {p:#x} diverged for n={n}");
            }
        }
    }

    #[test]
    fn shards_split_the_space_roughly_evenly() {
        let n = 8;
        let r = Router::new(n);
        let mut counts = vec![0u64; n];
        let samples = 64 * 1024u64;
        for i in 0..samples {
            counts[r.shard_of(&k(i * (u64::MAX / samples)))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let ideal = samples / n as u64;
            assert!(c > ideal * 9 / 10 && c < ideal * 11 / 10, "shard {i} unbalanced: {counts:?}");
        }
    }

    #[test]
    fn variable_length_keys_route_in_lexicographic_order() {
        let r = Router::new(4);
        // Boundaries are ordinary keys: a strict prefix of a boundary
        // sorts (and routes) below it, longer keys above.
        assert_eq!(r.boundaries()[1], k(0x8000_0000_0000_0000));
        assert_eq!(r.shard_of(&[0x80]), 1, "strict prefix of a boundary routes below it");
        assert_eq!(r.shard_of(&[0x80, 0, 0, 0, 0, 0, 0, 0]), 2);
        assert_eq!(r.shard_of(&[0x80, 0, 0, 0, 0, 0, 0, 0, 0xFF]), 2);
        assert_eq!(r.shard_of(b""), 0);
        assert_eq!(r.shard_of(&[0xFF; 1024]), 3);
        // Monotone over a mixed-length sorted key set.
        let mut keys: Vec<Vec<u8>> = vec![
            vec![0x01],
            b"https://example.com/a".to_vec(),
            b"https://example.com/a/b".to_vec(),
            vec![0x90; 3],
            vec![0xC0, 0x01],
            vec![0xFE; 300],
        ];
        keys.sort();
        let mut prev = 0usize;
        for key in &keys {
            let s = r.shard_of(key);
            assert!(s >= prev, "shard order regressed at {key:?}");
            prev = s;
        }
    }

    #[test]
    fn range_runs_are_contiguous_and_ordered() {
        let r = Router::new(4);
        let lo = k(0);
        let hi = k(u64::MAX);
        assert_eq!(r.shards_for_range(&lo, &hi), 0..=3);
        // A range inside one shard touches only it.
        let lo = k(1);
        let hi = k(2);
        assert_eq!(r.shards_for_range(&lo, &hi), 0..=0);
        // Inverted bounds are an empty run.
        assert_eq!(r.shards_for_range(&hi, &lo).count(), 0);
    }
}

//! The ordered range iterator behind [`crate::Db::range`] (and, through
//! a thin emptiness wrapper, [`crate::Db::seek`]).
//!
//! A [`RangeIter`] is a k-way merge over every layer that can hold a
//! version of a key, in recency order:
//!
//! 1. the active MemTable,
//! 2. the immutable (rotated) MemTables, newest first,
//! 3. L0 SSTs, newest first,
//! 4. the deeper, disjoint levels, shallowest first.
//!
//! MemTable entries in range are snapshotted (cloned) at construction
//! under a short read lock; SST levels come from the `Arc`-swapped
//! `Version` snapshot, so iteration itself holds no lock at all. Each
//! overlapping SST is admitted through its range filter first — a filter
//! negative skips the file without I/O (the same probe accounting as
//! `seek`), which is what makes short scans over a cold store cheap.
//!
//! Admitted SSTs are read *lazily*: each starts as a pending heap entry
//! keyed by the smallest key it could contribute (`max(lo, min_key)`)
//! and only pays its first block read when the merge actually reaches
//! that position. A `seek` that is satisfied early therefore never
//! touches the files behind its first hit — and those files accumulate
//! no false-positive evidence for a probe whose I/O was never paid.
//!
//! SST positions flow through the merge *zero-copy*: a heap item holds
//! an `(Arc<Block>, index)` cursor and compares by the key slice
//! borrowed from the decoded block. Bytes are materialized only for the
//! entry actually yielded — shadowed duplicates and suppressed
//! tombstones cost no allocation at all. When a single source survives
//! admission the merge drops to a direct fast path: no heap reordering
//! and no shadow-key bookkeeping (one source never yields duplicates).
//!
//! Shadowing: for equal keys the source with the lower rank (newer layer)
//! wins; older duplicates are skipped. A winning tombstone suppresses the
//! key entirely — the iterator yields *live* entries only, sorted and
//! deduplicated.
//!
//! Errors: an I/O or corruption failure is reported once and ends the
//! iteration. A failure while *refilling* a source never discards an
//! entry the merge had already determined — the entry is yielded first
//! and the error surfaces on the following `next()` call.

use crate::block::Block;
use crate::db::DbInner;
use crate::error::{Error, Result};
use crate::sst::{Entry, SstReader};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// One merge position: the source's rank (recency; lower = newer) plus
/// where its current entry lives.
struct HeapItem {
    rank: usize,
    pos: Pos,
}

/// Where a heap item's entry lives. Only `Mem` owns its bytes (the
/// MemTable snapshot already materialized them); an SST entry stays a
/// borrowed position inside its decoded block until it is yielded.
enum Pos {
    /// A snapshotted MemTable entry.
    Mem(Vec<u8>, Option<Vec<u8>>),
    /// An SST source whose first block has not been read yet; the key is
    /// a lower bound on whatever the file will contribute.
    Pending(Vec<u8>),
    /// A cursor into a decoded block held alive by its `Arc`.
    Block(Arc<Block>, u32),
}

impl HeapItem {
    fn key(&self) -> &[u8] {
        match &self.pos {
            Pos::Mem(k, _) => k,
            Pos::Pending(k) => k,
            Pos::Block(b, i) => b.key(*i as usize),
        }
    }
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    /// Inverted so `BinaryHeap` (a max-heap) pops the smallest
    /// `(key, rank)` first: ascending keys, newest layer on ties.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(self.key()).then_with(|| other.rank.cmp(&self.rank))
    }
}

/// An ordered iterator over the live entries in a closed key range; see
/// the [module docs](self) and [`crate::Db::range`].
///
/// Yields `Result<(key, value)>`: an I/O or corruption error ends the
/// iteration after being reported once.
pub struct RangeIter<'a> {
    heap: BinaryHeap<HeapItem>,
    sources: Vec<Source<'a>>,
    /// Ranks below this are MemTable sources.
    n_mem: usize,
    last_key: Option<Vec<u8>>,
    /// Did any SST get past its filter (i.e. could block I/O be paid)?
    pub(crate) io_paid: bool,
    /// Was the first *live* entry supplied by a MemTable?
    pub(crate) first_from_memtable: bool,
    yielded_any: bool,
    /// A refill failure held back so the already-determined entry could
    /// be yielded first; surfaced by the next `next()` call.
    deferred_error: Option<Error>,
    failed: bool,
}

enum Source<'a> {
    Mem(std::vec::IntoIter<Entry>),
    Sst(BoundedScan<'a>),
}

impl Source<'_> {
    /// The source's next entry as an un-materialized heap position.
    fn next_pos(&mut self) -> Result<Option<Pos>> {
        match self {
            Source::Mem(it) => Ok(it.next().map(|(k, v)| Pos::Mem(k, v))),
            Source::Sst(scan) => Ok(scan.next_pos()?.map(|(b, i)| Pos::Block(b, i))),
        }
    }
}

/// A forward scan over one SST clamped to `[lo, hi]`, reading blocks
/// through the shared cache.
struct BoundedScan<'a> {
    db: &'a DbInner,
    sst: Arc<SstReader>,
    /// Did a real filter admit this file? Decides false-positive
    /// accounting when the materialized scan turns out empty.
    real_filter: bool,
    hi: Vec<u8>,
    /// Lower bound still to be applied to the first block read.
    pending_lo: Option<Vec<u8>>,
    block_idx: usize,
    entry_idx: usize,
    block: Option<Arc<Block>>,
}

impl BoundedScan<'_> {
    /// Advance to the next in-range entry and return its position
    /// without copying any bytes. The returned `Arc` keeps the block
    /// alive independently of the scan moving on to later blocks.
    fn next_pos(&mut self) -> Result<Option<(Arc<Block>, u32)>> {
        loop {
            if self.block.is_none() {
                if self.block_idx >= self.sst.n_blocks()
                    || self.sst.block_meta(self.block_idx).first_key > self.hi
                {
                    return Ok(None);
                }
                let block = self.db.cached_block(&self.sst, self.block_idx)?;
                self.entry_idx = match self.pending_lo.take() {
                    Some(lo) => block.lower_bound(&lo),
                    None => 0,
                };
                self.block = Some(block);
            }
            let Some(block) = self.block.as_ref() else {
                // Unreachable: the branch above just installed the block.
                return Ok(None);
            };
            if self.entry_idx < block.len() {
                let i = self.entry_idx;
                if block.key(i) > self.hi.as_slice() {
                    return Ok(None);
                }
                self.entry_idx += 1;
                return Ok(Some((Arc::clone(block), i as u32)));
            }
            self.block = None;
            self.block_idx += 1;
        }
    }
}

impl<'a> RangeIter<'a> {
    /// An iterator that yields nothing (inverted or empty-by-bounds
    /// ranges).
    pub(crate) fn empty() -> RangeIter<'a> {
        RangeIter {
            heap: BinaryHeap::new(),
            sources: Vec::new(),
            n_mem: 0,
            last_key: None,
            io_paid: false,
            first_from_memtable: false,
            yielded_any: false,
            deferred_error: None,
            failed: false,
        }
    }

    /// Build the merge over `[lo, hi]` (both inclusive, canonical-width
    /// keys, `lo <= hi`). Probes every overlapping SST's filter here
    /// (in-memory, recording true negatives) but defers all block I/O:
    /// admitted files enter the heap as pending entries and are read only
    /// when the merge reaches them.
    pub(crate) fn new(db: &'a DbInner, lo: Vec<u8>, hi: Vec<u8>) -> Result<RangeIter<'a>> {
        debug_assert!(lo <= hi);
        let mut it = RangeIter::empty();

        // 1. MemTables, newest first, snapshotted under a short read lock.
        {
            let mem = db.mem_read()?;
            let mut mem_sources = vec![mem.active.range_entries(&lo, &hi)];
            for imm in mem.imms.iter().rev() {
                mem_sources.push(imm.mem.range_entries(&lo, &hi));
            }
            for entries in mem_sources {
                let rank = it.sources.len();
                let mut src = entries.into_iter();
                if let Some((k, v)) = src.next() {
                    it.heap.push(HeapItem { rank, pos: Pos::Mem(k, v) });
                    it.sources.push(Source::Mem(src));
                }
            }
        }
        it.n_mem = it.sources.len();

        // 2. SSTs from the manifest snapshot: L0 newest first, then the
        //    disjoint deeper levels.
        let version = db.version();
        let mut candidates: Vec<Arc<SstReader>> = Vec::new();
        for sst in version.levels[0].iter().rev() {
            if sst.overlaps(&lo, &hi) {
                candidates.push(Arc::clone(sst));
            }
        }
        for level in &version.levels[1..] {
            let start = level.partition_point(|s| s.max_key < lo);
            for sst in &level[start..] {
                if sst.min_key > hi {
                    break;
                }
                candidates.push(Arc::clone(sst));
            }
        }
        for sst in candidates {
            let Some(real_filter) = db.filter_admits(&sst, &lo, &hi) else {
                continue; // proven empty; true negative recorded
            };
            it.io_paid = true;
            // The smallest key this file could contribute: its entries in
            // range all sit at or above max(lo, min_key), so a pending
            // heap entry at that key materializes exactly when the merge
            // could need the file — and never sooner.
            let est = if sst.min_key.as_slice() > lo.as_slice() {
                sst.min_key.clone()
            } else {
                lo.clone()
            };
            let rank = it.sources.len();
            it.heap.push(HeapItem { rank, pos: Pos::Pending(est) });
            it.sources.push(Source::Sst(BoundedScan {
                db,
                sst: Arc::clone(&sst),
                real_filter,
                hi: hi.clone(),
                pending_lo: Some(lo.clone()),
                block_idx: sst.first_candidate_block(&lo),
                entry_idx: 0,
                block: None,
            }));
        }
        Ok(it)
    }

    /// Materialize a pending SST source's head and record the filter
    /// probe's outcome: contributing anything in range is a true
    /// positive; an admitted file with nothing in range cost real I/O —
    /// a false positive (per-file evidence only for real filters).
    fn materialize(&mut self, rank: usize) -> Result<()> {
        let head = self.sources[rank].next_pos()?;
        let Source::Sst(scan) = &self.sources[rank] else { unreachable!("pending mem source") };
        let (db, real_filter) = (scan.db, scan.real_filter);
        match head {
            Some(pos) => {
                db.stats.filter_true_positives.inc();
                self.heap.push(HeapItem { rank, pos });
            }
            None => {
                db.stats.filter_false_positives.inc();
                if real_filter {
                    scan.sst.record_probe(true);
                    db.stats.observed_fp.inc();
                }
            }
        }
        Ok(())
    }
}

impl Iterator for RangeIter<'_> {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        // With a single surviving source no key can ever repeat, so the
        // shadow-key bookkeeping (and its per-key clone) is skipped
        // entirely — the borrowing fast path for one-layer stores.
        let single_source = self.sources.len() == 1;
        loop {
            if let Some(e) = self.deferred_error.take() {
                self.failed = true;
                return Some(Err(e));
            }
            let HeapItem { rank, pos } = self.heap.pop()?;
            if let Pos::Pending(_) = pos {
                // First touch of this SST: read its head. No entry has
                // been determined yet, so an error surfaces directly.
                if let Err(e) = self.materialize(rank) {
                    self.failed = true;
                    return Some(Err(e));
                }
                continue;
            }
            // Refill the heap from the source that just advanced. A
            // failure here must not discard the entry we already hold:
            // defer it and let this iteration finish first.
            match self.sources[rank].next_pos() {
                Ok(Some(pos)) => self.heap.push(HeapItem { rank, pos }),
                Ok(None) => {}
                Err(e) => self.deferred_error = Some(e),
            }
            // Shadowing: a key equal to the last one handled is an older
            // version (the newest popped first by rank). Nothing is
            // copied for a shadowed or tombstone position.
            if !single_source {
                let key = match &pos {
                    Pos::Mem(k, _) => k.as_slice(),
                    Pos::Block(b, i) => b.key(*i as usize),
                    Pos::Pending(_) => unreachable!("handled above"),
                };
                if self.last_key.as_deref() == Some(key) {
                    continue;
                }
                match &mut self.last_key {
                    // Reuse the allocation when the buffer fits.
                    Some(buf) => {
                        buf.clear();
                        buf.extend_from_slice(key);
                    }
                    none => *none = Some(key.to_vec()),
                }
            }
            // Materialize only what is actually yielded: a suppressed
            // tombstone costs nothing.
            let (key, value) = match pos {
                Pos::Mem(k, Some(v)) => (k, v),
                Pos::Mem(_, None) => continue,
                Pos::Block(b, i) => {
                    let i = i as usize;
                    if b.is_tombstone(i) {
                        continue;
                    }
                    (b.key(i).to_vec(), b.value(i).to_vec())
                }
                Pos::Pending(_) => unreachable!("handled above"),
            };
            if !self.yielded_any {
                self.yielded_any = true;
                self.first_from_memtable = rank < self.n_mem;
            }
            return Some(Ok((key, value)));
        }
    }
}

//! The LSM-tree key-value store: MemTable → L0 (overlapping) → leveled,
//! range-partitioned L1+ with size-ratio-triggered compaction, per-SST
//! range filters, a block cache, and the v2 read surface — `get`,
//! ordered `range` scans, and the §6.1 closed-`Seek` emptiness probe.
//!
//! ## API v2
//!
//! Every public operation returns the typed [`crate::Result`] (never a
//! bare `std::io::Result`). The write surface is [`Db::put`],
//! [`Db::delete`] and atomic [`Db::write`] batches; the read surface is
//! [`Db::get`], [`Db::range`] (an ordered, deduplicated, tombstone-aware
//! merge iterator) and [`Db::seek`], which is a thin emptiness wrapper
//! around the same merge. Deletes are first-class: a tombstone entry
//! shadows every older version of its key through MemTables, SSTs,
//! compaction and recovery, and is only dropped once a compaction output
//! lands at the bottom of the tree, where nothing older can remain.
//!
//! ## Concurrency model
//!
//! [`Db`] is a shared-state concurrent store (`&self` everywhere, `Send +
//! Sync`), mirroring the multi-threaded RocksDB setup the paper evaluates
//! under concurrent reader threads (§6.2):
//!
//! * **Reads** never block on writers or background work. `get`, `range`
//!   and `seek` snapshot the MemTables under a briefly-held read lock,
//!   then grab an `Arc`-snapshot of the immutable level manifest
//!   (`Version`) and run against it lock-free; block I/O goes through a
//!   sharded cache.
//! * **Writes** go through the active MemTable under a write lock (a
//!   [`crate::WriteBatch`] applies all of its operations under a single
//!   acquisition — atomic with respect to every reader). Each write is
//!   first appended to the write-ahead log as one commit record (see
//!   [`crate::wal`]) while the MemTable lock is held, so log order equals
//!   apply order; the `fdatasync` policy ([`crate::SyncMode`]) runs
//!   *after* the lock is released, which is what lets concurrent writers
//!   share one group-commit sync. When the table reaches `memtable_bytes`
//!   it *rotates*: the active WAL segment is sealed (synced), the full
//!   table is frozen onto an immutable-memtable FIFO and a fresh active
//!   table + segment take its place. Writers stall only when
//!   `max_immutable_memtables` frozen tables are already waiting
//!   (RocksDB's write-stall backpressure).
//! * **Background workers**: a *flusher* thread turns frozen MemTables
//!   into L0 SSTs (building each file's range filter from its keys + the
//!   sample-query queue, §6.1) and deletes each table's sealed WAL
//!   segment once its SST is installed, and a *compactor* thread folds
//!   levels when size triggers fire. Both publish their results by
//!   swapping a new `Arc<Version>` under a short-held write lock
//!   (copy-on-write level vectors); readers holding older versions keep
//!   working — retired SST files are unlinked but their open descriptors
//!   stay readable.
//! * **Visibility**: an acked `put` (or `delete`) is always observed. A
//!   reader checks MemTables *before* the manifest, and the flusher
//!   installs an SST into the manifest *before* retiring its source
//!   MemTable, so every entry is continuously visible in at least one of
//!   the two places.
//! * **Barriers**: [`Db::flush`] waits until every MemTable rotated so far
//!   is durably on disk; [`Db::flush_and_settle`] additionally drives
//!   compaction until L0 is empty and every level is within its size
//!   target (the §6.2 "wait for all background compactions" setup step),
//!   making multi-step tests deterministic.
//!
//! Lock discipline: every lock in this crate is a ranked
//! [`proteus_core::sync`] wrapper, and locks must be acquired in strictly
//! decreasing rank order (the full hierarchy table lives in
//! `ARCHITECTURE.md`). The ranks used here: `ADAPT` (90, the adaptive-pass
//! serializer) > `MEMTABLE` (80) > `GATE` (70, worker coordination) >
//! `WAL` (60) > `MANIFEST` (50) > `SST_META` (40) > `CACHE_SHARD` (30) >
//! `QUERY_QUEUE` (20). The permitted nestings all descend: MemTable → WAL
//! (appends and seals happen under the MemTable write lock), MemTable →
//! gate (a rotation publishes its counter bump before releasing the
//! MemTable lock, which is what makes the `flush` barrier race-free), and
//! adapt → {gate, manifest, SST metadata, query queue} during an adaptive
//! pass. Debug builds (and release builds with the `lock-doctor` feature)
//! verify the ordering at runtime and panic, naming both acquisition
//! sites, on any inversion. Background I/O errors are
//! sticky: they surface as `Err` from the next `flush`/`flush_and_settle`
//! (and from writes on the rotation path). A poisoned foreground lock
//! (another thread panicked) surfaces as [`Error::Poisoned`]; background
//! workers treat a poisoned lock the same way — they record the sticky
//! error and exit rather than panicking (a worker panic would poison the
//! coordination gate in turn). Shutdown ([`Db::drop`], crash injection)
//! and error recording *recover* a poisoned gate guard instead of
//! propagating it, so dropping a `Db` whose worker crashed always
//! completes instead of double-panicking into a process abort. A poisoned
//! manifest lock is recovered too: the manifest content is an `Arc`
//! swapped in a single assignment, so a panic under the lock can never
//! expose a half-edited version.

use crate::batch::WriteBatch;
use crate::block::Block;
use crate::cache::ShardedBlockCache;
use crate::error::{Error, Result};
use crate::filter_hook::FilterFactory;
use crate::iter::RangeIter;
use crate::memtable::MemTable;
use crate::query_queue::QueryQueue;
use crate::sst::{SstReader, SstScanner, SstWriter};
use crate::stats::Stats;
use crate::wal::{self, Wal};
use proteus_core::key::{pad_key, u64_key};
use proteus_core::sync::{
    rank, Condvar, LockObserver, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::{Bound, RangeBounds};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use crate::config::{DbConfig, DbConfigBuilder};

/// An immutable snapshot of the SST level manifest. `levels[0]` holds
/// overlapping flush outputs (newest last); deeper levels are sorted and
/// disjoint. Cloning is cheap (per-level `Vec<Arc<SstReader>>` copies).
#[derive(Debug, Clone)]
pub(crate) struct Version {
    pub(crate) levels: Vec<Vec<Arc<SstReader>>>,
}

impl Version {
    fn ensure_level(&mut self, level: usize) {
        while self.levels.len() <= level {
            self.levels.push(Vec::new());
        }
    }
}

/// A frozen MemTable awaiting flush, paired with the sealed WAL segment
/// holding exactly its writes (deleted by the flusher once the table's
/// SST is installed).
pub(crate) struct Imm {
    pub(crate) mem: Arc<MemTable>,
    wal_id: u64,
}

/// MemTable state: the active write buffer plus frozen tables awaiting a
/// background flush (oldest first).
pub(crate) struct MemState {
    pub(crate) active: MemTable,
    pub(crate) imms: Vec<Imm>,
}

/// Worker coordination state (all counters monotonic).
#[derive(Debug, Default)]
struct Coord {
    shutdown: bool,
    /// Crash injection (test support): workers exit immediately instead
    /// of draining, and the graceful shutdown sync is skipped.
    crash: bool,
    /// MemTables rotated onto the immutable queue.
    rotated: u64,
    /// MemTables the flusher has fully processed.
    flushed: u64,
    /// `flush_and_settle` barriers requested / completed.
    settle_requests: u64,
    settles_done: u64,
    /// Bumped whenever the compactor should re-examine the tree.
    compact_epoch: u64,
    /// First background I/O error, surfaced by the next barrier.
    error: Option<String>,
}

/// A compaction the compactor decided to run, with its inputs pinned from
/// a manifest snapshot (only the compactor removes files from any level,
/// so pinned inputs cannot disappear before the edit is applied).
enum CompactionJob {
    /// Merge all (snapshot) L0 files plus overlapping L1 files into L1.
    L0 { inputs_new: Vec<Arc<SstReader>>, inputs_old: Vec<Arc<SstReader>> },
    /// Push one file from `level` into `level + 1`.
    Level { level: usize, input: Arc<SstReader>, inputs_old: Vec<Arc<SstReader>> },
}

/// Shared state behind the public handle; owned by the caller-facing
/// [`Db`] and by both background worker threads.
pub(crate) struct DbInner {
    cfg: DbConfig,
    dir: PathBuf,
    mem: RwLock<MemState>,
    wal: Wal,
    manifest: RwLock<Arc<Version>>,
    next_sst_id: AtomicU64,
    factory: Arc<dyn FilterFactory>,
    queue: QueryQueue,
    cache: ShardedBlockCache,
    pub(crate) stats: Arc<Stats>,
    gate: Mutex<Coord>,
    /// Wakes the flusher (rotation, shutdown).
    flush_cv: Condvar,
    /// Wakes the compactor (L0 install, settle request, shutdown).
    compact_cv: Condvar,
    /// Wakes foreground barriers and stalled writers (progress, error).
    idle_cv: Condvar,
    /// Wakes the adapter early (shutdown; otherwise it polls on
    /// `adapt_interval`).
    adapt_cv: Condvar,
    /// Serializes adaptive maintenance passes (the background adapter vs
    /// an explicit `Db::adapt_now`), so two passes never race to rewrite
    /// the same filter block.
    adapt_lock: Mutex<()>,
}

/// A single-process, multi-threaded LSM-tree database with pluggable
/// per-SST range filters. All operations take `&self`; share it across
/// threads by reference (`std::thread::scope`) or inside an `Arc`.
///
/// # Example
///
/// ```
/// use proteus_lsm::{Db, DbConfig, ProteusFactory, WriteBatch};
/// use std::sync::Arc;
///
/// let dir = std::env::temp_dir().join(format!("proteus-doc-db-{}", std::process::id()));
/// let db = Db::open(&dir, DbConfig::default(), Arc::new(ProteusFactory::default()))?;
///
/// db.put_u64(42, b"value")?;
/// assert_eq!(db.get_u64(42)?.as_deref(), Some(&b"value"[..]));
/// assert!(db.seek_u64(40, 50)?); // somewhere in [40, 50] there is a key
///
/// db.delete_u64(42)?; // tombstone: shadows the put everywhere
/// assert_eq!(db.get_u64(42)?, None);
/// assert!(!db.seek_u64(40, 50)?);
///
/// let mut batch = WriteBatch::new(); // atomic multi-op write
/// batch.put_u64(1, b"a").put_u64(2, b"b").delete_u64(1);
/// db.write(batch)?;
///
/// let live: Vec<(Vec<u8>, Vec<u8>)> =
///     db.range_u64(0..=100)?.collect::<proteus_lsm::Result<_>>()?;
/// assert_eq!(live.len(), 1); // only key 2 survives, in sorted order
///
/// db.flush()?; // durability barrier: everything rotated so far is on disk
/// drop(db);
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok::<(), proteus_lsm::Error>(())
/// ```
pub struct Db {
    inner: Arc<DbInner>,
    workers: Vec<JoinHandle<()>>,
}

fn bg_error(msg: &str) -> Error {
    Error::Io(std::io::Error::other(format!("background worker failed: {msg}")))
}

/// Smallest valid key strictly greater than `key` in the
/// variable-length byte-string order, if one exists within
/// `max_key_bytes` (used to normalize `Bound::Excluded` lower bounds).
/// Below the length cap the successor is simply `key ++ 0x00`; at the
/// cap it is the big-endian increment, and an all-`0xFF` key at the cap
/// has no successor.
fn key_successor(key: &[u8], max_key_bytes: usize) -> Option<Vec<u8>> {
    let mut k = key.to_vec();
    if k.len() < max_key_bytes {
        k.push(0x00);
        return Some(k);
    }
    for b in k.iter_mut().rev() {
        if *b < 0xFF {
            *b += 1;
            return Some(k);
        }
        *b = 0;
    }
    None
}

/// Largest valid key strictly smaller than `key` in the
/// variable-length byte-string order, if one exists (normalizes
/// `Bound::Excluded` upper bounds). A key ending in `0x00` shrinks to
/// its prefix; otherwise the last byte decrements and the key extends
/// with `0xFF` to the length cap. The single-byte key `[0x00]` has no
/// valid (non-empty) predecessor.
fn key_predecessor(key: &[u8], max_key_bytes: usize) -> Option<Vec<u8>> {
    let mut k = key.to_vec();
    if k.last() == Some(&0x00) {
        k.pop();
        if k.is_empty() {
            return None;
        }
        return Some(k);
    }
    if let Some(b) = k.last_mut() {
        *b -= 1;
    }
    k.resize(max_key_bytes, 0xFF);
    Some(k)
}

impl Db {
    /// Open a database in `dir`, creating it if empty, and start the
    /// background flush and compaction workers. The configuration is
    /// validated first ([`Error::Config`] on a bad knob).
    ///
    /// A directory that already holds SST files is *recovered*: every
    /// `NNNNNNNN.sst` is reopened through its footer (`PRSSTv3`, plus
    /// read-only legacy `PRSSTv2`/`PRSSTv1` files), the level manifest is
    /// rebuilt
    /// from the per-file level tags, and persisted filters are reloaded
    /// (lazily, on first probe) instead of retrained. Tombstones persist
    /// like any other entry, so a delete never un-deletes across a
    /// reopen. A corrupt footer or index fails the open with
    /// [`Error::Corruption`]; a corrupt filter block only degrades that
    /// file to unfiltered probes.
    ///
    /// Surviving WAL segments are replayed (oldest generation first) into
    /// the recovered MemTable, so every write acked before a crash is
    /// served again — no flush required first. A torn segment tail (the
    /// crash cut a record mid-write) is truncated silently; damage
    /// *before* the last record is real corruption and fails the open
    /// with [`Error::Corruption`]. After replay the merged survivors are
    /// re-logged into one fresh synced segment and the replayed files are
    /// deleted, so recovery is idempotent — a crash during recovery just
    /// replays again.
    pub fn open(
        dir: impl Into<PathBuf>,
        cfg: DbConfig,
        factory: Arc<dyn FilterFactory>,
    ) -> Result<Db> {
        cfg.validate()?;
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let queue = QueryQueue::new(cfg.queue_capacity(), cfg.sample_every());
        let cache = ShardedBlockCache::new(cfg.block_cache_bytes());
        let stats = Arc::new(Stats::default());
        let (levels, next_sst_id) = Self::recover_levels(&dir, cfg.key_width(), &stats)?;
        // WAL recovery: merge every surviving segment, oldest generation
        // first, into the starting MemTable. Segment ids share the SST id
        // allocator, so id order is generation order; replaying a stale
        // segment whose SST also survived is idempotent (identical data,
        // and the MemTable layer shadows the SST layer with equal bytes).
        let mut next_id = next_sst_id;
        let mut active = MemTable::new();
        let mut old_segments: Vec<PathBuf> = Vec::new();
        for (id, path) in wal::list_segments(&dir)? {
            next_id = next_id.max(id + 1);
            let replay = wal::replay_segment(&path, cfg.max_key_bytes())?;
            stats.wal_replayed_records.add(replay.commits.len() as u64);
            for commit in replay.commits {
                for (k, v) in commit {
                    active.apply(k, v);
                }
            }
            old_segments.push(path);
        }
        let wal = Wal::create(&dir, next_id, cfg.max_key_bytes(), cfg.sync_mode())?;
        next_id += 1;
        if !active.is_empty() {
            // Re-log the merged survivors as one commit and sync it, so
            // the old segments can be deleted without opening a crash
            // window where the recovered data exists nowhere durable.
            let ops: Vec<wal::WalOp> =
                active.iter().map(|(k, v)| (k.to_vec(), v.map(<[u8]>::to_vec))).collect();
            wal.append_commit(&ops, &stats)?;
            wal.sync(&stats)?;
        }
        if !old_segments.is_empty() {
            for path in &old_segments {
                std::fs::remove_file(path)?;
            }
            std::fs::File::open(&dir)?.sync_all()?;
        }
        // The two hottest locks report hold/contention time into `Stats`
        // when lock-doctor instrumentation is compiled in; the other
        // ranked locks are ordering-checked but not timed.
        let observer: Arc<dyn LockObserver> = Arc::clone(&stats) as Arc<dyn LockObserver>;
        let inner = Arc::new(DbInner {
            cfg,
            dir,
            mem: RwLock::with_observer(
                rank::MEMTABLE,
                MemState { active, imms: Vec::new() },
                Arc::clone(&observer),
            ),
            wal,
            manifest: RwLock::new(rank::MANIFEST, Arc::new(Version { levels })),
            next_sst_id: AtomicU64::new(next_id),
            factory,
            queue,
            cache,
            stats,
            gate: Mutex::with_observer(rank::GATE, Coord::default(), observer),
            flush_cv: Condvar::new(),
            compact_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            adapt_cv: Condvar::new(),
            adapt_lock: Mutex::new(rank::ADAPT, ()),
        });
        // Thread spawning can genuinely fail (resource exhaustion); surface
        // it as the I/O error it is instead of panicking mid-open.
        let spawn_err = Error::Io;
        let flusher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("proteus-lsm-flush".into())
                .spawn(move || inner.flusher_loop())
                .map_err(spawn_err)?
        };
        let compactor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("proteus-lsm-compact".into())
                .spawn(move || inner.compactor_loop())
                .map_err(spawn_err)?
        };
        let mut workers = vec![flusher, compactor];
        if inner.cfg.adapt_enabled() {
            let adapter = {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name("proteus-lsm-adapt".into())
                    .spawn(move || inner.adapter_loop())
                    .map_err(spawn_err)?
            };
            workers.push(adapter);
        }
        Ok(Db { inner, workers })
    }

    /// Scan `dir` for SST files and rebuild the level manifest from their
    /// footers. Returns the levels plus the next free SST id.
    fn recover_levels(
        dir: &std::path::Path,
        key_width: usize,
        stats: &Stats,
    ) -> Result<(Vec<Vec<Arc<SstReader>>>, u64)> {
        let mut recovered: Vec<Arc<SstReader>> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
            if let Some(stem) = name.strip_suffix(".sst.tmp") {
                // A crash mid-write left an unfinished SST (writers stream
                // into `NNNNNNNN.sst.tmp` and rename on completion):
                // discard it. Only our own naming pattern is touched.
                if stem.parse::<u64>().is_ok() {
                    let _ = std::fs::remove_file(&path);
                }
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some("sst") {
                continue;
            }
            let Some(id) =
                path.file_stem().and_then(|s| s.to_str()).and_then(|s| s.parse::<u64>().ok())
            else {
                continue; // foreign file; not one of ours
            };
            recovered.push(Arc::new(SstReader::open(&path, id, key_width)?));
        }
        if recovered.is_empty() {
            return Ok((vec![Vec::new()], 1));
        }
        let next_id = recovered.iter().map(|s| s.id).max().unwrap_or(0) + 1;
        let max_level = recovered.iter().map(|s| s.level).max().unwrap_or(0) as usize;
        let mut levels: Vec<Vec<Arc<SstReader>>> = vec![Vec::new(); max_level + 1];
        stats.ssts_recovered.add(recovered.len() as u64);
        for sst in recovered {
            levels[sst.level as usize].push(sst);
        }
        // L0 recency = file id order (ids are allocated monotonically and
        // flushes append newest last); deeper levels sort by key range.
        for level in &mut levels[1..] {
            level.sort_by(|a, b| a.min_key.cmp(&b.min_key));
        }
        // Deeper levels must be disjoint for the binary-searched read path.
        // A crash between compaction-output renames and input deletion can
        // leave both generations on disk; demote every file involved in an
        // overlap to L0, where overlapping files are legal and merged
        // newest-first. Ids are allocated monotonically, so the id order
        // the demoted files keep in L0 is exactly their recency order —
        // `get`/`range` still resolve every key to its newest version
        // (and tombstones still shadow) until the next compaction folds
        // the duplicates away.
        for li in 1..levels.len() {
            let level = &levels[li];
            let mut demote = vec![false; level.len()];
            for i in 1..level.len() {
                if level[i - 1].max_key >= level[i].min_key {
                    demote[i - 1] = true;
                    demote[i] = true;
                }
            }
            if demote.iter().any(|&d| d) {
                let drained: Vec<Arc<SstReader>> = levels[li].drain(..).collect();
                for (i, sst) in drained.into_iter().enumerate() {
                    if demote[i] {
                        levels[0].push(sst);
                    } else {
                        levels[li].push(sst);
                    }
                }
            }
        }
        levels[0].sort_by_key(|s| s.id);
        Ok((levels, next_id))
    }

    /// The configuration this database was opened with.
    pub fn config(&self) -> &DbConfig {
        &self.inner.cfg
    }

    /// Live execution counters (relaxed atomics; see [`Stats`]).
    pub fn stats(&self) -> &Stats {
        &self.inner.stats
    }

    /// Seed the sample query queue (§6.2 seeds it with an initial sample).
    pub fn seed_queries(&self, queries: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>) {
        self.inner.queue.seed(queries);
        self.inner.stats.sampled_queries.set(self.inner.queue.len() as u64);
    }

    /// Insert a key-value pair. May rotate the MemTable onto the
    /// background flush queue; stalls only when `max_immutable_memtables`
    /// rotations are already pending. Keys are arbitrary non-empty byte
    /// strings of at most `max_key_bytes` bytes ([`Error::Config`]
    /// otherwise).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.inner.check_key(key)?;
        self.inner.apply_writes(vec![(key.to_vec(), Some(value.to_vec()))])
    }

    /// Insert with a `u64` key.
    pub fn put_u64(&self, key: u64, value: &[u8]) -> Result<()> {
        self.put(&u64_key(key), value)
    }

    /// Exact-key lookup: the newest live value for `key`, or `None` if
    /// the key was never written or its newest record is a tombstone.
    /// Checks the MemTables (newest first), then every SST that can hold
    /// the key, admitting each through its range filter first.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get(key)
    }

    /// [`Db::get`] with a `u64` key.
    pub fn get_u64(&self, key: u64) -> Result<Option<Vec<u8>>> {
        self.get(&u64_key(key))
    }

    /// Delete `key`: records a tombstone that shadows every older version
    /// of the key — in the MemTables, in every SST level, across
    /// compactions and across a reopen — until compaction drops it at the
    /// bottom of the tree. Deleting a key that was never written is a
    /// valid no-op (the tombstone is still recorded).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.inner.check_key(key)?;
        self.inner.stats.deletes.inc();
        self.inner.apply_writes(vec![(key.to_vec(), None)])
    }

    /// [`Db::delete`] with a `u64` key.
    pub fn delete_u64(&self, key: u64) -> Result<()> {
        self.delete(&u64_key(key))
    }

    /// Apply a [`WriteBatch`] atomically: all of its puts and deletes
    /// become visible together (a single MemTable lock acquisition), and
    /// no rotation can split them across flush files' worth of
    /// visibility. Every key is validated before anything is applied, so
    /// a bad key rejects the whole batch. An empty batch is a no-op.
    pub fn write(&self, batch: WriteBatch) -> Result<()> {
        let ops = batch.into_ops();
        for (k, _) in &ops {
            self.inner.check_key(k)?;
        }
        if ops.is_empty() {
            return Ok(());
        }
        let deletes = ops.iter().filter(|(_, v)| v.is_none()).count() as u64;
        self.inner.stats.deletes.add(deletes);
        self.inner.apply_writes(ops)
    }

    /// Ordered scan: an iterator over the live `(key, value)` entries in
    /// `range`, ascending and deduplicated, with deleted keys suppressed.
    /// The merge spans the active and immutable MemTables plus the
    /// manifest snapshot; every overlapping SST is admitted through its
    /// range filter, so a scan over a provably-empty region costs no I/O.
    ///
    /// Bounds follow `std::ops` conventions (`lo..=hi`, `lo..hi`, `..`,
    /// …); named bound keys must be non-empty and at most
    /// `max_key_bytes` bytes ([`Error::Config`]). An inverted range
    /// (`lo > hi` after normalization) yields an empty iterator, not an
    /// error.
    ///
    /// # Example
    ///
    /// ```
    /// # use proteus_lsm::{Db, DbConfig, NoFilterFactory};
    /// # use std::sync::Arc;
    /// # let dir = std::env::temp_dir().join(format!("proteus-doc-range-{}", std::process::id()));
    /// # let db = Db::open(&dir, DbConfig::default(), Arc::new(NoFilterFactory))?;
    /// for i in 0..10u64 {
    ///     db.put_u64(i, &i.to_le_bytes())?;
    /// }
    /// db.delete_u64(4)?;
    /// let keys: Vec<Vec<u8>> = db
    ///     .range_u64(2..=6)?
    ///     .map(|e| e.map(|(k, _)| k))
    ///     .collect::<proteus_lsm::Result<_>>()?;
    /// assert_eq!(keys.len(), 4); // 2, 3, 5, 6 — the delete is invisible
    /// # drop(db);
    /// # std::fs::remove_dir_all(&dir)?;
    /// # Ok::<(), proteus_lsm::Error>(())
    /// ```
    pub fn range<K, R>(&self, range: R) -> Result<RangeIter<'_>>
    where
        K: AsRef<[u8]>,
        R: RangeBounds<K>,
    {
        self.inner.stats.range_scans.inc();
        match self.inner.resolve_bounds(range)? {
            Some((lo, hi)) => RangeIter::new(&self.inner, lo, hi),
            None => Ok(RangeIter::empty()),
        }
    }

    /// [`Db::range`] with `u64` bounds.
    pub fn range_u64(&self, range: impl RangeBounds<u64>) -> Result<RangeIter<'_>> {
        fn conv(b: Bound<&u64>) -> Bound<Vec<u8>> {
            match b {
                Bound::Unbounded => Bound::Unbounded,
                Bound::Included(&k) => Bound::Included(u64_key(k).to_vec()),
                Bound::Excluded(&k) => Bound::Excluded(u64_key(k).to_vec()),
            }
        }
        self.range((conv(range.start_bound()), conv(range.end_bound())))
    }

    /// Closed-range `Seek`: does any *live* key exist in `[lo, hi]`? This
    /// is the §6.1 read path — a thin emptiness wrapper over the same
    /// filter-accelerated merge as [`Db::range`]: every overlapping SST's
    /// filter is probed and only filter-positive files pay index + block
    /// I/O. A range whose only in-range entries are tombstones is
    /// (correctly) empty. `lo > hi` is an empty range, not an error.
    pub fn seek(&self, lo: &[u8], hi: &[u8]) -> Result<bool> {
        self.inner.seek(lo, hi)
    }

    /// `Seek` with `u64` bounds.
    pub fn seek_u64(&self, lo: u64, hi: u64) -> Result<bool> {
        self.seek(&u64_key(lo), &u64_key(hi))
    }

    /// Durability barrier: rotate the active MemTable (if non-empty) and
    /// wait until every MemTable rotated so far is flushed to an L0 SST.
    /// Compactions triggered by those flushes may still be running when
    /// this returns; use [`Db::flush_and_settle`] for a full barrier.
    pub fn flush(&self) -> Result<()> {
        // rotate_active acquires the MemTable write lock, and every freeze
        // publishes its `Coord::rotated` bump while still holding that
        // lock — so once it returns, `g.rotated` counts every MemTable
        // any other thread has already frozen, and the barrier below
        // cannot miss a rotated-but-uncounted table.
        self.inner.rotate_active()?;
        let mut g = self.inner.gate_lock()?;
        let target = g.rotated;
        while g.flushed < target && g.error.is_none() {
            g = self.inner.wait_idle(g)?;
        }
        match &g.error {
            Some(e) => Err(bg_error(e)),
            None => Ok(()),
        }
    }

    /// Full barrier: flush everything, then drive compaction until L0 is
    /// empty and every level is within its size target — the §6.2 "wait
    /// for all background compactions to finish" setup step (§6.2 also
    /// compacts "all L0 SST files to L1 for sake of consistency").
    pub fn flush_and_settle(&self) -> Result<()> {
        self.inner.rotate_active()?;
        let mut g = self.inner.gate_lock()?;
        g.settle_requests += 1;
        g.compact_epoch += 1;
        let my_settle = g.settle_requests;
        self.inner.flush_cv.notify_one();
        self.inner.compact_cv.notify_all();
        while g.settles_done < my_settle && g.error.is_none() {
            g = self.inner.wait_idle(g)?;
        }
        match &g.error {
            Some(e) => Err(bg_error(e)),
            None => Ok(()),
        }
    }

    /// Run one adaptive-maintenance pass synchronously: scan every live
    /// SST, flag the ones whose observed FPR or sample-distribution drift
    /// crossed the configured thresholds (see [`crate::adapt`]), re-train
    /// their filters on a fresh sample snapshot and atomically rewrite the
    /// filter blocks. Returns the number of filters re-trained.
    ///
    /// The background adapter (when `adapt_enabled`) runs exactly this
    /// every `adapt_interval`; calling it directly makes tests and
    /// experiments deterministic and works even when the background worker
    /// is disabled.
    pub fn adapt_now(&self) -> Result<usize> {
        self.inner.adapt_pass()
    }

    /// Number of SST files per level.
    pub fn level_file_counts(&self) -> Vec<usize> {
        self.inner.version().levels.iter().map(|l| l.len()).collect()
    }

    /// Total SST files.
    pub fn sst_count(&self) -> usize {
        self.inner.version().levels.iter().map(|l| l.len()).sum()
    }

    /// Total key-value entries across all SSTs, tombstones included
    /// (duplicates across levels counted per file).
    pub fn sst_entries(&self) -> u64 {
        self.inner.version().levels.iter().flatten().map(|s| s.n_entries).sum()
    }

    /// Total tombstone entries across all SSTs (duplicates counted per
    /// file, like [`Db::sst_entries`]).
    pub fn sst_tombstones(&self) -> u64 {
        self.inner.version().levels.iter().flatten().map(|s| s.n_tombstones).sum()
    }

    /// Total bytes of all SST files.
    pub fn sst_bytes(&self) -> u64 {
        self.inner.version().levels.iter().flatten().map(|s| s.file_bytes).sum()
    }

    /// Total memory held by the per-SST filters, in bits (forces lazy
    /// filter blocks to decode).
    pub fn filter_bits(&self) -> u64 {
        let v = self.inner.version();
        v.levels
            .iter()
            .flatten()
            .map(|s| s.filter(&self.inner.stats).map_or(0, |f| f.size_bits()))
            .sum()
    }

    /// Iterate filter names per file (diagnostics for the experiments).
    pub fn filter_names(&self) -> Vec<String> {
        let v = self.inner.version();
        v.levels
            .iter()
            .flatten()
            .map(|s| s.filter(&self.inner.stats).map_or("none".into(), |f| f.name()))
            .collect()
    }

    /// Crash injection (test support): simulate an abrupt process kill.
    ///
    /// Background workers exit without draining the flush queue and the
    /// graceful shutdown sync is skipped — nothing is flushed, nothing is
    /// fsynced on the way out. Everything the OS already accepted (every
    /// WAL append — records reach the OS before a write returns) still
    /// survives a reopen in *any* [`crate::SyncMode`], exactly like a
    /// real `kill -9`: a process crash does not empty the page cache.
    /// Use [`Db::crash_power_loss`] to also lose un-synced data.
    pub fn crash(self) {
        self.crash_impl(false);
    }

    /// Crash injection (test support): simulate a power failure — a
    /// process kill ([`Db::crash`]) *plus* the loss of the active WAL
    /// segment's un-synced bytes (the file is truncated to its last
    /// synced offset, discarding what only the page cache held).
    ///
    /// Under [`crate::SyncMode::Always`] this loses no acked write;
    /// under `Off` it can lose everything since the last rotation
    /// (sealed segments are synced at seal time and keep their data).
    pub fn crash_power_loss(self) {
        self.crash_impl(true);
    }

    fn crash_impl(mut self, power_loss: bool) {
        {
            let mut g = self.inner.gate_lock_recover();
            g.shutdown = true;
            g.crash = true;
        }
        self.inner.flush_cv.notify_all();
        self.inner.compact_cv.notify_all();
        self.inner.idle_cv.notify_all();
        self.inner.adapt_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if power_loss {
            let _ = self.inner.wal.truncate_unsynced();
        }
        // `Drop` runs next; the crash flag makes it skip the final sync.
    }
}

impl Drop for Db {
    /// Shut the workers down. The flusher drains every already-rotated
    /// MemTable first; the active MemTable is *not* flushed to an SST,
    /// but its writes survive anyway — they are in the active WAL
    /// segment, which the next [`Db::open`] replays, and the drop ends
    /// with a final segment sync so even a power loss right after it
    /// loses nothing.
    ///
    /// A poisoned coordination lock (a background worker panicked while
    /// holding it) is *recovered* here, never propagated: panicking out of
    /// `drop` while the caller is already unwinding would be a double
    /// panic and abort the process, turning one crashed worker into a lost
    /// WAL sync for every shard still shutting down. `Coord` is plain
    /// bookkeeping data, so the recovered guard is safe to use.
    fn drop(&mut self) {
        let crashed = {
            let mut g = self.inner.gate_lock_recover();
            g.shutdown = true;
            g.crash
        };
        self.inner.flush_cv.notify_all();
        self.inner.compact_cv.notify_all();
        self.inner.idle_cv.notify_all();
        self.inner.adapt_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if !crashed {
            // Graceful shutdown: seal the durability of the active
            // segment. Skipped on crash injection — a killed process
            // gets no parting fsync.
            let _ = self.inner.wal.sync(&self.inner.stats);
        }
    }
}

impl DbInner {
    /// Current manifest snapshot (read lock held only for the Arc clone).
    /// A poisoned manifest lock is *recovered*: the content is an `Arc`
    /// replaced in a single assignment (see [`DbInner::edit_manifest`]),
    /// so whatever the panicking thread left behind is a complete,
    /// self-consistent version — either the old one or the new one.
    pub(crate) fn version(&self) -> Arc<Version> {
        Arc::clone(&self.manifest.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Swap in an edited manifest under a short-held write lock. The edit
    /// runs on a private clone and publishes with one `Arc` assignment,
    /// which is what makes poison recovery in [`DbInner::version`] sound:
    /// a panic inside `edit` (or anywhere under the lock) cannot expose a
    /// half-mutated version.
    fn edit_manifest(&self, edit: impl FnOnce(&mut Version)) {
        let mut m = self.manifest.write().unwrap_or_else(PoisonError::into_inner);
        let mut v = (**m).clone();
        edit(&mut v);
        *m = Arc::new(v);
    }

    /// MemTable read lock, surfacing poisoning as a typed error.
    pub(crate) fn mem_read(&self) -> Result<RwLockReadGuard<'_, MemState>> {
        self.mem.read().map_err(|_| Error::Poisoned("memtable lock"))
    }

    fn mem_write(&self) -> Result<RwLockWriteGuard<'_, MemState>> {
        self.mem.write().map_err(|_| Error::Poisoned("memtable lock"))
    }

    fn gate_lock(&self) -> Result<MutexGuard<'_, Coord>> {
        self.gate.lock().map_err(|_| Error::Poisoned("coordination lock"))
    }

    /// Coordination lock for paths that must *always* complete — shutdown,
    /// crash injection and sticky-error recording. A poisoned guard is
    /// recovered ([`std::sync::PoisonError::into_inner`]): `Coord` is plain
    /// counters and flags whose invariants hold after any partial update,
    /// and refusing to shut down (or worse, double-panicking in `Drop`)
    /// because a worker died would abort the whole process.
    fn gate_lock_recover(&self) -> MutexGuard<'_, Coord> {
        self.gate.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait_idle<'g>(&self, g: MutexGuard<'g, Coord>) -> Result<MutexGuard<'g, Coord>> {
        self.idle_cv.wait(g).map_err(|_| Error::Poisoned("coordination lock"))
    }

    fn alloc_id(&self) -> u64 {
        self.next_sst_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Reject keys the store cannot represent: zero-length keys and any
    /// key longer than the configured `max_key_bytes` limit.
    fn check_key(&self, key: &[u8]) -> Result<()> {
        if key.is_empty() {
            return Err(Error::config("zero-length keys are not valid"));
        }
        if key.len() > self.cfg.max_key_bytes() {
            return Err(Error::config(format!(
                "key length {} exceeds configured max_key_bytes {}",
                key.len(),
                self.cfg.max_key_bytes()
            )));
        }
        Ok(())
    }

    /// Normalize arbitrary `RangeBounds` into inclusive canonical keys.
    /// `Ok(None)` means the range is provably empty (inverted, or an
    /// excluded bound fell off the key space).
    fn resolve_bounds<K: AsRef<[u8]>>(
        &self,
        range: impl RangeBounds<K>,
    ) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        let max = self.cfg.max_key_bytes();
        let lo = match range.start_bound() {
            Bound::Unbounded => vec![0x00],
            Bound::Included(k) => {
                self.check_key(k.as_ref())?;
                k.as_ref().to_vec()
            }
            Bound::Excluded(k) => {
                self.check_key(k.as_ref())?;
                match key_successor(k.as_ref(), max) {
                    Some(s) => s,
                    None => return Ok(None),
                }
            }
        };
        let hi = match range.end_bound() {
            Bound::Unbounded => vec![0xFFu8; max],
            Bound::Included(k) => {
                self.check_key(k.as_ref())?;
                k.as_ref().to_vec()
            }
            Bound::Excluded(k) => {
                self.check_key(k.as_ref())?;
                match key_predecessor(k.as_ref(), max) {
                    Some(p) => p,
                    None => return Ok(None),
                }
            }
        };
        Ok((lo <= hi).then_some((lo, hi)))
    }

    /// Freeze the active MemTable onto the immutable queue if non-empty,
    /// publishing the rotation to the flusher. The `Coord::rotated` bump
    /// happens while the MemTable write lock is still held (mem → gate
    /// nesting; nothing ever locks mem while holding gate), so any thread
    /// that subsequently acquires the MemTable lock — in particular a
    /// `flush()` barrier — is guaranteed to observe a `rotated` count
    /// covering every frozen table. Without this a barrier could compute
    /// its wait target between another thread's freeze and counter bump
    /// and return before that data is durable.
    fn publish_rotation(&self, mem: &mut MemState) -> Result<bool> {
        if mem.active.is_empty() {
            return Ok(false);
        }
        // Seal the active WAL segment first (one fdatasync — so sealed
        // segments are fully durable in every sync mode) and open its
        // successor. On failure the rotation is abandoned with the store
        // intact: the active table keeps accepting writes into the old
        // segment.
        let wal_id = self.wal.rotate(self.alloc_id(), &self.stats)?;
        mem.imms.push(Imm { mem: Arc::new(std::mem::take(&mut mem.active)), wal_id });
        self.stats.memtable_rotations.inc();
        let mut g = self.gate_lock()?;
        g.rotated += 1;
        self.flush_cv.notify_one();
        Ok(true)
    }

    /// Freeze the active MemTable onto the immutable queue if non-empty.
    fn rotate_active(&self) -> Result<bool> {
        let mut mem = self.mem_write()?;
        self.publish_rotation(&mut mem)
    }

    /// Apply pre-validated write operations (`None` value = tombstone)
    /// under one MemTable lock acquisition, then handle rotation
    /// backpressure outside the lock.
    fn apply_writes(&self, ops: Vec<(Vec<u8>, Option<Vec<u8>>)>) -> Result<()> {
        let (seq, rotated) = {
            let mut mem = self.mem_write()?;
            // WAL first, under the MemTable write lock: log order equals
            // apply order, and a failed append leaves the table untouched
            // (nothing unlogged is ever visible).
            let seq = self.wal.append_commit(&ops, &self.stats)?;
            // Borrowed apply: the op buffers were only needed owned for
            // the WAL encode; the arena MemTable copies from slices and
            // allocates nothing per entry.
            for (k, v) in &ops {
                mem.active.apply_ref(k, v.as_deref());
            }
            let rotated = if mem.active.bytes() >= self.cfg.memtable_bytes() {
                self.publish_rotation(&mut mem)?
            } else {
                false
            };
            (seq, rotated)
        };
        // Durability outside the MemTable lock: waiting for the group
        // fsync here is what lets concurrent committers share one sync
        // without stalling readers or other appenders.
        self.wal.commit(seq, &self.stats)?;
        if rotated {
            let mut g = self.gate_lock()?;
            // Backpressure: stall while too many frozen tables queue up.
            let cap = self.cfg.max_immutable_memtables().max(1) as u64;
            if g.rotated.saturating_sub(g.flushed) > cap {
                let t0 = Instant::now();
                while g.rotated.saturating_sub(g.flushed) > cap && g.error.is_none() && !g.shutdown
                {
                    g = self.wait_idle(g)?;
                }
                self.stats.write_stall_ns.add(t0.elapsed().as_nanos() as u64);
            }
            if let Some(e) = &g.error {
                return Err(bg_error(e));
            }
        }
        Ok(())
    }

    /// Probe `sst`'s filter for `[lo, hi]` (clamped to the file's key
    /// range — the filter only describes this file's keys). `None` means
    /// the filter proved the range empty for this file (true negative
    /// recorded; skip it). `Some(real)` admits the file; `real` says
    /// whether an actual filter passed (false for filterless/degraded
    /// files), which decides false-positive accounting.
    pub(crate) fn filter_admits(&self, sst: &SstReader, lo: &[u8], hi: &[u8]) -> Option<bool> {
        let flo = if lo < sst.min_key.as_slice() { sst.min_key.as_slice() } else { lo };
        let fhi = if hi > sst.max_key.as_slice() { sst.max_key.as_slice() } else { hi };
        match sst.filter(&self.stats) {
            Some(filter) => {
                // The filter was trained on keys canonicalized to the
                // file's fixed training width (NUL-pad + truncate, which
                // is order-preserving), so probes must be canonicalized
                // the same way — padding both bounds keeps the no-false-
                // negative guarantee for the raw range.
                let flo = pad_key(flo, sst.filter_width());
                let fhi = pad_key(fhi, sst.filter_width());
                if filter.may_contain_range(&flo, &fhi) {
                    Some(true)
                } else {
                    self.stats.filter_negatives.inc();
                    sst.record_probe(false);
                    self.stats.observed_tn.inc();
                    None
                }
            }
            None => Some(false),
        }
    }

    /// Read block `b` of `sst` through the sharded cache.
    pub(crate) fn cached_block(&self, sst: &Arc<SstReader>, b: usize) -> Result<Arc<Block>> {
        let id = (sst.id, b as u32);
        if let Some(block) = self.cache.get(id) {
            self.stats.cache_hits.inc();
            return Ok(block);
        }
        let block = Arc::new(sst.read_block(b, &self.stats)?);
        // Don't cache blocks of a compaction-retired file (we may be
        // reading it through an older snapshot): dead entries would squat
        // on cache budget forever since SST ids are never reused. The
        // double-check undoes an insert that raced with the retire+purge.
        if !sst.is_retired() {
            self.cache.insert(id, Arc::clone(&block));
            if sst.is_retired() {
                self.cache.remove(id);
            }
        }
        Ok(block)
    }

    /// The §6.1 closed `Seek`, as an emptiness wrapper over the merge
    /// iterator: build the filter-admitted merge over `[lo, hi]` and ask
    /// for its first live entry. A fast path answers from the MemTables
    /// alone when they hold a live, unshadowed key in range — the hot
    /// path for recently written data, with no snapshot clone, no filter
    /// probes and no block I/O.
    fn seek(&self, lo: &[u8], hi: &[u8]) -> Result<bool> {
        self.check_key(lo)?;
        self.check_key(hi)?;
        self.stats.seeks.inc();
        if lo > hi {
            // An inverted range is empty by definition: no I/O, no error,
            // and no sample offer (it is not a meaningful empty query).
            self.stats.seeks_filtered.inc();
            return Ok(false);
        }
        // MemTable fast path: walk the layers newest-first; a live record
        // whose key no newer layer tombstoned settles the answer as true
        // (MemTables are newer than every SST, so nothing can shadow it).
        // Only tombstone keys need tracking — a newer *live* record would
        // have answered already.
        {
            let mem = self.mem_read()?;
            let mut dead: std::collections::BTreeSet<Vec<u8>> = std::collections::BTreeSet::new();
            let layers =
                std::iter::once(&mem.active).chain(mem.imms.iter().rev().map(|i| i.mem.as_ref()));
            for layer in layers {
                for (k, v) in layer.range_iter(lo, hi) {
                    if v.is_some() {
                        if !dead.contains(k) {
                            self.stats.seeks_found.inc();
                            self.stats.seeks_memtable.inc();
                            return Ok(true);
                        }
                    } else {
                        dead.insert(k.to_vec());
                    }
                }
            }
        }
        let mut it = RangeIter::new(self, lo.to_vec(), hi.to_vec())?;
        match it.next() {
            Some(Ok(_)) => {
                self.stats.seeks_found.inc();
                if it.first_from_memtable {
                    self.stats.seeks_memtable.inc();
                }
                Ok(true)
            }
            Some(Err(e)) => Err(e),
            None => {
                if !it.io_paid {
                    self.stats.seeks_filtered.inc();
                }
                // Truly-executed empty query: feed the sample queue
                // (§6.1). Seeks answered from a MemTable never reach this
                // point — only queries the store executed and found empty
                // are offered. The gauge is only refreshed when the queue
                // recorded the query, so the 1-in-`sample_every` common
                // case stays mutex-free for readers.
                self.stats.sample_offers.inc();
                if self.queue.offer(lo, hi) {
                    self.stats.sampled_queries.set(self.queue.len() as u64);
                }
                Ok(false)
            }
        }
    }

    /// Exact-key read; see [`Db::get`].
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.check_key(key)?;
        self.stats.gets.inc();
        // 1. MemTables, newest first. Any record — live or tombstone —
        //    settles the answer: it shadows everything older.
        {
            let mem = self.mem_read()?;
            if let Some(v) = mem.active.get(key) {
                return Ok(v.map(<[u8]>::to_vec));
            }
            for imm in mem.imms.iter().rev() {
                if let Some(v) = imm.mem.get(key) {
                    return Ok(v.map(<[u8]>::to_vec));
                }
            }
        }
        // 2. SSTs: L0 newest first (overlapping), then at most one file
        //    per deeper (disjoint) level.
        let version = self.version();
        for sst in version.levels[0].iter().rev() {
            if let Some(v) = self.get_in_sst(sst, key)? {
                return Ok(v);
            }
        }
        for level in &version.levels[1..] {
            let i = level.partition_point(|s| s.max_key.as_slice() < key);
            if let Some(sst) = level.get(i) {
                if sst.min_key.as_slice() <= key {
                    if let Some(v) = self.get_in_sst(sst, key)? {
                        return Ok(v);
                    }
                }
            }
        }
        Ok(None)
    }

    /// Point-probe one SST. Outer `None` = the file has no record of the
    /// key (keep looking in older layers); `Some(None)` = tombstone
    /// (definitive: the key is deleted); `Some(Some(v))` = live value.
    fn get_in_sst(&self, sst: &Arc<SstReader>, key: &[u8]) -> Result<Option<Option<Vec<u8>>>> {
        if !sst.overlaps(key, key) {
            return Ok(None);
        }
        let Some(real_filter) = self.filter_admits(sst, key, key) else {
            return Ok(None); // filter-proven absent; true negative recorded
        };
        let b = sst.first_candidate_block(key);
        if b < sst.n_blocks() && sst.block_meta(b).first_key.as_slice() <= key {
            let block = self.cached_block(sst, b)?;
            let i = block.lower_bound(key);
            if i < block.len() && block.key(i) == key {
                self.stats.filter_true_positives.inc();
                let (_, v) = block.entry(i);
                return Ok(Some(v.map(<[u8]>::to_vec)));
            }
        }
        // The filter admitted a key the file does not hold.
        self.stats.filter_false_positives.inc();
        if real_filter {
            sst.record_probe(true);
            self.stats.observed_fp.inc();
        }
        Ok(None)
    }

    /// Record a background failure and wake every waiter so barriers and
    /// stalled writers observe it. Recovers a poisoned gate: this is the
    /// one path that must succeed precisely *because* another thread
    /// panicked, so it can never be allowed to panic itself.
    fn record_error(&self, e: Error) {
        let mut g = self.gate_lock_recover();
        if g.error.is_none() {
            g.error = Some(e.to_string());
        }
        self.idle_cv.notify_all();
        self.compact_cv.notify_all();
        self.flush_cv.notify_all();
    }

    // ---- flusher ---------------------------------------------------------

    /// Run a worker loop body, downgrading a panicking lock acquisition to
    /// the sticky background-error path: the worker records
    /// [`Error::Poisoned`] (which wakes every barrier) and exits instead
    /// of panicking — a panic here would poison the *gate* too and
    /// historically turned `Db::drop` into a process abort.
    fn worker_guard<T>(&self, r: Result<T>) -> Option<T> {
        match r {
            Ok(v) => Some(v),
            Err(e) => {
                self.record_error(e);
                None
            }
        }
    }

    fn flusher_loop(&self) {
        loop {
            {
                let Some(g) = self.worker_guard(self.gate_lock()) else { return };
                if g.crash || g.error.is_some() {
                    return;
                }
            }
            let imm = {
                let Some(mem) = self.worker_guard(self.mem_read()) else { return };
                mem.imms.first().map(|i| (Arc::clone(&i.mem), i.wal_id))
            };
            if let Some((imm, wal_id)) = imm {
                match self.flush_imm(&imm) {
                    Ok(reader) => {
                        // Install the SST before retiring the MemTable so
                        // the data is never invisible to a reader.
                        self.edit_manifest(|v| v.levels[0].push(Arc::new(reader)));
                        let Some(mut mem) = self.worker_guard(self.mem_write()) else { return };
                        mem.imms.remove(0);
                        drop(mem);
                        self.stats.flushes.inc();
                        // The table's data is durable in the installed
                        // (synced, renamed) SST, so its sealed WAL segment
                        // is redundant — delete it. The delete must not be
                        // skipped on failure: if an *older* segment
                        // outlived a newer generation's flush+delete, the
                        // next replay would resurrect its stale values
                        // over the SSTs, so a failed unlink is a sticky
                        // error that stops this worker.
                        if let Err(e) = wal::delete_segment(&self.dir, wal_id) {
                            self.record_error(e);
                            return;
                        }
                        let Some(mut g) = self.worker_guard(self.gate_lock()) else { return };
                        g.flushed += 1;
                        g.compact_epoch += 1;
                        self.idle_cv.notify_all();
                        self.compact_cv.notify_all();
                        continue;
                    }
                    Err(e) => {
                        // Keep the MemTable *and* its sealed WAL segment:
                        // the data is fully recoverable from the segment
                        // at the next open. The sticky error stops this
                        // worker, so no newer generation can flush past
                        // the stranded one (out-of-order flushes would
                        // break replay's id-order-equals-recency
                        // invariant). Barriers observe the error and
                        // return it instead of hanging.
                        self.record_error(e);
                        return;
                    }
                }
            }
            let Some(mut g) = self.worker_guard(self.gate_lock()) else { return };
            while g.rotated <= g.flushed && !g.shutdown {
                let wait = self.flush_cv.wait(g).map_err(|_| Error::Poisoned("coordination lock"));
                match self.worker_guard(wait) {
                    Some(guard) => g = guard,
                    None => return,
                }
            }
            if g.shutdown && g.rotated <= g.flushed {
                return; // every rotated MemTable is durable
            }
        }
    }

    /// Write one frozen MemTable to a new L0 SST — tombstones persist as
    /// flagged entries — building its filter from the file's keys and the
    /// current sample queue (§6.1).
    fn flush_imm(&self, imm: &MemTable) -> Result<SstReader> {
        let id = self.alloc_id();
        let mut w =
            SstWriter::create(&self.dir, id, self.cfg.key_width(), self.cfg.block_bytes(), 0)?;
        for (k, v) in imm.iter() {
            match v {
                Some(v) => w.add(k, v)?,
                None => w.delete(k)?,
            }
        }
        w.finish(self.factory.as_ref(), &self.queue, self.cfg.bits_per_key(), &self.stats)
    }

    // ---- adapter ---------------------------------------------------------

    /// The third background worker: every `adapt_interval`, scan for SSTs
    /// whose filters stopped fitting the workload and re-train them. See
    /// the [`crate::adapt`] module docs for the policy.
    fn adapter_loop(&self) {
        loop {
            {
                let Some(g) = self.worker_guard(self.gate_lock()) else { return };
                if g.shutdown || g.error.is_some() {
                    return;
                }
            }
            if let Err(e) = self.adapt_pass() {
                self.record_error(e);
                return;
            }
            let Some(g) = self.worker_guard(self.gate_lock()) else { return };
            if g.shutdown {
                return;
            }
            // A poisoned coordination mutex (some thread panicked while
            // holding it) surfaces as a sticky `Error::Poisoned` at the
            // next barrier, exactly like the flusher/compactor paths —
            // panicking here instead used to kill the adapter silently
            // *and* leave the gate poisoned for `Drop`.
            let wait = self
                .adapt_cv
                .wait_timeout(g, self.cfg.adapt_interval())
                .map_err(|_| Error::Poisoned("coordination lock"));
            let Some((g, _)) = self.worker_guard(wait) else { return };
            if g.shutdown {
                return;
            }
        }
    }

    /// One full adaptive pass: flag, re-train, publish. Serialized by
    /// `adapt_lock` so a background pass and an explicit `adapt_now` never
    /// rewrite the same file concurrently.
    fn adapt_pass(&self) -> Result<usize> {
        let _guard = self.adapt_lock.lock().map_err(|_| Error::Poisoned("adapt lock"))?;
        let live = self.queue.snapshot(self.cfg.key_width());
        let version = self.version();
        let mut flagged: Vec<Arc<SstReader>> = Vec::new();
        for level in &version.levels {
            for sst in level {
                if sst.is_retired() {
                    continue;
                }
                if crate::adapt::flag_reason(sst, &self.cfg, &live).is_some() {
                    self.stats.drift_flags.inc();
                    flagged.push(Arc::clone(sst));
                }
            }
        }
        let mut retrained = 0usize;
        for sst in flagged {
            // Re-training every flagged file can take a while right after
            // a shift (every live SST flags at once); re-check shutdown
            // between files so dropping the Db joins within one retrain,
            // like the compactor re-checks between jobs.
            if self.gate_lock()?.shutdown {
                break;
            }
            if sst.is_retired() {
                // Compaction consumed the file while this pass was
                // running; its merged successor got a fresh filter anyway.
                continue;
            }
            let new = Arc::new(crate::adapt::retrain(
                &sst,
                self.factory.as_ref(),
                &live,
                self.cfg.bits_per_key(),
                &self.stats,
            )?);
            // Publish: swap the replacement reader into whatever level the
            // file now sits in. Readers holding older versions keep the old
            // reader (same data; the old filter is merely stale, never
            // wrong — filters have no false negatives for the file's keys).
            let mut replaced = false;
            self.edit_manifest(|v| {
                for level in &mut v.levels {
                    for slot in level.iter_mut() {
                        if slot.id == new.id {
                            *slot = Arc::clone(&new);
                            replaced = true;
                        }
                    }
                }
            });
            if replaced {
                retrained += 1;
            } else {
                // A compaction retired the file between our retired-check
                // and the manifest edit. The rewrite's rename may have
                // resurrected the path after the compactor unlinked it;
                // drop it again — the data lives on in the compaction
                // outputs.
                new.delete_file();
            }
        }
        Ok(retrained)
    }

    // ---- compactor -------------------------------------------------------

    fn compactor_loop(&self) {
        loop {
            let (stop, settle_mode, epoch) = {
                let Some(g) = self.worker_guard(self.gate_lock()) else { return };
                // A sticky error also stops the compactor: retrying the
                // same job against a failing disk would spin forever (and
                // keep allocating ids and `.tmp` files). Barriers already
                // observe the error and return it.
                (
                    g.shutdown || g.error.is_some(),
                    g.settle_requests > g.settles_done,
                    g.compact_epoch,
                )
            };
            if stop {
                return;
            }
            if let Some(job) = self.pick_compaction(settle_mode) {
                if let Err(e) = self.run_compaction(job) {
                    self.record_error(e);
                }
                self.idle_cv.notify_all();
                continue;
            }
            if settle_mode {
                // Nothing left to compact; the settle is complete once the
                // flusher has drained too and the tree has not changed
                // since we looked at it (epoch unchanged).
                let Some(mem) = self.worker_guard(self.mem_read()) else { return };
                let imms_empty = mem.imms.is_empty();
                drop(mem);
                let Some(mut g) = self.worker_guard(self.gate_lock()) else { return };
                if imms_empty && g.flushed >= g.rotated && g.compact_epoch == epoch {
                    g.settles_done = g.settle_requests;
                    self.idle_cv.notify_all();
                    continue;
                }
                // The flusher is still working (or new work arrived): wait
                // for its next poke, with a timeout as a lost-wakeup net.
                if g.compact_epoch == epoch && !g.shutdown {
                    let wait = self
                        .compact_cv
                        .wait_timeout(g, Duration::from_millis(5))
                        .map_err(|_| Error::Poisoned("coordination lock"));
                    if self.worker_guard(wait).is_none() {
                        return;
                    }
                }
                continue;
            }
            let Some(mut g) = self.worker_guard(self.gate_lock()) else { return };
            while g.compact_epoch == epoch && !g.shutdown && g.settle_requests <= g.settles_done {
                let wait =
                    self.compact_cv.wait(g).map_err(|_| Error::Poisoned("coordination lock"));
                match self.worker_guard(wait) {
                    Some(guard) => g = guard,
                    None => return,
                }
            }
        }
    }

    fn level_target(&self, level: usize) -> u64 {
        self.cfg.level_base_bytes()
            * self.cfg.level_size_ratio().pow(level.saturating_sub(1) as u32)
    }

    /// Decide the next compaction from a manifest snapshot. In settle mode
    /// any non-empty L0 compacts (the §6.2 clean initial state); otherwise
    /// only the configured triggers fire.
    fn pick_compaction(&self, settle: bool) -> Option<CompactionJob> {
        let v = self.version();
        let l0 = &v.levels[0];
        if l0.len() > self.cfg.l0_compaction_trigger() || (settle && !l0.is_empty()) {
            // Newest-first rank order for the merge.
            let inputs_new: Vec<Arc<SstReader>> = l0.iter().rev().cloned().collect();
            // Both triggers above imply at least one L0 input; an empty
            // snapshot (impossible) just means there is nothing to compact.
            let (Some(lo), Some(hi)) = (
                inputs_new.iter().map(|s| s.min_key.clone()).min(),
                inputs_new.iter().map(|s| s.max_key.clone()).max(),
            ) else {
                return None;
            };
            let inputs_old = match v.levels.get(1) {
                Some(l1) => collect_overlapping(l1, &lo, &hi),
                None => Vec::new(),
            };
            return Some(CompactionJob::L0 { inputs_new, inputs_old });
        }
        for level in 1..v.levels.len() {
            let bytes: u64 = v.levels[level].iter().map(|s| s.file_bytes).sum();
            if bytes > self.level_target(level) && !v.levels[level].is_empty() {
                // Pick the file with the smallest min key (simple
                // deterministic cursor; RocksDB round-robins similarly).
                let input = Arc::clone(&v.levels[level][0]);
                let inputs_old = match v.levels.get(level + 1) {
                    Some(next) => collect_overlapping(next, &input.min_key, &input.max_key),
                    None => Vec::new(),
                };
                return Some(CompactionJob::Level { level, input, inputs_old });
            }
        }
        None
    }

    fn run_compaction(&self, job: CompactionJob) -> Result<()> {
        let (newer, older, source_level, target_level) = match job {
            CompactionJob::L0 { inputs_new, inputs_old } => (inputs_new, inputs_old, 0, 1),
            CompactionJob::Level { level, input, inputs_old } => {
                (vec![input], inputs_old, level, level + 1)
            }
        };
        let outputs = self.merge_inputs(&newer, &older, target_level)?;
        let removed_source: Vec<u64> = newer.iter().map(|s| s.id).collect();
        let removed_target: Vec<u64> = older.iter().map(|s| s.id).collect();
        // Publish: drop the inputs from the manifest (files flushed into
        // L0 meanwhile are untouched) and install the outputs sorted.
        self.edit_manifest(|v| {
            v.ensure_level(target_level);
            v.levels[source_level].retain(|s| !removed_source.contains(&s.id));
            v.levels[target_level].retain(|s| !removed_target.contains(&s.id));
            v.levels[target_level].extend(outputs.iter().cloned());
            v.levels[target_level].sort_by(|a, b| a.min_key.cmp(&b.min_key));
        });
        // Retire inputs: readers still holding an older version keep their
        // open descriptors; the unlink only drops the directory entry.
        // Mark-before-purge: once the flag is visible no reader re-caches
        // a dead block, so the purge is final.
        for sst in newer.iter().chain(older.iter()) {
            sst.mark_retired();
            self.cache.purge_sst(sst.id);
            sst.delete_file();
        }
        self.stats.compactions.inc();
        Ok(())
    }

    /// K-way merge of `newer` (rank order = recency) and `older` files,
    /// writing size-split SSTs for `target_level` and building a fresh
    /// filter per output (§6.1: compaction "triggers the construction of
    /// new filters on the merged data").
    ///
    /// Shadowing: for duplicate keys only the newest record survives. A
    /// surviving tombstone is carried into the output — it may still
    /// shadow versions of its key in deeper levels — *unless* the output
    /// lands at the bottom of the tree (no non-empty level below the
    /// target), where nothing older can exist and the tombstone is
    /// dropped for good. Deeper levels are only ever mutated by this
    /// (single) compactor thread, so one snapshot decides the whole
    /// merge; concurrent flushes only add *newer* data in L0, which a
    /// dropped tombstone could never have shadowed.
    fn merge_inputs(
        &self,
        newer: &[Arc<SstReader>],
        older: &[Arc<SstReader>],
        target_level: usize,
    ) -> Result<Vec<Arc<SstReader>>> {
        let drop_tombstones = {
            let v = self.version();
            v.levels.get(target_level + 1..).is_none_or(|d| d.iter().all(Vec::is_empty))
        };
        let mut scanners: Vec<SstScanner> = newer
            .iter()
            .chain(older.iter())
            .map(|s| SstScanner::new(Arc::clone(s), Arc::clone(&self.stats)))
            .collect();
        // Heap of (key, rank): smallest key first, then lowest rank
        // (newest). `None` values are tombstones.
        type MergeEntry = Reverse<(Vec<u8>, usize, Option<Vec<u8>>)>;
        let mut heap: BinaryHeap<MergeEntry> = BinaryHeap::new();
        for (rank, sc) in scanners.iter_mut().enumerate() {
            if let Some((k, v)) = sc.try_next()? {
                heap.push(Reverse((k, rank, v)));
            }
        }
        let mut outputs: Vec<Arc<SstReader>> = Vec::new();
        let mut writer: Option<SstWriter> = None;
        let mut last_key: Option<Vec<u8>> = None;
        while let Some(Reverse((k, rank, v))) = heap.pop() {
            if let Some((nk, nv)) = scanners[rank].try_next()? {
                heap.push(Reverse((nk, rank, nv)));
            }
            if last_key.as_deref() == Some(k.as_slice()) {
                continue; // older duplicate of an already-merged key
            }
            last_key = Some(k.clone());
            if v.is_none() && drop_tombstones {
                self.stats.tombstones_dropped.inc();
                continue;
            }
            let w = match writer.as_mut() {
                Some(w) => w,
                None => {
                    let id = self.alloc_id();
                    writer.insert(SstWriter::create(
                        &self.dir,
                        id,
                        self.cfg.key_width(),
                        self.cfg.block_bytes(),
                        target_level as u32,
                    )?)
                }
            };
            match &v {
                Some(v) => w.add(&k, v)?,
                None => w.delete(&k)?,
            }
            if w.bytes_written() >= self.cfg.sst_target_bytes() {
                if let Some(w) = writer.take() {
                    outputs.push(Arc::new(w.finish(
                        self.factory.as_ref(),
                        &self.queue,
                        self.cfg.bits_per_key(),
                        &self.stats,
                    )?));
                }
            }
        }
        if let Some(w) = writer {
            if w.n_entries() > 0 {
                outputs.push(Arc::new(w.finish(
                    self.factory.as_ref(),
                    &self.queue,
                    self.cfg.bits_per_key(),
                    &self.stats,
                )?));
            }
        }
        Ok(outputs)
    }
}

/// Return clones of the files in a sorted, disjoint level overlapping
/// `[lo, hi]` (the snapshot is not modified; the manifest edit removes
/// them by id at publish time).
fn collect_overlapping(level: &[Arc<SstReader>], lo: &[u8], hi: &[u8]) -> Vec<Arc<SstReader>> {
    level.iter().filter(|s| s.overlaps(lo, hi)).cloned().collect()
}

#[cfg(test)]
mod poison_tests {
    //! Regression tests for the panic-safety sweep: a poisoned
    //! coordination gate must surface as [`Error::Poisoned`] on the
    //! foreground, stop the background workers via the sticky-error path
    //! (no worker panics), and never turn `Db::drop` into a panic (which,
    //! during an unwind, would be a double panic and abort the process).

    use super::*;
    use crate::NoFilterFactory;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("proteus-poison-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// Panics recorded from this crate's named worker threads. The chained
    /// hook filters on the `proteus-lsm-` thread-name prefix, so deliberate
    /// test panics (poisoning threads, `catch_unwind` probes) in this or
    /// any concurrently running test never count.
    fn worker_panics() -> &'static AtomicU64 {
        static COUNTER: OnceLock<&'static AtomicU64> = OnceLock::new();
        COUNTER.get_or_init(|| {
            static N: AtomicU64 = AtomicU64::new(0);
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let in_worker =
                    std::thread::current().name().is_some_and(|n| n.starts_with("proteus-lsm-"));
                if in_worker {
                    N.fetch_add(1, Ordering::SeqCst);
                }
                prev(info);
            }));
            &N
        })
    }

    /// Poison the coordination gate the way a crashed worker would: panic
    /// on a helper thread while holding the lock.
    fn poison_gate(db: &Db) {
        let inner = Arc::clone(&db.inner);
        let _ = std::thread::Builder::new()
            .name("gate-poisoner".into())
            .spawn(move || {
                let _g = inner.gate.lock().unwrap();
                panic!("deliberate gate poisoning (test)");
            })
            .unwrap()
            .join();
        assert!(db.inner.gate.lock().is_err(), "gate must now be poisoned");
    }

    #[test]
    fn drop_with_poisoned_gate_never_panics() {
        worker_panics();
        let dir = tmpdir("drop");
        let db = Db::open(&dir, DbConfig::default(), Arc::new(NoFilterFactory)).unwrap();
        db.put_u64(7, b"survives").unwrap();
        poison_gate(&db);
        // Before the fix `Drop` did `gate.lock().unwrap()` and panicked
        // here — which, had the caller already been unwinding, would have
        // aborted the process.
        let dropped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(db)));
        assert!(dropped.is_ok(), "Db::drop must complete with a poisoned gate");
        // The final WAL sync still ran: the acked write survives a reopen.
        let db = Db::open(&dir, DbConfig::default(), Arc::new(NoFilterFactory)).unwrap();
        assert_eq!(db.get_u64(7).unwrap().as_deref(), Some(&b"survives"[..]));
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_gate_surfaces_typed_error_on_barriers() {
        worker_panics();
        let dir = tmpdir("typed");
        let db = Db::open(&dir, DbConfig::default(), Arc::new(NoFilterFactory)).unwrap();
        db.put_u64(1, b"v").unwrap();
        poison_gate(&db);
        assert!(matches!(db.flush(), Err(Error::Poisoned(_))));
        assert!(matches!(db.flush_and_settle(), Err(Error::Poisoned(_))));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(db)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workers_exit_sticky_not_panicking_on_poisoned_gate() {
        let panics = worker_panics();
        let before = panics.load(Ordering::SeqCst);
        let dir = tmpdir("workers");
        // Adapter enabled with a short poll so its `wait_timeout` path —
        // the original bug — runs within the test's lifetime.
        let cfg = DbConfig::builder()
            .adapt_enabled(true)
            .adapt_interval(Duration::from_millis(1))
            .build()
            .unwrap();
        let db = Db::open(&dir, cfg, Arc::new(NoFilterFactory)).unwrap();
        db.put_u64(2, b"v").unwrap();
        poison_gate(&db);
        // Give all three workers time to wake up, observe the poisoned
        // lock, record the sticky error and exit.
        std::thread::sleep(Duration::from_millis(100));
        let after = panics.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "background workers must take the sticky-error path, not panic"
        );
        let dropped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(db)));
        assert!(dropped.is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

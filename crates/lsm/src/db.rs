//! The LSM-tree key-value store: MemTable → L0 (overlapping) → leveled,
//! range-partitioned L1+ with size-ratio-triggered compaction, per-SST
//! range filters, a block cache and the §6.1 closed-`Seek` read path.

use crate::cache::BlockCache;
use crate::filter_hook::FilterFactory;
use crate::memtable::MemTable;
use crate::query_queue::QueryQueue;
use crate::sst::{SstReader, SstScanner, SstWriter};
use crate::stats::Stats;
use proteus_core::key::u64_key;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::PathBuf;
use std::sync::Arc;

/// Tuning knobs, defaulting to a laptop-scale version of the paper's §6.2
/// RocksDB configuration (the paper uses 256 MB SSTs and a 1 GB cache on a
/// 50M-key database; ratios are preserved).
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Canonical key width in bytes.
    pub key_width: usize,
    /// MemTable flush threshold (write_buffer_size).
    pub memtable_bytes: usize,
    /// Data block size (RocksDB default 4 KiB).
    pub block_bytes: usize,
    /// Target SST file size when splitting compaction output.
    pub sst_target_bytes: u64,
    /// L0 file count triggering compaction into L1.
    pub l0_compaction_trigger: usize,
    /// Total size target of L1 (max_bytes_for_level_base).
    pub level_base_bytes: u64,
    /// Per-level size multiplier.
    pub level_size_ratio: u64,
    /// Filter memory budget per key.
    pub bits_per_key: f64,
    /// Block cache capacity.
    pub block_cache_bytes: usize,
    /// Sample query queue capacity (§6.1: 20K).
    pub queue_capacity: usize,
    /// Record every n-th executed empty query (§6.1: 100).
    pub sample_every: u64,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            key_width: 8,
            memtable_bytes: 4 << 20,
            block_bytes: 4096,
            sst_target_bytes: 4 << 20,
            l0_compaction_trigger: 4,
            level_base_bytes: 16 << 20,
            level_size_ratio: 10,
            bits_per_key: 10.0,
            block_cache_bytes: 8 << 20,
            queue_capacity: 20_000,
            sample_every: 100,
        }
    }
}

/// A single-process LSM-tree database with pluggable per-SST range filters.
pub struct Db {
    cfg: DbConfig,
    dir: PathBuf,
    mem: MemTable,
    /// `levels[0]` holds overlapping flush outputs (newest last); deeper
    /// levels are sorted and disjoint.
    levels: Vec<Vec<Arc<SstReader>>>,
    next_sst_id: u64,
    factory: Arc<dyn FilterFactory>,
    queue: QueryQueue,
    cache: BlockCache,
    stats: Arc<Stats>,
}

impl Db {
    /// Open a database in `dir`, creating it if empty.
    ///
    /// A directory that already holds SST files is *recovered*: every
    /// `NNNNNNNN.sst` is reopened through its footer, the level manifest is
    /// rebuilt from the per-file level tags, and persisted filters are
    /// reloaded (lazily, on first probe) instead of retrained. A corrupt
    /// footer or index fails the open with `InvalidData`; a corrupt filter
    /// block only degrades that file to unfiltered probes.
    pub fn open(
        dir: impl Into<PathBuf>,
        cfg: DbConfig,
        factory: Arc<dyn FilterFactory>,
    ) -> std::io::Result<Db> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let queue = QueryQueue::new(cfg.queue_capacity, cfg.sample_every);
        let cache = BlockCache::new(cfg.block_cache_bytes);
        let stats = Arc::new(Stats::default());
        let (levels, next_sst_id) = Self::recover_levels(&dir, cfg.key_width, &stats)?;
        Ok(Db { cfg, dir, mem: MemTable::new(), levels, next_sst_id, factory, queue, cache, stats })
    }

    /// Scan `dir` for SST files and rebuild the level manifest from their
    /// footers. Returns the levels plus the next free SST id.
    fn recover_levels(
        dir: &std::path::Path,
        key_width: usize,
        stats: &Stats,
    ) -> std::io::Result<(Vec<Vec<Arc<SstReader>>>, u64)> {
        let mut recovered: Vec<Arc<SstReader>> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
            if let Some(stem) = name.strip_suffix(".sst.tmp") {
                // A crash mid-write left an unfinished SST (writers stream
                // into `NNNNNNNN.sst.tmp` and rename on completion):
                // discard it. Only our own naming pattern is touched.
                if stem.parse::<u64>().is_ok() {
                    let _ = std::fs::remove_file(&path);
                }
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some("sst") {
                continue;
            }
            let Some(id) =
                path.file_stem().and_then(|s| s.to_str()).and_then(|s| s.parse::<u64>().ok())
            else {
                continue; // foreign file; not one of ours
            };
            recovered.push(Arc::new(SstReader::open(&path, id, key_width)?));
        }
        if recovered.is_empty() {
            return Ok((vec![Vec::new()], 1));
        }
        let next_id = recovered.iter().map(|s| s.id).max().unwrap() + 1;
        let max_level = recovered.iter().map(|s| s.level).max().unwrap() as usize;
        let mut levels: Vec<Vec<Arc<SstReader>>> = vec![Vec::new(); max_level + 1];
        stats.ssts_recovered.add(recovered.len() as u64);
        for sst in recovered {
            levels[sst.level as usize].push(sst);
        }
        // L0 recency = file id order (ids are allocated monotonically and
        // flushes append newest last); deeper levels sort by key range.
        for level in &mut levels[1..] {
            level.sort_by(|a, b| a.min_key.cmp(&b.min_key));
        }
        // Deeper levels must be disjoint for the binary-searched read path.
        // A crash between compaction-output renames and input deletion can
        // leave both generations on disk; demote every file involved in an
        // overlap to L0, where overlapping files are legal and searched
        // newest-first (Seek only answers existence, so the surviving
        // duplicates are harmless until the next compaction folds them).
        for li in 1..levels.len() {
            let level = &levels[li];
            let mut demote = vec![false; level.len()];
            for i in 1..level.len() {
                if level[i - 1].max_key >= level[i].min_key {
                    demote[i - 1] = true;
                    demote[i] = true;
                }
            }
            if demote.iter().any(|&d| d) {
                let drained: Vec<Arc<SstReader>> = levels[li].drain(..).collect();
                for (i, sst) in drained.into_iter().enumerate() {
                    if demote[i] {
                        levels[0].push(sst);
                    } else {
                        levels[li].push(sst);
                    }
                }
            }
        }
        levels[0].sort_by_key(|s| s.id);
        Ok((levels, next_id))
    }

    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Seed the sample query queue (§6.2 seeds it with an initial sample).
    pub fn seed_queries(&mut self, queries: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>) {
        self.queue.seed(queries);
    }

    /// Insert a key-value pair; may trigger a flush and compactions.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> std::io::Result<()> {
        assert_eq!(key.len(), self.cfg.key_width, "key width mismatch");
        self.mem.put(key.to_vec(), value.to_vec());
        if self.mem.bytes() >= self.cfg.memtable_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Insert with a `u64` key.
    pub fn put_u64(&mut self, key: u64, value: &[u8]) -> std::io::Result<()> {
        self.put(&u64_key(key), value)
    }

    /// Closed-range `Seek`: does any key exist in `[lo, hi]`? This is the
    /// §6.1 read path: check the MemTable, then every overlapping SST's
    /// filter; only filter-positive files pay index + block I/O.
    pub fn seek(&mut self, lo: &[u8], hi: &[u8]) -> std::io::Result<bool> {
        assert!(lo <= hi);
        self.stats.seeks.inc();
        if self.mem.range_contains(lo, hi) {
            self.stats.seeks_found.inc();
            return Ok(true);
        }
        // Gather overlapping files: L0 newest-first, then deeper levels.
        let mut candidates: Vec<Arc<SstReader>> = Vec::new();
        for sst in self.levels[0].iter().rev() {
            if sst.overlaps(lo, hi) {
                candidates.push(Arc::clone(sst));
            }
        }
        for level in &self.levels[1..] {
            let start = level.partition_point(|s| s.max_key.as_slice() < lo);
            for sst in &level[start..] {
                if sst.min_key.as_slice() > hi {
                    break;
                }
                candidates.push(Arc::clone(sst));
            }
        }
        let mut probed_any = false;
        let mut found = false;
        for sst in &candidates {
            // Clamp the probe to the file's key range: the filter only
            // describes this file's keys.
            let flo = if lo < sst.min_key.as_slice() { sst.min_key.as_slice() } else { lo };
            let fhi = if hi > sst.max_key.as_slice() { sst.max_key.as_slice() } else { hi };
            if let Some(filter) = sst.filter(&self.stats) {
                if !filter.may_contain_range(flo, fhi) {
                    self.stats.filter_negatives.inc();
                    continue;
                }
            }
            probed_any = true;
            if self.search_sst(sst, lo, hi) {
                self.stats.filter_true_positives.inc();
                found = true;
                break;
            } else {
                self.stats.filter_false_positives.inc();
            }
        }
        if found {
            self.stats.seeks_found.inc();
            return Ok(true);
        }
        if !probed_any {
            self.stats.seeks_filtered.inc();
        }
        // Executed empty query: feed the sample queue (§6.1).
        self.queue.offer(lo, hi);
        self.stats.sampled_queries.set(self.queue.len() as u64);
        Ok(false)
    }

    /// `Seek` with `u64` bounds.
    pub fn seek_u64(&mut self, lo: u64, hi: u64) -> std::io::Result<bool> {
        self.seek(&u64_key(lo), &u64_key(hi))
    }

    /// Scan one SST for a key in `[lo, hi]` via index binary search plus
    /// block reads through the cache.
    fn search_sst(&mut self, sst: &Arc<SstReader>, lo: &[u8], hi: &[u8]) -> bool {
        let mut b = sst.first_candidate_block(lo);
        while b < sst.n_blocks() {
            if sst.block_meta(b).first_key.as_slice() > hi {
                return false;
            }
            let id = (sst.id, b as u32);
            let block = match self.cache.get(id) {
                Some(block) => {
                    self.stats.cache_hits.inc();
                    block
                }
                None => {
                    let block = Arc::new(sst.read_block(b, &self.stats));
                    self.cache.insert(id, Arc::clone(&block));
                    block
                }
            };
            let idx = block.lower_bound(lo);
            if idx < block.len() {
                return block.key(idx) <= hi;
            }
            b += 1;
        }
        false
    }

    /// Flush the MemTable into a new L0 SST (§6.1 MemTable → L0).
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.mem.is_empty() {
            return Ok(());
        }
        let entries = self.mem.drain_sorted();
        let id = self.alloc_id();
        let mut w = SstWriter::create(&self.dir, id, self.cfg.key_width, self.cfg.block_bytes, 0)?;
        for (k, v) in &entries {
            w.add(k, v)?;
        }
        let reader =
            w.finish(self.factory.as_ref(), &self.queue, self.cfg.bits_per_key, &self.stats)?;
        self.levels[0].push(Arc::new(reader));
        self.stats.flushes.inc();
        self.maybe_compact()?;
        Ok(())
    }

    /// Flush and run compactions until every level is within its target —
    /// the §6.2 "wait for all background compactions to finish" setup step.
    pub fn flush_and_settle(&mut self) -> std::io::Result<()> {
        self.flush()?;
        // Also force L0 down to L1 for a clean initial state (§6.2 sets
        // RocksDB "to compact all L0 SST files to L1 for sake of
        // consistency").
        if !self.levels[0].is_empty() {
            self.compact_l0()?;
        }
        self.maybe_compact()?;
        Ok(())
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_sst_id;
        self.next_sst_id += 1;
        id
    }

    fn level_bytes(&self, level: usize) -> u64 {
        self.levels.get(level).map_or(0, |l| l.iter().map(|s| s.file_bytes).sum())
    }

    fn level_target(&self, level: usize) -> u64 {
        self.cfg.level_base_bytes * self.cfg.level_size_ratio.pow(level.saturating_sub(1) as u32)
    }

    /// Run compactions until every trigger is satisfied (inline; the paper
    /// uses background threads — see DESIGN.md substitutions).
    fn maybe_compact(&mut self) -> std::io::Result<()> {
        loop {
            if self.levels[0].len() > self.cfg.l0_compaction_trigger {
                self.compact_l0()?;
                continue;
            }
            let mut did = false;
            for level in 1..self.levels.len() {
                if self.level_bytes(level) > self.level_target(level) {
                    self.compact_level(level)?;
                    did = true;
                    break;
                }
            }
            if !did {
                return Ok(());
            }
        }
    }

    /// Merge all L0 files plus overlapping L1 files into new L1 files.
    fn compact_l0(&mut self) -> std::io::Result<()> {
        if self.levels[0].is_empty() {
            return Ok(());
        }
        let inputs_new: Vec<Arc<SstReader>> = self.levels[0].drain(..).rev().collect();
        let lo = inputs_new.iter().map(|s| s.min_key.clone()).min().unwrap();
        let hi = inputs_new.iter().map(|s| s.max_key.clone()).max().unwrap();
        self.ensure_level(1);
        let old: Vec<Arc<SstReader>> = extract_overlapping(&mut self.levels[1], &lo, &hi);
        self.merge_into_level(inputs_new, old, 1)
    }

    /// Push one file from `level` into `level + 1`.
    fn compact_level(&mut self, level: usize) -> std::io::Result<()> {
        if self.levels[level].is_empty() {
            return Ok(());
        }
        // Pick the file with the smallest min key (simple deterministic
        // cursor; RocksDB round-robins similarly).
        let file = self.levels[level].remove(0);
        self.ensure_level(level + 1);
        let old: Vec<Arc<SstReader>> =
            extract_overlapping(&mut self.levels[level + 1], &file.min_key, &file.max_key);
        self.merge_into_level(vec![file], old, level + 1)
    }

    fn ensure_level(&mut self, level: usize) {
        while self.levels.len() <= level {
            self.levels.push(Vec::new());
        }
    }

    /// K-way merge of `newer` (rank order = recency) and `older` files,
    /// writing size-split SSTs into `target_level` and building a fresh
    /// filter per output (§6.1: compaction "triggers the construction of
    /// new filters on the merged data").
    fn merge_into_level(
        &mut self,
        newer: Vec<Arc<SstReader>>,
        older: Vec<Arc<SstReader>>,
        target_level: usize,
    ) -> std::io::Result<()> {
        let mut inputs = newer;
        inputs.extend(older);
        let mut scanners: Vec<SstScanner> = inputs
            .iter()
            .map(|s| SstScanner::new(Arc::clone(s), Arc::clone(&self.stats)))
            .collect();
        // Heap of (key, rank): smallest key first, then lowest rank (newest).
        let mut heap: BinaryHeap<Reverse<(Vec<u8>, usize, Vec<u8>)>> = BinaryHeap::new();
        for (rank, sc) in scanners.iter_mut().enumerate() {
            if let Some((k, v)) = sc.next() {
                heap.push(Reverse((k, rank, v)));
            }
        }
        let mut outputs: Vec<Arc<SstReader>> = Vec::new();
        let mut writer: Option<SstWriter> = None;
        let mut last_key: Option<Vec<u8>> = None;
        while let Some(Reverse((k, rank, v))) = heap.pop() {
            if let Some((nk, nv)) = scanners[rank].next() {
                heap.push(Reverse((nk, rank, nv)));
            }
            if last_key.as_deref() == Some(k.as_slice()) {
                continue; // older duplicate of an already-written key
            }
            last_key = Some(k.clone());
            if writer.is_none() {
                let id = self.alloc_id();
                writer = Some(SstWriter::create(
                    &self.dir,
                    id,
                    self.cfg.key_width,
                    self.cfg.block_bytes,
                    target_level as u32,
                )?);
            }
            let w = writer.as_mut().unwrap();
            w.add(&k, &v)?;
            if w.bytes_written() >= self.cfg.sst_target_bytes {
                let w = writer.take().unwrap();
                outputs.push(Arc::new(w.finish(
                    self.factory.as_ref(),
                    &self.queue,
                    self.cfg.bits_per_key,
                    &self.stats,
                )?));
            }
        }
        if let Some(w) = writer {
            if w.n_entries() > 0 {
                outputs.push(Arc::new(w.finish(
                    self.factory.as_ref(),
                    &self.queue,
                    self.cfg.bits_per_key,
                    &self.stats,
                )?));
            }
        }
        // Retire inputs.
        for sst in &inputs {
            self.cache.purge_sst(sst.id);
            sst.delete_file();
        }
        // Install outputs, keeping the level sorted by min key.
        let level = &mut self.levels[target_level];
        level.extend(outputs);
        level.sort_by(|a, b| a.min_key.cmp(&b.min_key));
        self.stats.compactions.inc();
        Ok(())
    }

    /// Number of SST files per level.
    pub fn level_file_counts(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.len()).collect()
    }

    /// Total SST files.
    pub fn sst_count(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Total key-value entries across all SSTs (duplicates across levels
    /// counted per file).
    pub fn sst_entries(&self) -> u64 {
        self.levels.iter().flatten().map(|s| s.n_entries).sum()
    }

    /// Total bytes of all SST files.
    pub fn sst_bytes(&self) -> u64 {
        self.levels.iter().flatten().map(|s| s.file_bytes).sum()
    }

    /// Total memory held by the per-SST filters, in bits (forces lazy
    /// filter blocks to decode).
    pub fn filter_bits(&self) -> u64 {
        self.levels
            .iter()
            .flatten()
            .map(|s| s.filter(&self.stats).map_or(0, |f| f.size_bits()))
            .sum()
    }

    /// Iterate filter names per file (diagnostics for the experiments).
    pub fn filter_names(&self) -> Vec<String> {
        self.levels
            .iter()
            .flatten()
            .map(|s| s.filter(&self.stats).map_or("none".into(), |f| f.name()))
            .collect()
    }
}

/// Remove and return the files of a sorted, disjoint level overlapping
/// `[lo, hi]`.
fn extract_overlapping(
    level: &mut Vec<Arc<SstReader>>,
    lo: &[u8],
    hi: &[u8],
) -> Vec<Arc<SstReader>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < level.len() {
        if level[i].overlaps(lo, hi) {
            out.push(level.remove(i));
        } else {
            i += 1;
        }
    }
    out
}

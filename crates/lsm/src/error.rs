//! The typed error surface of the v2 `Db` API.
//!
//! Every public operation on [`crate::Db`] returns [`Result`] instead of a
//! bare `std::io::Result`, so callers can distinguish an operating-system
//! failure ([`Error::Io`]) from on-disk damage ([`Error::Corruption`]), a
//! rejected argument or configuration ([`Error::Config`]), a filter-codec
//! failure ([`Error::Codec`]) and a crashed internal thread
//! ([`Error::Poisoned`]). The enum is `#[non_exhaustive]`: downstream
//! matches must keep a wildcard arm so new failure classes can be added
//! without a breaking release.

use proteus_core::CodecError;

/// Alias for `std::result::Result<T, proteus_lsm::Error>`, used by every
/// public method of the store.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong inside the store.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The operating system failed an I/O call (open, read, write, sync,
    /// rename). Background flush/compaction failures are sticky and also
    /// surface here, at the next barrier or write.
    Io(std::io::Error),
    /// Persisted bytes failed validation: bad magic, an unsupported format
    /// version, a checksum mismatch, or geometry that does not fit the
    /// file. The data needs repair; retrying will not help.
    Corruption(String),
    /// A filter-codec envelope could not be encoded or decoded on a path
    /// where degrading to "no filter" is not an option. (Read paths prefer
    /// to degrade: a corrupt filter block costs I/O, never an error.)
    Codec(CodecError),
    /// An argument or configuration value was rejected at the API
    /// boundary: wrong key width, empty key, or a [`crate::DbConfig`]
    /// that fails validation at [`crate::Db::open`].
    Config(String),
    /// An internal lock was poisoned — another thread panicked while
    /// holding it. The store's state is suspect; reopen it.
    Poisoned(&'static str),
}

impl Error {
    /// Build a [`Error::Corruption`] from anything displayable.
    pub(crate) fn corruption(detail: impl Into<String>) -> Error {
        Error::Corruption(detail.into())
    }

    /// Build a [`Error::Config`] from anything displayable.
    pub(crate) fn config(detail: impl Into<String>) -> Error {
        Error::Config(detail.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Corruption(d) => write!(f, "corruption: {d}"),
            Error::Codec(e) => write!(f, "filter codec: {e}"),
            Error::Config(d) => write!(f, "invalid configuration: {d}"),
            Error::Poisoned(what) => {
                write!(f, "internal lock poisoned ({what}): a worker thread panicked")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e)
    }
}

impl From<CodecError> for Error {
    fn from(e: CodecError) -> Error {
        Error::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_convert_and_chain() {
        let e: Error = std::io::Error::other("disk gone").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("disk gone"));
    }

    #[test]
    fn codec_errors_convert() {
        let e: Error = CodecError::BadMagic.into();
        assert!(matches!(e, Error::Codec(CodecError::BadMagic)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn corruption_and_config_render_their_detail() {
        assert!(Error::corruption("bad footer").to_string().contains("bad footer"));
        assert!(Error::config("key_width must be > 0").to_string().contains("key_width"));
        assert!(Error::Poisoned("memtable lock").to_string().contains("memtable lock"));
    }
}

//! The in-memory write buffer (RocksDB's MemTable, §6.1).
//!
//! The concurrent `Db` keeps one *active* MemTable (mutated under a write
//! lock) plus a FIFO of *immutable* MemTables that have been rotated out
//! and await a background flush. An immutable MemTable is shared as
//! `Arc<MemTable>` and only read (`range_contains`, [`MemTable::iter`]),
//! so no further synchronization is needed on it.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A sorted in-memory buffer of the most recent writes.
#[derive(Debug, Default)]
pub struct MemTable {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    bytes: usize,
}

impl MemTable {
    /// An empty write buffer.
    pub fn new() -> Self {
        MemTable::default()
    }

    /// Insert or overwrite.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        let vlen = value.len();
        let klen = key.len();
        match self.map.insert(key, value) {
            Some(old) => {
                // Key bytes were already counted; swap the value size.
                self.bytes = self.bytes - old.len() + vlen;
            }
            None => self.bytes += klen + vlen,
        }
    }

    /// Exact-key lookup.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_slice())
    }

    /// Does any buffered key fall within `[lo, hi]`?
    pub fn range_contains(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.map.range::<[u8], _>((Bound::Included(lo), Bound::Included(hi))).next().is_some()
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate buffered bytes (keys + values).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Drain all entries in ascending key order.
    pub fn drain_sorted(&mut self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.bytes = 0;
        std::mem::take(&mut self.map).into_iter().collect()
    }

    /// Iterate all entries in ascending key order without consuming the
    /// table (the background flusher writes an immutable `Arc<MemTable>`
    /// to disk through this).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_range() {
        let mut m = MemTable::new();
        m.put(vec![0, 5], vec![1]);
        m.put(vec![0, 9], vec![2]);
        assert_eq!(m.get(&[0, 5]), Some(&[1u8][..]));
        assert_eq!(m.get(&[0, 6]), None);
        assert!(m.range_contains(&[0, 4], &[0, 5]));
        assert!(m.range_contains(&[0, 6], &[0, 9]));
        assert!(!m.range_contains(&[0, 6], &[0, 8]));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let mut m = MemTable::new();
        m.put(vec![1], vec![1, 1]);
        m.put(vec![1], vec![2, 2, 2]);
        assert_eq!(m.get(&[1]), Some(&[2u8, 2, 2][..]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn drain_is_sorted_and_resets() {
        let mut m = MemTable::new();
        m.put(vec![9], vec![]);
        m.put(vec![1], vec![]);
        m.put(vec![5], vec![]);
        let drained = m.drain_sorted();
        let keys: Vec<u8> = drained.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![1, 5, 9]);
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn iter_is_sorted_and_non_consuming() {
        let mut m = MemTable::new();
        m.put(vec![9], vec![b'a']);
        m.put(vec![1], vec![b'b']);
        let keys: Vec<u8> = m.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![1, 9]);
        assert_eq!(m.len(), 2, "iter must not drain");
    }

    #[test]
    fn byte_accounting_grows() {
        let mut m = MemTable::new();
        assert_eq!(m.bytes(), 0);
        m.put(vec![1; 8], vec![0; 100]);
        assert!(m.bytes() >= 108);
    }
}

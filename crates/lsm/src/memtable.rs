//! The in-memory write buffer (RocksDB's MemTable, §6.1).
//!
//! The concurrent `Db` keeps one *active* MemTable (mutated under a write
//! lock) plus a FIFO of *immutable* MemTables that have been rotated out
//! and await a background flush. An immutable MemTable is shared as
//! `Arc<MemTable>` and only read ([`MemTable::get`], [`MemTable::iter`],
//! [`MemTable::range_entries`]), so no further synchronization is needed
//! on it.
//!
//! Since API v2 an entry's value is `Option<Vec<u8>>`: `Some` is a live
//! put, `None` is a *tombstone* recording a [`crate::Db::delete`]. A
//! tombstone must be a real entry (not a removal from the map) because it
//! has to shadow older versions of the key living in deeper layers —
//! immutable MemTables and SST files — until compaction drops it at the
//! bottom of the tree.
//!
//! Durability is not this type's job: every entry that reaches a MemTable
//! was first appended to the write-ahead log (see [`crate::wal`]), and
//! [`crate::Db::open`] rebuilds the active table by replaying surviving
//! WAL segments through [`MemTable::apply`] — which is why `apply` takes
//! the same `(key, Option<value>)` shape as a WAL commit op.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A sorted in-memory buffer of the most recent writes and deletes.
#[derive(Debug, Default)]
pub struct MemTable {
    map: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    bytes: usize,
}

/// Approximate bookkeeping bytes charged per tombstone (a deleted entry
/// stores no value but still occupies the map).
const TOMBSTONE_BYTES: usize = 8;

fn entry_bytes(value: &Option<Vec<u8>>) -> usize {
    value.as_ref().map_or(TOMBSTONE_BYTES, Vec::len)
}

impl MemTable {
    /// An empty write buffer.
    pub fn new() -> Self {
        MemTable::default()
    }

    /// Insert or overwrite a live value.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.apply(key, Some(value));
    }

    /// Record a tombstone for `key`, shadowing any older version of it.
    pub fn delete(&mut self, key: Vec<u8>) {
        self.apply(key, None);
    }

    /// Insert one entry: `Some` = put, `None` = tombstone.
    pub fn apply(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        let vlen = entry_bytes(&value);
        let klen = key.len();
        match self.map.insert(key, value) {
            Some(old) => {
                // Key bytes were already counted; swap the value size.
                self.bytes = self.bytes - entry_bytes(&old) + vlen;
            }
            None => self.bytes += klen + vlen,
        }
    }

    /// Exact-key lookup. The outer `Option` is "does this table know the
    /// key at all"; the inner one distinguishes a live value (`Some`)
    /// from a tombstone (`None`). A `None` outer result means the caller
    /// must keep searching older layers.
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.map.get(key).map(|v| v.as_deref())
    }

    /// Number of buffered entries (tombstones included).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate buffered bytes (keys + values + tombstone overhead).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Iterate all entries in ascending key order without consuming the
    /// table (the background flusher writes an immutable `Arc<MemTable>`
    /// to disk through this). Tombstones are yielded as `None` values.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Option<&[u8]>)> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Clone every entry with a key in the closed range `[lo, hi]`
    /// (tombstones included), in ascending key order. The range iterator
    /// snapshots MemTable state through this so it can merge without
    /// holding the MemTable lock.
    pub fn range_entries(&self, lo: &[u8], hi: &[u8]) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        self.range_iter(lo, hi).map(|(k, v)| (k.to_vec(), v.map(<[u8]>::to_vec))).collect()
    }

    /// Borrowing iterator over the entries with keys in `[lo, hi]`
    /// (tombstones included), ascending. Used by `seek`'s MemTable fast
    /// path, which must not pay the clone that [`MemTable::range_entries`]
    /// does.
    pub fn range_iter(&self, lo: &[u8], hi: &[u8]) -> impl Iterator<Item = (&[u8], Option<&[u8]>)> {
        self.map
            .range::<[u8], _>((Bound::Included(lo), Bound::Included(hi)))
            .map(|(k, v)| (k.as_slice(), v.as_deref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_range() {
        let mut m = MemTable::new();
        m.put(vec![0, 5], vec![1]);
        m.put(vec![0, 9], vec![2]);
        assert_eq!(m.get(&[0, 5]), Some(Some(&[1u8][..])));
        assert_eq!(m.get(&[0, 6]), None);
        let in_range = m.range_entries(&[0, 4], &[0, 5]);
        assert_eq!(in_range, vec![(vec![0, 5], Some(vec![1]))]);
        assert!(m.range_entries(&[0, 6], &[0, 8]).is_empty());
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let mut m = MemTable::new();
        m.put(vec![1], vec![1, 1]);
        m.put(vec![1], vec![2, 2, 2]);
        assert_eq!(m.get(&[1]), Some(Some(&[2u8, 2, 2][..])));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn delete_records_a_tombstone_entry() {
        let mut m = MemTable::new();
        m.put(vec![1], vec![9, 9]);
        m.delete(vec![1]);
        assert_eq!(m.get(&[1]), Some(None), "tombstone must shadow the put");
        assert_eq!(m.len(), 1, "a tombstone is a real entry");
        // Deleting an unknown key still records a tombstone: it may
        // shadow a version of the key living in an older layer.
        m.delete(vec![7]);
        assert_eq!(m.get(&[7]), Some(None));
        assert_eq!(m.range_entries(&[0], &[9]), vec![(vec![1], None), (vec![7], None)]);
        // Re-putting resurrects the key.
        m.put(vec![1], vec![3]);
        assert_eq!(m.get(&[1]), Some(Some(&[3u8][..])));
    }

    #[test]
    fn iter_is_sorted_non_consuming_and_keeps_tombstones() {
        let mut m = MemTable::new();
        m.put(vec![9], vec![b'a']);
        m.put(vec![1], vec![b'b']);
        m.delete(vec![5]);
        let entries: Vec<(u8, bool)> = m.iter().map(|(k, v)| (k[0], v.is_some())).collect();
        assert_eq!(entries, vec![(1, true), (5, false), (9, true)]);
        assert_eq!(m.len(), 3, "iter must not drain");
    }

    #[test]
    fn byte_accounting_grows_and_tracks_overwrites() {
        let mut m = MemTable::new();
        assert_eq!(m.bytes(), 0);
        m.put(vec![1; 8], vec![0; 100]);
        assert!(m.bytes() >= 108);
        let before = m.bytes();
        m.delete(vec![1; 8]); // value swapped for tombstone overhead
        assert!(m.bytes() < before);
        assert!(m.bytes() >= 8);
    }
}

//! The in-memory write buffer (RocksDB's MemTable, §6.1).
//!
//! The concurrent `Db` keeps one *active* MemTable (mutated under a write
//! lock) plus a FIFO of *immutable* MemTables that have been rotated out
//! and await a background flush. An immutable MemTable is shared as
//! `Arc<MemTable>` and only read ([`MemTable::get`], [`MemTable::iter`],
//! [`MemTable::range_entries`]), so no further synchronization is needed
//! on it.
//!
//! Since API v2 an entry's value is `Option<Vec<u8>>`: `Some` is a live
//! put, `None` is a *tombstone* recording a [`crate::Db::delete`]. A
//! tombstone must be a real entry (not a removal from the map) because it
//! has to shadow older versions of the key living in deeper layers —
//! immutable MemTables and SST files — until compaction drops it at the
//! bottom of the tree.
//!
//! Durability is not this type's job: every entry that reaches a MemTable
//! was first appended to the write-ahead log (see [`crate::wal`]), and
//! [`crate::Db::open`] rebuilds the active table by replaying surviving
//! WAL segments through [`MemTable::apply`] — which is why `apply` takes
//! the same `(key, Option<value>)` shape as a WAL commit op.
//!
//! ## Representation
//!
//! The table is a skiplist over a bump arena rather than a
//! `BTreeMap<Vec<u8>, Option<Vec<u8>>>`. All key and value bytes live in
//! one append-only `Vec<u8>` arena; a node is a handful of integer
//! offsets into it, and the tower (forward) pointers for all nodes live
//! in a single shared pool. A `put` therefore costs zero per-entry heap
//! allocations in the steady state — the arena, node pool and tower pool
//! all grow amortized — where the `BTreeMap` paid one allocation for the
//! key and one for the value on every insert. Overwrites append the new
//! value bytes and repoint the node; the superseded bytes stay garbage in
//! the arena until the whole table is dropped at flush, which is the
//! right trade for a buffer whose lifetime is bounded by
//! `memtable_bytes`. [`MemTable::bytes`] still reports *logical* bytes
//! (keys + live values + tombstone overhead), not arena bytes, so
//! rotation thresholds behave exactly as they did with the map.

use std::fmt;

/// Tallest tower a node can get. With branching factor 4 this covers
/// far more entries than any rotation threshold lets a table hold.
const MAX_HEIGHT: usize = 12;

/// Sentinel "null pointer" in the tower pools.
const NIL: u32 = u32::MAX;

/// Approximate bookkeeping bytes charged per tombstone (a deleted entry
/// stores no value but still occupies the table).
const TOMBSTONE_BYTES: usize = 8;

fn entry_bytes(value: Option<&[u8]>) -> usize {
    value.map_or(TOMBSTONE_BYTES, <[u8]>::len)
}

/// One skiplist node: integer offsets into the arena plus the location
/// of its tower in the shared pointer pool.
#[derive(Debug, Clone, Copy)]
struct Node {
    key_off: u32,
    key_len: u32,
    val_off: u32,
    /// Value length; ignored for tombstones.
    val_len: u32,
    tombstone: bool,
    /// First slot of this node's forward pointers in `tower`.
    tower_off: u32,
    height: u8,
}

/// A sorted in-memory buffer of the most recent writes and deletes.
pub struct MemTable {
    /// Bump-allocated key and value bytes (append-only).
    arena: Vec<u8>,
    nodes: Vec<Node>,
    /// Forward-pointer pool; node `n` owns
    /// `tower[n.tower_off .. n.tower_off + n.height]` (level 0 first).
    tower: Vec<u32>,
    /// Forward pointers out of the head pseudo-node.
    head: [u32; MAX_HEIGHT],
    /// Tallest tower currently in use (bounds the search).
    height: usize,
    /// xorshift64 state for tower heights. Seeded deterministically:
    /// reproducible layout, and the expected O(log n) bound needs no
    /// secrecy against these keys.
    rng: u64,
    bytes: usize,
}

impl Default for MemTable {
    fn default() -> Self {
        MemTable {
            arena: Vec::new(),
            nodes: Vec::new(),
            tower: Vec::new(),
            head: [NIL; MAX_HEIGHT],
            height: 1,
            rng: 0x9E37_79B9_7F4A_7C15,
            bytes: 0,
        }
    }
}

impl fmt::Debug for MemTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemTable")
            .field("entries", &self.nodes.len())
            .field("bytes", &self.bytes)
            .field("arena_bytes", &self.arena.len())
            .finish()
    }
}

impl MemTable {
    /// An empty write buffer.
    pub fn new() -> Self {
        MemTable::default()
    }

    /// Insert or overwrite a live value.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.apply_ref(&key, Some(&value));
    }

    /// Record a tombstone for `key`, shadowing any older version of it.
    pub fn delete(&mut self, key: Vec<u8>) {
        self.apply_ref(&key, None);
    }

    /// Insert one entry: `Some` = put, `None` = tombstone. Owned-argument
    /// form used by WAL replay; the bytes are copied into the arena.
    pub fn apply(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        self.apply_ref(&key, value.as_deref());
    }

    /// Insert one entry from borrowed bytes — the write hot path. The
    /// caller keeps ownership (the same buffers were just handed to the
    /// WAL), and the table performs no heap allocation beyond amortized
    /// arena/pool growth.
    pub fn apply_ref(&mut self, key: &[u8], value: Option<&[u8]>) {
        // Record the search path: `update[lvl]` is the last node (NIL =
        // head) strictly before `key` at that level.
        let mut update = [NIL; MAX_HEIGHT];
        let mut cur = NIL; // NIL means "the head"
        for lvl in (0..self.height).rev() {
            loop {
                let next = self.next_at(cur, lvl);
                if next != NIL && self.node_key(next) < key {
                    cur = next;
                } else {
                    break;
                }
            }
            update[lvl] = cur;
        }
        let at = self.next_at(cur, 0);
        if at != NIL && self.node_key(at) == key {
            // Overwrite: append the new value, repoint the node. The key
            // bytes were already charged; swap the value charge.
            let old = &self.nodes[at as usize];
            let old_bytes = if old.tombstone { TOMBSTONE_BYTES } else { old.val_len as usize };
            let (val_off, val_len, tombstone) = self.push_value(value);
            let node = &mut self.nodes[at as usize];
            node.val_off = val_off;
            node.val_len = val_len;
            node.tombstone = tombstone;
            self.bytes = self.bytes - old_bytes + entry_bytes(value);
            return;
        }
        // New key: arena-allocate key + value, then splice a node in.
        let key_off = self.arena.len() as u32;
        self.arena.extend_from_slice(key);
        let (val_off, val_len, tombstone) = self.push_value(value);
        let height = self.random_height();
        let tower_off = self.tower.len() as u32;
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            key_off,
            key_len: key.len() as u32,
            val_off,
            val_len,
            tombstone,
            tower_off,
            height: height as u8,
        });
        for (lvl, &upd) in update.iter().enumerate().take(height) {
            let prev = if lvl < self.height { upd } else { NIL };
            let next = self.next_at(prev, lvl);
            self.tower.push(next);
            self.set_next_at(prev, lvl, id);
        }
        if height > self.height {
            self.height = height;
        }
        self.bytes += key.len() + entry_bytes(value);
    }

    /// Exact-key lookup. The outer `Option` is "does this table know the
    /// key at all"; the inner one distinguishes a live value (`Some`)
    /// from a tombstone (`None`). A `None` outer result means the caller
    /// must keep searching older layers.
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        let n = self.seek_node(key)?;
        (self.node_key(n) == key).then(|| self.node_value(n))
    }

    /// Number of buffered entries (tombstones included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Approximate buffered bytes (keys + values + tombstone overhead).
    /// This is the *logical* size — superseded values in the arena are
    /// not counted — so rotation triggers on live data, as before.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Iterate all entries in ascending key order without consuming the
    /// table (the background flusher writes an immutable `Arc<MemTable>`
    /// to disk through this). Tombstones are yielded as `None` values.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Option<&[u8]>)> {
        Iter { mt: self, cur: self.head[0], hi: None }
    }

    /// Clone every entry with a key in the closed range `[lo, hi]`
    /// (tombstones included), in ascending key order. The range iterator
    /// snapshots MemTable state through this so it can merge without
    /// holding the MemTable lock.
    pub fn range_entries(&self, lo: &[u8], hi: &[u8]) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        self.range_iter(lo, hi).map(|(k, v)| (k.to_vec(), v.map(<[u8]>::to_vec))).collect()
    }

    /// Borrowing iterator over the entries with keys in `[lo, hi]`
    /// (tombstones included), ascending. Used by `seek`'s MemTable fast
    /// path, which must not pay the clone that [`MemTable::range_entries`]
    /// does.
    pub fn range_iter<'a>(
        &'a self,
        lo: &[u8],
        hi: &'a [u8],
    ) -> impl Iterator<Item = (&'a [u8], Option<&'a [u8]>)> {
        Iter { mt: self, cur: self.seek_node(lo).unwrap_or(NIL), hi: Some(hi) }
    }

    /// Append value bytes to the arena; returns `(off, len, tombstone)`.
    fn push_value(&mut self, value: Option<&[u8]>) -> (u32, u32, bool) {
        match value {
            Some(v) => {
                let off = self.arena.len() as u32;
                self.arena.extend_from_slice(v);
                (off, v.len() as u32, false)
            }
            None => (0, 0, true),
        }
    }

    /// Forward pointer of `node` (NIL = head) at `lvl`.
    #[inline]
    fn next_at(&self, node: u32, lvl: usize) -> u32 {
        if node == NIL {
            self.head[lvl]
        } else {
            let n = &self.nodes[node as usize];
            debug_assert!(lvl < n.height as usize);
            self.tower[n.tower_off as usize + lvl]
        }
    }

    #[inline]
    fn set_next_at(&mut self, node: u32, lvl: usize, to: u32) {
        if node == NIL {
            self.head[lvl] = to;
        } else {
            let off = self.nodes[node as usize].tower_off as usize + lvl;
            self.tower[off] = to;
        }
    }

    #[inline]
    fn node_key(&self, node: u32) -> &[u8] {
        let n = &self.nodes[node as usize];
        &self.arena[n.key_off as usize..n.key_off as usize + n.key_len as usize]
    }

    #[inline]
    fn node_value(&self, node: u32) -> Option<&[u8]> {
        let n = &self.nodes[node as usize];
        if n.tombstone {
            None
        } else {
            Some(&self.arena[n.val_off as usize..n.val_off as usize + n.val_len as usize])
        }
    }

    /// First node with key ≥ `key`, or `None` when every key is smaller.
    fn seek_node(&self, key: &[u8]) -> Option<u32> {
        let mut cur = NIL;
        for lvl in (0..self.height).rev() {
            loop {
                let next = self.next_at(cur, lvl);
                if next != NIL && self.node_key(next) < key {
                    cur = next;
                } else {
                    break;
                }
            }
        }
        let n = self.next_at(cur, 0);
        (n != NIL).then_some(n)
    }

    /// Geometric tower height with branching factor 4 (p = 1/4 per
    /// level), the classic skiplist trade of pointer overhead for hops.
    fn random_height(&mut self) -> usize {
        // xorshift64 — cheap, and quality is irrelevant here.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        let mut h = 1;
        while h < MAX_HEIGHT && x & 3 == 0 {
            h += 1;
            x >>= 2;
        }
        h
    }
}

/// Borrowing in-order walk along the level-0 chain, optionally bounded
/// above by an inclusive `hi`.
struct Iter<'a> {
    mt: &'a MemTable,
    cur: u32,
    hi: Option<&'a [u8]>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = (&'a [u8], Option<&'a [u8]>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let k = self.mt.node_key(self.cur);
        if let Some(hi) = self.hi {
            if k > hi {
                self.cur = NIL;
                return None;
            }
        }
        let v = self.mt.node_value(self.cur);
        self.cur = self.mt.next_at(self.cur, 0);
        Some((k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_range() {
        let mut m = MemTable::new();
        m.put(vec![0, 5], vec![1]);
        m.put(vec![0, 9], vec![2]);
        assert_eq!(m.get(&[0, 5]), Some(Some(&[1u8][..])));
        assert_eq!(m.get(&[0, 6]), None);
        let in_range = m.range_entries(&[0, 4], &[0, 5]);
        assert_eq!(in_range, vec![(vec![0, 5], Some(vec![1]))]);
        assert!(m.range_entries(&[0, 6], &[0, 8]).is_empty());
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let mut m = MemTable::new();
        m.put(vec![1], vec![1, 1]);
        m.put(vec![1], vec![2, 2, 2]);
        assert_eq!(m.get(&[1]), Some(Some(&[2u8, 2, 2][..])));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn delete_records_a_tombstone_entry() {
        let mut m = MemTable::new();
        m.put(vec![1], vec![9, 9]);
        m.delete(vec![1]);
        assert_eq!(m.get(&[1]), Some(None), "tombstone must shadow the put");
        assert_eq!(m.len(), 1, "a tombstone is a real entry");
        // Deleting an unknown key still records a tombstone: it may
        // shadow a version of the key living in an older layer.
        m.delete(vec![7]);
        assert_eq!(m.get(&[7]), Some(None));
        assert_eq!(m.range_entries(&[0], &[9]), vec![(vec![1], None), (vec![7], None)]);
        // Re-putting resurrects the key.
        m.put(vec![1], vec![3]);
        assert_eq!(m.get(&[1]), Some(Some(&[3u8][..])));
    }

    #[test]
    fn iter_is_sorted_non_consuming_and_keeps_tombstones() {
        let mut m = MemTable::new();
        m.put(vec![9], vec![b'a']);
        m.put(vec![1], vec![b'b']);
        m.delete(vec![5]);
        let entries: Vec<(u8, bool)> = m.iter().map(|(k, v)| (k[0], v.is_some())).collect();
        assert_eq!(entries, vec![(1, true), (5, false), (9, true)]);
        assert_eq!(m.len(), 3, "iter must not drain");
    }

    #[test]
    fn byte_accounting_grows_and_tracks_overwrites() {
        let mut m = MemTable::new();
        assert_eq!(m.bytes(), 0);
        m.put(vec![1; 8], vec![0; 100]);
        assert!(m.bytes() >= 108);
        let before = m.bytes();
        m.delete(vec![1; 8]); // value swapped for tombstone overhead
        assert!(m.bytes() < before);
        assert!(m.bytes() >= 8);
    }

    #[test]
    fn byte_accounting_is_exact_across_overwrite_and_tombstone_swaps() {
        // Logical bytes must match the old BTreeMap accounting exactly:
        // rotation thresholds and backpressure depend on it.
        let mut m = MemTable::new();
        m.put(vec![7; 4], vec![0; 10]);
        assert_eq!(m.bytes(), 4 + 10);
        // Overwrite with a bigger value: key charged once.
        m.put(vec![7; 4], vec![0; 25]);
        assert_eq!(m.bytes(), 4 + 25);
        // Overwrite with a smaller value shrinks the charge.
        m.put(vec![7; 4], vec![0; 3]);
        assert_eq!(m.bytes(), 4 + 3);
        // Value -> tombstone swaps the value charge for the flat fee.
        m.delete(vec![7; 4]);
        assert_eq!(m.bytes(), 4 + TOMBSTONE_BYTES);
        // Tombstone -> tombstone is a no-op charge-wise.
        m.delete(vec![7; 4]);
        assert_eq!(m.bytes(), 4 + TOMBSTONE_BYTES);
        // Tombstone -> value swaps back.
        m.put(vec![7; 4], vec![0; 9]);
        assert_eq!(m.bytes(), 4 + 9);
        // A second key adds key + value.
        m.put(vec![8; 6], vec![0; 2]);
        assert_eq!(m.bytes(), 4 + 9 + 6 + 2);
        // Empty live value is distinct from a tombstone and charges 0.
        m.put(vec![9; 2], vec![]);
        assert_eq!(m.bytes(), 4 + 9 + 6 + 2 + 2);
        assert_eq!(m.get(&[9, 9]), Some(Some(&[][..])));
    }

    #[test]
    fn matches_btreemap_reference_on_mixed_workload() {
        use std::collections::BTreeMap;
        // Deterministic pseudo-random workload; the old representation is
        // the executable spec.
        let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let mut m = MemTable::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 257).to_be_bytes().to_vec();
            if x.is_multiple_of(5) {
                model.insert(key.clone(), None);
                m.delete(key);
            } else {
                let val = vec![(x % 251) as u8; (x % 31) as usize];
                model.insert(key.clone(), Some(val.clone()));
                m.put(key, val);
            }
        }
        assert_eq!(m.len(), model.len());
        let got: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            m.iter().map(|(k, v)| (k.to_vec(), v.map(<[u8]>::to_vec))).collect();
        let want: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(got, want);
        for (k, v) in &model {
            assert_eq!(m.get(k), Some(v.as_deref()), "key {k:?}");
        }
        assert_eq!(m.get(&300u64.to_be_bytes()), None);
        // Range queries agree with the model on assorted windows.
        for (lo, hi) in [(0u64, 256u64), (10, 20), (100, 100), (200, 9999)] {
            let lo = lo.to_be_bytes();
            let hi = hi.to_be_bytes();
            let got = m.range_entries(&lo, &hi);
            let want: Vec<(Vec<u8>, Option<Vec<u8>>)> = model
                .range::<[u8], _>((
                    std::ops::Bound::Included(&lo[..]),
                    std::ops::Bound::Included(&hi[..]),
                ))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            assert_eq!(got, want);
        }
        // Logical bytes match the old accounting formula.
        let expect_bytes: usize = model
            .iter()
            .map(|(k, v)| k.len() + v.as_deref().map_or(TOMBSTONE_BYTES, <[u8]>::len))
            .sum();
        assert_eq!(m.bytes(), expect_bytes);
    }

    #[test]
    fn range_iter_borrows_and_respects_bounds() {
        let mut m = MemTable::new();
        for i in (0u8..100).step_by(3) {
            m.put(vec![i], vec![i, i]);
        }
        let ks: Vec<u8> = m.range_iter(&[10], &[30]).map(|(k, _)| k[0]).collect();
        assert_eq!(ks, vec![12, 15, 18, 21, 24, 27, 30]);
        assert!(m.range_iter(&[98], &[200]).next().unwrap().0 == [99]);
        assert!(m.range_iter(&[100], &[200]).next().is_none());
    }
}

//! The filter integration point (§6.1): every SST file gets a range filter
//! built from its keys plus the current sample-query queue. Factories for
//! Proteus, SuRF and Rosetta live with the benchmarks; this crate only
//! defines the hook and trivial built-ins.

use proteus_core::{KeySet, RangeFilter, SampleQueries};

// The pass-through baseline now lives in `proteus-core` (so the filter
// codec can decode unknown kinds into it); re-exported here for all the
// existing `proteus_lsm::NoFilter` users.
pub use proteus_core::NoFilter;

/// Builds a range filter for one SST file.
///
/// The store calls this at every flush, compaction, and adaptive re-train
/// with the file's keys and the current sample of empty queries — which is
/// exactly the input the paper's self-designing filters need.
///
/// # Example
///
/// A custom factory plugging a fixed-design filter into the store:
///
/// ```
/// use proteus_core::{KeySet, OnePbf, OnePbfOptions, RangeFilter, SampleQueries};
/// use proteus_lsm::FilterFactory;
///
/// struct OnePbfFactory;
///
/// impl FilterFactory for OnePbfFactory {
///     fn build(&self, keys: &KeySet, samples: &SampleQueries, m_bits: u64)
///         -> Box<dyn RangeFilter>
///     {
///         Box::new(OnePbf::train(keys, samples, m_bits, &OnePbfOptions::default()))
///     }
///     fn name(&self) -> String {
///         "1pbf".into()
///     }
/// }
///
/// let keys = KeySet::from_u64(&[100, 200, 300]);
/// let mut samples = SampleQueries::from_u64(&[(400, 450)]);
/// samples.retain_empty(&keys);
/// let filter = OnePbfFactory.build(&keys, &samples, 3 * 1024);
/// assert!(filter.may_contain(&proteus_core::key::u64_key(200)));
/// ```
pub trait FilterFactory: Send + Sync {
    /// `keys` — the file's key set; `samples` — recent empty queries,
    /// already certified empty w.r.t. `keys`; `m_bits` — the memory budget
    /// for this filter.
    fn build(&self, keys: &KeySet, samples: &SampleQueries, m_bits: u64) -> Box<dyn RangeFilter>;

    /// Display name for experiment output.
    fn name(&self) -> String;
}

/// Factory for [`NoFilter`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFilterFactory;

impl FilterFactory for NoFilterFactory {
    fn build(
        &self,
        _keys: &KeySet,
        _samples: &SampleQueries,
        _m_bits: u64,
    ) -> Box<dyn RangeFilter> {
        Box::new(NoFilter)
    }
    fn name(&self) -> String {
        "none".to_string()
    }
}

/// Factory producing self-designing Proteus filters (the default
/// integration the paper evaluates).
#[derive(Debug, Clone, Default)]
pub struct ProteusFactory {
    /// Options forwarded to every `Proteus::train` call.
    pub options: proteus_core::ProteusOptions,
}

impl FilterFactory for ProteusFactory {
    fn build(&self, keys: &KeySet, samples: &SampleQueries, m_bits: u64) -> Box<dyn RangeFilter> {
        Box::new(proteus_core::Proteus::train(keys, samples, m_bits, &self.options))
    }
    fn name(&self) -> String {
        "proteus".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_filter_always_positive() {
        let f = NoFilter;
        assert!(f.may_contain_range(&[0; 8], &[1; 8]));
        assert_eq!(f.size_bits(), 0);
    }

    #[test]
    fn proteus_factory_builds_working_filters() {
        let keys = KeySet::from_u64(&[100, 200, 300]);
        let mut samples = SampleQueries::from_u64(&[(400, 500)]);
        samples.retain_empty(&keys);
        let f = ProteusFactory::default().build(&keys, &samples, 1024);
        assert!(f.may_contain(&proteus_core::key::u64_key(200)));
        assert!(f.size_bits() > 0);
    }
}

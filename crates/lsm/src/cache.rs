//! LRU block cache, the analogue of RocksDB's block cache (§6.2 warms it
//! before measuring; §6.3 discusses thrashing when a filter forces too many
//! distinct blocks through it).
//!
//! [`BlockCache`] is the single-threaded LRU core; the concurrent `Db`
//! wraps it in a [`ShardedBlockCache`] — 16 independently locked shards
//! selected by block-id hash, so parallel readers rarely contend on the
//! same mutex (the RocksDB `LRUCache` sharding scheme).

use crate::block::Block;
use proteus_core::sync::{rank, Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::{Arc, PoisonError};

/// Cache key: (SST id, block index).
pub type BlockId = (u64, u32);

/// A byte-budgeted LRU cache of decoded blocks.
#[derive(Debug)]
pub struct BlockCache {
    capacity_bytes: usize,
    used_bytes: usize,
    /// Map to (block, recency stamp).
    map: HashMap<BlockId, (Arc<Block>, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
    bypasses: u64,
}

impl BlockCache {
    /// Create a cache bounded to `capacity_bytes` of block payload.
    pub fn new(capacity_bytes: usize) -> Self {
        BlockCache {
            capacity_bytes,
            used_bytes: 0,
            map: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            bypasses: 0,
        }
    }

    /// Look up a block, refreshing its recency on a hit.
    pub fn get(&mut self, id: BlockId) -> Option<Arc<Block>> {
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(&id) {
            Some((block, stamp)) => {
                *stamp = clock;
                self.hits += 1;
                Some(Arc::clone(block))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a block, evicting least-recently-used entries to fit.
    ///
    /// A block larger than the whole capacity is *bypassed* (served
    /// uncached), never inserted: caching it would evict everything else
    /// and still sit over budget forever, turning every later insert
    /// into an eviction storm against an unevictable resident.
    pub fn insert(&mut self, id: BlockId, block: Arc<Block>) {
        let bytes = block.mem_bytes();
        if bytes > self.capacity_bytes {
            self.bypasses += 1;
            return;
        }
        self.clock += 1;
        if let Some((old, _)) = self.map.insert(id, (block, self.clock)) {
            self.used_bytes -= old.mem_bytes();
        }
        self.used_bytes += bytes;
        // Evict least-recently-used entries until within budget. The loop
        // terminates because the new block fits the budget on its own and
        // carries the freshest stamp (so it is never the LRU victim while
        // anything else remains). Linear scan per eviction is fine at the
        // block counts we cache.
        while self.used_bytes > self.capacity_bytes {
            let victim = self.map.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(&id, _)| id);
            let Some((old, _)) = victim.and_then(|v| self.map.remove(&v)) else {
                // Unreachable: used_bytes > 0 implies a resident entry. Kept
                // as a defensive exit so an accounting bug degrades to an
                // over-budget cache instead of a panic in the read path.
                debug_assert!(self.map.is_empty());
                break;
            };
            self.used_bytes -= old.mem_bytes();
        }
    }

    /// Drop a single entry if present.
    pub fn remove(&mut self, id: BlockId) {
        if let Some((old, _)) = self.map.remove(&id) {
            self.used_bytes -= old.mem_bytes();
        }
    }

    /// Drop every cached block belonging to `sst_id` (file deleted by
    /// compaction).
    pub fn purge_sst(&mut self, sst_id: u64) {
        let victims: Vec<BlockId> =
            self.map.keys().filter(|(id, _)| *id == sst_id).copied().collect();
        for v in victims {
            if let Some((old, _)) = self.map.remove(&v) {
                self.used_bytes -= old.mem_bytes();
            }
        }
    }

    /// Lookups that found their block.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Inserts refused because the block exceeded the whole capacity
    /// (served uncached instead of pinning the budget).
    pub fn bypasses(&self) -> u64 {
        self.bypasses
    }

    /// Bytes of cached block payload currently held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Number of independently locked shards (power of two).
const CACHE_SHARDS: usize = 16;

/// A concurrent block cache: `CACHE_SHARDS` byte-budgeted LRU shards, each
/// behind its own mutex. A block lives in exactly one shard (chosen by a
/// hash of its id), so two readers touching different blocks almost always
/// take different locks; the capacity is split evenly across shards.
#[derive(Debug)]
pub struct ShardedBlockCache {
    shards: Vec<Mutex<BlockCache>>,
}

impl ShardedBlockCache {
    /// Create a sharded cache; `capacity_bytes` is split across the
    /// shards with the division remainder distributed one byte at a time
    /// (plain `capacity / 16` would silently zero every shard for tiny
    /// capacities and always drop up to 15 bytes of budget).
    pub fn new(capacity_bytes: usize) -> Self {
        let per_shard = capacity_bytes / CACHE_SHARDS;
        let remainder = capacity_bytes % CACHE_SHARDS;
        ShardedBlockCache {
            shards: (0..CACHE_SHARDS)
                .map(|i| {
                    Mutex::new(
                        rank::CACHE_SHARD,
                        BlockCache::new(per_shard + usize::from(i < remainder)),
                    )
                })
                .collect(),
        }
    }

    fn shard(&self, id: BlockId) -> MutexGuard<'_, BlockCache> {
        // Fibonacci-hash the (sst, block) pair so consecutive blocks of one
        // file spread across shards.
        let h = (id.0 ^ ((id.1 as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::locked(&self.shards[(h >> 60) as usize & (CACHE_SHARDS - 1)])
    }

    /// Take one shard's lock, recovering from poison: every cache op
    /// restores the LRU invariants before returning, and the cache is an
    /// optimization layer — a panicked reader must not take block caching
    /// (or compaction's purges) down with it.
    fn locked(shard: &Mutex<BlockCache>) -> MutexGuard<'_, BlockCache> {
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a block in its shard, refreshing recency on a hit.
    pub fn get(&self, id: BlockId) -> Option<Arc<Block>> {
        self.shard(id).get(id)
    }

    /// Insert a block into its shard, evicting LRU entries to fit.
    pub fn insert(&self, id: BlockId, block: Arc<Block>) {
        self.shard(id).insert(id, block);
    }

    /// Drop a single entry if present (used to undo an insert that raced
    /// with a purge).
    pub fn remove(&self, id: BlockId) {
        self.shard(id).remove(id);
    }

    /// Drop every cached block belonging to `sst_id` (file deleted by
    /// compaction). Touches all shards.
    pub fn purge_sst(&self, sst_id: u64) {
        for shard in &self.shards {
            Self::locked(shard).purge_sst(sst_id);
        }
    }

    /// Hits across all shards.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| Self::locked(s).hits()).sum()
    }

    /// Misses across all shards.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| Self::locked(s).misses()).sum()
    }

    /// Oversized-insert bypasses across all shards.
    pub fn bypasses(&self) -> u64 {
        self.shards.iter().map(|s| Self::locked(s).bypasses()).sum()
    }

    /// Bytes of cached payload across all shards.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| Self::locked(s).used_bytes()).sum()
    }

    /// Cached blocks across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::locked(s).len()).sum()
    }

    /// True when nothing is cached in any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;

    fn make_block(tag: u64, entries: usize) -> Arc<Block> {
        let mut b = BlockBuilder::new(8);
        for i in 0..entries {
            b.add(&((tag << 32) + i as u64).to_be_bytes(), Some(&[1u8; 64]));
        }
        let (disk, _, _) = b.finish();
        Arc::new(Block::decode(&disk, 8, true).unwrap())
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = BlockCache::new(1 << 20);
        assert!(c.get((1, 0)).is_none());
        c.insert((1, 0), make_block(1, 10));
        assert!(c.get((1, 0)).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let block = make_block(0, 10);
        let one = block.mem_bytes();
        let mut c = BlockCache::new(one * 3 + one / 2);
        for i in 0..10u32 {
            c.insert((7, i), make_block(7, 10));
        }
        assert!(c.used_bytes() <= one * 4, "{} > {}", c.used_bytes(), one * 4);
        assert!(c.len() <= 4);
        // The most recent block survives.
        assert!(c.get((7, 9)).is_some());
        assert!(c.get((7, 0)).is_none());
    }

    #[test]
    fn recency_updates_on_get() {
        let block = make_block(0, 10);
        let one = block.mem_bytes();
        let mut c = BlockCache::new(one * 2 + one / 2);
        c.insert((1, 0), make_block(1, 10));
        c.insert((1, 1), make_block(1, 10));
        // Touch block 0 so block 1 becomes the LRU victim.
        assert!(c.get((1, 0)).is_some());
        c.insert((1, 2), make_block(1, 10));
        assert!(c.get((1, 0)).is_some());
        assert!(c.get((1, 1)).is_none());
    }

    #[test]
    fn purge_removes_all_of_an_sst() {
        let mut c = BlockCache::new(1 << 20);
        c.insert((1, 0), make_block(1, 5));
        c.insert((1, 1), make_block(1, 5));
        c.insert((2, 0), make_block(2, 5));
        c.purge_sst(1);
        assert!(c.get((1, 0)).is_none());
        assert!(c.get((1, 1)).is_none());
        assert!(c.get((2, 0)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = BlockCache::new(0);
        c.insert((1, 0), make_block(1, 5));
        assert!(c.get((1, 0)).is_none());
    }

    #[test]
    fn oversized_block_is_bypassed_not_pinned() {
        let one = make_block(0, 10).mem_bytes();
        let capacity = one * 4;
        let mut c = BlockCache::new(capacity);
        // A block bigger than the whole budget must be refused outright —
        // before the fix it was cached, could never be evicted, and kept
        // `used_bytes` over budget forever.
        let huge = make_block(99, 1000);
        assert!(huge.mem_bytes() > capacity);
        c.insert((9, 0), huge);
        assert_eq!(c.len(), 0, "oversized block must not be cached");
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.bypasses(), 1);
        assert!(c.get((9, 0)).is_none());
        // Many small blocks behave normally around a repeated bypass:
        // nothing thrashes and the budget holds.
        for i in 0..4u32 {
            c.insert((1, i), make_block(1, 10));
        }
        c.insert((9, 1), make_block(99, 1000));
        assert_eq!(c.bypasses(), 2);
        for i in 0..4u32 {
            assert!(c.get((1, i)).is_some(), "small block {i} lost to a bypassed insert");
        }
        assert!(c.used_bytes() <= capacity, "{} > {capacity}", c.used_bytes());
    }

    proptest::proptest! {
        /// The LRU budget invariant: `used_bytes <= capacity` after
        /// *every* operation of any insert/get/remove/purge interleaving,
        /// oversized inserts included (block sizes span well past any
        /// sampled capacity). The script is derived from the sampled seed
        /// with a local xorshift, the same idiom as the oracle tests.
        #[test]
        fn lru_budget_invariant_under_arbitrary_interleavings(
            seed in 1u64..5000,
            cap_units in 0usize..6,
        ) {
            let one = make_block(0, 10).mem_bytes();
            // Deliberately misaligned capacity (never a block multiple).
            let capacity = cap_units * one + cap_units * 7;
            let mut c = BlockCache::new(capacity);
            let mut x = seed;
            let mut rng = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for step in 0..120 {
                let id = (rng() % 4, (rng() % 8) as u32);
                match rng() % 5 {
                    // Entry counts 1..40: mem_bytes from far below to far
                    // above every sampled capacity.
                    0 | 1 => c.insert(id, make_block(id.0, 1 + rng() as usize % 40)),
                    2 => {
                        c.get(id);
                    }
                    3 => c.remove(id),
                    _ => c.purge_sst(id.0),
                }
                proptest::prop_assert!(
                    c.used_bytes() <= capacity,
                    "budget violated at step {}: {} > {}",
                    step,
                    c.used_bytes(),
                    capacity,
                );
            }
        }
    }

    #[test]
    fn sharded_cache_basic_ops() {
        let c = ShardedBlockCache::new(4 << 20);
        for i in 0..64u32 {
            c.insert((i as u64, i), make_block(i as u64, 5));
        }
        for i in 0..64u32 {
            assert!(c.get((i as u64, i)).is_some(), "block {i}");
        }
        assert!(c.get((99, 0)).is_none());
        assert_eq!(c.hits(), 64);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 64);
        c.purge_sst(3);
        assert!(c.get((3, 3)).is_none());
        assert!(c.get((4, 4)).is_some());
    }

    #[test]
    fn sharded_cache_concurrent_mixed_load() {
        let c = std::sync::Arc::new(ShardedBlockCache::new(1 << 20));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..500u32 {
                        let id = (t % 4, i % 64);
                        if c.get(id).is_none() {
                            c.insert(id, make_block(id.0, 5));
                        }
                        if i.is_multiple_of(97) {
                            c.purge_sst(t % 4);
                        }
                    }
                });
            }
        });
        // Budget respected after the storm.
        assert!(c.used_bytes() <= (1 << 20) + (1 << 16));
    }

    #[test]
    fn sharded_capacity_distributes_the_division_remainder() {
        let one = make_block(0, 3).mem_bytes();
        // One shard's worth of budget plus a remainder smaller than the
        // shard count: before the fix `capacity / 16` discarded the
        // remainder, and anything under 16 bytes zeroed every shard.
        let c = ShardedBlockCache::new(CACHE_SHARDS * one + 5);
        let totals: usize = c.shards.iter().map(|s| s.lock().unwrap().capacity_bytes).sum();
        assert_eq!(totals, CACHE_SHARDS * one + 5, "no capacity may be dropped");
        // Every shard can hold the one-block working set it is offered.
        for i in 0..64u32 {
            c.insert((7, i), make_block(7, 3));
        }
        assert!(!c.is_empty(), "tiny remainders must not disable caching");
    }

    /// The undo path [`ShardedBlockCache::remove`] exists for: a reader's
    /// insert racing a compaction retire+purge (see `DbInner::
    /// cached_block`). The reader re-checks the retired flag after its
    /// insert and removes; whichever side loses the race, no block of the
    /// retired file may survive.
    #[test]
    fn insert_vs_purge_race_undoes_the_losing_insert() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let c = std::sync::Arc::new(ShardedBlockCache::new(1 << 20));
        let retired = std::sync::Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                let retired = std::sync::Arc::clone(&retired);
                s.spawn(move || {
                    for i in 0..4000u32 {
                        let id = (1u64, i % 32);
                        // The cached_block protocol: insert only while
                        // not retired, then double-check and undo.
                        if !retired.load(Ordering::SeqCst) {
                            c.insert(id, make_block(1, 5));
                            if retired.load(Ordering::SeqCst) {
                                c.remove(id);
                            }
                        }
                        // Unrelated files keep churning throughout.
                        c.insert((2, i % 16), make_block(2, 5));
                    }
                });
            }
            let c = std::sync::Arc::clone(&c);
            let retired = std::sync::Arc::clone(&retired);
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(3));
                retired.store(true, Ordering::SeqCst);
                c.purge_sst(1);
            });
        });
        for i in 0..32u32 {
            assert!(c.get((1, i)).is_none(), "zombie block {i} survived retire + purge");
        }
        assert!(c.get((2, 0)).is_some(), "unrelated file must keep its cache entries");
    }
}

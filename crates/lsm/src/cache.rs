//! LRU block cache, the analogue of RocksDB's block cache (§6.2 warms it
//! before measuring; §6.3 discusses thrashing when a filter forces too many
//! distinct blocks through it).
//!
//! [`BlockCache`] is the single-threaded LRU core; the concurrent `Db`
//! wraps it in a [`ShardedBlockCache`] — 16 independently locked shards
//! selected by block-id hash, so parallel readers rarely contend on the
//! same mutex (the RocksDB `LRUCache` sharding scheme).

use crate::block::Block;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: (SST id, block index).
pub type BlockId = (u64, u32);

/// A byte-budgeted LRU cache of decoded blocks.
#[derive(Debug)]
pub struct BlockCache {
    capacity_bytes: usize,
    used_bytes: usize,
    /// Map to (block, recency stamp).
    map: HashMap<BlockId, (Arc<Block>, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    /// Create a cache bounded to `capacity_bytes` of block payload.
    pub fn new(capacity_bytes: usize) -> Self {
        BlockCache {
            capacity_bytes,
            used_bytes: 0,
            map: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a block, refreshing its recency on a hit.
    pub fn get(&mut self, id: BlockId) -> Option<Arc<Block>> {
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(&id) {
            Some((block, stamp)) => {
                *stamp = clock;
                self.hits += 1;
                Some(Arc::clone(block))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a block, evicting least-recently-used entries to fit.
    pub fn insert(&mut self, id: BlockId, block: Arc<Block>) {
        if self.capacity_bytes == 0 {
            return;
        }
        let bytes = block.mem_bytes();
        self.clock += 1;
        if let Some((old, _)) = self.map.insert(id, (block, self.clock)) {
            self.used_bytes -= old.mem_bytes();
        }
        self.used_bytes += bytes;
        // Evict least-recently-used entries until within budget. Linear
        // scan per eviction is fine at the block counts we cache.
        while self.used_bytes > self.capacity_bytes && self.map.len() > 1 {
            let (&victim, _) =
                self.map.iter().min_by_key(|(_, (_, stamp))| *stamp).expect("non-empty cache");
            if victim == id && self.map.len() == 1 {
                break;
            }
            let (old, _) = self.map.remove(&victim).unwrap();
            self.used_bytes -= old.mem_bytes();
        }
    }

    /// Drop a single entry if present.
    pub fn remove(&mut self, id: BlockId) {
        if let Some((old, _)) = self.map.remove(&id) {
            self.used_bytes -= old.mem_bytes();
        }
    }

    /// Drop every cached block belonging to `sst_id` (file deleted by
    /// compaction).
    pub fn purge_sst(&mut self, sst_id: u64) {
        let victims: Vec<BlockId> =
            self.map.keys().filter(|(id, _)| *id == sst_id).copied().collect();
        for v in victims {
            if let Some((old, _)) = self.map.remove(&v) {
                self.used_bytes -= old.mem_bytes();
            }
        }
    }

    /// Lookups that found their block.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Bytes of cached block payload currently held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Number of independently locked shards (power of two).
const CACHE_SHARDS: usize = 16;

/// A concurrent block cache: `CACHE_SHARDS` byte-budgeted LRU shards, each
/// behind its own mutex. A block lives in exactly one shard (chosen by a
/// hash of its id), so two readers touching different blocks almost always
/// take different locks; the capacity is split evenly across shards.
#[derive(Debug)]
pub struct ShardedBlockCache {
    shards: Vec<Mutex<BlockCache>>,
}

impl ShardedBlockCache {
    /// Create a sharded cache; `capacity_bytes` is split evenly across the
    /// shards.
    pub fn new(capacity_bytes: usize) -> Self {
        let per_shard = capacity_bytes / CACHE_SHARDS;
        ShardedBlockCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(BlockCache::new(per_shard))).collect(),
        }
    }

    fn shard(&self, id: BlockId) -> &Mutex<BlockCache> {
        // Fibonacci-hash the (sst, block) pair so consecutive blocks of one
        // file spread across shards.
        let h = (id.0 ^ ((id.1 as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 60) as usize & (CACHE_SHARDS - 1)]
    }

    /// Look up a block in its shard, refreshing recency on a hit.
    pub fn get(&self, id: BlockId) -> Option<Arc<Block>> {
        self.shard(id).lock().unwrap().get(id)
    }

    /// Insert a block into its shard, evicting LRU entries to fit.
    pub fn insert(&self, id: BlockId, block: Arc<Block>) {
        self.shard(id).lock().unwrap().insert(id, block);
    }

    /// Drop a single entry if present (used to undo an insert that raced
    /// with a purge).
    pub fn remove(&self, id: BlockId) {
        self.shard(id).lock().unwrap().remove(id);
    }

    /// Drop every cached block belonging to `sst_id` (file deleted by
    /// compaction). Touches all shards.
    pub fn purge_sst(&self, sst_id: u64) {
        for shard in &self.shards {
            shard.lock().unwrap().purge_sst(sst_id);
        }
    }

    /// Hits across all shards.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().unwrap().hits()).sum()
    }

    /// Misses across all shards.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().unwrap().misses()).sum()
    }

    /// Bytes of cached payload across all shards.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().used_bytes()).sum()
    }

    /// Cached blocks across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when nothing is cached in any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;

    fn make_block(tag: u64, entries: usize) -> Arc<Block> {
        let mut b = BlockBuilder::new(8);
        for i in 0..entries {
            b.add(&((tag << 32) + i as u64).to_be_bytes(), Some(&[1u8; 64]));
        }
        let (disk, _, _) = b.finish();
        Arc::new(Block::decode(&disk, 8, true).unwrap())
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = BlockCache::new(1 << 20);
        assert!(c.get((1, 0)).is_none());
        c.insert((1, 0), make_block(1, 10));
        assert!(c.get((1, 0)).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let block = make_block(0, 10);
        let one = block.mem_bytes();
        let mut c = BlockCache::new(one * 3 + one / 2);
        for i in 0..10u32 {
            c.insert((7, i), make_block(7, 10));
        }
        assert!(c.used_bytes() <= one * 4, "{} > {}", c.used_bytes(), one * 4);
        assert!(c.len() <= 4);
        // The most recent block survives.
        assert!(c.get((7, 9)).is_some());
        assert!(c.get((7, 0)).is_none());
    }

    #[test]
    fn recency_updates_on_get() {
        let block = make_block(0, 10);
        let one = block.mem_bytes();
        let mut c = BlockCache::new(one * 2 + one / 2);
        c.insert((1, 0), make_block(1, 10));
        c.insert((1, 1), make_block(1, 10));
        // Touch block 0 so block 1 becomes the LRU victim.
        assert!(c.get((1, 0)).is_some());
        c.insert((1, 2), make_block(1, 10));
        assert!(c.get((1, 0)).is_some());
        assert!(c.get((1, 1)).is_none());
    }

    #[test]
    fn purge_removes_all_of_an_sst() {
        let mut c = BlockCache::new(1 << 20);
        c.insert((1, 0), make_block(1, 5));
        c.insert((1, 1), make_block(1, 5));
        c.insert((2, 0), make_block(2, 5));
        c.purge_sst(1);
        assert!(c.get((1, 0)).is_none());
        assert!(c.get((1, 1)).is_none());
        assert!(c.get((2, 0)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = BlockCache::new(0);
        c.insert((1, 0), make_block(1, 5));
        assert!(c.get((1, 0)).is_none());
    }

    #[test]
    fn sharded_cache_basic_ops() {
        let c = ShardedBlockCache::new(4 << 20);
        for i in 0..64u32 {
            c.insert((i as u64, i), make_block(i as u64, 5));
        }
        for i in 0..64u32 {
            assert!(c.get((i as u64, i)).is_some(), "block {i}");
        }
        assert!(c.get((99, 0)).is_none());
        assert_eq!(c.hits(), 64);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 64);
        c.purge_sst(3);
        assert!(c.get((3, 3)).is_none());
        assert!(c.get((4, 4)).is_some());
    }

    #[test]
    fn sharded_cache_concurrent_mixed_load() {
        let c = std::sync::Arc::new(ShardedBlockCache::new(1 << 20));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..500u32 {
                        let id = (t % 4, i % 64);
                        if c.get(id).is_none() {
                            c.insert(id, make_block(id.0, 5));
                        }
                        if i % 97 == 0 {
                            c.purge_sst(t % 4);
                        }
                    }
                });
            }
        });
        // Budget respected after the storm.
        assert!(c.used_bytes() <= (1 << 20) + (1 << 16));
    }
}

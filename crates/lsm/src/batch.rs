//! Atomic multi-operation writes.
//!
//! A [`WriteBatch`] accumulates puts and deletes and applies them through
//! [`crate::Db::write`] under a single MemTable lock acquisition: a
//! concurrent reader sees either none of the batch or all of it, and no
//! MemTable rotation can split it across two tables. Operations within a
//! batch apply in insertion order, so a later op on the same key wins —
//! exactly as if the calls had been made individually.
//!
//! A batch is also atomic *across a crash*: the whole batch is logged as
//! one CRC-checksummed WAL commit record (see [`crate::wal`]), so replay
//! either applies every operation or — if the crash tore the record
//! mid-write — none of them. No crash point can surface half a batch.

use proteus_core::key::u64_key;

/// One buffered write operation: `Some` = put, `None` = delete.
type BatchOp = (Vec<u8>, Option<Vec<u8>>);

/// A buffer of put/delete operations applied atomically by
/// [`crate::Db::write`].
///
/// # Example
///
/// ```
/// use proteus_lsm::WriteBatch;
///
/// let mut batch = WriteBatch::new();
/// batch.put_u64(1, b"one");
/// batch.put_u64(2, b"two");
/// batch.delete_u64(3);
/// assert_eq!(batch.len(), 3);
/// ```
#[derive(Debug, Default, Clone)]
pub struct WriteBatch {
    ops: Vec<BatchOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// An empty batch with room for `n` operations.
    pub fn with_capacity(n: usize) -> WriteBatch {
        WriteBatch { ops: Vec::with_capacity(n) }
    }

    /// Buffer an insert/overwrite of `key`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> &mut Self {
        self.ops.push((key.to_vec(), Some(value.to_vec())));
        self
    }

    /// Buffer a delete of `key`.
    pub fn delete(&mut self, key: &[u8]) -> &mut Self {
        self.ops.push((key.to_vec(), None));
        self
    }

    /// [`WriteBatch::put`] with a `u64` key.
    pub fn put_u64(&mut self, key: u64, value: &[u8]) -> &mut Self {
        self.put(&u64_key(key), value)
    }

    /// [`WriteBatch::delete`] with a `u64` key.
    pub fn delete_u64(&mut self, key: u64) -> &mut Self {
        self.delete(&u64_key(key))
    }

    /// Buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operation is buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drop every buffered operation, keeping the allocation.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Iterate the buffered operations (`None` value = delete), in the
    /// order [`crate::Db::write`] will apply them.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Option<&[u8]>)> {
        self.ops.iter().map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Consume the batch into its operations (for `Db::write`).
    pub(crate) fn into_ops(self) -> Vec<BatchOp> {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_preserves_order_and_kinds() {
        let mut b = WriteBatch::new();
        b.put(b"aaaaaaaa", b"1").delete(b"bbbbbbbb").put(b"aaaaaaaa", b"2");
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let ops: Vec<(&[u8], Option<&[u8]>)> = b.iter().collect();
        assert_eq!(
            ops,
            vec![
                (&b"aaaaaaaa"[..], Some(&b"1"[..])),
                (&b"bbbbbbbb"[..], None),
                (&b"aaaaaaaa"[..], Some(&b"2"[..])),
            ]
        );
        b.clear();
        assert!(b.is_empty());
    }
}

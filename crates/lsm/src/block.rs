//! Data block format.
//!
//! A block holds a run of entries with fixed-width keys. Two entry
//! layouts exist, selected by the containing SST file's format version
//! (the block itself carries no version byte):
//!
//! ```text
//! v1 (PRSSTv1, read-only): [u32 n] ([key][u32 value_len][value])*
//! v2 (PRSSTv2):            [u32 n] ([key][u8 flags][u32 value_len][value])*
//! ```
//!
//! The v2 `flags` byte currently defines bit 0: `1` marks the entry as a
//! *tombstone* (a persisted delete; it must carry a zero-length value).
//! All other bits are reserved and must be zero — a nonzero reserved bit
//! or a tombstone with a value is reported as corruption, never decoded
//! loosely.
//!
//! On disk a block is prefixed by `[u8 codec][u32 raw_len][u32 stored_len]`
//! where codec 0 = raw, 1 = zero-RLE ([`crate::compress`]). Decoding
//! arbitrary bytes returns [`crate::Error::Corruption`]; it never panics.

use crate::compress;
use crate::error::{Error, Result};

/// v2 entry flag bit marking a tombstone.
pub const FLAG_TOMBSTONE: u8 = 1;

/// Builder for one data block (always the v2 entry layout; v1 is only
/// ever read, never written).
#[derive(Debug)]
pub struct BlockBuilder {
    width: usize,
    buf: Vec<u8>,
    n: u32,
    first_key: Option<Vec<u8>>,
    last_key: Option<Vec<u8>>,
}

impl BlockBuilder {
    /// Start an empty block for `width`-byte keys.
    pub fn new(width: usize) -> Self {
        BlockBuilder { width, buf: vec![0u8; 4], n: 0, first_key: None, last_key: None }
    }

    /// Append an entry (keys must arrive in order; the builder does not
    /// re-sort). `Some` is a live value, `None` a tombstone.
    pub fn add(&mut self, key: &[u8], value: Option<&[u8]>) {
        debug_assert_eq!(key.len(), self.width);
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        self.last_key = Some(key.to_vec());
        self.buf.extend_from_slice(key);
        match value {
            Some(v) => {
                self.buf.push(0);
                self.buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
                self.buf.extend_from_slice(v);
            }
            None => {
                self.buf.push(FLAG_TOMBSTONE);
                self.buf.extend_from_slice(&0u32.to_le_bytes());
            }
        }
        self.n += 1;
    }

    /// True before the first entry is added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current uncompressed payload size.
    pub fn raw_len(&self) -> usize {
        self.buf.len()
    }

    /// Finish the block: returns `(disk bytes, first_key, last_key)`.
    pub fn finish(mut self) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        assert!(self.n > 0, "empty block");
        self.buf[..4].copy_from_slice(&self.n.to_le_bytes());
        let raw_len = self.buf.len() as u32;
        let (codec, payload) = match compress::compress(&self.buf) {
            Some(c) => (1u8, c),
            None => (0u8, self.buf),
        };
        let mut disk = Vec::with_capacity(payload.len() + 9);
        disk.push(codec);
        disk.extend_from_slice(&raw_len.to_le_bytes());
        disk.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        disk.extend_from_slice(&payload);
        (disk, self.first_key.unwrap(), self.last_key.unwrap())
    }
}

/// A decoded, searchable block.
#[derive(Debug, Clone)]
pub struct Block {
    width: usize,
    /// `true` for the v2 entry layout (per-entry flag byte).
    has_flags: bool,
    /// Decoded payload.
    data: Vec<u8>,
    /// Byte offset of each entry.
    offsets: Vec<u32>,
}

fn corrupt(what: &str) -> Error {
    Error::corruption(format!("data block: {what}"))
}

impl Block {
    /// Decode from disk bytes (including the codec header). `has_flags`
    /// selects the entry layout: `true` for SST format v2, `false` for
    /// the flag-less v1 layout. Malformed bytes — truncation, an unknown
    /// codec, a reserved flag bit, a tombstone carrying a value, or any
    /// length that escapes the buffer — yield [`Error::Corruption`].
    pub fn decode(disk: &[u8], width: usize, has_flags: bool) -> Result<Block> {
        if disk.len() < 9 {
            return Err(corrupt("shorter than its header"));
        }
        let codec = disk[0];
        let raw_len = u32::from_le_bytes(disk[1..5].try_into().unwrap()) as usize;
        let stored_len = u32::from_le_bytes(disk[5..9].try_into().unwrap()) as usize;
        if disk.len() < 9 + stored_len {
            return Err(corrupt("stored length overruns the block"));
        }
        let payload = &disk[9..9 + stored_len];
        let data = match codec {
            0 => {
                if stored_len != raw_len {
                    return Err(corrupt("raw block with stored_len != raw_len"));
                }
                payload.to_vec()
            }
            1 => compress::decompress(payload, raw_len)
                .ok_or_else(|| corrupt("corrupt compressed payload"))?,
            c => return Err(corrupt(&format!("unknown codec {c}"))),
        };
        if data.len() < 4 {
            return Err(corrupt("missing entry count"));
        }
        let n = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
        let head = if has_flags { width + 5 } else { width + 4 };
        let mut offsets = Vec::with_capacity(n);
        let mut pos = 4usize;
        for _ in 0..n {
            if pos + head > data.len() {
                return Err(corrupt("entry overruns the block"));
            }
            offsets.push(pos as u32);
            let vlen_off = if has_flags {
                let flags = data[pos + width];
                if flags & !FLAG_TOMBSTONE != 0 {
                    return Err(corrupt(&format!("reserved entry flag bits set ({flags:#04x})")));
                }
                pos + width + 1
            } else {
                pos + width
            };
            let vlen =
                u32::from_le_bytes(data[vlen_off..vlen_off + 4].try_into().unwrap()) as usize;
            if has_flags && data[pos + width] & FLAG_TOMBSTONE != 0 && vlen != 0 {
                return Err(corrupt("tombstone entry carries a value"));
            }
            pos = vlen_off + 4 + vlen;
            if pos > data.len() {
                return Err(corrupt("value overruns the block"));
            }
        }
        if pos != data.len() {
            return Err(corrupt("trailing bytes after the last entry"));
        }
        Ok(Block { width, has_flags, data, offsets })
    }

    /// On-disk size of the block starting at `disk` (header + payload).
    /// A slice shorter than the 9-byte header — e.g. an index entry
    /// pointing into a truncated tail — is [`Error::Corruption`], never a
    /// panic (the repo-wide malformed-bytes invariant).
    pub fn disk_len(disk: &[u8]) -> Result<usize> {
        let stored: [u8; 4] = disk
            .get(5..9)
            .map(|s| s.try_into().unwrap())
            .ok_or_else(|| corrupt("shorter than its header"))?;
        Ok(9 + u32::from_le_bytes(stored) as usize)
    }

    /// Number of entries in the block.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True for a block with no entries (never written by the builder).
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The `i`-th key (entries are sorted ascending).
    pub fn key(&self, i: usize) -> &[u8] {
        let off = self.offsets[i] as usize;
        &self.data[off..off + self.width]
    }

    /// Is the `i`-th entry a tombstone? Always `false` for v1 blocks.
    pub fn is_tombstone(&self, i: usize) -> bool {
        if !self.has_flags {
            return false;
        }
        let off = self.offsets[i] as usize;
        self.data[off + self.width] & FLAG_TOMBSTONE != 0
    }

    /// The `i`-th value (empty for a tombstone; use [`Block::entry`] to
    /// tell an empty value from a delete).
    pub fn value(&self, i: usize) -> &[u8] {
        let off = self.offsets[i] as usize;
        let vlen_off = if self.has_flags { off + self.width + 1 } else { off + self.width };
        let vlen =
            u32::from_le_bytes(self.data[vlen_off..vlen_off + 4].try_into().unwrap()) as usize;
        &self.data[vlen_off + 4..vlen_off + 4 + vlen]
    }

    /// The `i`-th entry as `(key, Some(value) | None)` where `None` marks
    /// a tombstone.
    pub fn entry(&self, i: usize) -> (&[u8], Option<&[u8]>) {
        let v = if self.is_tombstone(i) { None } else { Some(self.value(i)) };
        (self.key(i), v)
    }

    /// Index of the first entry with key ≥ `probe`.
    pub fn lower_bound(&self, probe: &[u8]) -> usize {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid) < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Approximate decoded memory footprint (for the block cache budget).
    pub fn mem_bytes(&self) -> usize {
        self.data.len() + self.offsets.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> (Vec<u8>, Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let mut b = BlockBuilder::new(8);
        let keys: Vec<Vec<u8>> = (0..50u64).map(|i| (i * 7).to_be_bytes().to_vec()).collect();
        let vals: Vec<Vec<u8>> = (0..50u64)
            .map(|i| {
                let mut v = vec![0u8; 64];
                v[32..40].copy_from_slice(&i.to_le_bytes());
                v
            })
            .collect();
        for (k, v) in keys.iter().zip(&vals) {
            b.add(k, Some(v));
        }
        let (disk, first, last) = b.finish();
        assert_eq!(first, keys[0]);
        assert_eq!(last, keys[49]);
        (disk, keys, vals)
    }

    /// Encode a v1-layout block (no flag byte) for the compat tests.
    fn v1_block(entries: &[(Vec<u8>, Vec<u8>)]) -> Vec<u8> {
        let mut raw = (entries.len() as u32).to_le_bytes().to_vec();
        for (k, v) in entries {
            raw.extend_from_slice(k);
            raw.extend_from_slice(&(v.len() as u32).to_le_bytes());
            raw.extend_from_slice(v);
        }
        let mut disk = vec![0u8];
        disk.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        disk.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        disk.extend_from_slice(&raw);
        disk
    }

    #[test]
    fn roundtrip() {
        let (disk, keys, vals) = sample_block();
        let block = Block::decode(&disk, 8, true).unwrap();
        assert_eq!(block.len(), 50);
        for i in 0..50 {
            assert_eq!(block.key(i), &keys[i][..]);
            assert_eq!(block.value(i), &vals[i][..]);
            assert!(!block.is_tombstone(i));
            assert_eq!(block.entry(i), (&keys[i][..], Some(&vals[i][..])));
        }
    }

    #[test]
    fn tombstones_roundtrip() {
        let mut b = BlockBuilder::new(4);
        b.add(&[0, 0, 0, 1], Some(b"alive"));
        b.add(&[0, 0, 0, 2], None);
        b.add(&[0, 0, 0, 3], Some(b""));
        let (disk, _, _) = b.finish();
        let block = Block::decode(&disk, 4, true).unwrap();
        assert_eq!(block.entry(0), (&[0, 0, 0, 1][..], Some(&b"alive"[..])));
        assert_eq!(block.entry(1), (&[0, 0, 0, 2][..], None));
        assert!(block.is_tombstone(1));
        // An empty value is alive: distinguishable from a tombstone.
        assert_eq!(block.entry(2), (&[0, 0, 0, 3][..], Some(&b""[..])));
        assert!(!block.is_tombstone(2));
    }

    #[test]
    fn v1_layout_decodes_without_flags() {
        let entries: Vec<(Vec<u8>, Vec<u8>)> =
            (0..10u32).map(|i| (i.to_be_bytes().to_vec(), vec![i as u8; 3])).collect();
        let disk = v1_block(&entries);
        let block = Block::decode(&disk, 4, false).unwrap();
        assert_eq!(block.len(), 10);
        for (i, (k, v)) in entries.iter().enumerate() {
            assert_eq!(block.entry(i), (&k[..], Some(&v[..])));
            assert!(!block.is_tombstone(i));
        }
        // The same bytes under the v2 layout are rejected, not misread.
        assert!(Block::decode(&disk, 4, true).is_err());
    }

    #[test]
    fn compression_kicks_in_for_zero_heavy_values() {
        let (disk, _, _) = sample_block();
        assert_eq!(disk[0], 1, "half-zero values should compress");
        let raw_len = u32::from_le_bytes(disk[1..5].try_into().unwrap()) as usize;
        let stored = u32::from_le_bytes(disk[5..9].try_into().unwrap()) as usize;
        assert!(stored < raw_len);
        assert_eq!(Block::disk_len(&disk).unwrap(), disk.len());
    }

    #[test]
    fn lower_bound_search() {
        let (disk, _, _) = sample_block();
        let block = Block::decode(&disk, 8, true).unwrap();
        assert_eq!(block.lower_bound(&0u64.to_be_bytes()), 0);
        assert_eq!(block.lower_bound(&7u64.to_be_bytes()), 1);
        assert_eq!(block.lower_bound(&8u64.to_be_bytes()), 2);
        assert_eq!(block.lower_bound(&343u64.to_be_bytes()), 49);
        assert_eq!(block.lower_bound(&344u64.to_be_bytes()), 50);
    }

    #[test]
    fn empty_values_supported() {
        let mut b = BlockBuilder::new(4);
        b.add(&[0, 0, 0, 1], Some(b""));
        b.add(&[0, 0, 0, 2], Some(b"x"));
        let (disk, _, _) = b.finish();
        let block = Block::decode(&disk, 4, true).unwrap();
        assert_eq!(block.value(0), b"");
        assert_eq!(block.value(1), b"x");
    }

    #[test]
    fn corrupt_flag_bytes_and_truncations_are_errors_not_panics() {
        // Raw (incompressible) values so entry offsets are predictable.
        let mut b = BlockBuilder::new(4);
        let vals: Vec<Vec<u8>> =
            (0..4u32).map(|i| (0..16).map(|j| (i * 31 + j * 7 + 1) as u8).collect()).collect();
        for (i, v) in vals.iter().enumerate() {
            b.add(&(i as u32).to_be_bytes(), Some(v));
        }
        let (disk, _, _) = b.finish();
        assert_eq!(disk[0], 0, "this block must be stored raw");

        // Reserved flag bits set → corruption.
        let flag_off = 9 + 4 + 4; // header + n + first key
        let mut bad = disk.clone();
        bad[flag_off] = 0x82;
        assert!(matches!(Block::decode(&bad, 4, true), Err(Error::Corruption(_))));
        // Tombstone with a value → corruption.
        let mut bad = disk.clone();
        bad[flag_off] = FLAG_TOMBSTONE;
        assert!(matches!(Block::decode(&bad, 4, true), Err(Error::Corruption(_))));
        // Truncations anywhere must error, never panic.
        for cut in 0..disk.len() {
            assert!(Block::decode(&disk[..cut], 4, true).is_err(), "cut {cut}");
        }
        // disk_len on a truncated header is corruption, not a panic; with
        // the header intact it still reports the full on-disk size.
        for cut in 0..9 {
            assert!(
                matches!(Block::disk_len(&disk[..cut]), Err(Error::Corruption(_))),
                "cut {cut}"
            );
        }
        for cut in 9..=disk.len() {
            assert_eq!(Block::disk_len(&disk[..cut]).unwrap(), disk.len(), "cut {cut}");
        }
        // Unknown codec byte.
        let mut bad = disk.clone();
        bad[0] = 9;
        assert!(Block::decode(&bad, 4, true).is_err());
        // Oversized value length.
        let mut bad = disk;
        let vlen_off = flag_off + 1;
        bad[vlen_off..vlen_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Block::decode(&bad, 4, true).is_err());
    }
}

//! Data block format.
//!
//! A block holds a run of sorted entries. Three entry layouts exist,
//! selected by the containing SST file's format version (the block
//! itself carries no version byte):
//!
//! ```text
//! v1 (PRSSTv1, read-only): [u32 n] ([key(w)][u32 value_len][value])*
//! v2 (PRSSTv2, read-only): [u32 n] ([key(w)][u8 flags][u32 value_len][value])*
//! v3 (PRSSTv3):            [u32 n] ([u16 shared][u16 non_shared][u8 flags]
//!                                   [u32 value_len][key_suffix][value])*
//! ```
//!
//! v1/v2 keys are fixed-width (`w` comes from the SST footer). v3 keys
//! are variable-length with restart-point prefix compression: an entry
//! records how many leading bytes it shares with the previous key
//! (`shared`) and stores only the remaining `non_shared` suffix. Every
//! [`RESTART_INTERVAL`]-th entry is a *restart point* and must encode
//! `shared = 0` (a full key), bounding how far a corrupt prefix chain
//! can propagate. The decoder materializes every full key eagerly, so
//! lookups binary-search exactly as they do for fixed-width layouts.
//!
//! The `flags` byte (v2 and v3) currently defines bit 0: `1` marks the
//! entry as a *tombstone* (a persisted delete; it must carry a
//! zero-length value). All other bits are reserved and must be zero — a
//! nonzero reserved bit, a tombstone with a value, a zero-length v3 key,
//! a `shared` run longer than the previous key, or out-of-order keys are
//! reported as corruption, never decoded loosely.
//!
//! On disk a block is prefixed by `[u8 codec][u32 raw_len][u32 stored_len]`
//! where codec 0 = raw, 1 = zero-RLE ([`crate::compress`]). Decoding
//! arbitrary bytes returns [`crate::Error::Corruption`]; it never panics.

use crate::compress;
use crate::error::{Error, Result};

/// Total little-endian `u16` read: `None` when the slice is too short.
#[inline]
fn le_u16_at(b: &[u8], off: usize) -> Option<u16> {
    let s = b.get(off..off.checked_add(2)?)?;
    Some(u16::from_le_bytes(s.try_into().ok()?))
}

/// Total little-endian `u32` read: `None` when the slice is too short.
#[inline]
fn le_u32_at(b: &[u8], off: usize) -> Option<u32> {
    let s = b.get(off..off.checked_add(4)?)?;
    Some(u32::from_le_bytes(s.try_into().ok()?))
}

/// Checked narrowing for decoder-side offsets; a block whose spans escape
/// `u32` is reported as corruption, never truncated silently.
#[inline]
fn to_u32(v: usize, what: &'static str) -> Result<u32> {
    u32::try_from(v).map_err(|_| corrupt(what))
}

/// Append a length as a little-endian `u32` wire field. Builder payloads
/// are bounded by the writer's block-size budget, far below 4 GiB; debug
/// builds assert the invariant.
#[inline]
fn put_len_u32(buf: &mut Vec<u8>, len: usize) {
    debug_assert!(u32::try_from(len).is_ok(), "length {len} overflows the u32 wire field");
    // lint: allow(truncating-cast): asserted to fit above
    buf.extend_from_slice(&(len as u32).to_le_bytes());
}

/// Append a length as a little-endian `u16` wire field (v3 key spans).
/// Key lengths are bounded well below 64 KiB; debug builds assert.
#[inline]
fn put_len_u16(buf: &mut Vec<u8>, len: usize) {
    debug_assert!(u16::try_from(len).is_ok(), "length {len} overflows the u16 wire field");
    // lint: allow(truncating-cast): asserted to fit above
    buf.extend_from_slice(&(len as u16).to_le_bytes());
}

/// Entry flag bit marking a tombstone (v2 and v3 layouts).
pub const FLAG_TOMBSTONE: u8 = 1;

/// Every this-many v3 entries, the builder emits a full key
/// (`shared = 0`) and the decoder enforces it.
pub const RESTART_INTERVAL: usize = 16;

/// Builder for one fixed-width data block (the v2 entry layout; v1 is
/// only ever read, never written). Kept for the v2 golden fixtures and
/// tests — production writes go through [`VarBlockBuilder`].
#[derive(Debug)]
pub struct BlockBuilder {
    width: usize,
    buf: Vec<u8>,
    n: u32,
    first_key: Option<Vec<u8>>,
    last_key: Option<Vec<u8>>,
}

impl BlockBuilder {
    /// Start an empty block for `width`-byte keys.
    pub fn new(width: usize) -> Self {
        BlockBuilder { width, buf: vec![0u8; 4], n: 0, first_key: None, last_key: None }
    }

    /// Append an entry (keys must arrive in order; the builder does not
    /// re-sort). `Some` is a live value, `None` a tombstone.
    pub fn add(&mut self, key: &[u8], value: Option<&[u8]>) {
        debug_assert_eq!(key.len(), self.width);
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        self.last_key = Some(key.to_vec());
        self.buf.extend_from_slice(key);
        match value {
            Some(v) => {
                self.buf.push(0);
                put_len_u32(&mut self.buf, v.len());
                self.buf.extend_from_slice(v);
            }
            None => {
                self.buf.push(FLAG_TOMBSTONE);
                self.buf.extend_from_slice(&0u32.to_le_bytes());
            }
        }
        self.n += 1;
    }

    /// True before the first entry is added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current uncompressed payload size.
    pub fn raw_len(&self) -> usize {
        self.buf.len()
    }

    /// Finish the block: returns `(disk bytes, first_key, last_key)`.
    pub fn finish(mut self) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        assert!(self.n > 0, "empty block");
        self.buf[..4].copy_from_slice(&self.n.to_le_bytes());
        // lint: allow(no-panic): the assert above guarantees at least one entry
        (to_disk(self.buf), self.first_key.unwrap(), self.last_key.unwrap())
    }
}

/// Builder for one v3 data block: variable-length keys with
/// restart-point prefix compression.
#[derive(Debug)]
pub struct VarBlockBuilder {
    buf: Vec<u8>,
    n: u32,
    first_key: Option<Vec<u8>>,
    last_key: Vec<u8>,
}

impl Default for VarBlockBuilder {
    fn default() -> Self {
        VarBlockBuilder::new()
    }
}

impl VarBlockBuilder {
    /// Start an empty v3 block.
    pub fn new() -> Self {
        VarBlockBuilder { buf: vec![0u8; 4], n: 0, first_key: None, last_key: Vec::new() }
    }

    /// Append an entry. Keys must be non-empty and strictly ascending;
    /// the builder does not re-sort. `Some` is a live value, `None` a
    /// tombstone.
    pub fn add(&mut self, key: &[u8], value: Option<&[u8]>) {
        debug_assert!(!key.is_empty(), "v3 keys are non-empty");
        debug_assert!(
            self.first_key.is_none() || self.last_key.as_slice() < key,
            "keys must be strictly ascending"
        );
        let shared = if (self.n as usize).is_multiple_of(RESTART_INTERVAL) {
            0
        } else {
            self.last_key.iter().zip(key).take_while(|(a, b)| a == b).count()
        };
        let non_shared = key.len() - shared;
        put_len_u16(&mut self.buf, shared);
        put_len_u16(&mut self.buf, non_shared);
        match value {
            Some(v) => {
                self.buf.push(0);
                put_len_u32(&mut self.buf, v.len());
                self.buf.extend_from_slice(&key[shared..]);
                self.buf.extend_from_slice(v);
            }
            None => {
                self.buf.push(FLAG_TOMBSTONE);
                self.buf.extend_from_slice(&0u32.to_le_bytes());
                self.buf.extend_from_slice(&key[shared..]);
            }
        }
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.n += 1;
    }

    /// True before the first entry is added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current uncompressed payload size.
    pub fn raw_len(&self) -> usize {
        self.buf.len()
    }

    /// Finish the block: returns `(disk bytes, first_key, last_key)`.
    pub fn finish(mut self) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        assert!(self.n > 0, "empty block");
        self.buf[..4].copy_from_slice(&self.n.to_le_bytes());
        // lint: allow(no-panic): the assert above guarantees at least one entry
        (to_disk(self.buf), self.first_key.unwrap(), self.last_key)
    }
}

/// Wrap a finished raw payload in the on-disk codec header, compressing
/// when it pays.
fn to_disk(raw: Vec<u8>) -> Vec<u8> {
    let raw_len = raw.len();
    let (codec, payload) = match compress::compress(&raw) {
        Some(c) => (1u8, c),
        None => (0u8, raw),
    };
    let mut disk = Vec::with_capacity(payload.len() + 9);
    disk.push(codec);
    put_len_u32(&mut disk, raw_len);
    put_len_u32(&mut disk, payload.len());
    disk.extend_from_slice(&payload);
    disk
}

/// One materialized v3 entry: spans into `Block::keybuf` / `Block::data`.
#[derive(Debug, Clone, Copy)]
struct VarEntry {
    key_off: u32,
    key_len: u32,
    val_off: u32,
    val_len: u32,
    tombstone: bool,
}

/// Which entry layout a decoded block uses, plus its lookup structures.
#[derive(Debug, Clone)]
enum Layout {
    /// v1/v2: fixed-width keys at computed offsets into `data`.
    Fixed { width: usize, has_flags: bool, offsets: Vec<u32> },
    /// v3: variable-length keys, materialized into `keybuf`.
    Var { keybuf: Vec<u8>, entries: Vec<VarEntry> },
}

/// A decoded, searchable block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Decoded payload.
    data: Vec<u8>,
    layout: Layout,
}

fn corrupt(what: &str) -> Error {
    Error::corruption(format!("data block: {what}"))
}

/// Strip and validate the codec header, returning the decompressed
/// payload.
fn decode_disk(disk: &[u8]) -> Result<Vec<u8>> {
    if disk.len() < 9 {
        return Err(corrupt("shorter than its header"));
    }
    let codec = disk[0];
    let raw_len = le_u32_at(disk, 1).ok_or_else(|| corrupt("shorter than its header"))? as usize;
    let stored_len = le_u32_at(disk, 5).ok_or_else(|| corrupt("shorter than its header"))? as usize;
    if disk.len() < 9 + stored_len {
        return Err(corrupt("stored length overruns the block"));
    }
    let payload = &disk[9..9 + stored_len];
    match codec {
        0 => {
            if stored_len != raw_len {
                return Err(corrupt("raw block with stored_len != raw_len"));
            }
            Ok(payload.to_vec())
        }
        1 => compress::decompress(payload, raw_len)
            .ok_or_else(|| corrupt("corrupt compressed payload")),
        c => Err(corrupt(&format!("unknown codec {c}"))),
    }
}

impl Block {
    /// Decode a fixed-width (v1/v2) block from disk bytes (including the
    /// codec header). `has_flags` selects the entry layout: `true` for
    /// SST format v2, `false` for the flag-less v1 layout. Malformed
    /// bytes — truncation, an unknown codec, a reserved flag bit, a
    /// tombstone carrying a value, or any length that escapes the buffer
    /// — yield [`Error::Corruption`].
    pub fn decode(disk: &[u8], width: usize, has_flags: bool) -> Result<Block> {
        let data = decode_disk(disk)?;
        if data.len() < 4 {
            return Err(corrupt("missing entry count"));
        }
        let n = le_u32_at(&data, 0).ok_or_else(|| corrupt("missing entry count"))? as usize;
        let head = if has_flags { width + 5 } else { width + 4 };
        let mut offsets = Vec::with_capacity(n);
        let mut pos = 4usize;
        for _ in 0..n {
            if pos + head > data.len() {
                return Err(corrupt("entry overruns the block"));
            }
            offsets.push(to_u32(pos, "entry offset exceeds u32")?);
            let vlen_off = if has_flags {
                let flags = data[pos + width];
                if flags & !FLAG_TOMBSTONE != 0 {
                    return Err(corrupt(&format!("reserved entry flag bits set ({flags:#04x})")));
                }
                pos + width + 1
            } else {
                pos + width
            };
            let vlen = le_u32_at(&data, vlen_off)
                .ok_or_else(|| corrupt("entry overruns the block"))?
                as usize;
            if has_flags && data[pos + width] & FLAG_TOMBSTONE != 0 && vlen != 0 {
                return Err(corrupt("tombstone entry carries a value"));
            }
            pos = vlen_off + 4 + vlen;
            if pos > data.len() {
                return Err(corrupt("value overruns the block"));
            }
        }
        if pos != data.len() {
            return Err(corrupt("trailing bytes after the last entry"));
        }
        Ok(Block { data, layout: Layout::Fixed { width, has_flags, offsets } })
    }

    /// Decode a v3 (variable-length key) block from disk bytes. Every
    /// full key is materialized eagerly by resolving the prefix chain;
    /// a `shared` run longer than the previous key, a non-restart chain
    /// crossing a restart point, a zero-length key, out-of-order keys,
    /// reserved flag bits, a tombstone with a value, or any overrun
    /// yield [`Error::Corruption`] — never a panic.
    pub fn decode_v3(disk: &[u8]) -> Result<Block> {
        let data = decode_disk(disk)?;
        if data.len() < 4 {
            return Err(corrupt("missing entry count"));
        }
        let n = le_u32_at(&data, 0).ok_or_else(|| corrupt("missing entry count"))? as usize;
        let mut keybuf: Vec<u8> = Vec::new();
        let mut entries = Vec::with_capacity(n.min(data.len()));
        let mut pos = 4usize;
        let mut prev_off = 0usize;
        let mut prev_len = 0usize;
        for i in 0..n {
            if pos + 9 > data.len() {
                return Err(corrupt("entry header overruns the block"));
            }
            let short = || corrupt("entry header overruns the block");
            let shared = le_u16_at(&data, pos).ok_or_else(short)? as usize;
            let non_shared = le_u16_at(&data, pos + 2).ok_or_else(short)? as usize;
            let flags = data[pos + 4];
            if flags & !FLAG_TOMBSTONE != 0 {
                return Err(corrupt(&format!("reserved entry flag bits set ({flags:#04x})")));
            }
            let tombstone = flags & FLAG_TOMBSTONE != 0;
            let vlen = le_u32_at(&data, pos + 5).ok_or_else(short)? as usize;
            if tombstone && vlen != 0 {
                return Err(corrupt("tombstone entry carries a value"));
            }
            if i.is_multiple_of(RESTART_INTERVAL) && shared != 0 {
                return Err(corrupt("restart point shares a prefix"));
            }
            if shared > prev_len {
                return Err(corrupt("shared prefix longer than the previous key"));
            }
            if shared + non_shared == 0 {
                return Err(corrupt("zero-length key"));
            }
            pos += 9;
            if pos + non_shared + vlen > data.len() {
                return Err(corrupt("entry overruns the block"));
            }
            let key_off = keybuf.len();
            keybuf.extend_from_within(prev_off..prev_off + shared);
            keybuf.extend_from_slice(&data[pos..pos + non_shared]);
            if i > 0 {
                let (older, this) = keybuf.split_at(key_off);
                if &older[prev_off..prev_off + prev_len] >= this {
                    return Err(corrupt("keys out of order"));
                }
            }
            let val_off = pos + non_shared;
            entries.push(VarEntry {
                key_off: to_u32(key_off, "key area exceeds u32")?,
                key_len: to_u32(shared + non_shared, "key length exceeds u32")?,
                val_off: to_u32(val_off, "value offset exceeds u32")?,
                val_len: to_u32(vlen, "value length exceeds u32")?,
                tombstone,
            });
            pos = val_off + vlen;
            prev_off = key_off;
            prev_len = shared + non_shared;
        }
        if pos != data.len() {
            return Err(corrupt("trailing bytes after the last entry"));
        }
        Ok(Block { data, layout: Layout::Var { keybuf, entries } })
    }

    /// On-disk size of the block starting at `disk` (header + payload).
    /// A slice shorter than the 9-byte header — e.g. an index entry
    /// pointing into a truncated tail — is [`Error::Corruption`], never a
    /// panic (the repo-wide malformed-bytes invariant).
    pub fn disk_len(disk: &[u8]) -> Result<usize> {
        let stored = le_u32_at(disk, 5).ok_or_else(|| corrupt("shorter than its header"))?;
        Ok(9 + stored as usize)
    }

    /// Number of entries in the block.
    pub fn len(&self) -> usize {
        match &self.layout {
            Layout::Fixed { offsets, .. } => offsets.len(),
            Layout::Var { entries, .. } => entries.len(),
        }
    }

    /// True for a block with no entries (never written by the builders).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th key (entries are sorted ascending).
    pub fn key(&self, i: usize) -> &[u8] {
        match &self.layout {
            Layout::Fixed { width, offsets, .. } => {
                let off = offsets[i] as usize;
                &self.data[off..off + width]
            }
            Layout::Var { keybuf, entries } => {
                let e = entries[i];
                &keybuf[e.key_off as usize..(e.key_off + e.key_len) as usize]
            }
        }
    }

    /// Is the `i`-th entry a tombstone? Always `false` for v1 blocks.
    pub fn is_tombstone(&self, i: usize) -> bool {
        match &self.layout {
            Layout::Fixed { width, has_flags, offsets } => {
                if !has_flags {
                    return false;
                }
                let off = offsets[i] as usize;
                self.data[off + width] & FLAG_TOMBSTONE != 0
            }
            Layout::Var { entries, .. } => entries[i].tombstone,
        }
    }

    /// The `i`-th value (empty for a tombstone; use [`Block::entry`] to
    /// tell an empty value from a delete).
    pub fn value(&self, i: usize) -> &[u8] {
        match &self.layout {
            Layout::Fixed { width, has_flags, offsets } => {
                let off = offsets[i] as usize;
                let vlen_off = if *has_flags { off + width + 1 } else { off + width };
                // lint: allow(no-panic): entry spans were validated at decode time
                let vlen = u32::from_le_bytes(self.data[vlen_off..vlen_off + 4].try_into().unwrap())
                    as usize;
                &self.data[vlen_off + 4..vlen_off + 4 + vlen]
            }
            Layout::Var { entries, .. } => {
                let e = entries[i];
                &self.data[e.val_off as usize..(e.val_off + e.val_len) as usize]
            }
        }
    }

    /// The `i`-th entry as `(key, Some(value) | None)` where `None` marks
    /// a tombstone.
    pub fn entry(&self, i: usize) -> (&[u8], Option<&[u8]>) {
        let v = if self.is_tombstone(i) { None } else { Some(self.value(i)) };
        (self.key(i), v)
    }

    /// Index of the first entry with key ≥ `probe`.
    pub fn lower_bound(&self, probe: &[u8]) -> usize {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid) < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Approximate decoded memory footprint (for the block cache budget).
    pub fn mem_bytes(&self) -> usize {
        match &self.layout {
            Layout::Fixed { offsets, .. } => self.data.len() + offsets.len() * 4,
            Layout::Var { keybuf, entries } => {
                self.data.len() + keybuf.len() + entries.len() * std::mem::size_of::<VarEntry>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> (Vec<u8>, Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let mut b = BlockBuilder::new(8);
        let keys: Vec<Vec<u8>> = (0..50u64).map(|i| (i * 7).to_be_bytes().to_vec()).collect();
        let vals: Vec<Vec<u8>> = (0..50u64)
            .map(|i| {
                let mut v = vec![0u8; 64];
                v[32..40].copy_from_slice(&i.to_le_bytes());
                v
            })
            .collect();
        for (k, v) in keys.iter().zip(&vals) {
            b.add(k, Some(v));
        }
        let (disk, first, last) = b.finish();
        assert_eq!(first, keys[0]);
        assert_eq!(last, keys[49]);
        (disk, keys, vals)
    }

    /// Encode a v1-layout block (no flag byte) for the compat tests.
    fn v1_block(entries: &[(Vec<u8>, Vec<u8>)]) -> Vec<u8> {
        let mut raw = (entries.len() as u32).to_le_bytes().to_vec();
        for (k, v) in entries {
            raw.extend_from_slice(k);
            raw.extend_from_slice(&(v.len() as u32).to_le_bytes());
            raw.extend_from_slice(v);
        }
        let mut disk = vec![0u8];
        disk.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        disk.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        disk.extend_from_slice(&raw);
        disk
    }

    #[test]
    fn roundtrip() {
        let (disk, keys, vals) = sample_block();
        let block = Block::decode(&disk, 8, true).unwrap();
        assert_eq!(block.len(), 50);
        for i in 0..50 {
            assert_eq!(block.key(i), &keys[i][..]);
            assert_eq!(block.value(i), &vals[i][..]);
            assert!(!block.is_tombstone(i));
            assert_eq!(block.entry(i), (&keys[i][..], Some(&vals[i][..])));
        }
    }

    #[test]
    fn tombstones_roundtrip() {
        let mut b = BlockBuilder::new(4);
        b.add(&[0, 0, 0, 1], Some(b"alive"));
        b.add(&[0, 0, 0, 2], None);
        b.add(&[0, 0, 0, 3], Some(b""));
        let (disk, _, _) = b.finish();
        let block = Block::decode(&disk, 4, true).unwrap();
        assert_eq!(block.entry(0), (&[0, 0, 0, 1][..], Some(&b"alive"[..])));
        assert_eq!(block.entry(1), (&[0, 0, 0, 2][..], None));
        assert!(block.is_tombstone(1));
        // An empty value is alive: distinguishable from a tombstone.
        assert_eq!(block.entry(2), (&[0, 0, 0, 3][..], Some(&b""[..])));
        assert!(!block.is_tombstone(2));
    }

    #[test]
    fn v1_layout_decodes_without_flags() {
        let entries: Vec<(Vec<u8>, Vec<u8>)> =
            (0..10u32).map(|i| (i.to_be_bytes().to_vec(), vec![i as u8; 3])).collect();
        let disk = v1_block(&entries);
        let block = Block::decode(&disk, 4, false).unwrap();
        assert_eq!(block.len(), 10);
        for (i, (k, v)) in entries.iter().enumerate() {
            assert_eq!(block.entry(i), (&k[..], Some(&v[..])));
            assert!(!block.is_tombstone(i));
        }
        // The same bytes under the v2 layout are rejected, not misread.
        assert!(Block::decode(&disk, 4, true).is_err());
    }

    #[test]
    fn compression_kicks_in_for_zero_heavy_values() {
        let (disk, _, _) = sample_block();
        assert_eq!(disk[0], 1, "half-zero values should compress");
        let raw_len = u32::from_le_bytes(disk[1..5].try_into().unwrap()) as usize;
        let stored = u32::from_le_bytes(disk[5..9].try_into().unwrap()) as usize;
        assert!(stored < raw_len);
        assert_eq!(Block::disk_len(&disk).unwrap(), disk.len());
    }

    #[test]
    fn lower_bound_search() {
        let (disk, _, _) = sample_block();
        let block = Block::decode(&disk, 8, true).unwrap();
        assert_eq!(block.lower_bound(&0u64.to_be_bytes()), 0);
        assert_eq!(block.lower_bound(&7u64.to_be_bytes()), 1);
        assert_eq!(block.lower_bound(&8u64.to_be_bytes()), 2);
        assert_eq!(block.lower_bound(&343u64.to_be_bytes()), 49);
        assert_eq!(block.lower_bound(&344u64.to_be_bytes()), 50);
    }

    #[test]
    fn empty_values_supported() {
        let mut b = BlockBuilder::new(4);
        b.add(&[0, 0, 0, 1], Some(b""));
        b.add(&[0, 0, 0, 2], Some(b"x"));
        let (disk, _, _) = b.finish();
        let block = Block::decode(&disk, 4, true).unwrap();
        assert_eq!(block.value(0), b"");
        assert_eq!(block.value(1), b"x");
    }

    #[test]
    fn corrupt_flag_bytes_and_truncations_are_errors_not_panics() {
        // Raw (incompressible) values so entry offsets are predictable.
        let mut b = BlockBuilder::new(4);
        let vals: Vec<Vec<u8>> =
            (0..4u32).map(|i| (0..16).map(|j| (i * 31 + j * 7 + 1) as u8).collect()).collect();
        for (i, v) in vals.iter().enumerate() {
            b.add(&(i as u32).to_be_bytes(), Some(v));
        }
        let (disk, _, _) = b.finish();
        assert_eq!(disk[0], 0, "this block must be stored raw");

        // Reserved flag bits set → corruption.
        let flag_off = 9 + 4 + 4; // header + n + first key
        let mut bad = disk.clone();
        bad[flag_off] = 0x82;
        assert!(matches!(Block::decode(&bad, 4, true), Err(Error::Corruption(_))));
        // Tombstone with a value → corruption.
        let mut bad = disk.clone();
        bad[flag_off] = FLAG_TOMBSTONE;
        assert!(matches!(Block::decode(&bad, 4, true), Err(Error::Corruption(_))));
        // Truncations anywhere must error, never panic.
        for cut in 0..disk.len() {
            assert!(Block::decode(&disk[..cut], 4, true).is_err(), "cut {cut}");
        }
        // disk_len on a truncated header is corruption, not a panic; with
        // the header intact it still reports the full on-disk size.
        for cut in 0..9 {
            assert!(
                matches!(Block::disk_len(&disk[..cut]), Err(Error::Corruption(_))),
                "cut {cut}"
            );
        }
        for cut in 9..=disk.len() {
            assert_eq!(Block::disk_len(&disk[..cut]).unwrap(), disk.len(), "cut {cut}");
        }
        // Unknown codec byte.
        let mut bad = disk.clone();
        bad[0] = 9;
        assert!(Block::decode(&bad, 4, true).is_err());
        // Oversized value length.
        let mut bad = disk;
        let vlen_off = flag_off + 1;
        bad[vlen_off..vlen_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Block::decode(&bad, 4, true).is_err());
    }

    /// Shared-prefix string keys of wildly different lengths, exercising
    /// the prefix chain and the restart points.
    fn var_entries() -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        let mut out: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
        for i in 0..60u32 {
            let key =
                format!("http://site-{:03}.example.com/path/{}", i / 4, "x".repeat(i as usize % 7));
            let val = if i % 5 == 3 { None } else { Some(vec![i as u8; (i as usize * 3) % 40]) };
            out.push((key.into_bytes(), val));
        }
        out.push((vec![0x01], Some(b"tiny".to_vec())));
        out.push((vec![0xFF; 300], Some(Vec::new())));
        out.sort();
        out.dedup_by(|a, b| a.0 == b.0);
        out
    }

    fn build_var(entries: &[(Vec<u8>, Option<Vec<u8>>)]) -> Vec<u8> {
        let mut b = VarBlockBuilder::new();
        for (k, v) in entries {
            b.add(k, v.as_deref());
        }
        let (disk, first, last) = b.finish();
        assert_eq!(first, entries[0].0);
        assert_eq!(last, entries.last().unwrap().0);
        disk
    }

    #[test]
    fn v3_var_keys_roundtrip_with_prefix_compression() {
        let entries = var_entries();
        let disk = build_var(&entries);
        let block = Block::decode_v3(&disk).unwrap();
        assert_eq!(block.len(), entries.len());
        for (i, (k, v)) in entries.iter().enumerate() {
            assert_eq!(block.key(i), &k[..], "key {i}");
            assert_eq!(block.entry(i), (&k[..], v.as_deref()), "entry {i}");
            assert_eq!(block.is_tombstone(i), v.is_none(), "tombstone {i}");
        }
        // lower_bound agrees with a linear scan for assorted probes.
        for probe in [
            &b"http://site-000"[..],
            &b"http://site-007.example.com/path/"[..],
            &b"zzz"[..],
            &[0x00][..],
            &[0xFF][..],
        ] {
            let want = entries.iter().position(|(k, _)| k.as_slice() >= probe);
            let got = block.lower_bound(probe);
            assert_eq!(got, want.unwrap_or(entries.len()), "probe {probe:?}");
        }
        // Prefix compression must actually shrink the payload vs full keys.
        let full: usize = entries.iter().map(|(k, _)| k.len()).sum();
        let raw_len = u32::from_le_bytes(disk[1..5].try_into().unwrap()) as usize;
        assert!(raw_len < full + entries.len() * 9 + 4, "prefix compression saved nothing");
    }

    #[test]
    fn v3_single_entry_and_long_key_blocks_roundtrip() {
        let mut b = VarBlockBuilder::new();
        let key = vec![0xAB; 1024];
        b.add(&key, Some(b"v"));
        let (disk, first, last) = b.finish();
        assert_eq!(first, key);
        assert_eq!(last, key);
        let block = Block::decode_v3(&disk).unwrap();
        assert_eq!(block.len(), 1);
        assert_eq!(block.entry(0), (&key[..], Some(&b"v"[..])));
    }

    #[test]
    fn v3_corruptions_and_truncations_are_errors_not_panics() {
        // Incompressible values so the payload is stored raw and offsets
        // are predictable.
        let mut b = VarBlockBuilder::new();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..20u8)
            .map(|i| {
                let k = format!("key/{:02}/{}", i, "s".repeat(i as usize % 5)).into_bytes();
                let v: Vec<u8> =
                    (0..13).map(|j| i.wrapping_mul(37).wrapping_add(j * 11) | 1).collect();
                (k, v)
            })
            .collect();
        for (k, v) in &entries {
            b.add(k, Some(v));
        }
        let (disk, _, _) = b.finish();
        assert_eq!(disk[0], 0, "this block must be stored raw");

        // Truncations anywhere must error, never panic.
        for cut in 0..disk.len() {
            assert!(Block::decode_v3(&disk[..cut]).is_err(), "cut {cut}");
        }
        // First entry header starts at payload offset 4 → disk offset 13.
        let e0 = 9 + 4;
        // Reserved flag bits.
        let mut bad = disk.clone();
        bad[e0 + 4] = 0x40;
        assert!(matches!(Block::decode_v3(&bad), Err(Error::Corruption(_))));
        // Tombstone carrying a value.
        let mut bad = disk.clone();
        bad[e0 + 4] = FLAG_TOMBSTONE;
        assert!(matches!(Block::decode_v3(&bad), Err(Error::Corruption(_))));
        // Restart point (entry 0) claiming a shared prefix.
        let mut bad = disk.clone();
        bad[e0..e0 + 2].copy_from_slice(&3u16.to_le_bytes());
        assert!(matches!(Block::decode_v3(&bad), Err(Error::Corruption(_))));
        // Zero-length key: entry 0 with shared=0, non_shared=0.
        let mut bad = disk.clone();
        bad[e0 + 2..e0 + 4].copy_from_slice(&0u16.to_le_bytes());
        assert!(matches!(Block::decode_v3(&bad), Err(Error::Corruption(_))));
        // Shared prefix longer than the previous key (second entry; the
        // first key is "key/00/" → 7 bytes).
        let first_len = entries[0].0.len();
        let e1 = e0 + 9 + first_len + entries[0].1.len();
        let mut bad = disk.clone();
        bad[e1..e1 + 2].copy_from_slice(&((first_len + 50) as u16).to_le_bytes());
        assert!(matches!(Block::decode_v3(&bad), Err(Error::Corruption(_))));
        // Out-of-order keys: rewrite entry 1's suffix to sort before
        // entry 0 (shared=0 plus a suffix byte smaller than 'k').
        let mut bad = disk.clone();
        bad[e1..e1 + 2].copy_from_slice(&0u16.to_le_bytes());
        bad[e1 + 9] = b'a';
        assert!(matches!(Block::decode_v3(&bad), Err(Error::Corruption(_))));
        // Oversized value length escapes the buffer.
        let mut bad = disk.clone();
        bad[e0 + 5..e0 + 9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Block::decode_v3(&bad).is_err());
        // Oversized non_shared escapes the buffer.
        let mut bad = disk;
        bad[e0 + 2..e0 + 4].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(Block::decode_v3(&bad).is_err());
    }

    #[test]
    fn v3_restart_points_bound_the_prefix_chain() {
        // 40 keys sharing a long common prefix: without restarts every
        // entry after the first would store shared > 0; the builder must
        // emit full keys at entries 0, 16, 32.
        let mut b = VarBlockBuilder::new();
        let keys: Vec<Vec<u8>> =
            (0..40u8).map(|i| format!("shared/prefix/run/{i:02}").into_bytes()).collect();
        for k in &keys {
            b.add(k, Some(b"v"));
        }
        let (disk, _, _) = b.finish();
        let block = Block::decode_v3(&disk).unwrap();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(block.key(i), &k[..]);
        }
    }
}

//! Data block format.
//!
//! A block holds a run of `(key, value)` entries with fixed-width keys:
//!
//! ```text
//! [u32 n_entries] ([key: width bytes][u32 value_len][value bytes])*
//! ```
//!
//! On disk a block is prefixed by `[u8 codec][u32 raw_len][u32 stored_len]`
//! where codec 0 = raw, 1 = zero-RLE ([`crate::compress`]).

use crate::compress;

/// Builder for one data block.
#[derive(Debug)]
pub struct BlockBuilder {
    width: usize,
    buf: Vec<u8>,
    n: u32,
    first_key: Option<Vec<u8>>,
    last_key: Option<Vec<u8>>,
}

impl BlockBuilder {
    /// Start an empty block for `width`-byte keys.
    pub fn new(width: usize) -> Self {
        BlockBuilder { width, buf: vec![0u8; 4], n: 0, first_key: None, last_key: None }
    }

    /// Append an entry (keys must arrive in order; the builder does not
    /// re-sort).
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        debug_assert_eq!(key.len(), self.width);
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        self.last_key = Some(key.to_vec());
        self.buf.extend_from_slice(key);
        self.buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(value);
        self.n += 1;
    }

    /// True before the first entry is added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current uncompressed payload size.
    pub fn raw_len(&self) -> usize {
        self.buf.len()
    }

    /// Finish the block: returns `(disk bytes, first_key, last_key)`.
    pub fn finish(mut self) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        assert!(self.n > 0, "empty block");
        self.buf[..4].copy_from_slice(&self.n.to_le_bytes());
        let raw_len = self.buf.len() as u32;
        let (codec, payload) = match compress::compress(&self.buf) {
            Some(c) => (1u8, c),
            None => (0u8, self.buf),
        };
        let mut disk = Vec::with_capacity(payload.len() + 9);
        disk.push(codec);
        disk.extend_from_slice(&raw_len.to_le_bytes());
        disk.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        disk.extend_from_slice(&payload);
        (disk, self.first_key.unwrap(), self.last_key.unwrap())
    }
}

/// A decoded, searchable block.
#[derive(Debug, Clone)]
pub struct Block {
    width: usize,
    /// Decoded payload.
    data: Vec<u8>,
    /// Byte offset of each entry.
    offsets: Vec<u32>,
}

impl Block {
    /// Decode from disk bytes (including the codec header).
    pub fn decode(disk: &[u8], width: usize) -> Block {
        let codec = disk[0];
        let raw_len = u32::from_le_bytes(disk[1..5].try_into().unwrap()) as usize;
        let stored_len = u32::from_le_bytes(disk[5..9].try_into().unwrap()) as usize;
        let payload = &disk[9..9 + stored_len];
        let data = match codec {
            0 => payload.to_vec(),
            1 => compress::decompress(payload, raw_len),
            _ => panic!("unknown block codec {codec}"),
        };
        let n = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
        let mut offsets = Vec::with_capacity(n);
        let mut pos = 4usize;
        for _ in 0..n {
            offsets.push(pos as u32);
            let vlen =
                u32::from_le_bytes(data[pos + width..pos + width + 4].try_into().unwrap()) as usize;
            pos += width + 4 + vlen;
        }
        Block { width, data, offsets }
    }

    /// On-disk size of the block starting at `disk` (header + payload).
    pub fn disk_len(disk: &[u8]) -> usize {
        9 + u32::from_le_bytes(disk[5..9].try_into().unwrap()) as usize
    }

    /// Number of entries in the block.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True for a block with no entries (never written by the builder).
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The `i`-th key (entries are sorted ascending).
    pub fn key(&self, i: usize) -> &[u8] {
        let off = self.offsets[i] as usize;
        &self.data[off..off + self.width]
    }

    /// The `i`-th value.
    pub fn value(&self, i: usize) -> &[u8] {
        let off = self.offsets[i] as usize;
        let vlen = u32::from_le_bytes(
            self.data[off + self.width..off + self.width + 4].try_into().unwrap(),
        ) as usize;
        &self.data[off + self.width + 4..off + self.width + 4 + vlen]
    }

    /// Index of the first entry with key ≥ `probe`.
    pub fn lower_bound(&self, probe: &[u8]) -> usize {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid) < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Approximate decoded memory footprint (for the block cache budget).
    pub fn mem_bytes(&self) -> usize {
        self.data.len() + self.offsets.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> (Vec<u8>, Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let mut b = BlockBuilder::new(8);
        let keys: Vec<Vec<u8>> = (0..50u64).map(|i| (i * 7).to_be_bytes().to_vec()).collect();
        let vals: Vec<Vec<u8>> = (0..50u64)
            .map(|i| {
                let mut v = vec![0u8; 64];
                v[32..40].copy_from_slice(&i.to_le_bytes());
                v
            })
            .collect();
        for (k, v) in keys.iter().zip(&vals) {
            b.add(k, v);
        }
        let (disk, first, last) = b.finish();
        assert_eq!(first, keys[0]);
        assert_eq!(last, keys[49]);
        (disk, keys, vals)
    }

    #[test]
    fn roundtrip() {
        let (disk, keys, vals) = sample_block();
        let block = Block::decode(&disk, 8);
        assert_eq!(block.len(), 50);
        for i in 0..50 {
            assert_eq!(block.key(i), &keys[i][..]);
            assert_eq!(block.value(i), &vals[i][..]);
        }
    }

    #[test]
    fn compression_kicks_in_for_zero_heavy_values() {
        let (disk, _, _) = sample_block();
        assert_eq!(disk[0], 1, "half-zero values should compress");
        let raw_len = u32::from_le_bytes(disk[1..5].try_into().unwrap()) as usize;
        let stored = u32::from_le_bytes(disk[5..9].try_into().unwrap()) as usize;
        assert!(stored < raw_len);
        assert_eq!(Block::disk_len(&disk), disk.len());
    }

    #[test]
    fn lower_bound_search() {
        let (disk, _, _) = sample_block();
        let block = Block::decode(&disk, 8);
        assert_eq!(block.lower_bound(&0u64.to_be_bytes()), 0);
        assert_eq!(block.lower_bound(&7u64.to_be_bytes()), 1);
        assert_eq!(block.lower_bound(&8u64.to_be_bytes()), 2);
        assert_eq!(block.lower_bound(&343u64.to_be_bytes()), 49);
        assert_eq!(block.lower_bound(&344u64.to_be_bytes()), 50);
    }

    #[test]
    fn empty_values_supported() {
        let mut b = BlockBuilder::new(4);
        b.add(&[0, 0, 0, 1], b"");
        b.add(&[0, 0, 0, 2], b"x");
        let (disk, _, _) = b.finish();
        let block = Block::decode(&disk, 4);
        assert_eq!(block.value(0), b"");
        assert_eq!(block.value(1), b"x");
    }
}

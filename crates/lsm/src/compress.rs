//! Zero-run-length block compression.
//!
//! The paper's RocksDB setup compresses lower levels with LZ4/ZSTD and uses
//! half-zero values engineered for a 0.5 compression ratio (§6.2). Neither
//! codec is available offline, so blocks are compressed with a simple
//! zero-RLE scheme that achieves the same ratio on the same value format:
//! alternating `(literal_len, literal bytes, zero_run_len)` tokens with
//! varint-free u16 lengths.

/// Compress `data`. Returns `None` when compression would not shrink it
/// (the caller then stores the block raw, like RocksDB does).
pub fn compress(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut i = 0usize;
    while i < data.len() {
        // Literal segment: until a run of >= 4 zeros or 65535 bytes.
        let lit_start = i;
        let mut zrun_start = data.len();
        while i < data.len() && i - lit_start < u16::MAX as usize {
            if data[i] == 0 {
                let mut j = i;
                while j < data.len() && data[j] == 0 && j - i < u16::MAX as usize {
                    j += 1;
                }
                if j - i >= 4 {
                    zrun_start = i;
                    break;
                }
                i = j;
            } else {
                i += 1;
            }
        }
        let lit = &data[lit_start..i.min(zrun_start).max(lit_start)];
        let lit_end = lit_start + lit.len();
        // Zero run following the literal.
        let mut zlen = 0usize;
        let mut k = lit_end;
        while k < data.len() && data[k] == 0 && zlen < u16::MAX as usize {
            k += 1;
            zlen += 1;
        }
        out.extend_from_slice(&(lit.len() as u16).to_le_bytes());
        out.extend_from_slice(lit);
        out.extend_from_slice(&(zlen as u16).to_le_bytes());
        i = k;
    }
    (out.len() < data.len()).then_some(out)
}

/// Decompress into a buffer of exactly `raw_len` bytes. Returns `None`
/// when the token stream is malformed or does not decode to `raw_len`
/// bytes (corrupt block): decoding arbitrary bytes must never panic.
pub fn decompress(data: &[u8], raw_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    while i + 2 <= data.len() {
        let lit_len = u16::from_le_bytes([data[i], data[i + 1]]) as usize;
        i += 2;
        if i + lit_len + 2 > data.len() {
            return None;
        }
        out.extend_from_slice(&data[i..i + lit_len]);
        i += lit_len;
        let zlen = u16::from_le_bytes([data[i], data[i + 1]]) as usize;
        i += 2;
        out.resize(out.len() + zlen, 0);
        if out.len() > raw_len {
            return None;
        }
    }
    (i == data.len() && out.len() == raw_len).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_half_zero_values() {
        // The paper's value format: half zeros, half random.
        let mut data = vec![0u8; 512];
        for (i, b) in data[256..].iter_mut().enumerate() {
            *b = (i * 37 + 11) as u8;
        }
        let c = compress(&data).expect("half-zero data must compress");
        assert!(c.len() < 300, "ratio ~0.5 expected, got {} bytes", c.len());
        assert_eq!(decompress(&c, 512).unwrap(), data);
    }

    #[test]
    fn incompressible_data_returns_none() {
        let data: Vec<u8> = (0..512).map(|i| (i * 197 + 3) as u8 | 1).collect();
        assert!(compress(&data).is_none());
    }

    #[test]
    fn roundtrip_edge_cases() {
        for data in [
            vec![],
            vec![0u8; 1000],
            vec![7u8; 10],
            [vec![1, 2, 3], vec![0; 100], vec![4, 5], vec![0; 7], vec![9]].concat(),
        ] {
            // None = stored raw, nothing to verify.
            if let Some(c) = compress(&data) {
                assert_eq!(decompress(&c, data.len()).unwrap(), data);
            }
        }
    }

    #[test]
    fn long_runs_split_at_u16_limit() {
        let data = vec![0u8; 200_000];
        let c = compress(&data).unwrap();
        assert!(c.len() < 100);
        assert_eq!(decompress(&c, 200_000).unwrap(), data);
    }

    #[test]
    fn alternating_short_runs() {
        let mut data = Vec::new();
        for i in 0..200 {
            data.push(i as u8 + 1);
            data.extend_from_slice(&[0u8; 5]);
        }
        let c = compress(&data).unwrap();
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_decode_to_none_not_a_panic() {
        // Truncations and bit flips of a valid stream must be rejected.
        let mut data = vec![0u8; 64];
        data[0] = 3;
        let c = compress(&data).unwrap();
        for cut in 0..c.len() {
            let _ = decompress(&c[..cut], 64); // must not panic
        }
        let mut bad = c.clone();
        bad[0] ^= 0xFF; // literal length now overshoots the buffer
        assert!(decompress(&bad, 64).is_none());
        assert!(decompress(&c, 63).is_none(), "wrong raw_len must be rejected");
    }
}

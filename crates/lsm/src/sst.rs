//! Sorted String Table files: immutable on-disk runs of key-value pairs
//! with a persisted index, a pluggable per-file range filter (§6.1's
//! integration point: "Static filters … are built on every SST file") and
//! a fixed-size footer enabling directory recovery.
//!
//! ## On-disk layout (format v3, magic `PRSSTv3`)
//!
//! ```text
//! [data block]*                      (crate::block v3 layout: var-len keys,
//!                                    restart-point prefix compression)
//! [index block]                      u32 n, then n × (u16 first_len, first,
//!                                    u16 last_len, last, u64 offset,
//!                                    u32 len), then u32 CRC-32
//! [filter block]                     FilterCodec envelope (may be absent)
//! [footer: 64 bytes]
//!    0  u64 index_off    32 u64 n_entries
//!    8  u64 index_len    40 u32 level
//!   16  u64 filter_off   44 u32 filter key width (v1/v2: fixed key width)
//!   24  u64 filter_len   48 u16 format version
//!                        50 u32 n_tombstones   (v2+; zero in v1 files)
//!                        54 2×u8 zero padding
//!                        56 8×u8 magic "PRSSTv3\0"
//! ```
//!
//! v3 keys are arbitrary non-empty byte strings up to the store's
//! `max_key_bytes`. The footer's width field no longer constrains them:
//! it records the *canonical filter-training width* — every key is
//! NUL-padded (or truncated) to this width before feeding the filter,
//! which keeps probes monotone and false-negative-free (§7.1's string
//! canonicalization). v3 files are therefore self-describing: the reader
//! ignores the caller's expected width for them. The index block
//! length-prefixes its boundary keys.
//!
//! Legacy formats still *open* read-only. Format v2 (`PRSSTv2`) used
//! fixed-width keys (the footer width is the exact key length, enforced
//! at open), a flat index (`first_key`/`last_key` at exactly `width`
//! bytes each) and per-entry flag bytes. Format v1 (`PRSSTv1`) predates
//! tombstones on top of that: no flag byte, bytes 50..56 of the footer
//! zero. The first compaction that touches a v1/v2 file replaces it with
//! a v3 output. The writer always emits v3.
//!
//! The footer records which LSM level the file belongs to, so `Db::open`
//! can rebuild the level manifest from nothing but the directory listing.
//! The filter block is the [`FilterCodec`] envelope (self-describing,
//! checksummed); it is decoded lazily on first probe, so opening a large
//! database does not pay filter reconstruction for cold files.
//!
//! Tombstone entries are keys like any other as far as the filter is
//! concerned: a file's filter is built over *all* of its keys, deletes
//! included. This is load-bearing — if a filter could answer "empty" for
//! a range holding only a tombstone, the read path would skip the file,
//! miss the delete, and resurrect an older version of the key from a
//! deeper level.

use crate::block::{Block, VarBlockBuilder};
use crate::error::{Error, Result};
use crate::filter_hook::FilterFactory;
use crate::query_queue::QueryQueue;
use crate::stats::Stats;
use proteus_core::codec::crc32;
use proteus_core::key::pad_key;
use proteus_core::keyset::KeySet;
use proteus_core::sync::{rank, Mutex};
use proteus_core::{QuerySketch, RangeFilter};
use proteus_filters::FilterCodec;
use std::fs::File;
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError};
use std::time::Instant;

/// SST format version the writer emits.
pub const SST_FORMAT_VERSION: u16 = 3;

/// Trailing magic of every v3 SST file.
pub const SST_MAGIC_V3: [u8; 8] = *b"PRSSTv3\0";

/// Trailing magic of legacy v2 files (read-only compatibility).
pub const SST_MAGIC: [u8; 8] = *b"PRSSTv2\0";

/// Trailing magic of legacy v1 files (read-only compatibility).
pub const SST_MAGIC_V1: [u8; 8] = *b"PRSSTv1\0";

/// Fixed footer size in bytes.
pub const SST_FOOTER_LEN: u64 = 64;

/// One decoded SST entry: canonical key plus `Some(value)` for a live put
/// or `None` for a tombstone.
pub type Entry = (Vec<u8>, Option<Vec<u8>>);

fn bad(path: &Path, what: &str) -> Error {
    Error::corruption(format!("{}: {what}", path.display()))
}

/// Bounds-checked little-endian field reads: a short or overrun slice is
/// a corruption error, never a panic — the decode paths below must stay
/// panic-free on arbitrary on-disk bytes.
fn le_u16(buf: &[u8], o: usize, path: &Path) -> Result<u16> {
    match buf.get(o..o + 2).and_then(|s| s.try_into().ok()) {
        Some(b) => Ok(u16::from_le_bytes(b)),
        None => Err(bad(path, "field overruns the buffer")),
    }
}

/// See [`le_u16`].
fn le_u32(buf: &[u8], o: usize, path: &Path) -> Result<u32> {
    match buf.get(o..o + 4).and_then(|s| s.try_into().ok()) {
        Some(b) => Ok(u32::from_le_bytes(b)),
        None => Err(bad(path, "field overruns the buffer")),
    }
}

/// See [`le_u16`].
fn le_u64(buf: &[u8], o: usize, path: &Path) -> Result<u64> {
    match buf.get(o..o + 8).and_then(|s| s.try_into().ok()) {
        Some(b) => Ok(u64::from_le_bytes(b)),
        None => Err(bad(path, "field overruns the buffer")),
    }
}

/// Serialize the fixed 64-byte footer (shared by the writer and the
/// adaptive filter-block rewrite). `version` selects the magic, so a
/// rewritten v1 file keeps its v1 footer and block layout.
#[allow(clippy::too_many_arguments)] // mirrors the fixed binary layout 1:1
fn encode_footer(
    index_off: u64,
    index_len: u64,
    filter_len: u64,
    n_entries: u64,
    n_tombstones: u64,
    level: u32,
    width: usize,
    version: u16,
) -> Result<[u8; SST_FOOTER_LEN as usize]> {
    let mut f = [0u8; SST_FOOTER_LEN as usize];
    f[0..8].copy_from_slice(&index_off.to_le_bytes());
    f[8..16].copy_from_slice(&index_len.to_le_bytes());
    f[16..24].copy_from_slice(&(index_off + index_len).to_le_bytes());
    f[24..32].copy_from_slice(&filter_len.to_le_bytes());
    f[32..40].copy_from_slice(&n_entries.to_le_bytes());
    f[40..44].copy_from_slice(&level.to_le_bytes());
    f[44..48].copy_from_slice(&(width as u32).to_le_bytes());
    f[48..50].copy_from_slice(&version.to_le_bytes());
    if version >= 2 {
        // The footer field is u32; a file with 2^32 tombstones is far
        // beyond any real SST, but a silent wrap would corrupt the count,
        // so the impossible case fails loudly instead.
        let n = u32::try_from(n_tombstones)
            .map_err(|_| Error::corruption("more than u32::MAX tombstones in one SST"))?;
        f[50..54].copy_from_slice(&n.to_le_bytes());
        f[56..64].copy_from_slice(if version >= 3 { &SST_MAGIC_V3 } else { &SST_MAGIC });
    } else {
        f[56..64].copy_from_slice(&SST_MAGIC_V1);
    }
    Ok(f)
}

/// Index entry for one block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// First (smallest) key stored in the block.
    pub first_key: Vec<u8>,
    /// Last (largest) key stored in the block.
    pub last_key: Vec<u8>,
    /// Byte offset of the block within the file's data section.
    pub offset: u64,
    /// Encoded block length in bytes.
    pub len: u32,
}

/// An immutable SST file handle.
pub struct SstReader {
    /// File id (the `NNNNNNNN` of `NNNNNNNN.sst`; allocated monotonically).
    pub id: u64,
    path: PathBuf,
    file: File,
    width: usize,
    index: Vec<BlockMeta>,
    /// Size of the persisted index block including its CRC (needed to
    /// rewrite the filter block without re-encoding the index).
    index_len: u64,
    /// Size of the persisted filter block (0 = none).
    filter_block_len: usize,
    /// Encoded filter block awaiting its lazy decode; drained on first
    /// probe so the bytes are not held alongside the live filter. Empty
    /// for freshly written files (their filter is already in memory).
    pending_filter_bytes: Mutex<Vec<u8>>,
    /// Lazily decoded filter. Pre-populated for freshly written files;
    /// filled from `pending_filter_bytes` on first probe after recovery.
    filter: OnceLock<Option<Box<dyn RangeFilter>>>,
    /// Fingerprint of the sample-query distribution the filter was trained
    /// on (codec v2). Set at build time for fresh files, recovered from the
    /// filter block on first decode; `None` for v1 blocks and filterless
    /// files — drift detection then relies on observed FPR alone.
    fingerprint: Mutex<Option<QuerySketch>>,
    /// Filter probes against this file that answered positive for a range
    /// holding none of its keys (per-file false-positive evidence).
    probe_fp: AtomicU64,
    /// Filter probes that answered negative (true negatives).
    probe_tn: AtomicU64,
    /// How many times this file's filter has been re-trained (carried
    /// across [`SstReader::with_new_filter`] replacements). The FPR
    /// trigger backs off exponentially in this count, so a filter that
    /// cannot beat the threshold at its memory budget stops being
    /// re-trained over and over; the drift trigger is unaffected.
    retrain_count: u32,
    /// Set when compaction retires this file from the manifest: readers
    /// holding an older version snapshot may still probe it, but must not
    /// (re-)populate the block cache for it (see `Db`'s read path).
    retired: AtomicBool,
    /// On-disk format version (1 or 2); selects the block entry layout.
    pub format_version: u16,
    /// LSM level this file was written for (from the footer on reopen).
    pub level: u32,
    /// Smallest key in the file.
    pub min_key: Vec<u8>,
    /// Largest key in the file.
    pub max_key: Vec<u8>,
    /// Number of key-value entries, tombstones included.
    pub n_entries: u64,
    /// Number of tombstone entries among `n_entries` (0 for v1 files,
    /// whose format predates deletes).
    pub n_tombstones: u64,
    /// Bytes of the data section (excludes index, filter block, footer);
    /// the quantity level-size compaction triggers are measured in.
    pub file_bytes: u64,
}

impl std::fmt::Debug for SstReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SstReader")
            .field("id", &self.id)
            .field("v", &self.format_version)
            .field("level", &self.level)
            .field("entries", &self.n_entries)
            .field("tombstones", &self.n_tombstones)
            .field("blocks", &self.index.len())
            .finish()
    }
}

impl SstReader {
    /// Reopen a persisted SST: read the footer, validate magic/version/
    /// geometry, and load the block index and the (still-encoded) filter
    /// block. The filter itself is decoded lazily on first probe. Both
    /// format versions open; v1 files simply decode every entry as live.
    pub fn open(path: impl Into<PathBuf>, id: u64, expected_width: usize) -> Result<SstReader> {
        let path = path.into();
        let file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < SST_FOOTER_LEN {
            return Err(bad(&path, "file shorter than footer"));
        }
        let mut footer = [0u8; SST_FOOTER_LEN as usize];
        file.read_exact_at(&mut footer, file_len - SST_FOOTER_LEN)?;
        let version = le_u16(&footer, 48, &path)?;
        if footer[56..64] == SST_MAGIC_V3 {
            if version != 3 {
                return Err(bad(&path, "v3 magic with a non-3 format version"));
            }
        } else if footer[56..64] == SST_MAGIC {
            if version != 2 {
                return Err(bad(&path, "v2 magic with a non-2 format version"));
            }
        } else if footer[56..64] == SST_MAGIC_V1 {
            if version != 1 {
                return Err(bad(&path, "v1 magic with a non-1 format version"));
            }
        } else {
            return Err(bad(&path, "bad SST magic"));
        }
        let index_off = le_u64(&footer, 0, &path)?;
        let index_len = le_u64(&footer, 8, &path)?;
        let filter_off = le_u64(&footer, 16, &path)?;
        let filter_len = le_u64(&footer, 24, &path)?;
        let n_entries = le_u64(&footer, 32, &path)?;
        let level = le_u32(&footer, 40, &path)?;
        let width = le_u32(&footer, 44, &path)? as usize;
        let n_tombstones = if version >= 2 { le_u32(&footer, 50, &path)? as u64 } else { 0 };
        // v1/v2 keys are fixed-width: the footer width must match the
        // store's configured width exactly. v3 files are self-describing
        // (the footer width is only the filter-training width), so the
        // caller's expectation does not constrain them — a store can open
        // files trained at any canonical width.
        if version < 3 && width != expected_width {
            return Err(bad(&path, "key width mismatch"));
        }
        if width == 0 || width > 64 {
            return Err(bad(&path, "implausible filter key width"));
        }
        let meta_end = file_len - SST_FOOTER_LEN;
        if index_off.checked_add(index_len).is_none_or(|e| e > meta_end)
            || filter_off.checked_add(filter_len).is_none_or(|e| e > meta_end)
            || filter_off != index_off + index_len
        {
            return Err(bad(&path, "meta section out of bounds"));
        }
        if n_entries == 0 {
            return Err(bad(&path, "empty SST"));
        }
        if n_tombstones > n_entries {
            return Err(bad(&path, "more tombstones than entries"));
        }

        // Index block: entries + trailing CRC-32.
        let mut raw = vec![0u8; index_len as usize];
        file.read_exact_at(&mut raw, index_off)?;
        if raw.len() < 8 {
            return Err(bad(&path, "index block too short"));
        }
        let crc_off = raw.len() - 4;
        let (body, _) = raw.split_at(crc_off);
        let stored_crc = le_u32(&raw, crc_off, &path)?;
        if crc32(body) != stored_crc {
            return Err(bad(&path, "index checksum mismatch"));
        }
        let n_blocks = le_u32(body, 0, &path)? as usize;
        if n_blocks == 0 {
            return Err(bad(&path, "index block length mismatch"));
        }
        let mut index = Vec::with_capacity(n_blocks.min(body.len()));
        let mut pos = 4usize;
        if version >= 3 {
            // v3 index: length-prefixed boundary keys per block.
            let read_key = |pos: &mut usize| -> Result<Vec<u8>> {
                let lo = *pos;
                if lo + 2 > body.len() {
                    return Err(bad(&path, "index entry overruns the block"));
                }
                let len = le_u16(body, lo, &path)? as usize;
                if len == 0 || lo + 2 + len > body.len() {
                    return Err(bad(&path, "index key length out of bounds"));
                }
                *pos = lo + 2 + len;
                Ok(body[lo + 2..lo + 2 + len].to_vec())
            };
            for _ in 0..n_blocks {
                let first_key = read_key(&mut pos)?;
                let last_key = read_key(&mut pos)?;
                if pos + 12 > body.len() {
                    return Err(bad(&path, "index entry overruns the block"));
                }
                let offset = le_u64(body, pos, &path)?;
                let len = le_u32(body, pos + 8, &path)?;
                pos += 12;
                if first_key > last_key
                    || offset.checked_add(len as u64).is_none_or(|e| e > index_off)
                {
                    return Err(bad(&path, "index entry out of bounds"));
                }
                index.push(BlockMeta { first_key, last_key, offset, len });
            }
            if pos != body.len() {
                return Err(bad(&path, "index block length mismatch"));
            }
        } else {
            // v1/v2 index: fixed-width boundary keys per block.
            let entry_len = 2 * width + 12;
            if body.len() != 4 + n_blocks * entry_len {
                return Err(bad(&path, "index block length mismatch"));
            }
            for _ in 0..n_blocks {
                let first_key = body[pos..pos + width].to_vec();
                let last_key = body[pos + width..pos + 2 * width].to_vec();
                pos += 2 * width;
                let offset = le_u64(body, pos, &path)?;
                let len = le_u32(body, pos + 8, &path)?;
                pos += 12;
                if first_key > last_key
                    || offset.checked_add(len as u64).is_none_or(|e| e > index_off)
                {
                    return Err(bad(&path, "index entry out of bounds"));
                }
                index.push(BlockMeta { first_key, last_key, offset, len });
            }
        }
        let (min_key, max_key) = match (index.first(), index.last()) {
            (Some(f), Some(l)) => (f.first_key.clone(), l.last_key.clone()),
            _ => return Err(bad(&path, "index block length mismatch")),
        };

        let mut filter_bytes = vec![0u8; filter_len as usize];
        file.read_exact_at(&mut filter_bytes, filter_off)?;

        Ok(SstReader {
            id,
            path,
            file,
            width,
            index,
            index_len,
            filter_block_len: filter_bytes.len(),
            pending_filter_bytes: Mutex::new(rank::SST_META, filter_bytes),
            filter: OnceLock::new(),
            fingerprint: Mutex::new(rank::SST_META, None),
            probe_fp: AtomicU64::new(0),
            probe_tn: AtomicU64::new(0),
            retrain_count: 0,
            retired: AtomicBool::new(false),
            format_version: version,
            level,
            min_key,
            max_key,
            n_entries,
            n_tombstones,
            file_bytes: index_off,
        })
    }

    /// Number of data blocks.
    pub fn n_blocks(&self) -> usize {
        self.index.len()
    }

    /// The canonical filter-training width: probes against this file's
    /// filter must be NUL-padded/truncated to this many bytes (for v1/v2
    /// files it is also the exact key width).
    pub fn filter_width(&self) -> usize {
        self.width
    }

    /// Index metadata of block `i`.
    pub fn block_meta(&self, i: usize) -> &BlockMeta {
        &self.index[i]
    }

    /// The per-file range filter, decoding the persisted filter block on
    /// first use. Corrupt or unknown-kind filter bytes never fail a query:
    /// they degrade to "no filter" (every probe positive) and bump
    /// `stats.filters_degraded`.
    pub fn filter(&self, stats: &Stats) -> Option<&dyn RangeFilter> {
        self.filter
            .get_or_init(|| {
                let bytes = std::mem::take(
                    &mut *self.pending_filter_bytes.lock().unwrap_or_else(PoisonError::into_inner),
                );
                if bytes.is_empty() {
                    return None;
                }
                let t0 = Instant::now();
                match FilterCodec::decode(&bytes) {
                    Ok(decoded) if !decoded.degraded => {
                        stats.filter_load_ns.add(t0.elapsed().as_nanos() as u64);
                        stats.filters_loaded.inc();
                        *self.fingerprint.lock().unwrap_or_else(PoisonError::into_inner) =
                            decoded.fingerprint;
                        Some(decoded.filter)
                    }
                    // Unknown kind tag (valid envelope from a newer build)
                    // or corrupt bytes: either way this SST serves without
                    // a real filter — count it degraded, not loaded.
                    Ok(_) | Err(_) => {
                        stats.filters_degraded.inc();
                        None
                    }
                }
            })
            .as_deref()
    }

    /// The training fingerprint of this file's filter, if one is known
    /// (decoded from a codec-v2 filter block or set at build time).
    pub fn training_fingerprint(&self) -> Option<QuerySketch> {
        self.fingerprint.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Record the outcome of one real filter probe against this file.
    pub fn record_probe(&self, false_positive: bool) {
        if false_positive {
            self.probe_fp.fetch_add(1, Ordering::Relaxed);
        } else {
            self.probe_tn.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Filter probes recorded against this file since it was opened (or
    /// since its filter was last re-trained — the replacement reader starts
    /// a fresh observation window).
    pub fn observed_probes(&self) -> u64 {
        self.probe_fp.load(Ordering::Relaxed) + self.probe_tn.load(Ordering::Relaxed)
    }

    /// How many times this file's filter has been re-trained in place.
    pub fn retrain_count(&self) -> u32 {
        self.retrain_count
    }

    /// Empirical FPR of this file's filter over the current observation
    /// window: `fp / (fp + tn)`, `0` before any probe.
    pub fn observed_fpr(&self) -> f64 {
        let fp = self.probe_fp.load(Ordering::Relaxed);
        let total = fp + self.probe_tn.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            fp as f64 / total as f64
        }
    }

    /// Atomically replace this file's filter block (and footer) with a
    /// re-trained filter, leaving every data and index byte untouched.
    ///
    /// The rewrite goes through the same `.sst.tmp`-then-rename path as the
    /// writer: data + index are copied from the live file, the new filter
    /// block and footer are appended, the file is synced and renamed over
    /// the original, and the directory is synced — so a crash at any point
    /// leaves either the old or the new filter, never a torn file. The
    /// footer keeps the file's original format version (a v1 file stays
    /// v1: its data blocks are untouched and must keep decoding with the
    /// v1 entry layout). Readers holding this reader keep serving from the
    /// old inode; the returned replacement reader (same id, fresh probe
    /// counters, the new filter pre-installed) is what the caller swaps
    /// into the manifest.
    pub fn with_new_filter(
        &self,
        filter: Box<dyn RangeFilter>,
        sketch: QuerySketch,
        stats: &Stats,
    ) -> Result<SstReader> {
        let filter_bytes = match FilterCodec::encode_with_fingerprint(filter.as_ref(), &sketch) {
            Ok(bytes) => bytes,
            Err(_) => {
                stats.filters_unpersisted.inc();
                Vec::new()
            }
        };
        // Data section + index block, byte-identical from the live inode.
        let mut head = vec![0u8; (self.file_bytes + self.index_len) as usize];
        self.file.read_exact_at(&mut head, 0)?;
        let footer = encode_footer(
            self.file_bytes,
            self.index_len,
            filter_bytes.len() as u64,
            self.n_entries,
            self.n_tombstones,
            self.level,
            self.width,
            self.format_version,
        )?;
        let dir = self.path.parent().unwrap_or(Path::new("."));
        let tmp_path = dir.join(format!("{:08}.sst.tmp", self.id));
        let tmp = File::create(&tmp_path)?;
        tmp.write_all_at(&head, 0)?;
        tmp.write_all_at(&filter_bytes, head.len() as u64)?;
        tmp.write_all_at(&footer, (head.len() + filter_bytes.len()) as u64)?;
        tmp.sync_all()?;
        std::fs::rename(&tmp_path, &self.path)?;
        File::open(dir)?.sync_all()?;

        let file = File::open(&self.path)?;
        let slot = OnceLock::new();
        let _ = slot.set(Some(filter));
        Ok(SstReader {
            id: self.id,
            path: self.path.clone(),
            file,
            width: self.width,
            index: self.index.clone(),
            index_len: self.index_len,
            filter_block_len: filter_bytes.len(),
            pending_filter_bytes: Mutex::new(rank::SST_META, Vec::new()),
            filter: slot,
            fingerprint: Mutex::new(rank::SST_META, (!sketch.is_empty()).then_some(sketch)),
            probe_fp: AtomicU64::new(0),
            probe_tn: AtomicU64::new(0),
            retrain_count: self.retrain_count + 1,
            retired: AtomicBool::new(false),
            format_version: self.format_version,
            level: self.level,
            min_key: self.min_key.clone(),
            max_key: self.max_key.clone(),
            n_entries: self.n_entries,
            n_tombstones: self.n_tombstones,
            file_bytes: self.file_bytes,
        })
    }

    /// Has the filter block been decoded (or was it built in-process)?
    pub fn filter_ready(&self) -> bool {
        self.filter.get().is_some()
    }

    /// Is a real (non-degraded) filter currently live for this file?
    /// `false` while the lazy decode is still pending — checking this
    /// never forces a decode.
    pub fn has_live_filter(&self) -> bool {
        matches!(self.filter.get(), Some(Some(_)))
    }

    /// Size of the persisted filter block in bytes (0 = none).
    pub fn filter_block_len(&self) -> usize {
        self.filter_block_len
    }

    /// Does this file's key range intersect `[lo, hi]`?
    pub fn overlaps(&self, lo: &[u8], hi: &[u8]) -> bool {
        !(self.max_key.as_slice() < lo || self.min_key.as_slice() > hi)
    }

    /// Index of the first block that could contain a key ≥ `lo`.
    pub fn first_candidate_block(&self, lo: &[u8]) -> usize {
        self.index.partition_point(|m| m.last_key.as_slice() < lo)
    }

    /// Read and decode block `i` from disk (no caching here; the DB layer
    /// caches). Updates I/O statistics. A block that fails validation —
    /// bad codec, reserved flag bits, lengths escaping the buffer —
    /// surfaces as [`Error::Corruption`] with the file path attached.
    pub fn read_block(&self, i: usize, stats: &Stats) -> Result<Block> {
        let meta = &self.index[i];
        let mut buf = vec![0u8; meta.len as usize];
        self.file.read_exact_at(&mut buf, meta.offset)?;
        stats.blocks_read.inc();
        stats.bytes_read.add(meta.len as u64);
        let decoded = if self.format_version >= 3 {
            Block::decode_v3(&buf)
        } else {
            Block::decode(&buf, self.width, self.format_version >= 2)
        };
        decoded.map_err(|e| match e {
            Error::Corruption(d) => {
                Error::corruption(format!("{}: block {i}: {d}", self.path.display()))
            }
            other => other,
        })
    }

    /// Mark this file as retired from the version set (compaction consumed
    /// it). Readers on older snapshots keep working; the flag only stops
    /// them from re-populating the block cache for a dead file.
    pub fn mark_retired(&self) {
        self.retired.store(true, Ordering::Release);
    }

    /// Has compaction retired this file from the version set?
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }

    /// Delete the backing file (called when the SST leaves the version set).
    pub fn delete_file(&self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Streaming SST writer: feed sorted entries, get a reader back. Always
/// emits format v3 (variable-length keys, entry flags, tombstone
/// support). `width` is the canonical filter-training width, not a key
/// length constraint: keys of any non-zero length are accepted, and each
/// is NUL-padded/truncated to `width` bytes before feeding the filter.
///
/// Writes stream into `NNNNNNNN.sst.tmp`; only after the footer is written
/// and synced does [`SstWriter::finish`] rename the file to its final
/// `.sst` name. A crash mid-write therefore leaves a `.tmp` straggler
/// (cleaned up by the next `Db::open`) instead of a footerless `.sst` that
/// would poison directory recovery.
pub struct SstWriter {
    id: u64,
    /// Final `.sst` path the file is renamed to on successful finish.
    path: PathBuf,
    /// In-progress `.sst.tmp` path the bytes stream into.
    tmp_path: PathBuf,
    file: File,
    width: usize,
    block_size: usize,
    level: u32,
    builder: VarBlockBuilder,
    index: Vec<BlockMeta>,
    offset: u64,
    /// Flat canonical (width-padded) keys, tombstones included, for the
    /// filter. Adjacent duplicates (distinct keys that collide after
    /// truncation to `width`) are dropped so the set stays strictly
    /// ascending.
    keys: Vec<u8>,
    /// The raw (unpadded) previous key, for the ordering assertion.
    last_raw_key: Vec<u8>,
    n_entries: u64,
    n_tombstones: u64,
}

impl SstWriter {
    /// Start a new SST `NNNNNNNN.sst.tmp` in `dir` (renamed to `.sst` by
    /// [`SstWriter::finish`]).
    pub fn create(
        dir: &Path,
        id: u64,
        width: usize,
        block_size: usize,
        level: u32,
    ) -> Result<Self> {
        let path = dir.join(format!("{id:08}.sst"));
        let tmp_path = dir.join(format!("{id:08}.sst.tmp"));
        let file = File::create(&tmp_path)?;
        Ok(SstWriter {
            id,
            path,
            tmp_path,
            file,
            width,
            block_size,
            level,
            builder: VarBlockBuilder::new(),
            index: Vec::new(),
            offset: 0,
            keys: Vec::new(),
            last_raw_key: Vec::new(),
            n_entries: 0,
            n_tombstones: 0,
        })
    }

    /// Append a live entry; keys must arrive in strictly ascending order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.push(key, Some(value))
    }

    /// Append a tombstone entry for `key` (same ordering rules as
    /// [`SstWriter::add`]). The key still feeds the file's range filter:
    /// a probe for it must pass so the delete is seen before any older
    /// version of the key in a deeper level.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.push(key, None)
    }

    fn push(&mut self, key: &[u8], value: Option<&[u8]>) -> Result<()> {
        debug_assert!(!key.is_empty(), "keys are non-empty");
        debug_assert!(
            self.n_entries == 0 || self.last_raw_key.as_slice() < key,
            "keys must be strictly ascending"
        );
        self.builder.add(key, value);
        // Canonicalize for the filter: pad/truncate to the training
        // width. Padding is monotone non-strict, so adjacent canonical
        // duplicates can appear — drop them to keep the set strictly
        // ascending (the filter only needs set membership).
        let canonical = pad_key(key, self.width);
        let n = self.keys.len();
        if n < self.width || self.keys[n - self.width..] != canonical[..] {
            self.keys.extend_from_slice(&canonical);
        }
        self.last_raw_key.clear();
        self.last_raw_key.extend_from_slice(key);
        self.n_entries += 1;
        if value.is_none() {
            self.n_tombstones += 1;
        }
        if self.builder.raw_len() >= self.block_size {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.builder.is_empty() {
            return Ok(());
        }
        let builder = std::mem::take(&mut self.builder);
        let (disk, first, last) = builder.finish();
        self.file.write_all(&disk)?;
        self.index.push(BlockMeta {
            first_key: first,
            last_key: last,
            offset: self.offset,
            len: disk.len() as u32,
        });
        self.offset += disk.len() as u64;
        Ok(())
    }

    /// Current on-disk size of the data section (used by the compactor to
    /// split output files).
    pub fn bytes_written(&self) -> u64 {
        self.offset + self.builder.raw_len() as u64
    }

    /// Entries appended so far (tombstones included).
    pub fn n_entries(&self) -> u64 {
        self.n_entries
    }

    /// Serialize the v3 block index: count, entries with length-prefixed
    /// boundary keys, trailing CRC-32.
    fn encode_index(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.index.len() * 48 + 4);
        out.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for m in &self.index {
            out.extend_from_slice(&(m.first_key.len() as u16).to_le_bytes());
            out.extend_from_slice(&m.first_key);
            out.extend_from_slice(&(m.last_key.len() as u16).to_le_bytes());
            out.extend_from_slice(&m.last_key);
            out.extend_from_slice(&m.offset.to_le_bytes());
            out.extend_from_slice(&m.len.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Finalize: build the per-file range filter from this SST's keys and
    /// the current sample-query queue (§6.1 "used in conjunction with the
    /// keys in each SST file to determine the optimal filter design for
    /// each SST file at construction time"), embed its encoding in the
    /// file's filter block, and write the index + footer so the file is
    /// fully self-describing for recovery. Tombstone keys are part of the
    /// filter's key set (see the module docs for why).
    pub fn finish(
        mut self,
        factory: &dyn FilterFactory,
        queue: &QueryQueue,
        bits_per_key: f64,
        stats: &Stats,
    ) -> Result<SstReader> {
        self.flush_block()?;
        assert!(self.n_entries > 0, "empty SST");
        let (min_key, max_key) = match (self.index.first(), self.index.last()) {
            (Some(f), Some(l)) => (f.first_key.clone(), l.last_key.clone()),
            _ => return Err(Error::corruption("finish() on an SST with no blocks")),
        };

        let t0 = Instant::now();
        let keyset = KeySet::from_sorted_canonical(std::mem::take(&mut self.keys), self.width);
        let mut samples = queue.snapshot(self.width);
        samples.retain_empty(&keyset);
        let m_bits = (bits_per_key * keyset.len() as f64) as u64;
        let filter = (m_bits > 0).then(|| factory.build(&keyset, &samples, m_bits));
        stats.filter_build_ns.add(t0.elapsed().as_nanos() as u64);
        stats.filters_built.inc();

        // The training fingerprint: where (relative to this file's key
        // range) the sample queries the filter was trained on landed. It
        // rides along in the codec-v2 filter block so drift detection
        // survives a crash/reopen. The samples are canonical-width keys,
        // so the file's boundary keys are canonicalized the same way.
        let sketch = QuerySketch::from_queries(
            samples.iter(),
            &pad_key(&min_key, self.width),
            &pad_key(&max_key, self.width),
        );

        // Encode the filter block; a filter without a persistent form
        // leaves the block empty; after a reopen that file simply has no
        // filter (recovery never retrains).
        let filter_bytes = match &filter {
            Some(f) => match FilterCodec::encode_with_fingerprint(f.as_ref(), &sketch) {
                Ok(bytes) => bytes,
                Err(_) => {
                    stats.filters_unpersisted.inc();
                    Vec::new()
                }
            },
            None => Vec::new(),
        };

        let index_bytes = self.encode_index();
        self.file.write_all(&index_bytes)?;
        self.file.write_all(&filter_bytes)?;
        let footer = encode_footer(
            self.offset,
            index_bytes.len() as u64,
            filter_bytes.len() as u64,
            self.n_entries,
            self.n_tombstones,
            self.level,
            self.width,
            SST_FORMAT_VERSION,
        )?;
        self.file.write_all(&footer)?;
        self.file.sync_all()?;
        // The file is complete and durable: atomically give it its real
        // name, then sync the directory so the rename itself survives a
        // power failure. Recovery only ever sees fully written `.sst`s.
        std::fs::rename(&self.tmp_path, &self.path)?;
        if let Some(dir) = self.path.parent() {
            File::open(dir)?.sync_all()?;
        }

        let file = File::open(&self.path)?;
        let slot = OnceLock::new();
        let has_filter = filter.is_some();
        let _ = slot.set(filter);
        Ok(SstReader {
            id: self.id,
            path: self.path,
            file,
            width: self.width,
            index: self.index,
            index_len: index_bytes.len() as u64,
            filter_block_len: filter_bytes.len(),
            pending_filter_bytes: Mutex::new(rank::SST_META, Vec::new()),
            filter: slot,
            fingerprint: Mutex::new(
                rank::SST_META,
                (has_filter && !sketch.is_empty()).then_some(sketch),
            ),
            probe_fp: AtomicU64::new(0),
            probe_tn: AtomicU64::new(0),
            retrain_count: 0,
            retired: AtomicBool::new(false),
            format_version: SST_FORMAT_VERSION,
            level: self.level,
            min_key,
            max_key,
            n_entries: self.n_entries,
            n_tombstones: self.n_tombstones,
            file_bytes: self.offset,
        })
    }
}

/// Convenience wrapper: iterate every entry of an SST in order (used by
/// compaction and the adaptive re-train key scan). Yields tombstones as
/// `None` values.
pub struct SstScanner {
    sst: Arc<SstReader>,
    stats: Arc<Stats>,
    block_idx: usize,
    entry_idx: usize,
    block: Option<Block>,
}

impl SstScanner {
    /// Start scanning `sst` from its first entry.
    pub fn new(sst: Arc<SstReader>, stats: Arc<Stats>) -> Self {
        SstScanner { sst, stats, block_idx: 0, entry_idx: 0, block: None }
    }

    /// Next `(key, Some(value) | None)` entry, `Ok(None)` at the end.
    pub fn try_next(&mut self) -> Result<Option<Entry>> {
        loop {
            if self.block.is_none() {
                if self.block_idx >= self.sst.n_blocks() {
                    return Ok(None);
                }
                self.block = Some(self.sst.read_block(self.block_idx, &self.stats)?);
                self.entry_idx = 0;
            }
            let Some(block) = self.block.as_ref() else {
                // Unreachable: the branch above always fills `self.block`.
                return Ok(None);
            };
            if self.entry_idx < block.len() {
                let (k, v) = block.entry(self.entry_idx);
                let out = (k.to_vec(), v.map(<[u8]>::to_vec));
                self.entry_idx += 1;
                return Ok(Some(out));
            }
            self.block = None;
            self.block_idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter_hook::ProteusFactory;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("proteus-sst-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_sample(dir: &Path, id: u64, level: u32, n: u64) -> SstReader {
        let mut w = SstWriter::create(dir, id, 8, 4096, level).unwrap();
        for i in 0..n {
            w.add(&(i * 7).to_be_bytes(), &[i as u8; 32]).unwrap();
        }
        let stats = Stats::default();
        let queue = QueryQueue::new(16, 1);
        w.finish(&ProteusFactory::default(), &queue, 10.0, &stats).unwrap()
    }

    #[test]
    fn write_reopen_roundtrip_preserves_index_and_filter() {
        let dir = tmpdir("roundtrip");
        let written = write_sample(&dir, 3, 2, 5_000);
        let stats = Stats::default();
        let reopened = SstReader::open(dir.join("00000003.sst"), 3, 8).unwrap();
        assert_eq!(reopened.format_version, SST_FORMAT_VERSION);
        assert_eq!(reopened.level, 2);
        assert_eq!(reopened.n_entries, written.n_entries);
        assert_eq!(reopened.n_tombstones, 0);
        assert_eq!(reopened.n_blocks(), written.n_blocks());
        assert_eq!(reopened.min_key, written.min_key);
        assert_eq!(reopened.max_key, written.max_key);
        assert_eq!(reopened.file_bytes, written.file_bytes);
        assert!(!reopened.filter_ready(), "filter decode must be lazy");
        let f = reopened.filter(&stats).expect("persisted filter");
        assert_eq!(stats.filters_loaded.get(), 1);
        assert_eq!(stats.filters_degraded.get(), 0);
        let g = written.filter(&stats).unwrap();
        assert_eq!(f.size_bits(), g.size_bits());
        assert_eq!(f.name(), g.name());
        // Block payloads identical.
        for b in 0..reopened.n_blocks() {
            let x = reopened.read_block(b, &stats).unwrap();
            let y = written.read_block(b, &stats).unwrap();
            assert_eq!(x.len(), y.len());
            for i in 0..x.len() {
                assert_eq!(x.key(i), y.key(i));
                assert_eq!(x.value(i), y.value(i));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tombstones_roundtrip_and_feed_the_filter() {
        let dir = tmpdir("tombstones");
        let stats = Stats::default();
        let queue = QueryQueue::new(16, 1);
        let mut w = SstWriter::create(&dir, 5, 8, 512, 0).unwrap();
        for i in 0..1_000u64 {
            let k = (i * 9).to_be_bytes();
            if i % 3 == 0 {
                w.delete(&k).unwrap();
            } else {
                w.add(&k, &[i as u8; 24]).unwrap();
            }
        }
        let written = w.finish(&ProteusFactory::default(), &queue, 12.0, &stats).unwrap();
        assert_eq!(written.n_entries, 1_000);
        assert_eq!(written.n_tombstones, 334);

        let reopened = SstReader::open(dir.join("00000005.sst"), 5, 8).unwrap();
        assert_eq!(reopened.n_tombstones, 334);
        // Tombstone keys must pass the filter: skipping a file that holds
        // a delete would resurrect the key from a deeper level.
        let f = reopened.filter(&stats).expect("filter");
        for i in (0..1_000u64).step_by(3) {
            assert!(f.may_contain(&(i * 9).to_be_bytes()), "tombstone key {i} filtered out");
        }
        // The scanner yields tombstones as None, in order.
        let fresh = Arc::new(Stats::default());
        let mut scan = SstScanner::new(Arc::new(reopened), fresh);
        let mut i = 0u64;
        while let Some((k, v)) = scan.try_next().unwrap() {
            assert_eq!(k, (i * 9).to_be_bytes());
            assert_eq!(v.is_none(), i.is_multiple_of(3), "entry {i}");
            i += 1;
        }
        assert_eq!(i, 1_000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_filter_block_degrades_without_panicking() {
        let dir = tmpdir("corrupt-filter");
        let written = write_sample(&dir, 1, 0, 2_000);
        drop(written);
        let path = dir.join("00000001.sst");
        // Flip one byte inside the filter block.
        let mut bytes = std::fs::read(&path).unwrap();
        let flen = bytes.len();
        let filter_off =
            u64::from_le_bytes(bytes[flen - 48..flen - 40].try_into().unwrap()) as usize;
        bytes[filter_off + 20] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let stats = Stats::default();
        let reopened = SstReader::open(&path, 1, 8).unwrap();
        assert!(reopened.filter(&stats).is_none(), "corrupt filter must degrade");
        assert_eq!(stats.filters_degraded.get(), 1);
        assert_eq!(stats.filters_loaded.get(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_or_footer_is_an_open_error() {
        let dir = tmpdir("corrupt-index");
        drop(write_sample(&dir, 1, 0, 1_000));
        let path = dir.join("00000001.sst");
        let orig = std::fs::read(&path).unwrap();

        // Truncations anywhere in the meta section fail to open.
        for cut in [orig.len() - 1, orig.len() - SST_FOOTER_LEN as usize - 3, 10] {
            std::fs::write(&path, &orig[..cut]).unwrap();
            assert!(SstReader::open(&path, 1, 8).is_err(), "cut {cut}");
        }
        // Index corruption is caught by the index CRC.
        let flen = orig.len();
        let index_off = u64::from_le_bytes(orig[flen - 64..flen - 56].try_into().unwrap()) as usize;
        let mut bad = orig.clone();
        bad[index_off + 6] ^= 1;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(SstReader::open(&path, 1, 8), Err(Error::Corruption(_))));
        // A magic/version mismatch (v2 magic, version byte clobbered).
        let mut bad = orig.clone();
        bad[flen - 16] = 7; // footer offset 48: format version low byte
        std::fs::write(&path, &bad).unwrap();
        assert!(SstReader::open(&path, 1, 8).is_err());
        // v3 files are self-describing: the caller's expected width is
        // only a constraint for fixed-width v1/v2 files, so a fresh file
        // opens under any expected width (its filter width rides in the
        // footer).
        std::fs::write(&path, &orig).unwrap();
        let reopened = SstReader::open(&path, 1, 16).unwrap();
        assert_eq!(reopened.filter_width(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn var_len_string_keys_roundtrip_with_filter_and_scan() {
        let dir = tmpdir("var-len");
        let stats = Stats::default();
        let queue = QueryQueue::new(16, 1);
        // URL-ish keys of wildly different lengths, incl. shared prefixes
        // that collide after truncation to the 8-byte filter width.
        let mut keys: Vec<Vec<u8>> = (0..800u32)
            .map(|i| {
                format!("http://host-{:03}.example.com/{}", i / 3, "p".repeat(i as usize % 9))
                    .into_bytes()
            })
            .collect();
        keys.push(vec![b'z'; 1024]);
        keys.push(vec![0x01]);
        keys.sort();
        keys.dedup();
        let mut w = SstWriter::create(&dir, 9, 8, 1024, 1).unwrap();
        for (i, k) in keys.iter().enumerate() {
            if i % 7 == 2 {
                w.delete(k).unwrap();
            } else {
                w.add(k, &[i as u8; 5]).unwrap();
            }
        }
        let written = w.finish(&ProteusFactory::default(), &queue, 10.0, &stats).unwrap();
        assert_eq!(written.format_version, 3);
        assert_eq!(written.min_key, keys[0]);
        assert_eq!(written.max_key, *keys.last().unwrap());

        let reopened = SstReader::open(dir.join("00000009.sst"), 9, 8).unwrap();
        assert_eq!(reopened.filter_width(), 8);
        assert_eq!(reopened.n_entries, keys.len() as u64);
        assert_eq!(reopened.min_key, written.min_key);
        assert_eq!(reopened.max_key, written.max_key);
        // Zero false negatives: every key (tombstones included) must pass
        // the filter when probed at the canonical width.
        let f = reopened.filter(&stats).expect("filter");
        for k in &keys {
            assert!(f.may_contain(&pad_key(k, 8)), "false negative for {k:?}");
        }
        // The scanner returns every raw key byte-exactly, in order.
        let fresh = Arc::new(Stats::default());
        let mut scan = SstScanner::new(Arc::new(reopened), fresh);
        let mut i = 0usize;
        while let Some((k, v)) = scan.try_next().unwrap() {
            assert_eq!(k, keys[i], "entry {i}");
            assert_eq!(v.is_none(), i % 7 == 2, "entry {i}");
            i += 1;
        }
        assert_eq!(i, keys.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Sorted String Table files: immutable on-disk runs of key-value pairs
//! with an in-memory index and a pluggable per-file range filter (§6.1's
//! integration point: "Static filters … are built on every SST file").

use crate::block::{Block, BlockBuilder};
use crate::filter_hook::FilterFactory;
use crate::query_queue::QueryQueue;
use crate::stats::Stats;
use proteus_core::keyset::KeySet;
use proteus_core::RangeFilter;
use std::fs::File;
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Index entry for one block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    pub first_key: Vec<u8>,
    pub last_key: Vec<u8>,
    pub offset: u64,
    pub len: u32,
}

/// An immutable SST file handle.
pub struct SstReader {
    pub id: u64,
    path: PathBuf,
    file: File,
    width: usize,
    index: Vec<BlockMeta>,
    pub filter: Option<Box<dyn RangeFilter>>,
    pub min_key: Vec<u8>,
    pub max_key: Vec<u8>,
    pub n_entries: u64,
    pub file_bytes: u64,
}

impl std::fmt::Debug for SstReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SstReader")
            .field("id", &self.id)
            .field("entries", &self.n_entries)
            .field("blocks", &self.index.len())
            .finish()
    }
}

impl SstReader {
    pub fn n_blocks(&self) -> usize {
        self.index.len()
    }

    pub fn block_meta(&self, i: usize) -> &BlockMeta {
        &self.index[i]
    }

    /// Does this file's key range intersect `[lo, hi]`?
    pub fn overlaps(&self, lo: &[u8], hi: &[u8]) -> bool {
        !(self.max_key.as_slice() < lo || self.min_key.as_slice() > hi)
    }

    /// Index of the first block that could contain a key ≥ `lo`.
    pub fn first_candidate_block(&self, lo: &[u8]) -> usize {
        self.index.partition_point(|m| m.last_key.as_slice() < lo)
    }

    /// Read and decode block `i` from disk (no caching here; the DB layer
    /// caches). Updates I/O statistics.
    pub fn read_block(&self, i: usize, stats: &Stats) -> Block {
        let meta = &self.index[i];
        let mut buf = vec![0u8; meta.len as usize];
        self.file.read_exact_at(&mut buf, meta.offset).expect("sst read");
        stats.blocks_read.inc();
        stats.bytes_read.add(meta.len as u64);
        Block::decode(&buf, self.width)
    }

    /// Delete the backing file (called when the SST leaves the version set).
    pub fn delete_file(&self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Streaming SST writer: feed sorted entries, get a reader back.
pub struct SstWriter {
    id: u64,
    path: PathBuf,
    file: File,
    width: usize,
    block_size: usize,
    builder: BlockBuilder,
    index: Vec<BlockMeta>,
    offset: u64,
    keys: Vec<u8>, // flat canonical keys for filter construction
    n_entries: u64,
}

impl SstWriter {
    pub fn create(dir: &Path, id: u64, width: usize, block_size: usize) -> std::io::Result<Self> {
        let path = dir.join(format!("{id:08}.sst"));
        let file = File::create(&path)?;
        Ok(SstWriter {
            id,
            path,
            file,
            width,
            block_size,
            builder: BlockBuilder::new(width),
            index: Vec::new(),
            offset: 0,
            keys: Vec::new(),
            n_entries: 0,
        })
    }

    /// Append an entry; keys must arrive in strictly ascending order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> std::io::Result<()> {
        debug_assert_eq!(key.len(), self.width);
        debug_assert!(
            self.keys.is_empty() || &self.keys[self.keys.len() - self.width..] < key,
            "keys must be strictly ascending"
        );
        self.builder.add(key, value);
        self.keys.extend_from_slice(key);
        self.n_entries += 1;
        if self.builder.raw_len() >= self.block_size {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> std::io::Result<()> {
        if self.builder.is_empty() {
            return Ok(());
        }
        let builder = std::mem::replace(&mut self.builder, BlockBuilder::new(self.width));
        let (disk, first, last) = builder.finish();
        self.file.write_all(&disk)?;
        self.index.push(BlockMeta {
            first_key: first,
            last_key: last,
            offset: self.offset,
            len: disk.len() as u32,
        });
        self.offset += disk.len() as u64;
        Ok(())
    }

    /// Current on-disk size (used by the compactor to split output files).
    pub fn bytes_written(&self) -> u64 {
        self.offset + self.builder.raw_len() as u64
    }

    pub fn n_entries(&self) -> u64 {
        self.n_entries
    }

    /// Finalize: build the per-file range filter from this SST's keys and
    /// the current sample-query queue (§6.1 "used in conjunction with the
    /// keys in each SST file to determine the optimal filter design for
    /// each SST file at construction time").
    pub fn finish(
        mut self,
        factory: &dyn FilterFactory,
        queue: &QueryQueue,
        bits_per_key: f64,
        stats: &Stats,
    ) -> std::io::Result<SstReader> {
        self.flush_block()?;
        self.file.sync_all()?;
        assert!(self.n_entries > 0, "empty SST");
        let min_key = self.index.first().unwrap().first_key.clone();
        let max_key = self.index.last().unwrap().last_key.clone();

        let t0 = Instant::now();
        let keyset = KeySet::from_sorted_canonical(self.keys, self.width);
        let mut samples = queue.snapshot(self.width);
        samples.retain_empty(&keyset);
        let m_bits = (bits_per_key * keyset.len() as f64) as u64;
        let filter = (m_bits > 0).then(|| factory.build(&keyset, &samples, m_bits));
        stats.filter_build_ns.add(t0.elapsed().as_nanos() as u64);
        stats.filters_built.inc();

        let file = File::open(&self.path)?;
        Ok(SstReader {
            id: self.id,
            path: self.path,
            file,
            width: self.width,
            index: self.index,
            filter,
            min_key,
            max_key,
            n_entries: self.n_entries,
            file_bytes: self.offset,
        })
    }
}

/// Convenience wrapper: iterate every entry of an SST in order (used by
/// compaction).
pub struct SstScanner {
    sst: Arc<SstReader>,
    stats: Arc<Stats>,
    block_idx: usize,
    entry_idx: usize,
    block: Option<Block>,
}

impl SstScanner {
    pub fn new(sst: Arc<SstReader>, stats: Arc<Stats>) -> Self {
        SstScanner { sst, stats, block_idx: 0, entry_idx: 0, block: None }
    }

    /// Next `(key, value)` pair, or `None` at the end.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Vec<u8>, Vec<u8>)> {
        loop {
            if self.block.is_none() {
                if self.block_idx >= self.sst.n_blocks() {
                    return None;
                }
                self.block = Some(self.sst.read_block(self.block_idx, &self.stats));
                self.entry_idx = 0;
            }
            let block = self.block.as_ref().unwrap();
            if self.entry_idx < block.len() {
                let k = block.key(self.entry_idx).to_vec();
                let v = block.value(self.entry_idx).to_vec();
                self.entry_idx += 1;
                return Some((k, v));
            }
            self.block = None;
            self.block_idx += 1;
        }
    }
}

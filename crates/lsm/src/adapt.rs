//! The adaptive filter lifecycle: closing the paper's self-design loop
//! *online*.
//!
//! Proteus's §4–§6 claim is that the filter re-designs itself as the
//! workload changes — but a filter is only trained when its SST is written
//! (flush/compaction). A long-lived file whose query distribution shifts
//! after construction silently decays toward worst-case FPR. This module
//! supplies the two decisions that close the loop, and the mechanism:
//!
//! * **When to act** — [`flag_reason`] flags a file when either signal
//!   crosses its configured threshold:
//!   1. *Observed FPR*: every real filter probe records a per-file
//!      false-positive / true-negative outcome ([`SstReader::record_probe`]);
//!      once `adapt_min_probes` probes accumulate, an empirical FPR above
//!      `adapt_fpr_threshold` flags the file.
//!   2. *Distribution drift*: each filter block persists a
//!      [`QuerySketch`] fingerprint of the sample it was trained on
//!      (codec v2). The live sample queue, sketched over the same anchors
//!      (the file's key range), is compared by total-variation distance;
//!      divergence above `adapt_divergence_threshold` flags the file
//!      *before* the FPR damage fully materializes.
//! * **What to do** — [`retrain`] re-runs the factory (for Proteus, the
//!   full CPFPR `ProteusModel::best_design` search) over the file's keys
//!   and a fresh queue snapshot, then atomically rewrites only the filter
//!   block + footer ([`SstReader::with_new_filter`]): data blocks are
//!   untouched, readers are never blocked, and a crash leaves either the
//!   old or the new filter — both of which reopen cleanly.
//!
//! The third background worker (`Db`'s *adapter*, next to the flusher and
//! compactor) runs these every `adapt_interval`; `Db::adapt_now` runs one
//! pass synchronously for deterministic tests and experiments.

use crate::db::DbConfig;
use crate::error::Result;
use crate::sst::{SstReader, SstScanner};
use crate::stats::Stats;
use crate::FilterFactory;
use proteus_core::keyset::KeySet;
use proteus_core::{QuerySketch, SampleQueries};
use std::sync::Arc;
use std::time::Instant;

/// Live-sample floor below which drift comparison is considered noise.
pub const MIN_DRIFT_SAMPLES: usize = 64;

/// Why an SST was flagged for filter re-training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagReason {
    /// The file's observed FPR crossed `adapt_fpr_threshold` after at
    /// least `adapt_min_probes` filter probes.
    HighFpr,
    /// The live sample distribution diverged from the filter's training
    /// fingerprint by more than `adapt_divergence_threshold`.
    Drift,
}

/// Decide whether `sst`'s filter should be re-trained, given the current
/// live sample snapshot. Returns `None` for files without a live filter
/// (nothing to adapt), under-observed files, and files whose signals are
/// within thresholds.
pub fn flag_reason(sst: &SstReader, cfg: &DbConfig, live: &SampleQueries) -> Option<FlagReason> {
    if !sst.has_live_filter() {
        // Filter not yet decoded (no probes have happened either), absent,
        // or degraded: nothing to compare and nothing worth rewriting.
        return None;
    }
    // The FPR trigger backs off exponentially in the file's retrain
    // count: if re-training could not push the observed FPR under the
    // threshold (the budget simply doesn't allow it for this workload),
    // retraining again every scan would burn CPU for nothing. Each retry
    // needs twice the probe evidence. The drift trigger below is exempt —
    // a *new* distribution shift always deserves a prompt re-train.
    let required = cfg.adapt_min_probes().saturating_mul(1u64 << sst.retrain_count().min(20));
    if sst.observed_probes() >= required && sst.observed_fpr() > cfg.adapt_fpr_threshold() {
        return Some(FlagReason::HighFpr);
    }
    if live.len() >= MIN_DRIFT_SAMPLES {
        if let Some(trained) = sst.training_fingerprint() {
            let live_sketch = QuerySketch::from_queries(live.iter(), &sst.min_key, &sst.max_key);
            if trained.divergence(&live_sketch) > cfg.adapt_divergence_threshold() {
                return Some(FlagReason::Drift);
            }
        }
    }
    None
}

/// Re-train one SST's filter: scan its keys, re-run the factory's design
/// search over a fresh sample snapshot, and atomically rewrite the filter
/// block. Returns the replacement reader (same id, new filter, fresh
/// observation window) for the caller to swap into the manifest.
pub fn retrain(
    sst: &Arc<SstReader>,
    factory: &dyn FilterFactory,
    live: &SampleQueries,
    bits_per_key: f64,
    stats: &Arc<Stats>,
) -> Result<SstReader> {
    let t0 = Instant::now();
    let width = live.width();
    let mut keys = Vec::with_capacity(sst.n_entries as usize * width);
    let mut scan = SstScanner::new(Arc::clone(sst), Arc::clone(stats));
    // Every entry key feeds the new filter, tombstones included: a
    // filter that answered "empty" for a range holding only a tombstone
    // would make the read path skip this file, miss the delete, and
    // resurrect an older version of the key from a deeper level.
    while let Some((k, _)) = scan.try_next()? {
        keys.extend_from_slice(&k);
    }
    let keyset = KeySet::from_sorted_canonical(keys, width);
    let mut samples = live.clone();
    samples.retain_empty(&keyset);
    let m_bits = (bits_per_key * keyset.len() as f64) as u64;
    let filter = factory.build(&keyset, &samples, m_bits.max(1));
    let sketch = QuerySketch::from_queries(samples.iter(), &sst.min_key, &sst.max_key);
    let new_reader = sst.with_new_filter(filter, sketch, stats)?;
    stats.retrain_ns.add(t0.elapsed().as_nanos() as u64);
    stats.filters_retrained.inc();
    Ok(new_reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter_hook::ProteusFactory;
    use crate::query_queue::QueryQueue;
    use crate::sst::SstWriter;
    use proteus_core::key::u64_key;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("proteus-adapt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// One SST over clustered keys, filter trained on `train` queries.
    fn build_sst(dir: &std::path::Path, train: &[(u64, u64)]) -> (Arc<SstReader>, Arc<Stats>) {
        let stats = Arc::new(Stats::default());
        let queue = QueryQueue::new(20_000, 1);
        for &(lo, hi) in train {
            queue.offer(&u64_key(lo), &u64_key(hi));
        }
        let mut w = SstWriter::create(dir, 1, 8, 4096, 0).unwrap();
        for i in 0..4_000u64 {
            w.add(&u64_key(i << 24), &[0u8; 32]).unwrap();
        }
        let r = w.finish(&ProteusFactory::default(), &queue, 12.0, &stats).unwrap();
        (Arc::new(r), stats)
    }

    fn queries(base: u64, n: usize) -> Vec<(u64, u64)> {
        (0..n as u64).map(|i| (base + (i << 24) + 0x1000, base + (i << 24) + 0x2000)).collect()
    }

    #[test]
    fn unprobed_or_filterless_files_are_never_flagged() {
        let dir = tmpdir("noflag");
        let (sst, _stats) = build_sst(&dir, &queries(0, 200));
        let cfg = DbConfig::builder().adapt_min_probes(4).build().unwrap();
        let live = SampleQueries::from_u64(&queries(0, 200));
        assert_eq!(flag_reason(&sst, &cfg, &live), None, "healthy file must not be flagged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn high_observed_fpr_flags_the_file() {
        let dir = tmpdir("fpr");
        let (sst, _stats) = build_sst(&dir, &queries(0, 200));
        let cfg =
            DbConfig::builder().adapt_min_probes(10).adapt_fpr_threshold(0.3).build().unwrap();
        for _ in 0..8 {
            sst.record_probe(true);
        }
        for _ in 0..2 {
            sst.record_probe(false);
        }
        assert_eq!(sst.observed_probes(), 10);
        assert!((sst.observed_fpr() - 0.8).abs() < 1e-12);
        let live = SampleQueries::new(8);
        assert_eq!(flag_reason(&sst, &cfg, &live), Some(FlagReason::HighFpr));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distribution_shift_flags_via_fingerprint_divergence() {
        let dir = tmpdir("drift");
        // Train on queries in the low half of the key space.
        let (sst, _stats) = build_sst(&dir, &queries(0, 500));
        let cfg = DbConfig::builder().adapt_divergence_threshold(0.5).build().unwrap();
        // Live sample matching training: no flag.
        let same = SampleQueries::from_u64(&queries(0, 500));
        assert_eq!(flag_reason(&sst, &cfg, &same), None);
        // Live sample shifted to the high half: flagged as drift.
        let shifted = SampleQueries::from_u64(&queries(2_000u64 << 24, 500));
        assert_eq!(flag_reason(&sst, &cfg, &shifted), Some(FlagReason::Drift));
        // Too few live samples: noise, no flag.
        let tiny = SampleQueries::from_u64(&queries(2_000u64 << 24, MIN_DRIFT_SAMPLES - 1));
        assert_eq!(flag_reason(&sst, &cfg, &tiny), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retrain_rewrites_filter_block_and_survives_reopen() {
        let dir = tmpdir("retrain");
        let (sst, stats) = build_sst(&dir, &queries(0, 300));
        let old_bits = sst.filter(&stats).unwrap().size_bits();
        let shifted = SampleQueries::from_u64(&queries(10_000u64 << 24, 300));
        let new_reader = retrain(&sst, &ProteusFactory::default(), &shifted, 12.0, &stats).unwrap();
        assert_eq!(stats.filters_retrained.get(), 1);
        assert!(stats.retrain_ns.get() > 0);
        assert_eq!(new_reader.id, sst.id);
        assert_eq!(new_reader.n_entries, sst.n_entries);
        assert_eq!(new_reader.observed_probes(), 0, "fresh observation window");
        let f = new_reader.filter(&stats).expect("retrained filter present");
        assert!(f.size_bits() > 0);
        // No false negatives: every key still passes the new filter.
        for i in (0..4_000u64).step_by(61) {
            assert!(f.may_contain(&u64_key(i << 24)), "key {i}");
        }
        // The rewritten file reopens cold with the retrained filter and
        // fingerprint (no retraining on the recovery path).
        let reopened = SstReader::open(dir.join("00000001.sst"), 1, 8).unwrap();
        let fresh = Stats::default();
        let g = reopened.filter(&fresh).expect("persisted retrained filter");
        assert_eq!(g.size_bits(), f.size_bits());
        assert_eq!(fresh.filters_built.get(), 0);
        assert_eq!(fresh.filters_loaded.get(), 1);
        let fp = reopened.training_fingerprint().expect("fingerprint persisted");
        assert_eq!(fp.divergence(&new_reader.training_fingerprint().unwrap()), 0.0);
        // Data blocks byte-identical to the original.
        for b in 0..sst.n_blocks() {
            let x = sst.read_block(b, &stats).unwrap();
            let y = reopened.read_block(b, &fresh).unwrap();
            assert_eq!(x.len(), y.len(), "block {b}");
            for i in 0..x.len() {
                assert_eq!(x.key(i), y.key(i));
                assert_eq!(x.value(i), y.value(i));
            }
        }
        let _ = (old_bits,);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Database configuration: [`DbConfig`] and its validating builder.
//!
//! v2 of the API constructs configurations through [`DbConfig::builder`],
//! which validates every knob before a [`crate::Db`] ever sees it; the
//! same validation runs again inside [`crate::Db::open`], so a hand-rolled
//! struct literal cannot smuggle a nonsensical value past the boundary.
//! Direct field access is deprecated and kept only so pre-v2 callers keep
//! compiling.

use crate::error::{Error, Result};
use std::time::Duration;

/// When the write-ahead log calls `fdatasync` — the durability/latency
/// trade-off of the write path (see the [`crate::wal`] module docs).
///
/// In every mode, WAL records reach the OS before a write returns, sealed
/// segments are synced at MemTable rotation, and SSTs are synced before
/// install — the modes only differ in what a *power loss* (or OS crash)
/// can take from the active segment. A plain process crash loses nothing
/// in any mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Group-commit sync before every ack: an acked write is durable
    /// against power loss. Concurrent writers share one `fdatasync` per
    /// group, so throughput scales with the writer count.
    Always,
    /// Sync at most once per interval (plus at rotation/shutdown): bounds
    /// the power-loss window to roughly the interval, at near-`Off` cost.
    Interval(Duration),
    /// Never sync the active segment on the write path (RocksDB's
    /// `sync=false` default). Power loss may drop writes still in the
    /// page cache; process crashes still lose nothing.
    #[default]
    Off,
}

/// Tuning knobs, defaulting to a laptop-scale version of the paper's §6.2
/// RocksDB configuration (the paper uses 256 MB SSTs and a 1 GB cache on a
/// 50M-key database; ratios are preserved).
///
/// Build one with [`DbConfig::builder`]:
///
/// ```
/// use proteus_lsm::DbConfig;
///
/// let cfg = DbConfig::builder()
///     .memtable_bytes(1 << 20)
///     .bits_per_key(12.0)
///     .build()?;
/// # Ok::<(), proteus_lsm::Error>(())
/// ```
///
/// The public fields are deprecated: they predate the builder and stay
/// only for source compatibility. [`crate::Db::open`] validates the
/// configuration either way, so an invalid hand-built struct fails the
/// open with [`Error::Config`] instead of misbehaving later.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Canonical filter-training width in bytes: keys are NUL-padded (or
    /// truncated) to this width before feeding a range filter (§7.1's
    /// string canonicalization). Keys themselves are variable-length; see
    /// `max_key_bytes` for the accepted key lengths.
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub key_width: usize,
    /// Largest accepted key length in bytes (keys are arbitrary non-empty
    /// byte strings up to this limit).
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub max_key_bytes: usize,
    /// MemTable rotation threshold (write_buffer_size).
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub memtable_bytes: usize,
    /// Immutable MemTables allowed to queue before writers stall
    /// (max_write_buffer_number - 1).
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub max_immutable_memtables: usize,
    /// Data block size (RocksDB default 4 KiB).
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub block_bytes: usize,
    /// Target SST file size when splitting compaction output.
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub sst_target_bytes: u64,
    /// L0 file count triggering compaction into L1.
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub l0_compaction_trigger: usize,
    /// Total size target of L1 (max_bytes_for_level_base).
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub level_base_bytes: u64,
    /// Per-level size multiplier.
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub level_size_ratio: u64,
    /// Filter memory budget per key.
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub bits_per_key: f64,
    /// Block cache capacity.
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub block_cache_bytes: usize,
    /// Sample query queue capacity (§6.1: 20K).
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub queue_capacity: usize,
    /// Record every n-th executed empty query (§6.1: 100).
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub sample_every: u64,
    /// Run the adaptive filter lifecycle: a third background worker that
    /// monitors per-SST observed FPR and sample-distribution drift and
    /// re-trains filters in place (see the [`crate::adapt`] module docs).
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub adapt_enabled: bool,
    /// Observed per-file FPR above this flags the file for re-training
    /// (only after `adapt_min_probes` probes).
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub adapt_fpr_threshold: f64,
    /// Minimum filter probes against a file before its observed FPR is
    /// trusted (Chernoff-style: too few probes is noise).
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub adapt_min_probes: u64,
    /// How often the adapter wakes to scan for flagged files.
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub adapt_interval: Duration,
    /// Total-variation distance between a filter's training fingerprint
    /// and the live sample distribution above which the file is flagged
    /// even before its observed FPR degrades.
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub adapt_divergence_threshold: f64,
    /// When the write-ahead log syncs (durability vs latency; see
    /// [`SyncMode`]).
    #[deprecated(note = "construct configurations via DbConfig::builder()")]
    pub sync_mode: SyncMode,
}

#[allow(deprecated)] // the defaults initialize the deprecated fields
impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            key_width: 8,
            max_key_bytes: 1024,
            memtable_bytes: 4 << 20,
            max_immutable_memtables: 2,
            block_bytes: 4096,
            sst_target_bytes: 4 << 20,
            l0_compaction_trigger: 4,
            level_base_bytes: 16 << 20,
            level_size_ratio: 10,
            bits_per_key: 10.0,
            block_cache_bytes: 8 << 20,
            queue_capacity: 20_000,
            sample_every: 100,
            adapt_enabled: false,
            adapt_fpr_threshold: 0.05,
            adapt_min_probes: 512,
            adapt_interval: Duration::from_millis(100),
            adapt_divergence_threshold: 0.5,
            sync_mode: SyncMode::Off,
        }
    }
}

impl DbConfig {
    /// Start a builder from the default configuration.
    pub fn builder() -> DbConfigBuilder {
        DbConfigBuilder { cfg: DbConfig::default() }
    }

    /// Re-open this configuration as a builder (to derive a variant).
    pub fn to_builder(&self) -> DbConfigBuilder {
        DbConfigBuilder { cfg: self.clone() }
    }

    /// Check every knob; [`crate::Db::open`] runs this on whatever it is
    /// handed, built or hand-rolled.
    #[allow(deprecated)]
    pub fn validate(&self) -> Result<()> {
        fn bad(what: &str) -> Result<()> {
            Err(Error::config(what.to_string()))
        }
        if self.key_width == 0 || self.key_width > 64 {
            return bad("key_width must be in 1..=64 bytes");
        }
        if self.max_key_bytes == 0 || self.max_key_bytes > 4096 {
            return bad("max_key_bytes must be in 1..=4096 bytes");
        }
        if self.memtable_bytes == 0 {
            return bad("memtable_bytes must be > 0");
        }
        if self.max_immutable_memtables == 0 {
            return bad("max_immutable_memtables must be >= 1");
        }
        if self.block_bytes == 0 {
            return bad("block_bytes must be > 0");
        }
        if self.block_cache_bytes > 0 && self.block_cache_bytes < self.block_bytes {
            // A cache that cannot hold even one data block degrades into
            // silent all-bypass; demand an explicit 0 to turn caching off.
            return bad("block_cache_bytes must be 0 (caching off) or >= block_bytes");
        }
        if self.sst_target_bytes == 0 {
            return bad("sst_target_bytes must be > 0");
        }
        if self.l0_compaction_trigger == 0 {
            return bad("l0_compaction_trigger must be >= 1");
        }
        if self.level_base_bytes == 0 {
            return bad("level_base_bytes must be > 0");
        }
        if self.level_size_ratio < 2 {
            return bad("level_size_ratio must be >= 2");
        }
        if !self.bits_per_key.is_finite() || self.bits_per_key < 0.0 {
            return bad("bits_per_key must be finite and >= 0");
        }
        if self.sample_every == 0 {
            return bad("sample_every must be >= 1");
        }
        if !self.adapt_fpr_threshold.is_finite()
            || self.adapt_fpr_threshold <= 0.0
            || self.adapt_fpr_threshold > 1.0
        {
            return bad("adapt_fpr_threshold must be in (0, 1]");
        }
        if self.adapt_min_probes == 0 {
            return bad("adapt_min_probes must be >= 1");
        }
        if self.adapt_interval.is_zero() {
            return bad("adapt_interval must be > 0");
        }
        if !self.adapt_divergence_threshold.is_finite() || self.adapt_divergence_threshold <= 0.0 {
            return bad("adapt_divergence_threshold must be > 0");
        }
        if let SyncMode::Interval(period) = self.sync_mode {
            if period.is_zero() {
                return bad("sync_mode interval must be > 0 (use SyncMode::Always)");
            }
        }
        Ok(())
    }
}

macro_rules! getter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        #[allow(deprecated)]
        pub fn $name(&self) -> $ty {
            self.$name
        }
    };
}

/// Non-deprecated read access (the deprecated public fields predate these).
impl DbConfig {
    getter!(
        /// Canonical filter-training width in bytes (not a key length
        /// constraint; see [`DbConfig::max_key_bytes`]).
        key_width: usize
    );
    getter!(
        /// Largest accepted key length in bytes.
        max_key_bytes: usize
    );
    getter!(
        /// MemTable rotation threshold (write_buffer_size).
        memtable_bytes: usize
    );
    getter!(
        /// Immutable MemTables allowed to queue before writers stall.
        max_immutable_memtables: usize
    );
    getter!(
        /// Data block size in bytes.
        block_bytes: usize
    );
    getter!(
        /// Target SST file size when splitting compaction output.
        sst_target_bytes: u64
    );
    getter!(
        /// L0 file count triggering compaction into L1.
        l0_compaction_trigger: usize
    );
    getter!(
        /// Total size target of L1 (max_bytes_for_level_base).
        level_base_bytes: u64
    );
    getter!(
        /// Per-level size multiplier.
        level_size_ratio: u64
    );
    getter!(
        /// Filter memory budget per key.
        bits_per_key: f64
    );
    getter!(
        /// Block cache capacity in bytes.
        block_cache_bytes: usize
    );
    getter!(
        /// Sample query queue capacity.
        queue_capacity: usize
    );
    getter!(
        /// Record every n-th executed empty query.
        sample_every: u64
    );
    getter!(
        /// Whether the adaptive filter lifecycle worker runs.
        adapt_enabled: bool
    );
    getter!(
        /// Observed per-file FPR that flags a file for re-training.
        adapt_fpr_threshold: f64
    );
    getter!(
        /// Minimum probes before a file's observed FPR is trusted.
        adapt_min_probes: u64
    );
    getter!(
        /// How often the adapter wakes to scan for flagged files.
        adapt_interval: Duration
    );
    getter!(
        /// Fingerprint divergence that flags a file for re-training.
        adapt_divergence_threshold: f64
    );
    getter!(
        /// When the write-ahead log syncs.
        sync_mode: SyncMode
    );
}

/// Validating builder for [`DbConfig`]; see [`DbConfig::builder`].
///
/// Every setter mirrors the field of the same name;
/// [`DbConfigBuilder::build`] runs [`DbConfig::validate`] and returns
/// [`Error::Config`] on the first bad knob.
#[derive(Debug, Clone)]
pub struct DbConfigBuilder {
    cfg: DbConfig,
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        #[allow(deprecated)]
        pub fn $name(mut self, v: $ty) -> Self {
            self.cfg.$name = v;
            self
        }
    };
}

impl DbConfigBuilder {
    setter!(
        /// Canonical filter-training width in bytes (1..=64). Keys are
        /// NUL-padded/truncated to this width before feeding a filter;
        /// it does not constrain key lengths.
        key_width: usize
    );
    setter!(
        /// Largest accepted key length in bytes (1..=4096).
        max_key_bytes: usize
    );
    setter!(
        /// MemTable rotation threshold (write_buffer_size).
        memtable_bytes: usize
    );
    setter!(
        /// Immutable MemTables allowed to queue before writers stall.
        max_immutable_memtables: usize
    );
    setter!(
        /// Data block size in bytes.
        block_bytes: usize
    );
    setter!(
        /// Target SST file size when splitting compaction output.
        sst_target_bytes: u64
    );
    setter!(
        /// L0 file count triggering compaction into L1.
        l0_compaction_trigger: usize
    );
    setter!(
        /// Total size target of L1 (max_bytes_for_level_base).
        level_base_bytes: u64
    );
    setter!(
        /// Per-level size multiplier (>= 2).
        level_size_ratio: u64
    );
    setter!(
        /// Filter memory budget per key.
        bits_per_key: f64
    );
    setter!(
        /// Block cache capacity in bytes.
        block_cache_bytes: usize
    );
    setter!(
        /// Sample query queue capacity (§6.1: 20K).
        queue_capacity: usize
    );
    setter!(
        /// Record every n-th executed empty query (§6.1: 100).
        sample_every: u64
    );
    setter!(
        /// Enable the adaptive filter lifecycle worker.
        adapt_enabled: bool
    );
    setter!(
        /// Observed per-file FPR that flags a file for re-training.
        adapt_fpr_threshold: f64
    );
    setter!(
        /// Minimum probes before a file's observed FPR is trusted.
        adapt_min_probes: u64
    );
    setter!(
        /// How often the adapter wakes to scan for flagged files.
        adapt_interval: Duration
    );
    setter!(
        /// Fingerprint divergence that flags a file for re-training.
        adapt_divergence_threshold: f64
    );
    setter!(
        /// When the write-ahead log syncs (durability vs latency).
        sync_mode: SyncMode
    );

    /// Validate and return the configuration.
    pub fn build(self) -> Result<DbConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrips_and_validates() {
        let cfg = DbConfig::builder()
            .key_width(16)
            .memtable_bytes(64 << 10)
            .bits_per_key(14.0)
            .sample_every(7)
            .build()
            .unwrap();
        #[allow(deprecated)]
        {
            assert_eq!(cfg.key_width, 16);
            assert_eq!(cfg.memtable_bytes, 64 << 10);
            assert_eq!(cfg.bits_per_key, 14.0);
            assert_eq!(cfg.sample_every, 7);
        }
        // Deriving a variant keeps the base values.
        let derived = cfg.to_builder().bits_per_key(8.0).build().unwrap();
        #[allow(deprecated)]
        {
            assert_eq!(derived.key_width, 16);
            assert_eq!(derived.bits_per_key, 8.0);
        }
    }

    #[test]
    fn invalid_knobs_are_rejected_with_config_errors() {
        for (tag, res) in [
            ("width0", DbConfig::builder().key_width(0).build()),
            ("width65", DbConfig::builder().key_width(65).build()),
            ("maxkey0", DbConfig::builder().max_key_bytes(0).build()),
            ("maxkey4097", DbConfig::builder().max_key_bytes(4097).build()),
            ("memtable", DbConfig::builder().memtable_bytes(0).build()),
            ("imms", DbConfig::builder().max_immutable_memtables(0).build()),
            ("block", DbConfig::builder().block_bytes(0).build()),
            ("cache_lt_block", DbConfig::builder().block_cache_bytes(15).build()),
            (
                "cache_lt_block2",
                DbConfig::builder().block_bytes(4096).block_cache_bytes(4095).build(),
            ),
            ("sst", DbConfig::builder().sst_target_bytes(0).build()),
            ("l0", DbConfig::builder().l0_compaction_trigger(0).build()),
            ("base", DbConfig::builder().level_base_bytes(0).build()),
            ("ratio", DbConfig::builder().level_size_ratio(1).build()),
            ("bpk", DbConfig::builder().bits_per_key(f64::NAN).build()),
            ("every", DbConfig::builder().sample_every(0).build()),
            ("fpr", DbConfig::builder().adapt_fpr_threshold(0.0).build()),
            ("probes", DbConfig::builder().adapt_min_probes(0).build()),
            ("interval", DbConfig::builder().adapt_interval(Duration::ZERO).build()),
            ("div", DbConfig::builder().adapt_divergence_threshold(-1.0).build()),
            ("sync", DbConfig::builder().sync_mode(SyncMode::Interval(Duration::ZERO)).build()),
        ] {
            assert!(matches!(res, Err(Error::Config(_))), "{tag} must be rejected");
        }
    }

    #[test]
    fn default_configuration_is_valid() {
        assert!(DbConfig::default().validate().is_ok());
    }

    #[test]
    fn max_key_bytes_roundtrips_and_bounds_are_inclusive() {
        let cfg = DbConfig::builder().max_key_bytes(1).build().unwrap();
        assert_eq!(cfg.max_key_bytes(), 1);
        let cfg = DbConfig::builder().max_key_bytes(4096).build().unwrap();
        assert_eq!(cfg.max_key_bytes(), 4096);
        assert_eq!(DbConfig::default().max_key_bytes(), 1024);
    }

    #[test]
    fn zero_cache_capacity_stays_legal() {
        // 0 is the explicit "caching off" spelling and must keep working.
        assert!(DbConfig::builder().block_cache_bytes(0).build().is_ok());
        // Exactly one block's worth is the smallest useful cache.
        assert!(DbConfig::builder().block_bytes(4096).block_cache_bytes(4096).build().is_ok());
    }
}

//! # proteus-lsm
//!
//! A self-contained log-structured merge-tree key-value store standing in
//! for RocksDB in the paper's end-to-end evaluation (§6). It reproduces the
//! mechanics the experiments depend on:
//!
//! * MemTable → overlapping L0 → leveled, range-partitioned L1+ with
//!   size-ratio compaction;
//! * shared-state concurrency: `&self` reads and writes, snapshot (MVCC)
//!   reads against an `Arc`-swapped level manifest, MemTable rotation, and
//!   background flush + compaction worker threads (see the [`db`] module
//!   docs for the full model);
//! * block-based SST files on disk with zero-RLE compression and an
//!   in-memory index;
//! * a per-SST range filter built at flush/compaction time from the file's
//!   keys and a FIFO queue of sampled empty queries (§6.1), through the
//!   pluggable [`FilterFactory`] hook;
//! * the v2 API surface: typed [`Error`]/[`Result`] on every public
//!   method, exact-key [`Db::get`], first-class deletes (tombstones flow
//!   through MemTable → SST entry flags → compaction → recovery), atomic
//!   [`WriteBatch`] writes and ordered [`Db::range`] scans;
//! * crash-safe writes: a CRC-checksummed write-ahead log with
//!   leader/follower group commit and a configurable [`SyncMode`]
//!   (Always / Interval / Off), replayed by [`Db::open`] so every acked
//!   write survives a crash — see the [`wal`] module docs;
//! * the modified closed-`Seek` read path: all overlapping filters are
//!   probed first and only positive files pay index + block I/O — `seek`
//!   itself is a thin emptiness wrapper over the range merge;
//! * a sharded LRU block cache and full (atomic) I/O statistics.
//!
//! Documented substitutions versus real RocksDB: one flusher + one
//! compactor thread instead of a pool, zero-RLE instead of LZ4/ZSTD, and
//! scaled-down size defaults (ratios preserved).

#![warn(missing_docs)]

pub mod adapt;
pub mod batch;
pub mod block;
pub mod cache;
pub mod compress;
pub mod config;
pub mod db;
pub mod error;
pub mod filter_hook;
pub mod iter;
pub mod memtable;
pub mod query_queue;
pub mod sst;
pub mod stats;
pub mod wal;

pub use batch::WriteBatch;
pub use cache::{BlockCache, ShardedBlockCache};
pub use config::{DbConfig, DbConfigBuilder, SyncMode};
pub use db::Db;
pub use error::{Error, Result};
pub use filter_hook::{FilterFactory, NoFilter, NoFilterFactory, ProteusFactory};
pub use iter::RangeIter;
pub use query_queue::QueryQueue;
pub use stats::{Stats, StatsSnapshot};

#[cfg(test)]
mod db_tests {
    use super::*;
    use proteus_core::key::u64_key;
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("proteus-lsm-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn small_cfg() -> DbConfig {
        DbConfig::builder()
            .memtable_bytes(64 << 10)
            .sst_target_bytes(64 << 10)
            .level_base_bytes(256 << 10)
            .block_cache_bytes(256 << 10)
            .bits_per_key(12.0)
            .build()
            .unwrap()
    }

    fn value(i: u64) -> Vec<u8> {
        let mut v = vec![0u8; 128];
        v[64..72].copy_from_slice(&i.to_le_bytes());
        v
    }

    #[test]
    fn put_flush_seek_roundtrip() {
        let dir = tmpdir("roundtrip");
        let db = Db::open(&dir, small_cfg(), Arc::new(NoFilterFactory)).unwrap();
        for i in 0..5000u64 {
            db.put_u64(i * 1000, &value(i)).unwrap();
        }
        db.flush_and_settle().unwrap();
        assert!(db.sst_count() > 1, "should have spilled to multiple SSTs");
        // Every key findable, points and ranges.
        for i in (0..5000u64).step_by(137) {
            assert!(db.seek_u64(i * 1000, i * 1000).unwrap(), "point {i}");
            assert!(db.seek_u64((i * 1000).saturating_sub(10), i * 1000 + 10).unwrap());
        }
        // Gaps are empty.
        for i in (0..4999u64).step_by(211) {
            assert!(!db.seek_u64(i * 1000 + 1, i * 1000 + 999).unwrap(), "gap {i}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memtable_answers_before_flush() {
        let dir = tmpdir("memtable");
        let db = Db::open(&dir, small_cfg(), Arc::new(NoFilterFactory)).unwrap();
        db.put_u64(42, b"v").unwrap();
        assert!(db.seek_u64(40, 44).unwrap());
        assert!(!db.seek_u64(43, 100).unwrap());
        assert_eq!(db.stats().blocks_read.get(), 0, "no I/O before flush");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_moves_data_down_and_preserves_it() {
        let dir = tmpdir("compaction");
        let cfg = small_cfg()
            .to_builder()
            .memtable_bytes(16 << 10)
            .l0_compaction_trigger(2)
            .level_base_bytes(64 << 10)
            .build()
            .unwrap();
        let db = Db::open(&dir, cfg, Arc::new(NoFilterFactory)).unwrap();
        for i in 0..20_000u64 {
            db.put_u64((i * 2_654_435_761) % (1 << 40), &value(i)).unwrap();
        }
        db.flush_and_settle().unwrap();
        assert!(db.stats().compactions.get() > 0);
        let counts = db.level_file_counts();
        assert!(counts.len() >= 2, "{counts:?}");
        assert!(counts[0] <= 2, "L0 should have been compacted: {counts:?}");
        // Deeper levels sorted and disjoint is implied by seek correctness:
        for i in (0..20_000u64).step_by(397) {
            let k = (i * 2_654_435_761) % (1 << 40);
            assert!(db.seek_u64(k, k).unwrap(), "key {k} lost in compaction");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrites_keep_newest_value_through_compaction() {
        let dir = tmpdir("overwrite");
        let cfg = small_cfg()
            .to_builder()
            .memtable_bytes(8 << 10)
            .l0_compaction_trigger(1)
            .build()
            .unwrap();
        let db = Db::open(&dir, cfg, Arc::new(NoFilterFactory)).unwrap();
        for round in 0..4u64 {
            for i in 0..500u64 {
                let mut v = value(i);
                v[0] = round as u8;
                db.put_u64(i * 7, &v).unwrap();
            }
            db.flush().unwrap();
        }
        db.flush_and_settle().unwrap();
        // The store still finds every key exactly once (merge dedupe).
        for i in 0..500u64 {
            assert!(db.seek_u64(i * 7, i * 7).unwrap());
            if i > 0 {
                assert!(!db.seek_u64(i * 7 - 6, i * 7 - 1).unwrap());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn proteus_filters_cut_io_on_empty_seeks() {
        let dir = tmpdir("proteus-filter");
        let cfg = small_cfg().to_builder().bits_per_key(14.0).sample_every(1).build().unwrap();
        let db = Db::open(&dir, cfg, Arc::new(ProteusFactory::default())).unwrap();
        // Clustered keys so empty queries near the clusters are filterable.
        for i in 0..20_000u64 {
            db.put_u64(i << 20, &value(i)).unwrap();
        }
        // Seed with representative empty queries, then settle so filters are
        // built with samples available.
        let seed: Vec<(Vec<u8>, Vec<u8>)> = (0..2000u64)
            .map(|i| {
                let lo = (i * 37 % 20_000) << 20 | 0x1000;
                (u64_key(lo).to_vec(), u64_key(lo + 0x2000).to_vec())
            })
            .collect();
        db.seed_queries(seed);
        db.flush_and_settle().unwrap();

        let before = db.stats().snapshot();
        let mut fps = 0u64;
        for i in 0..2000u64 {
            let lo = ((i * 97 + 13) % 20_000) << 20 | 0x10000;
            if db.seek_u64(lo, lo + 0x1000).unwrap() {
                fps += 1;
            }
        }
        let after = db.stats().snapshot();
        let delta = after.delta(&before);
        assert_eq!(fps, 0, "queries in gaps must be empty");
        // The filters should have screened out the overwhelming majority of
        // SST probes without I/O.
        assert!(
            delta.filter_negatives > delta.filter_false_positives * 3,
            "negatives {} vs false positives {}",
            delta.filter_negatives,
            delta.filter_false_positives,
        );
        assert!(db.filter_bits() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_filter_baseline_pays_io_for_every_overlap() {
        let dir = tmpdir("nofilter-io");
        let db = Db::open(&dir, small_cfg(), Arc::new(NoFilterFactory)).unwrap();
        for i in 0..5000u64 {
            db.put_u64(i << 24, &value(i)).unwrap();
        }
        db.flush_and_settle().unwrap();
        let before = db.stats().snapshot();
        for i in 0..500u64 {
            let lo = (i % 5000) << 24 | 0x1000;
            let _ = db.seek_u64(lo, lo + 0xFF).unwrap();
        }
        let after = db.stats().snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta.filter_negatives, 0);
        // A handful of gap queries fall between file boundaries and touch
        // nothing; every other seek pays a block access.
        assert!(
            delta.blocks_read + delta.cache_hits >= 450,
            "blocks {} + hits {}",
            delta.blocks_read,
            delta.cache_hits
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_discards_unfinished_tmp_files_from_a_crash() {
        let dir = tmpdir("crash-tmp");
        let db = Db::open(&dir, small_cfg(), Arc::new(NoFilterFactory)).unwrap();
        for i in 0..2_000u64 {
            db.put_u64(i * 11, &value(i)).unwrap();
        }
        db.flush_and_settle().unwrap();
        let ssts = db.sst_count();
        drop(db);
        // Simulate a crash mid-write: writers stream into `.sst.tmp` and
        // rename only after the footer is durable, so a kill leaves this.
        std::fs::write(dir.join("00000099.sst.tmp"), b"partial garbage, no footer").unwrap();
        let db = Db::open(&dir, small_cfg(), Arc::new(NoFilterFactory)).unwrap();
        assert_eq!(db.sst_count(), ssts, "straggler must not poison recovery");
        assert!(!dir.join("00000099.sst.tmp").exists(), "straggler cleaned up");
        assert!(db.seek_u64(0, 0).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_demotes_overlapping_deep_level_files_to_l0() {
        // Forge the crash window between compaction-output rename and
        // input deletion: two generations of the same key range coexist
        // with level-1 footers. Recovery must not install overlapping
        // files in a binary-searched level — it demotes them to L0.
        use crate::query_queue::QueryQueue;
        use crate::sst::SstWriter;
        let dir = tmpdir("overlap-demote");
        std::fs::create_dir_all(&dir).unwrap();
        let stats = Stats::default();
        let queue = QueryQueue::new(4, 1);
        let write = |id: u64, keys: std::ops::Range<u64>| {
            let mut w = SstWriter::create(&dir, id, 8, 4096, 1).unwrap();
            for k in keys {
                w.add(&u64_key(k * 2), b"v").unwrap();
            }
            w.finish(&NoFilterFactory, &queue, 8.0, &stats).unwrap();
        };
        write(1, 0..100); // old compaction input: keys [0, 198]
        write(2, 50..150); // newer output: keys [100, 298] — overlaps
        write(3, 1000..1100); // disjoint survivor: keys [2000, 2198]

        let db = Db::open(&dir, small_cfg(), Arc::new(NoFilterFactory)).unwrap();
        let counts = db.level_file_counts();
        assert_eq!(counts[0], 2, "overlapping pair demoted to L0: {counts:?}");
        assert_eq!(counts[1], 1, "disjoint file stays put: {counts:?}");
        // Every key from every generation remains reachable.
        for k in [0u64, 99, 100, 149, 1000, 1099] {
            assert!(db.seek_u64(k * 2, k * 2).unwrap(), "key {k} unreachable");
        }
        assert!(!db.seek_u64(1, 1).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_recovers_levels_and_filters_without_retraining() {
        let dir = tmpdir("reopen");
        let cfg = small_cfg()
            .to_builder()
            .memtable_bytes(16 << 10)
            .l0_compaction_trigger(2)
            .sample_every(1)
            .build()
            .unwrap();
        let keys: Vec<u64> = (0..8_000u64).map(|i| (i * 2_654_435_761) % (1 << 44)).collect();
        let (counts, filter_bits, sst_count) = {
            let db = Db::open(&dir, cfg.clone(), Arc::new(ProteusFactory::default())).unwrap();
            for &k in &keys {
                db.put_u64(k, &value(k)).unwrap();
            }
            db.flush_and_settle().unwrap();
            (db.level_file_counts(), db.filter_bits(), db.sst_count())
        };

        let db = Db::open(&dir, cfg, Arc::new(ProteusFactory::default())).unwrap();
        assert_eq!(db.level_file_counts(), counts, "level manifest must survive reopen");
        assert_eq!(db.stats().ssts_recovered.get(), sst_count as u64);
        assert_eq!(db.stats().filters_built.get(), 0, "reopen must not retrain");
        assert_eq!(db.filter_bits(), filter_bits, "filters must reload bit-identically");
        assert_eq!(db.stats().filters_loaded.get(), sst_count as u64);
        assert_eq!(db.stats().filters_degraded.get(), 0);
        // Zero false negatives after recovery.
        for &k in keys.iter().step_by(53) {
            assert!(db.seek_u64(k, k).unwrap(), "key {k} lost across reopen");
        }
        // Writes keep working: ids continue past the recovered set.
        db.put_u64(u64::MAX - 5, b"post-reopen").unwrap();
        db.flush().unwrap();
        assert!(db.seek_u64(u64::MAX - 5, u64::MAX - 5).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_track_seek_outcomes() {
        let dir = tmpdir("stats");
        let db = Db::open(&dir, small_cfg(), Arc::new(NoFilterFactory)).unwrap();
        for i in 0..100u64 {
            db.put_u64(i * 100, &value(i)).unwrap();
        }
        db.flush_and_settle().unwrap();
        assert!(db.seek_u64(0, 0).unwrap());
        assert!(!db.seek_u64(1, 99).unwrap());
        assert!(!db.seek_u64(1 << 60, 1 << 61).unwrap());
        let s = db.stats().snapshot();
        assert_eq!(s.seeks, 3);
        assert_eq!(s.seeks_found, 1);
        assert!(s.seeks_filtered >= 1, "out-of-range seek touches nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampling_skips_memtable_answered_queries() {
        // §6.1 samples *executed empty* queries only. A Seek answered by a
        // MemTable (active or frozen) must not feed the sample queue; a
        // Seek the store executed and found empty must.
        let dir = tmpdir("sampling");
        let cfg = small_cfg().to_builder().sample_every(1).build().unwrap();
        let db = Db::open(&dir, cfg, Arc::new(NoFilterFactory)).unwrap();
        db.put_u64(500, b"v").unwrap();

        // Answered by the active MemTable: not an empty query, no offer.
        assert!(db.seek_u64(400, 600).unwrap());
        let s = db.stats().snapshot();
        assert_eq!(s.seeks_memtable, 1);
        assert_eq!(s.sample_offers, 0, "memtable answer must not be sampled");
        assert_eq!(db.stats().sampled_queries.get(), 0);

        // Executed and empty (nothing on disk yet, memtable can't answer):
        // exactly one offer, recorded.
        assert!(!db.seek_u64(1000, 2000).unwrap());
        let s = db.stats().snapshot();
        assert_eq!(s.sample_offers, 1);
        assert_eq!(db.stats().sampled_queries.get(), 1);

        // Same split after the data moves to an SST: a found Seek executes
        // but is non-empty (no offer); an empty Seek offers.
        db.flush_and_settle().unwrap();
        assert!(db.seek_u64(500, 500).unwrap());
        let s = db.stats().snapshot();
        assert_eq!(s.sample_offers, 1, "non-empty executed seek must not be sampled");
        assert!(!db.seek_u64(700, 800).unwrap());
        let s = db.stats().snapshot();
        assert_eq!(s.sample_offers, 2);
        assert_eq!(db.stats().sampled_queries.get(), 2);
        assert_eq!(s.seeks_memtable, 1, "SST-era seeks are not memtable answers");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_delete_batch_range_roundtrip() {
        let dir = tmpdir("v2-roundtrip");
        let db = Db::open(&dir, small_cfg(), Arc::new(NoFilterFactory)).unwrap();
        for i in 0..2_000u64 {
            db.put_u64(i * 3, &value(i)).unwrap();
        }
        // Reads before any flush.
        assert_eq!(db.get_u64(30).unwrap().unwrap(), value(10));
        assert_eq!(db.get_u64(31).unwrap(), None);
        // Delete a stripe, some before and some after the flush boundary.
        for i in (0..2_000u64).step_by(5) {
            db.delete_u64(i * 3).unwrap();
        }
        db.flush_and_settle().unwrap();
        for i in (0..2_000u64).step_by(7) {
            let want = if i % 5 == 0 { None } else { Some(value(i)) };
            assert_eq!(db.get_u64(i * 3).unwrap(), want, "get({i})");
        }
        // Atomic batch: the overwrite inside the batch wins in order.
        let mut batch = WriteBatch::new();
        batch.put_u64(6, b"first").delete_u64(6).put_u64(6, b"final").delete_u64(9);
        db.write(batch).unwrap();
        assert_eq!(db.get_u64(6).unwrap().as_deref(), Some(&b"final"[..]));
        assert_eq!(db.get_u64(9).unwrap(), None);
        // Ordered scan: sorted, deduplicated, tombstones suppressed.
        let got: Vec<u64> = db
            .range_u64(0..=60)
            .unwrap()
            .map(|e| e.map(|(k, _)| proteus_core::key::key_u64(&k)))
            .collect::<crate::Result<_>>()
            .unwrap();
        // Keys 0..=60 step 3, minus deleted multiples of 15, plus 6 (re-put)
        // and minus 9 (batch-deleted).
        let want: Vec<u64> =
            (0..=20u64).map(|i| i * 3).filter(|k| !(k % 15 == 0 && *k != 6) && *k != 9).collect();
        assert_eq!(got, want);
        assert!(db.stats().deletes.get() >= 400);
        assert_eq!(db.stats().range_scans.get(), 1);
        assert!(db.stats().gets.get() > 0);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inverted_ranges_are_empty_not_errors() {
        let dir = tmpdir("inverted");
        let db = Db::open(&dir, small_cfg(), Arc::new(NoFilterFactory)).unwrap();
        db.put_u64(100, b"v").unwrap();
        // seek with lo > hi: defined as empty, not an assert or an error.
        assert!(!db.seek_u64(200, 100).unwrap());
        assert!(db.seek_u64(100, 100).unwrap());
        // range with inverted or degenerate bounds: empty iterators.
        #[allow(clippy::reversed_empty_ranges)]
        {
            assert_eq!(db.range_u64(200..=100).unwrap().count(), 0);
            assert_eq!(db.range_u64(7..3).unwrap().count(), 0);
        }
        assert_eq!(db.range_u64(100..100).unwrap().count(), 0);
        // Excluded bounds that fall off the key space: empty, not a panic.
        assert_eq!(
            db.range_u64((std::ops::Bound::Excluded(u64::MAX), std::ops::Bound::Unbounded))
                .unwrap()
                .count(),
            0
        );
        // Inverted seeks pay no I/O and are not offered as sample queries.
        let s = db.stats().snapshot();
        assert_eq!(s.sample_offers, 0);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_length_and_oversized_keys_are_config_errors() {
        let dir = tmpdir("badkeys");
        let db = Db::open(&dir, small_cfg(), Arc::new(NoFilterFactory)).unwrap();
        let is_config = |r: crate::Result<()>| matches!(r, Err(crate::Error::Config(_)));
        let oversized = vec![7u8; 2000]; // default max_key_bytes is 1024
        assert!(is_config(db.put(b"", b"v")), "empty key put");
        assert!(is_config(db.put(&oversized, b"v")), "oversized put");
        assert!(is_config(db.delete(b"")), "empty key delete");
        assert!(is_config(db.delete(&oversized)), "oversized delete");
        assert!(is_config(db.get(b"").map(drop)), "empty key get");
        assert!(is_config(db.get(&oversized).map(drop)), "oversized get");
        assert!(is_config(db.seek(b"", b"").map(drop)), "empty key seek");
        let empty: &[u8] = b"";
        assert!(is_config(db.range(empty..=empty).map(drop)), "empty key range bound");
        let big: &[u8] = &oversized;
        assert!(is_config(db.range(big..=big).map(drop)), "oversized range bound");
        // Short keys are legal now — any non-empty byte string within the
        // limit round-trips.
        db.put(b"short", b"v").unwrap();
        assert_eq!(db.get(b"short").unwrap().as_deref(), Some(&b"v"[..]));
        // A bad key anywhere in a batch rejects the whole batch.
        let mut batch = WriteBatch::new();
        batch.put_u64(1, b"ok");
        batch.put(b"", b"bad");
        assert!(is_config(db.write(batch)));
        assert_eq!(db.get_u64(1).unwrap(), None, "rejected batch must not apply partially");
        let mut batch = WriteBatch::new();
        batch.put_u64(2, b"ok");
        batch.put(&oversized, b"bad");
        assert!(is_config(db.write(batch)));
        assert_eq!(db.get_u64(2).unwrap(), None, "oversized batch must not apply partially");
        // An invalid configuration is rejected at open, same error type.
        let bad = DbConfig::builder().key_width(0).build();
        assert!(matches!(bad, Err(crate::Error::Config(_))));
        let bad = DbConfig::builder().max_key_bytes(0).build();
        assert!(matches!(bad, Err(crate::Error::Config(_))));
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_struct_literal_config_still_opens() {
        // Pre-v2 callers construct DbConfig by struct literal; the fields
        // are deprecated but must keep working (validated at open).
        let dir = tmpdir("legacy-cfg");
        let cfg = DbConfig { bits_per_key: 9.0, ..Default::default() };
        let db = Db::open(&dir, cfg, Arc::new(NoFilterFactory)).unwrap();
        db.put_u64(5, b"v").unwrap();
        assert!(db.seek_u64(0, 10).unwrap());
        drop(db);
        // ... while a nonsense literal is now caught at open.
        let broken = DbConfig { level_size_ratio: 0, ..Default::default() };
        assert!(matches!(
            Db::open(tmpdir("legacy-bad"), broken, Arc::new(NoFilterFactory)),
            Err(crate::Error::Config(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tombstones_shadow_until_bottom_then_drop() {
        let dir = tmpdir("tombstone-drop");
        let cfg = small_cfg()
            .to_builder()
            .memtable_bytes(8 << 10)
            .l0_compaction_trigger(1)
            .build()
            .unwrap();
        let db = Db::open(&dir, cfg, Arc::new(NoFilterFactory)).unwrap();
        for i in 0..2_000u64 {
            db.put_u64(i * 2, &value(i)).unwrap();
        }
        db.flush_and_settle().unwrap();
        // Delete half the keys; the tombstones start in the MemTable and
        // must shadow the flushed values immediately...
        for i in (0..2_000u64).step_by(2) {
            db.delete_u64(i * 2).unwrap();
        }
        for i in (0..2_000u64).step_by(2) {
            assert_eq!(db.get_u64(i * 2).unwrap(), None, "memtable tombstone {i}");
            assert!(!db.seek_u64(i * 2, i * 2).unwrap());
        }
        // ...and keep shadowing after they reach SSTs and compact.
        db.flush_and_settle().unwrap();
        for i in 0..2_000u64 {
            let want = if i % 2 == 0 { None } else { Some(value(i)) };
            assert_eq!(db.get_u64(i * 2).unwrap(), want, "settled {i}");
        }
        // Bottom-level compaction dropped (at least some) tombstones for
        // good instead of carrying them forever.
        assert!(db.stats().tombstones_dropped.get() > 0, "no tombstone ever dropped");
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_flush_keeps_acked_writes_visible() {
        // Writes that rotated the MemTable stay findable while the flusher
        // works and after it installs the SST (install-before-retire).
        let dir = tmpdir("bg-visibility");
        // rotate every ~30 entries
        let cfg = small_cfg().to_builder().memtable_bytes(4 << 10).build().unwrap();
        let db = Db::open(&dir, cfg, Arc::new(NoFilterFactory)).unwrap();
        for i in 0..2_000u64 {
            db.put_u64(i * 3, &value(i)).unwrap();
            if i % 17 == 0 {
                assert!(db.seek_u64(i * 3, i * 3).unwrap(), "acked key {i} invisible");
            }
        }
        assert!(db.stats().memtable_rotations.get() > 0, "rotations must have happened");
        db.flush_and_settle().unwrap();
        assert_eq!(db.stats().flushes.get(), db.stats().memtable_rotations.get());
        for i in (0..2_000u64).step_by(97) {
            assert!(db.seek_u64(i * 3, i * 3).unwrap(), "key {i} lost after settle");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Write-ahead log: the durability layer under the MemTable.
//!
//! Every write the store acks is first appended to a WAL *segment* as one
//! length-prefixed, CRC-32-checksummed **commit record** (a `put` or
//! `delete` is a one-op commit; a [`crate::WriteBatch`] is a single
//! multi-op record, which is what makes a batch all-or-nothing across a
//! crash). Segments pair 1:1 with MemTable generations:
//!
//! * the *active* segment `NNNNNNNN.wal` receives records for the active
//!   MemTable;
//! * MemTable rotation *seals* the segment — one final `fdatasync`, then a
//!   fresh segment is created for the new active table (sealed segments
//!   are therefore always fully durable, in every sync mode);
//! * when the background flusher finishes turning the frozen MemTable into
//!   a (synced) L0 SST, the sealed segment is deleted — its data now lives
//!   in the tree;
//! * [`crate::Db::open`] replays every surviving segment in id order into
//!   the recovered MemTable, re-logs the merged result into a fresh synced
//!   segment, and only then deletes the replayed files, so a crash at any
//!   point leaves every acked write in at least one durable place.
//!
//! ## Group commit
//!
//! Appends only buffer into the OS; durability comes from `fdatasync`,
//! scheduled by the configured [`SyncMode`]. Under `Always`, concurrent
//! committers use a leader/follower protocol: the first waiter becomes the
//! *leader*, snapshots the append frontier, releases the lock and issues a
//! single `fdatasync` that covers every record appended so far; followers
//! park on a condvar and are released in one wakeup. Thousands of writers
//! amortize one sync — the classic group commit.
//!
//! ## On-disk format (magic `PRWALv1\0`)
//!
//! ```text
//! [segment header: 16 bytes]
//!    0  8×u8 magic "PRWALv1\0"
//!    8  u32  max key bytes (the opener's key-length limit)
//!   12  u32  CRC-32 of bytes 0..12
//! [commit record]*
//!    u32 payload_len
//!    u32 CRC-32(payload)
//!    payload:
//!      u32 n_ops
//!      n_ops × ( u8 tag: 0 = put, 1 = delete;
//!                length-prefixed key;
//!                length-prefixed value   — puts only )
//! ```
//!
//! Integers are little-endian; keys and values use the same
//! length-prefixed runs as the `proteus-succinct` codec
//! ([`WireWrite::put_bytes`] / [`ByteReader::bytes`]).
//!
//! ## Replay semantics
//!
//! Replay ([`replay_segment`]) is *total*: it never panics on malformed
//! bytes. A **torn tail** — the file ends mid-record, or the final
//! record's checksum fails — is expected after a crash and recovers the
//! longest valid prefix of commits. Damage strictly *before* the last
//! record (a checksum mismatch with further bytes following, a bad tag or
//! trailing garbage inside a CRC-valid payload, a damaged header) is
//! mid-log corruption and fails the open with
//! [`Error::Corruption`]: the prefix can no
//! longer be trusted. A corrupted length field cannot be distinguished
//! from a torn write when it points past end-of-file; that case truncates,
//! like every append-only log.

use crate::config::SyncMode;
use crate::error::{Error, Result};
use proteus_core::codec::{crc32, ByteReader, WireWrite};
use proteus_core::sync::{rank, Condvar, Mutex, MutexGuard};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Leading magic of every WAL segment.
pub const WAL_MAGIC: [u8; 8] = *b"PRWALv1\0";

/// Fixed segment header size in bytes (magic + max key bytes + CRC-32).
pub const WAL_HEADER_LEN: u64 = 16;

/// Commit-record op tag: a live put (key + value follow).
pub const WAL_TAG_PUT: u8 = 0;

/// Commit-record op tag: a tombstone (key follows).
pub const WAL_TAG_DELETE: u8 = 1;

/// One logged operation: `Some(value)` = put, `None` = delete, exactly the
/// shape the MemTable applies.
pub type WalOp = (Vec<u8>, Option<Vec<u8>>);

/// Path of segment `id` inside `dir` (`NNNNNNNN.wal`; ids share the SST
/// id space, so a segment and an SST never collide on a stem).
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("{id:08}.wal"))
}

/// Durably remove segment `id` from `dir` (unlink + directory sync).
pub fn delete_segment(dir: &Path, id: u64) -> Result<()> {
    std::fs::remove_file(segment_path(dir, id))?;
    sync_dir(dir)?;
    Ok(())
}

/// List the WAL segments in `dir`, sorted ascending by id (= MemTable
/// generation order: the active segment is always the largest id).
/// Non-numeric or differently-suffixed files are foreign and skipped.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("wal") {
            continue;
        }
        if let Some(id) = path.file_stem().and_then(|s| s.to_str()).and_then(|s| s.parse().ok()) {
            segments.push((id, path));
        }
    }
    segments.sort_by_key(|(id, _)| *id);
    Ok(segments)
}

fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

fn bad(path: &Path, what: impl std::fmt::Display) -> Error {
    Error::corruption(format!("{}: {what}", path.display()))
}

/// Bounds-checked little-endian u32 read: replay must stay panic-free on
/// arbitrary on-disk bytes, so a short slice is a typed error.
fn le_u32(bytes: &[u8], o: usize, path: &Path) -> Result<u32> {
    match bytes.get(o..o + 4).and_then(|s| s.try_into().ok()) {
        Some(b) => Ok(u32::from_le_bytes(b)),
        None => Err(bad(path, "field overruns the segment")),
    }
}

/// The wire length prefixes are u32: a count or payload over `u32::MAX`
/// cannot be represented, so the encoder refuses instead of truncating.
fn wire_u32(n: usize, what: &str) -> Result<u32> {
    u32::try_from(n).map_err(|_| Error::corruption(format!("{what} {n} exceeds u32::MAX")))
}

/// Encode one commit record (length prefix + CRC-32 + payload) for `ops`.
fn encode_record(ops: &[WalOp]) -> Result<Vec<u8>> {
    let mut payload = Vec::with_capacity(16 * ops.len());
    payload.put_u32(wire_u32(ops.len(), "op count")?);
    for (key, value) in ops {
        match value {
            Some(v) => {
                payload.put_u8(WAL_TAG_PUT);
                payload.put_bytes(key);
                payload.put_bytes(v);
            }
            None => {
                payload.put_u8(WAL_TAG_DELETE);
                payload.put_bytes(key);
            }
        }
    }
    let mut record = Vec::with_capacity(payload.len() + 8);
    record.put_u32(wire_u32(payload.len(), "record payload length")?);
    record.put_u32(crc32(&payload));
    record.extend_from_slice(&payload);
    Ok(record)
}

/// The result of replaying one segment.
#[derive(Debug)]
pub struct SegmentReplay {
    /// The recovered commits, in append order. Each inner `Vec` is one
    /// atomic commit (a `WriteBatch` replays as a unit or not at all).
    pub commits: Vec<Vec<WalOp>>,
    /// Whether the segment ended in a torn (incomplete or
    /// checksum-failed) final record that was discarded. Expected after a
    /// crash; the commits before it are intact.
    pub torn_tail: bool,
}

/// Replay a segment file. Torn tails truncate (see the module docs);
/// mid-log damage is [`Error::Corruption`].
/// `expected_max` must match the key-length limit recorded in the segment
/// header; every logged key must be non-empty and within the limit.
pub fn replay_segment(path: &Path, expected_max: usize) -> Result<SegmentReplay> {
    let bytes = std::fs::read(path)?;
    if (bytes.len() as u64) < WAL_HEADER_LEN {
        // A crash during segment creation: the header never fully hit the
        // disk, so no record can have been acked against this file.
        return Ok(SegmentReplay { commits: Vec::new(), torn_tail: true });
    }
    if bytes[0..8] != WAL_MAGIC {
        return Err(bad(path, "bad WAL magic"));
    }
    if crc32(&bytes[0..12]) != le_u32(&bytes, 12, path)? {
        return Err(bad(path, "WAL header checksum mismatch"));
    }
    let max = le_u32(&bytes, 8, path)? as usize;
    if max != expected_max {
        return Err(bad(path, format!("max key bytes {max} != configured {expected_max}")));
    }
    let mut commits = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            return Ok(SegmentReplay { commits, torn_tail: true }); // torn length prefix
        }
        let len = le_u32(&bytes, pos, path)? as usize;
        let crc = le_u32(&bytes, pos + 4, path)?;
        let end = pos + 8 + len;
        if end > bytes.len() {
            // The record claims bytes past EOF: a write cut mid-record (or
            // an unrecognizably corrupted length — indistinguishable).
            return Ok(SegmentReplay { commits, torn_tail: true });
        }
        let payload = &bytes[pos + 8..end];
        if crc32(payload) != crc {
            if end == bytes.len() {
                // Checksum failure in the final record = partially written
                // payload: the classic torn tail. Drop it.
                return Ok(SegmentReplay { commits, torn_tail: true });
            }
            return Err(bad(path, format!("mid-log checksum mismatch at byte {pos}")));
        }
        commits.push(
            decode_payload(payload, expected_max)
                .map_err(|e| bad(path, format!("commit {} at byte {pos}: {e}", commits.len())))?,
        );
        pos = end;
    }
    Ok(SegmentReplay { commits, torn_tail: false })
}

/// Decode a CRC-valid commit payload. Any failure here is corruption: the
/// checksum proved the bytes are exactly what was written, so a structural
/// error cannot be a torn write.
fn decode_payload(payload: &[u8], max: usize) -> std::result::Result<Vec<WalOp>, String> {
    let mut r = ByteReader::new(payload);
    let err = |e: proteus_core::CodecError| e.to_string();
    let n = r.u32().map_err(err)? as usize;
    let mut ops = Vec::with_capacity(n.min(payload.len()));
    for i in 0..n {
        let tag = r.u8().map_err(err)?;
        let key = r.bytes().map_err(err)?.to_vec();
        if key.is_empty() || key.len() > max {
            return Err(format!("op {i}: key length {} outside 1..={max}", key.len()));
        }
        match tag {
            WAL_TAG_PUT => {
                let value = r.bytes().map_err(err)?.to_vec();
                ops.push((key, Some(value)));
            }
            WAL_TAG_DELETE => ops.push((key, None)),
            t => return Err(format!("op {i}: unknown tag {t:#04x}")),
        }
    }
    if n == 0 {
        return Err("empty commit record".into());
    }
    r.finish().map_err(err)?;
    Ok(ops)
}

/// Mutable segment state behind the [`Wal`] lock.
struct WalInner {
    /// Active segment file, shared so a group-commit leader can sync it
    /// with the lock released.
    file: Arc<File>,
    /// Active segment id.
    id: u64,
    /// Bumped on every rotation; guards byte-offset bookkeeping against a
    /// leader whose sync raced a segment swap.
    generation: u64,
    /// Commits appended, across all segments (the commit sequence).
    appended_seq: u64,
    /// Commits covered by a completed sync (or by a seal, which syncs).
    synced_seq: u64,
    /// Bytes appended to the *active* segment, header included.
    appended_bytes: u64,
    /// Bytes of the active segment known durable (the power-loss horizon;
    /// see [`Wal::truncate_unsynced`]).
    synced_bytes: u64,
    /// A group-commit leader is mid-`fdatasync` with the lock released.
    syncing: bool,
    /// When the last sync completed (drives [`SyncMode::Interval`]).
    last_sync: Instant,
}

/// The write-ahead log of one open [`crate::Db`]: an active segment plus
/// the group-commit machinery. All methods take `&self`; internal state is
/// behind a mutex. Appends must be externally ordered with MemTable
/// application (the `Db` holds its MemTable write lock across
/// [`Wal::append_commit`]), while [`Wal::commit`] runs lock-free of the
/// MemTable so syncs batch across writers.
pub struct Wal {
    dir: PathBuf,
    max_key_bytes: usize,
    mode: SyncMode,
    inner: Mutex<WalInner>,
    /// Parks group-commit followers until the leader's sync covers them.
    sync_cv: Condvar,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("dir", &self.dir).field("mode", &self.mode).finish()
    }
}

/// Create a segment file with a synced header, making the file itself
/// durable (header write + file sync + directory sync).
fn create_segment(dir: &Path, id: u64, max_key_bytes: usize) -> Result<File> {
    let path = segment_path(dir, id);
    let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
    header.extend_from_slice(&WAL_MAGIC);
    header.put_u32(wire_u32(max_key_bytes, "max key bytes")?);
    let crc = crc32(&header);
    header.put_u32(crc);
    let mut file = File::options().write(true).create_new(true).open(&path)?;
    file.write_all(&header)?;
    file.sync_all()?;
    sync_dir(dir)?;
    Ok(file)
}

impl Wal {
    /// Open a fresh active segment `id` in `dir`. Replaying any surviving
    /// segments is the caller's job ([`crate::Db::open`] does it *before*
    /// creating the new active segment).
    pub fn create(dir: &Path, id: u64, max_key_bytes: usize, mode: SyncMode) -> Result<Wal> {
        let file = create_segment(dir, id, max_key_bytes)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            max_key_bytes,
            mode,
            inner: Mutex::new(
                rank::WAL,
                WalInner {
                    file: Arc::new(file),
                    id,
                    generation: 0,
                    appended_seq: 0,
                    synced_seq: 0,
                    appended_bytes: WAL_HEADER_LEN,
                    synced_bytes: WAL_HEADER_LEN,
                    syncing: false,
                    last_sync: Instant::now(),
                },
            ),
            sync_cv: Condvar::new(),
        })
    }

    fn lock(&self) -> Result<MutexGuard<'_, WalInner>> {
        self.inner.lock().map_err(|_| Error::Poisoned("wal lock"))
    }

    /// Id of the active segment.
    pub fn active_id(&self) -> Result<u64> {
        Ok(self.lock()?.id)
    }

    /// Append one commit record for `ops` and return its sequence number
    /// (to pass to [`Wal::commit`]). The bytes reach the OS before this
    /// returns; durability is [`Wal::commit`]'s job. The caller must hold
    /// its MemTable write lock so WAL order equals apply order. An empty
    /// `ops` appends nothing.
    pub fn append_commit(&self, ops: &[WalOp], stats: &crate::Stats) -> Result<u64> {
        let mut g = self.lock()?;
        if ops.is_empty() {
            return Ok(g.appended_seq);
        }
        let record = encode_record(ops)?;
        (&*g.file).write_all(&record)?;
        g.appended_seq += 1;
        g.appended_bytes += record.len() as u64;
        stats.wal_appends.inc();
        stats.wal_bytes.add(record.len() as u64);
        Ok(g.appended_seq)
    }

    /// Make commit `seq` durable according to the configured [`SyncMode`]:
    /// `Always` group-syncs until `seq` is covered, `Interval` syncs only
    /// when the deadline has passed, `Off` returns immediately.
    pub fn commit(&self, seq: u64, stats: &crate::Stats) -> Result<()> {
        match self.mode {
            SyncMode::Always => self.sync_to(seq, stats),
            SyncMode::Interval(period) => {
                let due = {
                    let g = self.lock()?;
                    !g.syncing && g.synced_seq < g.appended_seq && g.last_sync.elapsed() >= period
                };
                if due {
                    self.sync(stats)?;
                }
                Ok(())
            }
            SyncMode::Off => Ok(()),
        }
    }

    /// Full durability barrier: sync every record appended so far,
    /// regardless of mode.
    pub fn sync(&self, stats: &crate::Stats) -> Result<()> {
        let target = self.lock()?.appended_seq;
        self.sync_to(target, stats)
    }

    /// Group commit: block until `min_seq` is durable. The first waiter
    /// becomes the leader and issues one `fdatasync` covering the whole
    /// append frontier; followers wait on the condvar. Appends continue
    /// concurrently (the lock is released during the sync) — the leader
    /// only claims the frontier it snapshotted.
    fn sync_to(&self, min_seq: u64, stats: &crate::Stats) -> Result<()> {
        let mut g = self.lock()?;
        loop {
            if g.synced_seq >= min_seq {
                return Ok(());
            }
            if g.syncing {
                g = self.sync_cv.wait(g).map_err(|_| Error::Poisoned("wal lock"))?;
                continue;
            }
            g.syncing = true;
            let target_seq = g.appended_seq;
            let target_bytes = g.appended_bytes;
            let generation = g.generation;
            let file = Arc::clone(&g.file);
            drop(g);
            let res = file.sync_data();
            g = self.lock()?;
            g.syncing = false;
            self.sync_cv.notify_all();
            res?;
            if g.synced_seq < target_seq {
                stats.wal_syncs.inc();
                stats.group_commit_sizes.add(target_seq - g.synced_seq);
                g.synced_seq = target_seq;
            }
            if g.generation == generation {
                g.synced_bytes = g.synced_bytes.max(target_bytes);
                g.last_sync = Instant::now();
            }
        }
    }

    /// Seal the active segment and start a new one for the next MemTable
    /// generation; returns the sealed segment's id. The seal syncs the old
    /// file in *every* mode, so sealed segments are always fully durable.
    /// The caller must hold its MemTable write lock (no concurrent
    /// appenders; a leader mid-sync on the old file is harmless).
    pub fn rotate(&self, new_id: u64, stats: &crate::Stats) -> Result<u64> {
        let mut g = self.lock()?;
        g.file.sync_data()?;
        let sealed_commits = g.appended_seq - g.synced_seq;
        // Count the seal as a WAL sync only when it actually covered
        // commits: an empty seal (every record already group-synced)
        // contributes nothing to `group_commit_sizes`, so counting it in
        // `wal_syncs` would deflate `mean_group_commit()` — the
        // denominator would grow while the numerator stood still. Empty
        // seals are tracked separately so rotation frequency stays
        // observable.
        if sealed_commits > 0 {
            stats.group_commit_sizes.add(sealed_commits);
            stats.wal_syncs.inc();
        } else {
            stats.wal_empty_seals.inc();
        }
        g.synced_seq = g.appended_seq;
        let file = create_segment(&self.dir, new_id, self.max_key_bytes)?;
        let old_id = g.id;
        g.file = Arc::new(file);
        g.id = new_id;
        g.generation += 1;
        g.appended_bytes = WAL_HEADER_LEN;
        g.synced_bytes = WAL_HEADER_LEN;
        g.last_sync = Instant::now();
        // Followers parked in sync_to: the seal covered their commits.
        self.sync_cv.notify_all();
        Ok(old_id)
    }

    /// Crash-test support: discard every byte of the *active* segment that
    /// was never covered by a sync, simulating the page cache lost to a
    /// power failure. (Sealed segments are synced at seal time and are
    /// unaffected.) Used by `Db::crash_power_loss`.
    pub fn truncate_unsynced(&self) -> Result<()> {
        let g = self.lock()?;
        g.file.set_len(g.synced_bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stats;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("proteus-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn k(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn roundtrip_commits_across_modes() {
        for mode in [
            SyncMode::Always,
            SyncMode::Interval(std::time::Duration::from_millis(5)),
            SyncMode::Off,
        ] {
            let dir = tmpdir(&format!("rt-{mode:?}").replace(['(', ')', ' ', '.'], "-"));
            let stats = Stats::default();
            let wal = Wal::create(&dir, 7, 8, mode).unwrap();
            let seq1 = wal.append_commit(&[(k(1), Some(b"one".to_vec()))], &stats).unwrap();
            wal.commit(seq1, &stats).unwrap();
            let batch: Vec<WalOp> =
                vec![(k(2), Some(b"two".to_vec())), (k(1), None), (k(3), Some(vec![0; 100]))];
            let seq2 = wal.append_commit(&batch, &stats).unwrap();
            wal.commit(seq2, &stats).unwrap();
            wal.sync(&stats).unwrap();
            drop(wal);

            let rep = replay_segment(&segment_path(&dir, 7), 8).unwrap();
            assert!(!rep.torn_tail);
            assert_eq!(rep.commits.len(), 2);
            assert_eq!(rep.commits[0], vec![(k(1), Some(b"one".to_vec()))]);
            assert_eq!(rep.commits[1], batch);
            assert_eq!(stats.wal_appends.get(), 2);
            assert!(stats.wal_bytes.get() > 0);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn torn_tail_recovers_the_prefix_at_every_cut() {
        let dir = tmpdir("torn");
        let stats = Stats::default();
        let wal = Wal::create(&dir, 1, 8, SyncMode::Off).unwrap();
        for i in 0..5u64 {
            wal.append_commit(&[(k(i), Some(vec![i as u8; 9]))], &stats).unwrap();
        }
        wal.sync(&stats).unwrap();
        drop(wal);
        let path = segment_path(&dir, 1);
        let full = std::fs::read(&path).unwrap();
        let complete = replay_segment(&path, 8).unwrap().commits;
        assert_eq!(complete.len(), 5);
        let cut_path = dir.join("cut.wal.probe");
        let mut last_n = 5;
        for cut in (0..full.len()).rev() {
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let rep = replay_segment(&cut_path, 8).unwrap();
            assert!(rep.commits.len() <= last_n, "prefix must shrink monotonically");
            last_n = rep.commits.len();
            assert_eq!(rep.commits, complete[..rep.commits.len()], "cut {cut}: not a prefix");
        }
        assert_eq!(last_n, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_flip_is_corruption_last_record_flip_is_torn() {
        let dir = tmpdir("flip");
        let stats = Stats::default();
        let wal = Wal::create(&dir, 2, 8, SyncMode::Off).unwrap();
        for i in 0..3u64 {
            wal.append_commit(&[(k(i), Some(vec![0x55; 16]))], &stats).unwrap();
        }
        wal.sync(&stats).unwrap();
        drop(wal);
        let path = segment_path(&dir, 2);
        let orig = std::fs::read(&path).unwrap();
        let rec_len = (orig.len() - WAL_HEADER_LEN as usize) / 3;

        // Flip a payload byte of the first record (two intact records
        // follow): the prefix is untrustworthy — typed corruption.
        let mut bytes = orig.clone();
        bytes[WAL_HEADER_LEN as usize + 12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay_segment(&path, 8), Err(Error::Corruption(_))));

        // The same flip in the *final* record is indistinguishable from a
        // torn write: drop it, keep the prefix.
        let mut bytes = orig.clone();
        bytes[orig.len() - rec_len + 12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let rep = replay_segment(&path, 8).unwrap();
        assert!(rep.torn_tail);
        assert_eq!(rep.commits.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_damage_is_typed_and_width_is_enforced() {
        let dir = tmpdir("header");
        let stats = Stats::default();
        let wal = Wal::create(&dir, 3, 8, SyncMode::Off).unwrap();
        wal.append_commit(&[(k(9), None)], &stats).unwrap();
        wal.sync(&stats).unwrap();
        drop(wal);
        let path = segment_path(&dir, 3);
        let orig = std::fs::read(&path).unwrap();
        // Wrong magic.
        let mut bytes = orig.clone();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay_segment(&path, 8), Err(Error::Corruption(_))));
        // Header checksum mismatch (width field flipped).
        let mut bytes = orig.clone();
        bytes[8] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay_segment(&path, 8), Err(Error::Corruption(_))));
        // Key-length-limit mismatch against the opener's configuration.
        std::fs::write(&path, &orig).unwrap();
        assert!(matches!(replay_segment(&path, 16), Err(Error::Corruption(_))));
        // Sub-header file: a crash during create — empty, torn, no error.
        std::fs::write(&path, &orig[..7]).unwrap();
        let rep = replay_segment(&path, 8).unwrap();
        assert!(rep.torn_tail && rep.commits.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_durably_and_ids_advance() {
        let dir = tmpdir("rotate");
        let stats = Stats::default();
        let wal = Wal::create(&dir, 10, 8, SyncMode::Off).unwrap();
        wal.append_commit(&[(k(1), Some(vec![1]))], &stats).unwrap();
        let sealed = wal.rotate(11, &stats).unwrap();
        assert_eq!(sealed, 10);
        assert_eq!(wal.active_id().unwrap(), 11);
        wal.append_commit(&[(k(2), Some(vec![2]))], &stats).unwrap();
        // Power loss now: the sealed segment keeps its record (seal
        // syncs), the unsynced active record vanishes.
        wal.truncate_unsynced().unwrap();
        drop(wal);
        let rep = replay_segment(&segment_path(&dir, 10), 8).unwrap();
        assert_eq!(rep.commits.len(), 1, "sealed segment must survive power loss");
        let rep = replay_segment(&segment_path(&dir, 11), 8).unwrap();
        assert_eq!(rep.commits.len(), 0, "unsynced active record must be gone");
        assert!(stats.wal_syncs.get() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_seals_do_not_deflate_mean_group_commit() {
        let dir = tmpdir("empty-seal");
        let stats = Stats::default();
        let wal = Wal::create(&dir, 20, 8, SyncMode::Always).unwrap();
        // Four commits, each paying its own sync: mean group commit 1.0.
        for i in 0..4u64 {
            let seq = wal.append_commit(&[(k(i), Some(vec![i as u8]))], &stats).unwrap();
            wal.commit(seq, &stats).unwrap();
        }
        assert_eq!(stats.wal_syncs.get(), 4);
        assert_eq!(stats.group_commit_sizes.get(), 4);
        assert!((stats.mean_group_commit() - 1.0).abs() < 1e-12);
        // Two rotations with nothing unsynced (everything was group-synced
        // at commit time). Before the fix each bumped `wal_syncs` without
        // touching `group_commit_sizes`, deflating the mean to 4/6 ≈ 0.67.
        wal.rotate(21, &stats).unwrap();
        wal.rotate(22, &stats).unwrap();
        assert_eq!(stats.wal_syncs.get(), 4, "empty seals are not commit-covering syncs");
        assert_eq!(stats.wal_empty_seals.get(), 2);
        assert!((stats.mean_group_commit() - 1.0).abs() < 1e-12);
        // A rotation that *does* seal unsynced commits still counts.
        wal.append_commit(&[(k(9), None)], &stats).unwrap();
        wal.rotate(23, &stats).unwrap();
        assert_eq!(stats.wal_syncs.get(), 5);
        assert_eq!(stats.group_commit_sizes.get(), 5);
        assert_eq!(stats.wal_empty_seals.get(), 2);
        assert!((stats.mean_group_commit() - 1.0).abs() < 1e-12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_covers_concurrent_writers_with_few_syncs() {
        let dir = tmpdir("group");
        let stats = Stats::default();
        let wal = Arc::new(Wal::create(&dir, 4, 8, SyncMode::Always).unwrap());
        let n_threads = 8u64;
        let per = 40u64;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let wal = Arc::clone(&wal);
                let stats = &stats;
                s.spawn(move || {
                    for i in 0..per {
                        let key = k(t * 1000 + i);
                        let seq = wal.append_commit(&[(key, Some(vec![t as u8]))], stats).unwrap();
                        wal.commit(seq, stats).unwrap();
                    }
                });
            }
        });
        assert_eq!(stats.wal_appends.get(), n_threads * per);
        // Every commit was covered by some sync, and the group accounting
        // balances exactly.
        assert_eq!(stats.group_commit_sizes.get(), n_threads * per);
        assert!(stats.wal_syncs.get() >= 1);
        assert!(stats.wal_syncs.get() <= n_threads * per);
        let rep = replay_segment(&segment_path(&dir, 4), 8).unwrap();
        assert_eq!(rep.commits.len(), (n_threads * per) as usize);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The sample query queue (§6.1): "we create a fixed size query queue and
//! seed it with an initial query sample. Older queries are evicted with a
//! FIFO policy. … we use a queue size of 20K queries and update the queue
//! with every 100th executed empty query."

use proteus_core::SampleQueries;
use std::collections::VecDeque;

/// Fixed-capacity FIFO of recent empty range queries.
#[derive(Debug, Clone)]
pub struct QueryQueue {
    queue: VecDeque<(Vec<u8>, Vec<u8>)>,
    capacity: usize,
    /// Record every `every`-th offered query.
    every: u64,
    offered: u64,
}

impl QueryQueue {
    pub fn new(capacity: usize, every: u64) -> Self {
        QueryQueue {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            every: every.max(1),
            offered: 0,
        }
    }

    /// Seed with an initial sample (recorded unconditionally).
    pub fn seed(&mut self, queries: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>) {
        for (lo, hi) in queries {
            self.push(lo, hi);
        }
    }

    /// Offer an executed empty query; records every `every`-th one.
    pub fn offer(&mut self, lo: &[u8], hi: &[u8]) {
        self.offered += 1;
        if self.offered % self.every == 0 {
            self.push(lo.to_vec(), hi.to_vec());
        }
    }

    fn push(&mut self, lo: Vec<u8>, hi: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        if self.queue.len() == self.capacity {
            self.queue.pop_front();
        }
        self.queue.push_back((lo, hi));
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Copy the current contents into a [`SampleQueries`] for filter
    /// construction. Bounds are assumed canonical at `width`.
    pub fn snapshot(&self, width: usize) -> SampleQueries {
        let mut s = SampleQueries::new(width);
        for (lo, hi) in &self.queue {
            if lo.len() == width && hi.len() == width && lo <= hi {
                s.push(lo, hi);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_core::key::u64_key;

    #[test]
    fn fifo_eviction() {
        let mut q = QueryQueue::new(3, 1);
        for i in 0..5u64 {
            q.offer(&u64_key(i * 10), &u64_key(i * 10 + 1));
        }
        assert_eq!(q.len(), 3);
        let s = q.snapshot(8);
        assert_eq!(proteus_core::key::key_u64(s.lo(0)), 20);
        assert_eq!(proteus_core::key::key_u64(s.lo(2)), 40);
    }

    #[test]
    fn subsampling_every_nth() {
        let mut q = QueryQueue::new(100, 100);
        for i in 0..1000u64 {
            q.offer(&u64_key(i), &u64_key(i + 1));
        }
        assert_eq!(q.len(), 10, "every 100th of 1000 offers");
    }

    #[test]
    fn seed_bypasses_subsampling() {
        let mut q = QueryQueue::new(100, 100);
        q.seed((0..20u64).map(|i| (u64_key(i).to_vec(), u64_key(i + 1).to_vec())));
        assert_eq!(q.len(), 20);
    }

    #[test]
    fn snapshot_is_usable_sample() {
        let mut q = QueryQueue::new(10, 1);
        q.offer(&u64_key(5), &u64_key(10));
        let s = q.snapshot(8);
        assert_eq!(s.len(), 1);
        assert_eq!(s.width(), 8);
    }
}

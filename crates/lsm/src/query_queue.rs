//! The sample query queue (§6.1): "we create a fixed size query queue and
//! seed it with an initial query sample. Older queries are evicted with a
//! FIFO policy. … we use a queue size of 20K queries and update the queue
//! with every 100th executed empty query."
//!
//! The queue is internally synchronized so the concurrent `Db` can offer
//! queries from any reader thread and snapshot it from the background
//! flush/compaction workers: the every-`n`-th subsampling counter is a
//! lone atomic (the common case — an offer that is *not* recorded — takes
//! no lock at all), and only the 1-in-`every` recorded offers, seeds and
//! snapshots touch the inner mutex.

use proteus_core::key::pad_key;
use proteus_core::sync::{rank, Mutex};
use proteus_core::SampleQueries;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;

/// Fixed-capacity FIFO of recent empty range queries.
///
/// # Example
///
/// ```
/// use proteus_lsm::QueryQueue;
/// use proteus_core::key::u64_key;
///
/// // Keep 100 queries, recording every 2nd offer.
/// let queue = QueryQueue::new(100, 2);
/// queue.seed([(u64_key(10).to_vec(), u64_key(20).to_vec())]); // always recorded
/// queue.offer(&u64_key(30), &u64_key(40)); // 1st offer: skipped
/// queue.offer(&u64_key(50), &u64_key(60)); // 2nd offer: recorded
/// assert_eq!(queue.len(), 2);
/// assert_eq!(queue.offered(), 2);
///
/// // Snapshot into the sample type filter training consumes.
/// let samples = queue.snapshot(8);
/// assert_eq!(samples.len(), 2);
/// ```
#[derive(Debug)]
pub struct QueryQueue {
    inner: Mutex<VecDeque<(Vec<u8>, Vec<u8>)>>,
    capacity: usize,
    /// Record every `every`-th offered query.
    every: u64,
    offered: AtomicU64,
}

impl QueryQueue {
    /// A queue holding at most `capacity` queries, recording every
    /// `every`-th offer (§6.1 uses 20 000 and 100).
    pub fn new(capacity: usize, every: u64) -> Self {
        QueryQueue {
            inner: Mutex::new(rank::QUERY_QUEUE, VecDeque::with_capacity(capacity)),
            capacity,
            every: every.max(1),
            offered: AtomicU64::new(0),
        }
    }

    /// Seed with an initial sample (recorded unconditionally). A no-op on a
    /// capacity-0 queue — like [`QueryQueue::offer`], so sampling-disabled
    /// configurations can never accumulate samples through either path.
    pub fn seed(&self, queries: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>) {
        if self.capacity == 0 {
            return;
        }
        let mut q = self.lock_queue();
        for (lo, hi) in queries {
            Self::push(&mut q, self.capacity, lo, hi);
        }
    }

    /// Offer an executed empty query; records every `every`-th one.
    /// Returns `true` if the query was recorded. A capacity-0 queue drops
    /// everything (and never claims to have recorded): it still counts the
    /// offer, but takes no lock and stores nothing.
    pub fn offer(&self, lo: &[u8], hi: &[u8]) -> bool {
        let n = self.offered.fetch_add(1, Ordering::Relaxed) + 1;
        if self.capacity == 0 || !n.is_multiple_of(self.every) {
            return false;
        }
        let mut q = self.lock_queue();
        Self::push(&mut q, self.capacity, lo.to_vec(), hi.to_vec());
        true
    }

    /// Total queries ever offered (recorded or not).
    pub fn offered(&self) -> u64 {
        self.offered.load(Ordering::Relaxed)
    }

    fn push(q: &mut VecDeque<(Vec<u8>, Vec<u8>)>, capacity: usize, lo: Vec<u8>, hi: Vec<u8>) {
        debug_assert!(capacity > 0, "capacity-0 queues are handled before push");
        if q.len() == capacity {
            q.pop_front();
        }
        q.push_back((lo, hi));
    }

    /// Take the queue lock, recovering from poison: the queue is a FIFO
    /// of sample queries whose per-entry pushes are atomic, so state left
    /// by a panicking caller (e.g. a `seed` iterator that panicked) is
    /// still a valid queue — sampling must keep working afterwards.
    fn lock_queue(&self) -> proteus_core::sync::MutexGuard<'_, VecDeque<(Vec<u8>, Vec<u8>)>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queries currently recorded.
    pub fn len(&self) -> usize {
        self.lock_queue().len()
    }

    /// True when no query has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the current contents into a [`SampleQueries`] for filter
    /// construction. Recorded bounds are arbitrary-length byte strings;
    /// each is canonicalized to `width` the same way filter keys are
    /// (NUL-pad + truncate — order-preserving, so a canonicalized sample
    /// still brackets the canonicalized keys it originally bracketed).
    pub fn snapshot(&self, width: usize) -> SampleQueries {
        let q = self.lock_queue();
        let mut s = SampleQueries::new(width);
        for (lo, hi) in q.iter() {
            let (clo, chi) = (pad_key(lo, width), pad_key(hi, width));
            if !lo.is_empty() && !hi.is_empty() && clo <= chi {
                s.push(&clo, &chi);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_core::key::u64_key;

    #[test]
    fn fifo_eviction() {
        let q = QueryQueue::new(3, 1);
        for i in 0..5u64 {
            q.offer(&u64_key(i * 10), &u64_key(i * 10 + 1));
        }
        assert_eq!(q.len(), 3);
        let s = q.snapshot(8);
        assert_eq!(proteus_core::key::key_u64(s.lo(0)), 20);
        assert_eq!(proteus_core::key::key_u64(s.lo(2)), 40);
    }

    #[test]
    fn subsampling_every_nth() {
        let q = QueryQueue::new(100, 100);
        for i in 0..1000u64 {
            q.offer(&u64_key(i), &u64_key(i + 1));
        }
        assert_eq!(q.len(), 10, "every 100th of 1000 offers");
        assert_eq!(q.offered(), 1000);
    }

    #[test]
    fn seed_bypasses_subsampling() {
        let q = QueryQueue::new(100, 100);
        q.seed((0..20u64).map(|i| (u64_key(i).to_vec(), u64_key(i + 1).to_vec())));
        assert_eq!(q.len(), 20);
    }

    #[test]
    fn capacity_zero_queue_is_a_consistent_no_op() {
        // Both paths into a capacity-0 queue must drop: `seed` and `offer`
        // previously disagreed, letting "sampling disabled" configurations
        // accumulate seeded samples that `offer` would never add to.
        let q = QueryQueue::new(0, 1);
        q.seed((0..10u64).map(|i| (u64_key(i).to_vec(), u64_key(i + 1).to_vec())));
        assert_eq!(q.len(), 0, "seed must not store into a capacity-0 queue");
        for i in 0..10u64 {
            assert!(!q.offer(&u64_key(i), &u64_key(i + 1)), "offer must not claim to record");
        }
        assert_eq!(q.len(), 0);
        assert_eq!(q.offered(), 10, "offers are still counted");
        assert!(q.is_empty());
        assert_eq!(q.snapshot(8).len(), 0);
    }

    #[test]
    fn snapshot_is_usable_sample() {
        let q = QueryQueue::new(10, 1);
        q.offer(&u64_key(5), &u64_key(10));
        let s = q.snapshot(8);
        assert_eq!(s.len(), 1);
        assert_eq!(s.width(), 8);
    }

    #[test]
    fn poisoned_queue_keeps_sampling() {
        // Regression test for a panic-reachable site: `seed` takes the
        // inner lock and then drives a caller-supplied iterator, so a
        // panicking iterator poisons the mutex. Every later accessor used
        // `.lock().unwrap()` and panicked on the poison — one adaptation
        // tick's panic would take down every subsequent reader's `offer`
        // and the flush worker's `snapshot`. With poison recovery this
        // test passes: the queue holds whatever was pushed before the
        // panic (entry-at-a-time pushes keep it a valid FIFO) and keeps
        // recording.
        let q = QueryQueue::new(10, 1);
        let panicked = std::thread::scope(|s| {
            s.spawn(|| {
                q.seed((0..5u64).map(|i| {
                    if i == 3 {
                        panic!("iterator blew up mid-seed");
                    }
                    (u64_key(i).to_vec(), u64_key(i + 1).to_vec())
                }));
            })
            .join()
        });
        assert!(panicked.is_err(), "the seeding thread must have panicked");
        // Failing-before: each of these was an unconditional poison panic.
        assert_eq!(q.len(), 3, "entries pushed before the panic survive");
        assert!(q.offer(&u64_key(90), &u64_key(91)), "offer must keep recording");
        assert_eq!(q.len(), 4);
        assert_eq!(q.snapshot(8).len(), 4, "snapshot must keep working");
        assert!(!q.is_empty());
    }

    #[test]
    fn concurrent_offers_record_exact_subsample() {
        // 8 threads × 1000 offers at every=100 must record exactly 80
        // queries: the atomic counter never double-counts or skips.
        let q = QueryQueue::new(1_000, 100);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        q.offer(&u64_key(t << 32 | i), &u64_key(t << 32 | (i + 1)));
                    }
                });
            }
        });
        assert_eq!(q.offered(), 8_000);
        assert_eq!(q.len(), 80);
    }
}

//! Execution statistics: the observables behind every §6 figure — I/O
//! counts, filter outcomes, compaction work and filter-construction cost.

use std::sync::atomic::{AtomicU64, Ordering};

/// A relaxed atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `v` to the counter.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
    /// Overwrite the value (used for gauges like `sampled_queries`).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// Database-wide counters.
#[derive(Debug, Default)]
pub struct Stats {
    /// Range Seeks issued.
    pub seeks: Counter,
    /// Exact-key `get` lookups issued.
    pub gets: Counter,
    /// `delete` operations issued (tombstones written), including deletes
    /// inside `WriteBatch`es.
    pub deletes: Counter,
    /// Ordered `range` scans started.
    pub range_scans: Counter,
    /// Tombstones dropped by compactions that reached the bottom of the
    /// tree (nothing older left to shadow).
    pub tombstones_dropped: Counter,
    /// Seeks answered without touching any SST (all filters negative or no
    /// overlapping file).
    pub seeks_filtered: Counter,
    /// Seeks that found a key.
    pub seeks_found: Counter,
    /// Seeks whose first live answer came from a MemTable (active or
    /// immutable). These never feed the sample queue: §6.1 samples
    /// *executed empty* queries only.
    pub seeks_memtable: Counter,
    /// Executed empty queries offered to the sample queue (each may or may
    /// not be recorded, per the every-`n`-th subsampling policy).
    pub sample_offers: Counter,
    /// Active-MemTable rotations into the immutable flush queue.
    pub memtable_rotations: Counter,
    /// Nanoseconds writers spent stalled on flush backpressure (the
    /// immutable-memtable queue was full).
    pub write_stall_ns: Counter,
    /// Per-SST filter probes that returned negative.
    pub filter_negatives: Counter,
    /// Per-SST filter probes that returned positive but the SST had no key
    /// in range (a false positive costing real I/O).
    pub filter_false_positives: Counter,
    /// Per-SST filter probes that returned positive and were right.
    pub filter_true_positives: Counter,
    /// Data blocks fetched from disk.
    pub blocks_read: Counter,
    /// Bytes fetched from disk.
    pub bytes_read: Counter,
    /// Block-cache hits.
    pub cache_hits: Counter,
    /// MemTable flushes.
    pub flushes: Counter,
    /// Compactions run.
    pub compactions: Counter,
    /// SST filters constructed (includes modeling).
    pub filters_built: Counter,
    /// Total nanoseconds spent building filters (modeling + construction).
    pub filter_build_ns: Counter,
    /// Keys currently queued as sample queries.
    pub sampled_queries: Counter,
    /// SST files recovered from disk by `Db::open`.
    pub ssts_recovered: Counter,
    /// Filters decoded from persisted SST filter blocks (no retraining).
    pub filters_loaded: Counter,
    /// Total nanoseconds spent decoding persisted filters.
    pub filter_load_ns: Counter,
    /// Persisted filters that could not be reconstructed (unknown kind tag
    /// or corrupt bytes) and degraded to no-filter for that SST.
    pub filters_degraded: Counter,
    /// Built filters with no persistent form (encode unsupported); their
    /// SSTs carry no filter block, so after a reopen those files serve
    /// unfiltered probes (recovery never retrains).
    pub filters_unpersisted: Counter,
    /// Filter probes (real filters only) that answered positive for an SST
    /// with no key in range — the adaptive lifecycle's per-probe false
    /// positive evidence (also accumulated per SST).
    pub observed_fp: Counter,
    /// Filter probes (real filters only) that answered negative — true
    /// negatives, the denominator partner of [`Stats::observed_fp`].
    pub observed_tn: Counter,
    /// SSTs flagged for re-training (observed FPR over threshold, or
    /// sample-distribution divergence from the training fingerprint).
    pub drift_flags: Counter,
    /// Filters re-trained in the background by the adaptive lifecycle
    /// (filter block rewritten in place; data blocks untouched).
    pub filters_retrained: Counter,
    /// Total nanoseconds spent re-training (key scan + modeling +
    /// construction + filter-block rewrite).
    pub retrain_ns: Counter,
    /// WAL commit records appended (a `WriteBatch` is one record).
    pub wal_appends: Counter,
    /// `fdatasync` calls issued against WAL segments that covered at least
    /// one unsynced commit (group-commit leader syncs, interval syncs, and
    /// non-empty rotation seals). The denominator of
    /// [`Stats::mean_group_commit`]; syncs that covered nothing are
    /// counted in [`Stats::wal_empty_seals`] instead so the mean is not
    /// deflated by empty rotations.
    pub wal_syncs: Counter,
    /// Rotation seals whose `fdatasync` covered zero unsynced commits
    /// (every record was already durable when the MemTable rotated).
    pub wal_empty_seals: Counter,
    /// Bytes of WAL records appended (headers excluded).
    pub wal_bytes: Counter,
    /// Total commits covered across all WAL syncs; the mean group-commit
    /// size is `group_commit_sizes / wal_syncs` (see
    /// [`Stats::mean_group_commit`]).
    pub group_commit_sizes: Counter,
    /// Commit records replayed from surviving WAL segments by
    /// [`crate::Db::open`] (zero on a clean reopen).
    pub wal_replayed_records: Counter,
    /// Total nanoseconds instrumented locks were held (guard lifetime).
    /// Fed by the lock-doctor observer on the coordination gate and the
    /// MemTable lock; always zero in uninstrumented release builds (see
    /// [`proteus_core::sync`]).
    pub lock_hold_ns: Counter,
    /// Total nanoseconds threads spent blocked waiting for instrumented
    /// locks another thread held (contended acquisitions only). Same
    /// instrumentation caveat as [`Stats::lock_hold_ns`].
    pub lock_contention_ns: Counter,
}

impl proteus_core::sync::LockObserver for Stats {
    fn lock_event(&self, _rank: proteus_core::sync::Rank, contended_ns: u64, hold_ns: u64) {
        if contended_ns > 0 {
            self.lock_contention_ns.add(contended_ns);
        }
        self.lock_hold_ns.add(hold_ns);
    }
}

impl Stats {
    /// Observed false positive rate of the per-SST filters so far.
    pub fn filter_fpr(&self) -> f64 {
        let fp = self.filter_false_positives.get();
        let neg = self.filter_negatives.get();
        let total = fp + neg;
        if total == 0 {
            0.0
        } else {
            fp as f64 / total as f64
        }
    }

    /// Snapshot all counters (for diffing across experiment phases).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            seeks: self.seeks.get(),
            gets: self.gets.get(),
            deletes: self.deletes.get(),
            range_scans: self.range_scans.get(),
            tombstones_dropped: self.tombstones_dropped.get(),
            seeks_filtered: self.seeks_filtered.get(),
            seeks_found: self.seeks_found.get(),
            seeks_memtable: self.seeks_memtable.get(),
            sample_offers: self.sample_offers.get(),
            memtable_rotations: self.memtable_rotations.get(),
            write_stall_ns: self.write_stall_ns.get(),
            filter_negatives: self.filter_negatives.get(),
            filter_false_positives: self.filter_false_positives.get(),
            filter_true_positives: self.filter_true_positives.get(),
            blocks_read: self.blocks_read.get(),
            bytes_read: self.bytes_read.get(),
            cache_hits: self.cache_hits.get(),
            flushes: self.flushes.get(),
            compactions: self.compactions.get(),
            filters_built: self.filters_built.get(),
            filter_build_ns: self.filter_build_ns.get(),
            ssts_recovered: self.ssts_recovered.get(),
            filters_loaded: self.filters_loaded.get(),
            filter_load_ns: self.filter_load_ns.get(),
            filters_degraded: self.filters_degraded.get(),
            filters_unpersisted: self.filters_unpersisted.get(),
            observed_fp: self.observed_fp.get(),
            observed_tn: self.observed_tn.get(),
            drift_flags: self.drift_flags.get(),
            filters_retrained: self.filters_retrained.get(),
            retrain_ns: self.retrain_ns.get(),
            wal_appends: self.wal_appends.get(),
            wal_syncs: self.wal_syncs.get(),
            wal_empty_seals: self.wal_empty_seals.get(),
            wal_bytes: self.wal_bytes.get(),
            group_commit_sizes: self.group_commit_sizes.get(),
            wal_replayed_records: self.wal_replayed_records.get(),
            lock_hold_ns: self.lock_hold_ns.get(),
            lock_contention_ns: self.lock_contention_ns.get(),
        }
    }

    /// Mean commits per WAL sync — the group-commit amortization factor
    /// (`1.0` means every commit paid its own `fdatasync`; `0` before any
    /// sync).
    pub fn mean_group_commit(&self) -> f64 {
        let syncs = self.wal_syncs.get();
        if syncs == 0 {
            0.0
        } else {
            self.group_commit_sizes.get() as f64 / syncs as f64
        }
    }

    /// Observed empirical FPR of real filter probes (the adaptive
    /// lifecycle's database-wide signal): `observed_fp / (observed_fp +
    /// observed_tn)`, `0` before any probe.
    pub fn observed_fpr(&self) -> f64 {
        let fp = self.observed_fp.get();
        let total = fp + self.observed_tn.get();
        if total == 0 {
            0.0
        } else {
            fp as f64 / total as f64
        }
    }
}

/// A point-in-time copy of [`Stats`]. Each field mirrors the counter of
/// the same name; see the [`Stats`] field docs for the semantics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field semantics documented once, on `Stats`
pub struct StatsSnapshot {
    pub seeks: u64,
    pub gets: u64,
    pub deletes: u64,
    pub range_scans: u64,
    pub tombstones_dropped: u64,
    pub seeks_filtered: u64,
    pub seeks_found: u64,
    pub seeks_memtable: u64,
    pub sample_offers: u64,
    pub memtable_rotations: u64,
    pub write_stall_ns: u64,
    pub filter_negatives: u64,
    pub filter_false_positives: u64,
    pub filter_true_positives: u64,
    pub blocks_read: u64,
    pub bytes_read: u64,
    pub cache_hits: u64,
    pub flushes: u64,
    pub compactions: u64,
    pub filters_built: u64,
    pub filter_build_ns: u64,
    pub ssts_recovered: u64,
    pub filters_loaded: u64,
    pub filter_load_ns: u64,
    pub filters_degraded: u64,
    pub filters_unpersisted: u64,
    pub observed_fp: u64,
    pub observed_tn: u64,
    pub drift_flags: u64,
    pub filters_retrained: u64,
    pub retrain_ns: u64,
    pub wal_appends: u64,
    pub wal_syncs: u64,
    pub wal_empty_seals: u64,
    pub wal_bytes: u64,
    pub group_commit_sizes: u64,
    pub wal_replayed_records: u64,
    pub lock_hold_ns: u64,
    pub lock_contention_ns: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference (for per-phase reporting).
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            seeks: self.seeks - earlier.seeks,
            gets: self.gets - earlier.gets,
            deletes: self.deletes - earlier.deletes,
            range_scans: self.range_scans - earlier.range_scans,
            tombstones_dropped: self.tombstones_dropped - earlier.tombstones_dropped,
            seeks_filtered: self.seeks_filtered - earlier.seeks_filtered,
            seeks_found: self.seeks_found - earlier.seeks_found,
            seeks_memtable: self.seeks_memtable - earlier.seeks_memtable,
            sample_offers: self.sample_offers - earlier.sample_offers,
            memtable_rotations: self.memtable_rotations - earlier.memtable_rotations,
            write_stall_ns: self.write_stall_ns - earlier.write_stall_ns,
            filter_negatives: self.filter_negatives - earlier.filter_negatives,
            filter_false_positives: self.filter_false_positives - earlier.filter_false_positives,
            filter_true_positives: self.filter_true_positives - earlier.filter_true_positives,
            blocks_read: self.blocks_read - earlier.blocks_read,
            bytes_read: self.bytes_read - earlier.bytes_read,
            cache_hits: self.cache_hits - earlier.cache_hits,
            flushes: self.flushes - earlier.flushes,
            compactions: self.compactions - earlier.compactions,
            filters_built: self.filters_built - earlier.filters_built,
            filter_build_ns: self.filter_build_ns - earlier.filter_build_ns,
            ssts_recovered: self.ssts_recovered - earlier.ssts_recovered,
            filters_loaded: self.filters_loaded - earlier.filters_loaded,
            filter_load_ns: self.filter_load_ns - earlier.filter_load_ns,
            filters_degraded: self.filters_degraded - earlier.filters_degraded,
            filters_unpersisted: self.filters_unpersisted - earlier.filters_unpersisted,
            observed_fp: self.observed_fp - earlier.observed_fp,
            observed_tn: self.observed_tn - earlier.observed_tn,
            drift_flags: self.drift_flags - earlier.drift_flags,
            filters_retrained: self.filters_retrained - earlier.filters_retrained,
            retrain_ns: self.retrain_ns - earlier.retrain_ns,
            wal_appends: self.wal_appends - earlier.wal_appends,
            wal_syncs: self.wal_syncs - earlier.wal_syncs,
            wal_empty_seals: self.wal_empty_seals - earlier.wal_empty_seals,
            wal_bytes: self.wal_bytes - earlier.wal_bytes,
            group_commit_sizes: self.group_commit_sizes - earlier.group_commit_sizes,
            wal_replayed_records: self.wal_replayed_records - earlier.wal_replayed_records,
            lock_hold_ns: self.lock_hold_ns - earlier.lock_hold_ns,
            lock_contention_ns: self.lock_contention_ns - earlier.lock_contention_ns,
        }
    }

    /// Mean commits per WAL sync in this snapshot (see
    /// [`Stats::mean_group_commit`]).
    pub fn mean_group_commit(&self) -> f64 {
        if self.wal_syncs == 0 {
            0.0
        } else {
            self.group_commit_sizes as f64 / self.wal_syncs as f64
        }
    }

    /// Observed empirical FPR of real filter probes in this snapshot.
    pub fn observed_fpr(&self) -> f64 {
        let total = self.observed_fp + self.observed_tn;
        if total == 0 {
            0.0
        } else {
            self.observed_fp as f64 / total as f64
        }
    }

    /// Observed filter FPR in this snapshot.
    pub fn filter_fpr(&self) -> f64 {
        let total = self.filter_false_positives + self.filter_negatives;
        if total == 0 {
            0.0
        } else {
            self.filter_false_positives as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::default();
        s.seeks.inc();
        s.seeks.add(4);
        assert_eq!(s.seeks.get(), 5);
    }

    #[test]
    fn fpr_computation() {
        let s = Stats::default();
        assert_eq!(s.filter_fpr(), 0.0);
        s.filter_false_positives.add(1);
        s.filter_negatives.add(9);
        assert!((s.filter_fpr() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mean_group_commit_amortization() {
        let s = Stats::default();
        assert_eq!(s.mean_group_commit(), 0.0);
        s.wal_syncs.add(2);
        s.group_commit_sizes.add(10);
        assert!((s.mean_group_commit() - 5.0).abs() < 1e-12);
        assert!((s.snapshot().mean_group_commit() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_delta() {
        let s = Stats::default();
        s.blocks_read.add(10);
        let a = s.snapshot();
        s.blocks_read.add(7);
        s.seeks.add(3);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.blocks_read, 7);
        assert_eq!(d.seeks, 3);
    }
}

//! Property test: random interleavings of `put` / `seek` / `flush` /
//! `flush_and_settle` (MemTable rotation + full compaction barrier)
//! against a single-threaded `BTreeMap` oracle. This pins the
//! memtable-rotation and snapshot-visibility semantics of the concurrent
//! store: at every step, a closed-range `Seek` must answer *exactly* what
//! the oracle answers — the store's filters may only skip I/O, never flip
//! an answer, and no rotation/flush/compaction interleaving may hide or
//! resurrect a key.

use proptest::prelude::*;
use proteus_lsm::{Db, DbConfig, NoFilterFactory, ProteusFactory};

mod common;
use common::Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

fn tmpdir(tag: u64) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("proteus-oracle-{tag:x}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Tiny thresholds so a ~200-op script crosses every boundary: rotation,
/// L0 trigger, level overflow.
fn oracle_cfg() -> DbConfig {
    DbConfig {
        memtable_bytes: 1 << 10,
        max_immutable_memtables: 1,
        sst_target_bytes: 2 << 10,
        l0_compaction_trigger: 2,
        level_base_bytes: 4 << 10,
        block_cache_bytes: 16 << 10,
        bits_per_key: 12.0,
        sample_every: 3,
        ..Default::default()
    }
}

#[derive(Debug)]
enum Op {
    Put(u64),
    Seek(u64, u64),
    Flush,
    Settle,
}

/// Keys cluster in a narrow space so seeks hit real data, duplicates and
/// gaps; ranges vary from points to wide spans.
fn script(seed: u64, n_ops: usize) -> Vec<Op> {
    let mut rng = Rng(seed);
    let key = |r: &mut Rng| (r.next() % 512) * 7;
    (0..n_ops)
        .map(|_| match rng.next() % 16 {
            0..=7 => Op::Put(key(&mut rng)),
            8..=13 => {
                let lo = key(&mut rng).saturating_sub(rng.next() % 8);
                let hi = lo + rng.next() % 40;
                Op::Seek(lo, hi)
            }
            14 => Op::Flush,
            _ => Op::Settle,
        })
        .collect()
}

fn run_script(seed: u64, n_ops: usize, proteus: bool) {
    let dir = tmpdir(seed ^ (proteus as u64) << 63 ^ n_ops as u64);
    let factory: Arc<dyn proteus_lsm::FilterFactory> =
        if proteus { Arc::new(ProteusFactory::default()) } else { Arc::new(NoFilterFactory) };
    let db = Db::open(&dir, oracle_cfg(), factory).unwrap();
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for (step, op) in script(seed, n_ops).iter().enumerate() {
        match *op {
            Op::Put(k) => {
                db.put_u64(k, &k.to_le_bytes()).unwrap();
                oracle.insert(k, k);
            }
            Op::Seek(lo, hi) => {
                let got = db.seek_u64(lo, hi).unwrap();
                let truth = oracle.range(lo..=hi).next().is_some();
                assert_eq!(
                    got, truth,
                    "step {step}: seek [{lo},{hi}] diverged from oracle (seed {seed:#x})"
                );
            }
            Op::Flush => db.flush().unwrap(),
            Op::Settle => db.flush_and_settle().unwrap(),
        }
    }
    // Final settle, then re-check every key and the gaps between them.
    db.flush_and_settle().unwrap();
    for &k in oracle.keys() {
        assert!(db.seek_u64(k, k).unwrap(), "key {k} lost at end (seed {seed:#x})");
    }
    let keys: Vec<u64> = oracle.keys().copied().collect();
    for w in keys.windows(2) {
        if w[1] > w[0] + 1 {
            assert!(
                !db.seek_u64(w[0] + 1, w[1] - 1).unwrap(),
                "phantom key in ({}, {}) (seed {seed:#x})",
                w[0],
                w[1]
            );
        }
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// No-filter store: every interleaving matches the oracle exactly.
    #[test]
    fn interleavings_match_oracle_nofilter(seed in 0u64..u64::MAX / 2, extra in 0usize..120) {
        run_script(seed, 120 + extra, false);
    }

    /// Proteus-filtered store: filters must only skip I/O, never change
    /// an answer, across the same interleavings.
    #[test]
    fn interleavings_match_oracle_proteus(seed in 0u64..u64::MAX / 2, extra in 0usize..120) {
        run_script(seed, 120 + extra, true);
    }
}

//! Property test: random interleavings of the full API — `put`, `get`,
//! `delete`, `seek`, ordered `range` scans, atomic `WriteBatch`es,
//! `flush` (MemTable rotation) and `flush_and_settle` (full compaction
//! barrier) — against a single-threaded `BTreeMap` oracle. This pins the
//! tombstone and snapshot-visibility semantics of the concurrent store:
//! at every step the store must answer *exactly* what the oracle answers
//! — `get` returns the newest value (generation-tagged, so a stale
//! overwrite or a resurrected delete is caught byte-for-byte), `range`
//! yields the oracle's live entries sorted and deduplicated, `seek`
//! matches the oracle's emptiness, and no rotation/flush/compaction
//! interleaving may hide, corrupt or resurrect a key. A final reopen
//! re-checks everything against the recovered store.
//!
//! The suite runs over two key universes: fixed-width big-endian u64 keys
//! and arbitrary-length byte strings (NUL runs adjacent to the empty key,
//! heavy shared prefixes, 1-byte through `max_key_bytes`-byte keys).

use proptest::prelude::*;
use proteus_lsm::{Db, DbConfig, NoFilterFactory, ProteusFactory, SyncMode, WriteBatch};

mod common;
use common::{crash_and_reopen, CrashKind, Rng};
use proteus_core::key::{key_u64, u64_key};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

fn tmpdir(tag: u64) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("proteus-oracle-{tag:x}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Tiny thresholds so a ~200-op script crosses every boundary: rotation,
/// L0 trigger, level overflow.
fn oracle_cfg() -> DbConfig {
    DbConfig::builder()
        .memtable_bytes(1 << 10)
        .max_immutable_memtables(1)
        .sst_target_bytes(2 << 10)
        .l0_compaction_trigger(2)
        .level_base_bytes(4 << 10)
        .block_cache_bytes(16 << 10)
        .bits_per_key(12.0)
        .sample_every(3)
        .build()
        .unwrap()
}

#[derive(Debug)]
enum Op {
    Put(u64),
    Get(u64),
    Delete(u64),
    Seek(u64, u64),
    Range(u64, u64),
    /// Atomic batch of (key, is_delete) ops.
    Batch(Vec<(u64, bool)>),
    Flush,
    Settle,
}

/// Generation-tagged value: identifies both the key and the write step,
/// so returning *any* stale version is detectable.
fn value_of(k: u64, step: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&k.to_le_bytes());
    v.extend_from_slice(&(step as u64).to_le_bytes());
    v
}

/// Keys cluster in a narrow space so operations hit real data, duplicates,
/// deletes and gaps; ranges vary from points to wide spans.
fn script(seed: u64, n_ops: usize) -> Vec<Op> {
    let mut rng = Rng(seed);
    let key = |r: &mut Rng| (r.next() % 512) * 7;
    (0..n_ops)
        .map(|_| match rng.next() % 16 {
            0..=4 => Op::Put(key(&mut rng)),
            5..=6 => Op::Delete(key(&mut rng)),
            7..=8 => Op::Get(key(&mut rng)),
            9..=11 => {
                let lo = key(&mut rng).saturating_sub(rng.next() % 8);
                let hi = lo + rng.next() % 40;
                Op::Seek(lo, hi)
            }
            12 => {
                let lo = key(&mut rng).saturating_sub(rng.next() % 16);
                let hi = lo + rng.next() % 200;
                Op::Range(lo, hi)
            }
            13 => {
                let n = 1 + rng.next() as usize % 8;
                Op::Batch((0..n).map(|_| (key(&mut rng), rng.next().is_multiple_of(3))).collect())
            }
            14 => Op::Flush,
            _ => Op::Settle,
        })
        .collect()
}

/// Collect the store's live entries in `[lo, hi]` as (key, value) pairs.
fn db_range(db: &Db, lo: u64, hi: u64) -> Vec<(u64, Vec<u8>)> {
    db.range_u64(lo..=hi)
        .unwrap()
        .map(|e| e.map(|(k, v)| (key_u64(&k), v)))
        .collect::<proteus_lsm::Result<Vec<_>>>()
        .unwrap()
}

/// Exhaustive oracle equivalence: every touched key (live value match,
/// deleted keys stay dead), the gaps between live keys, and one full
/// ordered scan.
fn check_everything(db: &Db, oracle: &BTreeMap<u64, Vec<u8>>, touched: &BTreeSet<u64>, tag: &str) {
    for &k in touched {
        let got = db.get_u64(k).unwrap();
        assert_eq!(got.as_deref(), oracle.get(&k).map(Vec::as_slice), "{tag}: get({k})");
        assert_eq!(db.seek_u64(k, k).unwrap(), oracle.contains_key(&k), "{tag}: seek({k})");
    }
    let keys: Vec<u64> = oracle.keys().copied().collect();
    for w in keys.windows(2) {
        if w[1] > w[0] + 1 {
            assert!(
                !db.seek_u64(w[0] + 1, w[1] - 1).unwrap(),
                "{tag}: phantom key in ({}, {})",
                w[0],
                w[1]
            );
        }
    }
    let full: Vec<(u64, Vec<u8>)> = db_range(db, 0, u64::MAX);
    let want: Vec<(u64, Vec<u8>)> = oracle.iter().map(|(&k, v)| (k, v.clone())).collect();
    assert_eq!(full, want, "{tag}: full ordered scan diverged from oracle");
}

fn run_script(seed: u64, n_ops: usize, proteus: bool) {
    let dir = tmpdir(seed ^ (proteus as u64) << 63 ^ n_ops as u64);
    let factory: Arc<dyn proteus_lsm::FilterFactory> =
        if proteus { Arc::new(ProteusFactory::default()) } else { Arc::new(NoFilterFactory) };
    let db = Db::open(&dir, oracle_cfg(), Arc::clone(&factory)).unwrap();
    let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    // Every key ever written or deleted (deleted keys must stay dead).
    let mut touched: BTreeSet<u64> = BTreeSet::new();
    for (step, op) in script(seed, n_ops).iter().enumerate() {
        match op {
            Op::Put(k) => {
                let v = value_of(*k, step);
                db.put_u64(*k, &v).unwrap();
                oracle.insert(*k, v);
                touched.insert(*k);
            }
            Op::Delete(k) => {
                db.delete_u64(*k).unwrap();
                oracle.remove(k);
                touched.insert(*k);
            }
            Op::Get(k) => {
                let got = db.get_u64(*k).unwrap();
                assert_eq!(
                    got.as_deref(),
                    oracle.get(k).map(Vec::as_slice),
                    "step {step}: get({k}) diverged (seed {seed:#x})"
                );
            }
            Op::Seek(lo, hi) => {
                let got = db.seek_u64(*lo, *hi).unwrap();
                let truth = oracle.range(lo..=hi).next().is_some();
                assert_eq!(
                    got, truth,
                    "step {step}: seek [{lo},{hi}] diverged from oracle (seed {seed:#x})"
                );
            }
            Op::Range(lo, hi) => {
                let got = db_range(&db, *lo, *hi);
                let want: Vec<(u64, Vec<u8>)> =
                    oracle.range(lo..=hi).map(|(&k, v)| (k, v.clone())).collect();
                assert_eq!(got, want, "step {step}: range [{lo},{hi}] diverged (seed {seed:#x})");
            }
            Op::Batch(ops) => {
                let mut batch = WriteBatch::with_capacity(ops.len());
                for (i, &(k, is_delete)) in ops.iter().enumerate() {
                    touched.insert(k);
                    if is_delete {
                        batch.delete_u64(k);
                        oracle.remove(&k);
                    } else {
                        let v = value_of(k, step * 16 + i);
                        batch.put_u64(k, &v);
                        oracle.insert(k, v);
                    }
                }
                db.write(batch).unwrap();
            }
            Op::Flush => db.flush().unwrap(),
            Op::Settle => db.flush_and_settle().unwrap(),
        }
    }
    // Final settle, then the exhaustive checks — live keys, dead keys,
    // gaps, full ordered scan.
    db.flush_and_settle().unwrap();
    check_everything(&db, &oracle, &touched, "settled");

    // Persist everything and reopen cold: recovery must not resurrect a
    // deleted key or lose/corrupt a live one.
    db.flush().unwrap();
    drop(db);
    let db = Db::open(&dir, oracle_cfg(), factory).unwrap();
    check_everything(&db, &oracle, &touched, "reopened");

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `oracle_cfg` with `SyncMode::Always`: every acked write is synced, so
/// a crash point may not lose a single oracle entry.
fn crash_oracle_cfg() -> DbConfig {
    oracle_cfg().to_builder().sync_mode(SyncMode::Always).build().unwrap()
}

/// Like [`run_script`], but with crash points spliced into the
/// interleaving: at each, the store is killed without any graceful
/// shutdown, reopened, and must still answer *exactly* what the oracle
/// answers — zero acked-write loss, zero tombstone resurrection, no
/// matter where the script was (mid-rotation, imms pending flush,
/// compaction half done).
fn run_crash_script(seed: u64, n_ops: usize, proteus: bool) {
    let dir = tmpdir(seed ^ 0xDEAD << 32 ^ (proteus as u64) << 63 ^ n_ops as u64);
    let cfg = crash_oracle_cfg();
    let factory: Arc<dyn proteus_lsm::FilterFactory> =
        if proteus { Arc::new(ProteusFactory::default()) } else { Arc::new(NoFilterFactory) };
    let mut db = Db::open(&dir, cfg.clone(), Arc::clone(&factory)).unwrap();
    let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut touched: BTreeSet<u64> = BTreeSet::new();
    // Two seed-derived crash points inside the script body.
    let mut crash_rng = Rng(seed ^ 0xC4A5);
    let mut crash_points: Vec<usize> = (0..2).map(|_| crash_rng.next() as usize % n_ops).collect();
    crash_points.sort_unstable();
    crash_points.dedup();
    for (step, op) in script(seed, n_ops).iter().enumerate() {
        if crash_points.contains(&step) {
            db = crash_and_reopen(db, &dir, &cfg, Arc::clone(&factory), CrashKind::ProcessKill);
            check_everything(&db, &oracle, &touched, &format!("post-crash step {step}"));
        }
        match op {
            Op::Put(k) => {
                let v = value_of(*k, step);
                db.put_u64(*k, &v).unwrap();
                oracle.insert(*k, v);
                touched.insert(*k);
            }
            Op::Delete(k) => {
                db.delete_u64(*k).unwrap();
                oracle.remove(k);
                touched.insert(*k);
            }
            Op::Batch(ops) => {
                let mut batch = WriteBatch::with_capacity(ops.len());
                for (i, &(k, is_delete)) in ops.iter().enumerate() {
                    touched.insert(k);
                    if is_delete {
                        batch.delete_u64(k);
                        oracle.remove(&k);
                    } else {
                        let v = value_of(k, step * 16 + i);
                        batch.put_u64(k, &v);
                        oracle.insert(k, v);
                    }
                }
                db.write(batch).unwrap();
            }
            Op::Get(k) => {
                let got = db.get_u64(*k).unwrap();
                assert_eq!(
                    got.as_deref(),
                    oracle.get(k).map(Vec::as_slice),
                    "step {step}: get({k}) diverged (seed {seed:#x})"
                );
            }
            Op::Seek(lo, hi) => {
                let got = db.seek_u64(*lo, *hi).unwrap();
                assert_eq!(got, oracle.range(lo..=hi).next().is_some(), "step {step}: seek");
            }
            Op::Range(lo, hi) => {
                let got = db_range(&db, *lo, *hi);
                let want: Vec<(u64, Vec<u8>)> =
                    oracle.range(lo..=hi).map(|(&k, v)| (k, v.clone())).collect();
                assert_eq!(got, want, "step {step}: range [{lo},{hi}] (seed {seed:#x})");
            }
            Op::Flush => db.flush().unwrap(),
            Op::Settle => db.flush_and_settle().unwrap(),
        }
    }
    // One last crash with whatever is buffered, then a settle + clean
    // reopen: the store must come back identical every time.
    let db = crash_and_reopen(db, &dir, &cfg, Arc::clone(&factory), CrashKind::ProcessKill);
    check_everything(&db, &oracle, &touched, "final crash");
    db.flush_and_settle().unwrap();
    drop(db);
    let db = Db::open(&dir, cfg, factory).unwrap();
    check_everything(&db, &oracle, &touched, "clean reopen after crashes");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 36, ..ProptestConfig::default() })]

    /// No-filter store: every interleaving matches the oracle exactly.
    #[test]
    fn interleavings_match_oracle_nofilter(seed in 0u64..u64::MAX / 2, extra in 0usize..100) {
        run_script(seed, 110 + extra, false);
    }

    /// Proteus-filtered store: filters must only skip I/O, never change
    /// an answer, across the same interleavings.
    #[test]
    fn interleavings_match_oracle_proteus(seed in 0u64..u64::MAX / 2, extra in 0usize..100) {
        run_script(seed, 110 + extra, true);
    }
}

// ---------------------------------------------------------------------------
// Variable-length keys against the same oracle.
// ---------------------------------------------------------------------------

/// Variable-length key generator, drawn from narrow pools so puts, deletes
/// and reads collide: NUL runs adjacent to the (invalid) empty key,
/// arbitrary single bytes, URL-style keys with heavy shared prefixes,
/// 512–1024-byte keys up to the configured `max_key_bytes`, and raw
/// big-endian u64 keys mixed into the same ordered space.
fn vkey(r: &mut Rng) -> Vec<u8> {
    match r.next() % 8 {
        0 => vec![0x00; 1 + (r.next() as usize % 3)],
        1 => vec![(r.next() % 200) as u8],
        2..=4 => {
            format!("https://example.com/{:02}/p{}", r.next() % 24, r.next() % 10).into_bytes()
        }
        5 => {
            let mut k = format!("https://example.com/{:02}/", r.next() % 24).into_bytes();
            k.resize(512 + r.next() as usize % 513, b'x');
            k
        }
        _ => u64_key((r.next() % 512) * 7).to_vec(),
    }
}

#[derive(Debug)]
enum VOp {
    Put(Vec<u8>),
    Get(Vec<u8>),
    Delete(Vec<u8>),
    Seek(Vec<u8>, Vec<u8>),
    Range(Vec<u8>, Vec<u8>),
    /// Atomic batch of (key, is_delete) ops.
    Batch(Vec<(Vec<u8>, bool)>),
    Flush,
    Settle,
}

fn vscript(seed: u64, n_ops: usize) -> Vec<VOp> {
    let mut rng = Rng(seed);
    let pair = |r: &mut Rng| {
        let (a, b) = (vkey(r), vkey(r));
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    };
    (0..n_ops)
        .map(|_| match rng.next() % 16 {
            0..=4 => VOp::Put(vkey(&mut rng)),
            5..=6 => VOp::Delete(vkey(&mut rng)),
            7..=8 => VOp::Get(vkey(&mut rng)),
            9..=11 => {
                let (lo, hi) = pair(&mut rng);
                VOp::Seek(lo, hi)
            }
            12 => {
                let (lo, hi) = pair(&mut rng);
                VOp::Range(lo, hi)
            }
            13 => {
                let n = 1 + rng.next() as usize % 8;
                VOp::Batch((0..n).map(|_| (vkey(&mut rng), rng.next().is_multiple_of(3))).collect())
            }
            14 => VOp::Flush,
            _ => VOp::Settle,
        })
        .collect()
}

/// Generation-tagged value for a byte-string key: the write step plus the
/// full key bytes, so both a stale version and a value served under the
/// wrong key are caught byte-for-byte.
fn vvalue_of(k: &[u8], step: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(8 + k.len());
    v.extend_from_slice(&(step as u64).to_le_bytes());
    v.extend_from_slice(k);
    v
}

type ByteOracle = BTreeMap<Vec<u8>, Vec<u8>>;

/// Exhaustive oracle equivalence over byte-string keys: every touched key
/// (live value match, deleted keys stay dead, point seeks agree) plus one
/// full ordered scan compared entry-for-entry.
fn vcheck_everything(db: &Db, oracle: &ByteOracle, touched: &BTreeSet<Vec<u8>>, tag: &str) {
    for k in touched {
        let got = db.get(k).unwrap();
        assert_eq!(got.as_deref(), oracle.get(k).map(Vec::as_slice), "{tag}: get({k:?})");
        assert_eq!(db.seek(k, k).unwrap(), oracle.contains_key(k), "{tag}: seek({k:?})");
    }
    let full: Vec<(Vec<u8>, Vec<u8>)> =
        db.range::<&[u8], _>(..).unwrap().collect::<proteus_lsm::Result<Vec<_>>>().unwrap();
    let want: Vec<(Vec<u8>, Vec<u8>)> =
        oracle.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(full, want, "{tag}: full ordered scan diverged from oracle");
}

fn run_var_script(seed: u64, n_ops: usize, proteus: bool) {
    let dir = tmpdir(seed ^ 0xBA5E << 40 ^ (proteus as u64) << 62 ^ n_ops as u64);
    let factory: Arc<dyn proteus_lsm::FilterFactory> =
        if proteus { Arc::new(ProteusFactory::default()) } else { Arc::new(NoFilterFactory) };
    let db = Db::open(&dir, oracle_cfg(), Arc::clone(&factory)).unwrap();
    let mut oracle: ByteOracle = BTreeMap::new();
    let mut touched: BTreeSet<Vec<u8>> = BTreeSet::new();
    for (step, op) in vscript(seed, n_ops).iter().enumerate() {
        match op {
            VOp::Put(k) => {
                let v = vvalue_of(k, step);
                db.put(k, &v).unwrap();
                oracle.insert(k.clone(), v);
                touched.insert(k.clone());
            }
            VOp::Delete(k) => {
                db.delete(k).unwrap();
                oracle.remove(k);
                touched.insert(k.clone());
            }
            VOp::Get(k) => {
                let got = db.get(k).unwrap();
                assert_eq!(
                    got.as_deref(),
                    oracle.get(k).map(Vec::as_slice),
                    "step {step}: get({k:?}) diverged (seed {seed:#x})"
                );
            }
            VOp::Seek(lo, hi) => {
                let got = db.seek(lo, hi).unwrap();
                let truth = oracle.range::<Vec<u8>, _>(lo..=hi).next().is_some();
                assert_eq!(got, truth, "step {step}: seek [{lo:?},{hi:?}] (seed {seed:#x})");
            }
            VOp::Range(lo, hi) => {
                let got: Vec<(Vec<u8>, Vec<u8>)> = db
                    .range::<&[u8], _>(lo.as_slice()..=hi.as_slice())
                    .unwrap()
                    .collect::<proteus_lsm::Result<Vec<_>>>()
                    .unwrap();
                let want: Vec<(Vec<u8>, Vec<u8>)> = oracle
                    .range::<Vec<u8>, _>(lo..=hi)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, want, "step {step}: range [{lo:?},{hi:?}] (seed {seed:#x})");
            }
            VOp::Batch(ops) => {
                let mut batch = WriteBatch::with_capacity(ops.len());
                for (i, (k, is_delete)) in ops.iter().enumerate() {
                    touched.insert(k.clone());
                    if *is_delete {
                        batch.delete(k);
                        oracle.remove(k);
                    } else {
                        let v = vvalue_of(k, step * 16 + i);
                        batch.put(k, &v);
                        oracle.insert(k.clone(), v);
                    }
                }
                db.write(batch).unwrap();
            }
            VOp::Flush => db.flush().unwrap(),
            VOp::Settle => db.flush_and_settle().unwrap(),
        }
    }
    // Final settle, then the exhaustive checks, then a cold reopen:
    // recovery must not resurrect a deleted key or lose/corrupt a live one
    // whatever its length.
    db.flush_and_settle().unwrap();
    vcheck_everything(&db, &oracle, &touched, "settled");
    db.flush().unwrap();
    drop(db);
    let db = Db::open(&dir, oracle_cfg(), factory).unwrap();
    vcheck_everything(&db, &oracle, &touched, "reopened");

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Variable-length keys, no filters: every interleaving of the byte-
    /// string API matches the oracle exactly, through flush, compaction
    /// and a final reopen.
    #[test]
    fn varlen_interleavings_match_oracle_nofilter(seed in 0u64..u64::MAX / 2, extra in 0usize..80) {
        run_var_script(seed, 100 + extra, false);
    }

    /// The same interleavings through Proteus range filters trained on
    /// canonicalized (width-padded) keys: filters may only skip I/O,
    /// never change an answer — zero false negatives end-to-end.
    #[test]
    fn varlen_interleavings_match_oracle_proteus(seed in 0u64..u64::MAX / 2, extra in 0usize..80) {
        run_var_script(seed, 100 + extra, true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Kill-and-reopen spliced into random interleavings (no filters):
    /// under `SyncMode::Always` a crash loses nothing and resurrects
    /// nothing, wherever it lands.
    #[test]
    fn crash_interleavings_match_oracle_nofilter(seed in 0u64..u64::MAX / 2, extra in 0usize..60) {
        run_crash_script(seed, 90 + extra, false);
    }

    /// The same crash interleavings through Proteus range filters: filter
    /// rebuild/recovery may only skip I/O, never change an answer.
    #[test]
    fn crash_interleavings_match_oracle_proteus(seed in 0u64..u64::MAX / 2, extra in 0usize..60) {
        run_crash_script(seed, 90 + extra, true);
    }
}

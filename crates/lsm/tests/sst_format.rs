//! On-disk format compatibility: a committed `PRSSTv1` golden file (the
//! tombstone-free pre-v2 format) must keep opening read-only under the v2
//! reader, and the v2 entry-flag byte must fail *loudly* (typed
//! corruption, never a panic or a silent misread) under truncation and
//! bit-flip sweeps.
//!
//! The golden fixture is committed at `tests/fixtures/v1/golden_v1.sst`
//! and is byte-exact: it pins the v1 layout forever, independent of the
//! current writer (which only emits v2). Regenerate deliberately with
//! `PROTEUS_REGEN_FIXTURES=1 cargo test -p proteus-lsm --test sst_format`.

use proteus_core::codec::crc32;
use proteus_core::key::u64_key;
use proteus_lsm::sst::{SstReader, SstScanner, SstWriter, SST_FORMAT_VERSION};
use proteus_lsm::{Db, DbConfig, Error, NoFilterFactory, QueryQueue, Stats};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const GOLDEN: &str = "tests/fixtures/v1/golden_v1.sst";
const N_KEYS: u64 = 500;

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN)
}

fn v1_key(i: u64) -> [u8; 8] {
    u64_key(i * 7)
}

fn v1_value(i: u64) -> Vec<u8> {
    (0..16).map(|j| (i * 31 + j + 1) as u8).collect()
}

/// Emit the v1 SST layout byte-for-byte: raw (codec 0) data blocks with
/// flag-less entries, the indexed-CRC block index, no filter block, and
/// the 64-byte `PRSSTv1` footer.
fn encode_v1_golden() -> Vec<u8> {
    let mut file = Vec::new();
    let mut index: Vec<(Vec<u8>, Vec<u8>, u64, u32)> = Vec::new();
    for chunk in (0..N_KEYS).collect::<Vec<_>>().chunks(100) {
        let mut payload = (chunk.len() as u32).to_le_bytes().to_vec();
        for &i in chunk {
            payload.extend_from_slice(&v1_key(i));
            let v = v1_value(i);
            payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
            payload.extend_from_slice(&v);
        }
        let mut disk = vec![0u8]; // codec 0 = raw
        disk.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        disk.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        disk.extend_from_slice(&payload);
        index.push((
            v1_key(chunk[0]).to_vec(),
            v1_key(*chunk.last().unwrap()).to_vec(),
            file.len() as u64,
            disk.len() as u32,
        ));
        file.extend_from_slice(&disk);
    }
    let index_off = file.len() as u64;
    let mut ib = (index.len() as u32).to_le_bytes().to_vec();
    for (first, last, off, len) in &index {
        ib.extend_from_slice(first);
        ib.extend_from_slice(last);
        ib.extend_from_slice(&off.to_le_bytes());
        ib.extend_from_slice(&len.to_le_bytes());
    }
    let crc = crc32(&ib);
    ib.extend_from_slice(&crc.to_le_bytes());
    let index_len = ib.len() as u64;
    file.extend_from_slice(&ib);
    // Footer: no filter block (v1 files may also carry one; absent here).
    let mut footer = [0u8; 64];
    footer[0..8].copy_from_slice(&index_off.to_le_bytes());
    footer[8..16].copy_from_slice(&index_len.to_le_bytes());
    footer[16..24].copy_from_slice(&(index_off + index_len).to_le_bytes());
    footer[24..32].copy_from_slice(&0u64.to_le_bytes()); // filter_len
    footer[32..40].copy_from_slice(&N_KEYS.to_le_bytes());
    footer[40..44].copy_from_slice(&1u32.to_le_bytes()); // level 1
    footer[44..48].copy_from_slice(&8u32.to_le_bytes()); // key width
    footer[48..50].copy_from_slice(&1u16.to_le_bytes()); // format version 1
    footer[56..64].copy_from_slice(b"PRSSTv1\0");
    file.extend_from_slice(&footer);
    file
}

fn load_golden() -> Vec<u8> {
    let path = golden_path();
    if std::env::var("PROTEUS_REGEN_FIXTURES").is_ok() || !path.exists() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, encode_v1_golden()).unwrap();
    }
    std::fs::read(&path).unwrap()
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("proteus-sstfmt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn committed_golden_bytes_match_the_generator() {
    // The committed fixture must stay byte-identical to the documented
    // layout; if this fails, someone changed either the fixture or the
    // generator — both are format-freezing mistakes.
    assert_eq!(load_golden(), encode_v1_golden(), "golden v1 fixture drifted");
}

#[test]
fn v1_golden_opens_readonly_under_the_v2_reader() {
    let bytes = load_golden();
    let dir = tmpdir("v1-open");
    let path = dir.join("00000001.sst");
    std::fs::write(&path, &bytes).unwrap();

    let sst = SstReader::open(&path, 1, 8).unwrap();
    assert_eq!(sst.format_version, 1);
    assert_eq!(sst.level, 1);
    assert_eq!(sst.n_entries, N_KEYS);
    assert_eq!(sst.n_tombstones, 0, "v1 predates tombstones");
    assert_eq!(sst.min_key, v1_key(0));
    assert_eq!(sst.max_key, v1_key(N_KEYS - 1));
    let stats = Stats::default();
    assert!(sst.filter(&stats).is_none(), "golden carries no filter block");

    // Every entry decodes with the flag-less v1 layout, all live.
    let mut scan = SstScanner::new(Arc::new(sst), Arc::new(Stats::default()));
    let mut i = 0u64;
    while let Some((k, v)) = scan.try_next().unwrap() {
        assert_eq!(k, v1_key(i));
        assert_eq!(v.as_deref(), Some(v1_value(i).as_slice()), "entry {i} must be live");
        i += 1;
    }
    assert_eq!(i, N_KEYS);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn db_recovers_v1_files_and_serves_v2_reads_over_them() {
    let bytes = load_golden();
    let dir = tmpdir("v1-db");
    std::fs::write(dir.join("00000001.sst"), &bytes).unwrap();

    let cfg = DbConfig::builder()
        .memtable_bytes(16 << 10)
        .sst_target_bytes(32 << 10)
        .l0_compaction_trigger(1)
        .level_base_bytes(32 << 10)
        .build()
        .unwrap();
    let db = Db::open(&dir, cfg, Arc::new(NoFilterFactory)).unwrap();
    assert_eq!(db.stats().ssts_recovered.get(), 1);
    // The full v2 read surface works over the legacy file.
    assert_eq!(db.get_u64(7).unwrap().as_deref(), Some(v1_value(1).as_slice()));
    assert!(db.seek_u64(0, 10).unwrap());
    assert!(!db.seek_u64(1, 6).unwrap());
    let live = db.range_u64(0..=70).unwrap().count();
    assert_eq!(live, 11); // keys 0,7,...,70
                          // ...and so do v2 writes layered on top: a delete shadows a v1 entry.
    db.delete_u64(7).unwrap();
    assert_eq!(db.get_u64(7).unwrap(), None, "tombstone must shadow the v1 entry");
    for i in 0..N_KEYS {
        db.put_u64(1_000_000 + i, &[i as u8; 32]).unwrap();
    }
    db.flush_and_settle().unwrap();
    // Compaction consumed the v1 input and re-wrote everything as v2;
    // the deleted key stays dead, every other v1 key survives.
    assert_eq!(db.get_u64(7).unwrap(), None);
    for i in (0..N_KEYS).step_by(37) {
        if i != 1 {
            assert!(db.seek_u64(i * 7, i * 7).unwrap(), "v1 key {i} lost in v2 compaction");
        }
    }
    drop(db);
    // All surviving files are v2 now (the v1 golden was compacted away).
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("sst") {
            continue;
        }
        let id: u64 = path.file_stem().unwrap().to_str().unwrap().parse().unwrap();
        let sst = SstReader::open(&path, id, 8).unwrap();
        assert_eq!(sst.format_version, SST_FORMAT_VERSION, "{path:?} should be v2");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Base for keys whose big-endian bytes are all non-zero, so the zero-RLE
/// codec finds nothing to compress and blocks are stored raw (predictable
/// entry offsets for targeted corruption).
const V2_KEY_BASE: u64 = 0x8070_6050_4030_2010;

/// Write a v2 file whose blocks do not compress, so every data block is
/// stored raw and entry offsets are predictable for targeted corruption.
fn write_v2_raw(dir: &Path) -> PathBuf {
    let stats = Stats::default();
    let queue = QueryQueue::new(4, 1);
    let mut w = SstWriter::create(dir, 9, 8, 1 << 20, 0).unwrap();
    for i in 0..50u64 {
        let v: Vec<u8> = (0..24).map(|j| (i * 37 + j * 11 + 1) as u8 | 1).collect();
        if i % 10 == 3 {
            w.delete(&u64_key(V2_KEY_BASE + i)).unwrap();
        } else {
            w.add(&u64_key(V2_KEY_BASE + i), &v).unwrap();
        }
    }
    drop(w.finish(&NoFilterFactory, &queue, 0.0, &stats).unwrap());
    dir.join("00000009.sst")
}

#[test]
fn v2_entry_flag_corruption_is_typed_not_silent() {
    let dir = tmpdir("flag-corrupt");
    let path = write_v2_raw(&dir);
    let orig = std::fs::read(&path).unwrap();
    assert_eq!(orig[0], 0, "first block must be stored raw for this sweep");

    // First entry of the first block: [9B block header][4B n][8B key][flag].
    let flag_off = 9 + 4 + 8;
    for bad_flag in [0x02u8, 0x80, 0xFF, 0x03] {
        let mut bytes = orig.clone();
        bytes[flag_off] = bad_flag;
        std::fs::write(&path, &bytes).unwrap();
        let sst = SstReader::open(&path, 9, 8).unwrap(); // footer is fine
        let err = sst.read_block(0, &Stats::default());
        assert!(
            matches!(err, Err(Error::Corruption(_))),
            "flag {bad_flag:#04x} must be typed corruption, got {err:?}"
        );
    }
    // Tombstone flag on an entry that carries a value: also corruption.
    let mut bytes = orig.clone();
    bytes[flag_off] = 1;
    std::fs::write(&path, &bytes).unwrap();
    let sst = SstReader::open(&path, 9, 8).unwrap();
    assert!(matches!(sst.read_block(0, &Stats::default()), Err(Error::Corruption(_))));

    // The same corruption surfaces through the Db as a typed error on the
    // affected read path (never a panic, never a silent wrong answer).
    let db = Db::open(&dir, DbConfig::default(), Arc::new(NoFilterFactory)).unwrap();
    assert!(matches!(db.get_u64(V2_KEY_BASE), Err(Error::Corruption(_))));
    assert!(matches!(db.seek_u64(V2_KEY_BASE, V2_KEY_BASE + 5), Err(Error::Corruption(_))));
    drop(db);
    std::fs::write(&path, &orig).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v2_truncation_sweep_never_panics() {
    let dir = tmpdir("truncate");
    let path = write_v2_raw(&dir);
    let orig = std::fs::read(&path).unwrap();
    // Any truncation either fails the open (footer/index damage) or, for
    // cuts inside the data section of an already-open reader, fails the
    // block read — always typed, never a panic.
    for cut in (0..orig.len()).step_by(7) {
        std::fs::write(&path, &orig[..cut]).unwrap();
        if let Ok(sst) = SstReader::open(&path, 9, 8) {
            let mut scan = SstScanner::new(Arc::new(sst), Arc::new(Stats::default()));
            while let Ok(Some(_)) = scan.try_next() {}
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! On-disk format compatibility: committed `PRSSTv1` and `PRSSTv2` golden
//! files (the fixed-width legacy formats) must keep opening read-only
//! under the v3 reader, and the current `PRSSTv3` layout — length-prefixed
//! keys with restart-point prefix compression — is pinned by a byte-exact
//! golden of its own plus truncation/bit-flip sweeps that must fail
//! *loudly* (typed corruption, never a panic or a silent misread).
//!
//! The golden fixtures are committed under `tests/fixtures/{v1,v2,v3}/`
//! and are byte-exact: each pins its format forever, hand-encoded
//! independently of the writer (which only emits v3). Regenerate
//! deliberately with
//! `PROTEUS_REGEN_FIXTURES=1 cargo test -p proteus-lsm --test sst_format`.

use proteus_core::codec::crc32;
use proteus_core::key::u64_key;
use proteus_lsm::sst::{SstReader, SstScanner, SstWriter, SST_FORMAT_VERSION};
use proteus_lsm::{Db, DbConfig, Error, NoFilterFactory, QueryQueue, Stats};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const GOLDEN_V1: &str = "tests/fixtures/v1/golden_v1.sst";
const GOLDEN_V2: &str = "tests/fixtures/v2/golden_v2.sst";
const GOLDEN_V3: &str = "tests/fixtures/v3/golden_v3.sst";
const N_KEYS: u64 = 500;

fn fixture_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn load_fixture(rel: &str, encode: impl Fn() -> Vec<u8>) -> Vec<u8> {
    let path = fixture_path(rel);
    if std::env::var("PROTEUS_REGEN_FIXTURES").is_ok() || !path.exists() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, encode()).unwrap();
    }
    std::fs::read(&path).unwrap()
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("proteus-sstfmt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Wrap a block body in the raw (codec 0) disk envelope:
/// `[u8 codec][u32 raw_len][u32 stored_len][body]`.
fn raw_disk_block(body: &[u8]) -> Vec<u8> {
    let mut disk = vec![0u8];
    disk.extend_from_slice(&(body.len() as u32).to_le_bytes());
    disk.extend_from_slice(&(body.len() as u32).to_le_bytes());
    disk.extend_from_slice(body);
    disk
}

/// Serialize the 64-byte footer shared by every format version (the
/// version selects the magic and whether `n_tombstones` is meaningful).
#[allow(clippy::too_many_arguments)]
fn encode_footer(
    index_off: u64,
    index_len: u64,
    n_entries: u64,
    n_tombstones: u32,
    level: u32,
    width: u32,
    version: u16,
    magic: &[u8; 8],
) -> [u8; 64] {
    let mut footer = [0u8; 64];
    footer[0..8].copy_from_slice(&index_off.to_le_bytes());
    footer[8..16].copy_from_slice(&index_len.to_le_bytes());
    footer[16..24].copy_from_slice(&(index_off + index_len).to_le_bytes());
    footer[24..32].copy_from_slice(&0u64.to_le_bytes()); // filter_len: none
    footer[32..40].copy_from_slice(&n_entries.to_le_bytes());
    footer[40..44].copy_from_slice(&level.to_le_bytes());
    footer[44..48].copy_from_slice(&width.to_le_bytes());
    footer[48..50].copy_from_slice(&version.to_le_bytes());
    if version >= 2 {
        footer[50..54].copy_from_slice(&n_tombstones.to_le_bytes());
    }
    footer[56..64].copy_from_slice(magic);
    footer
}

// ---------------------------------------------------------------------------
// PRSSTv1 golden: fixed-width keys, no flag byte, no tombstones.
// ---------------------------------------------------------------------------

fn v1_key(i: u64) -> [u8; 8] {
    u64_key(i * 7)
}

fn v1_value(i: u64) -> Vec<u8> {
    (0..16).map(|j| (i * 31 + j + 1) as u8).collect()
}

/// Emit the v1 SST layout byte-for-byte: raw (codec 0) data blocks with
/// flag-less entries, the fixed-width CRC'd block index, no filter block,
/// and the 64-byte `PRSSTv1` footer.
fn encode_v1_golden() -> Vec<u8> {
    let mut file = Vec::new();
    let mut index: Vec<(Vec<u8>, Vec<u8>, u64, u32)> = Vec::new();
    for chunk in (0..N_KEYS).collect::<Vec<_>>().chunks(100) {
        let mut body = (chunk.len() as u32).to_le_bytes().to_vec();
        for &i in chunk {
            body.extend_from_slice(&v1_key(i));
            let v = v1_value(i);
            body.extend_from_slice(&(v.len() as u32).to_le_bytes());
            body.extend_from_slice(&v);
        }
        let disk = raw_disk_block(&body);
        index.push((
            v1_key(chunk[0]).to_vec(),
            v1_key(*chunk.last().unwrap()).to_vec(),
            file.len() as u64,
            disk.len() as u32,
        ));
        file.extend_from_slice(&disk);
    }
    let index_off = file.len() as u64;
    let mut ib = (index.len() as u32).to_le_bytes().to_vec();
    for (first, last, off, len) in &index {
        ib.extend_from_slice(first);
        ib.extend_from_slice(last);
        ib.extend_from_slice(&off.to_le_bytes());
        ib.extend_from_slice(&len.to_le_bytes());
    }
    let crc = crc32(&ib);
    ib.extend_from_slice(&crc.to_le_bytes());
    let index_len = ib.len() as u64;
    file.extend_from_slice(&ib);
    file.extend_from_slice(&encode_footer(index_off, index_len, N_KEYS, 0, 1, 8, 1, b"PRSSTv1\0"));
    file
}

#[test]
fn committed_golden_bytes_match_the_generator() {
    // The committed fixtures must stay byte-identical to the documented
    // layouts; if this fails, someone changed either a fixture or its
    // generator — both are format-freezing mistakes.
    assert_eq!(load_fixture(GOLDEN_V1, encode_v1_golden), encode_v1_golden(), "v1 drifted");
    assert_eq!(load_fixture(GOLDEN_V2, encode_v2_golden), encode_v2_golden(), "v2 drifted");
    assert_eq!(load_fixture(GOLDEN_V3, encode_v3_golden), encode_v3_golden(), "v3 drifted");
}

#[test]
fn v1_golden_opens_readonly_under_the_v3_reader() {
    let bytes = load_fixture(GOLDEN_V1, encode_v1_golden);
    let dir = tmpdir("v1-open");
    let path = dir.join("00000001.sst");
    std::fs::write(&path, &bytes).unwrap();

    let sst = SstReader::open(&path, 1, 8).unwrap();
    assert_eq!(sst.format_version, 1);
    assert_eq!(sst.level, 1);
    assert_eq!(sst.n_entries, N_KEYS);
    assert_eq!(sst.n_tombstones, 0, "v1 predates tombstones");
    assert_eq!(sst.min_key, v1_key(0));
    assert_eq!(sst.max_key, v1_key(N_KEYS - 1));
    let stats = Stats::default();
    assert!(sst.filter(&stats).is_none(), "golden carries no filter block");

    // Every entry decodes with the flag-less v1 layout, all live.
    let mut scan = SstScanner::new(Arc::new(sst), Arc::new(Stats::default()));
    let mut i = 0u64;
    while let Some((k, v)) = scan.try_next().unwrap() {
        assert_eq!(k, v1_key(i));
        assert_eq!(v.as_deref(), Some(v1_value(i).as_slice()), "entry {i} must be live");
        i += 1;
    }
    assert_eq!(i, N_KEYS);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn db_recovers_v1_files_and_serves_reads_over_them() {
    let bytes = load_fixture(GOLDEN_V1, encode_v1_golden);
    let dir = tmpdir("v1-db");
    std::fs::write(dir.join("00000001.sst"), &bytes).unwrap();

    let cfg = DbConfig::builder()
        .memtable_bytes(16 << 10)
        .sst_target_bytes(32 << 10)
        .l0_compaction_trigger(1)
        .level_base_bytes(32 << 10)
        .build()
        .unwrap();
    let db = Db::open(&dir, cfg, Arc::new(NoFilterFactory)).unwrap();
    assert_eq!(db.stats().ssts_recovered.get(), 1);
    // The full read surface works over the legacy file.
    assert_eq!(db.get_u64(7).unwrap().as_deref(), Some(v1_value(1).as_slice()));
    assert!(db.seek_u64(0, 10).unwrap());
    assert!(!db.seek_u64(1, 6).unwrap());
    let live = db.range_u64(0..=70).unwrap().count();
    assert_eq!(live, 11); // keys 0,7,...,70
                          // ...and so do writes layered on top: a delete shadows a v1 entry.
    db.delete_u64(7).unwrap();
    assert_eq!(db.get_u64(7).unwrap(), None, "tombstone must shadow the v1 entry");
    for i in 0..N_KEYS {
        db.put_u64(1_000_000 + i, &[i as u8; 32]).unwrap();
    }
    db.flush_and_settle().unwrap();
    // Compaction consumed the v1 input and re-wrote everything as v3;
    // the deleted key stays dead, every other v1 key survives.
    assert_eq!(db.get_u64(7).unwrap(), None);
    for i in (0..N_KEYS).step_by(37) {
        if i != 1 {
            assert!(db.seek_u64(i * 7, i * 7).unwrap(), "v1 key {i} lost in compaction");
        }
    }
    drop(db);
    // All surviving files are v3 now (the v1 golden was compacted away).
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("sst") {
            continue;
        }
        let id: u64 = path.file_stem().unwrap().to_str().unwrap().parse().unwrap();
        let sst = SstReader::open(&path, id, 8).unwrap();
        assert_eq!(sst.format_version, SST_FORMAT_VERSION, "{path:?} should be v3");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// PRSSTv2 golden: fixed-width keys plus a per-entry flag byte (tombstones).
// ---------------------------------------------------------------------------

/// Base for keys whose big-endian bytes are all non-zero, so the zero-RLE
/// codec finds nothing to compress and blocks are stored raw (predictable
/// entry offsets for targeted corruption).
const V2_KEY_BASE: u64 = 0x8070_6050_4030_2010;
const N_V2: u64 = 50;

fn v2_tombstone(i: u64) -> bool {
    i % 10 == 3
}

fn v2_value(i: u64) -> Vec<u8> {
    (0..24).map(|j| (i * 37 + j * 11 + 1) as u8 | 1).collect()
}

/// Emit the v2 SST layout byte-for-byte: raw (codec 0) data blocks of
/// `[key(8)][u8 flags][u32 value_len][value]` entries (tombstone =
/// flags 1, value_len 0), the fixed-width index, and the `PRSSTv2` footer
/// with the tombstone count at bytes 50..54.
fn encode_v2_golden() -> Vec<u8> {
    let mut file = Vec::new();
    let mut index: Vec<(Vec<u8>, Vec<u8>, u64, u32)> = Vec::new();
    for chunk in (0..N_V2).collect::<Vec<_>>().chunks(20) {
        let mut body = (chunk.len() as u32).to_le_bytes().to_vec();
        for &i in chunk {
            body.extend_from_slice(&u64_key(V2_KEY_BASE + i));
            if v2_tombstone(i) {
                body.push(0x01);
                body.extend_from_slice(&0u32.to_le_bytes());
            } else {
                body.push(0x00);
                let v = v2_value(i);
                body.extend_from_slice(&(v.len() as u32).to_le_bytes());
                body.extend_from_slice(&v);
            }
        }
        let disk = raw_disk_block(&body);
        index.push((
            u64_key(V2_KEY_BASE + chunk[0]).to_vec(),
            u64_key(V2_KEY_BASE + chunk.last().unwrap()).to_vec(),
            file.len() as u64,
            disk.len() as u32,
        ));
        file.extend_from_slice(&disk);
    }
    let index_off = file.len() as u64;
    let mut ib = (index.len() as u32).to_le_bytes().to_vec();
    for (first, last, off, len) in &index {
        ib.extend_from_slice(first);
        ib.extend_from_slice(last);
        ib.extend_from_slice(&off.to_le_bytes());
        ib.extend_from_slice(&len.to_le_bytes());
    }
    let crc = crc32(&ib);
    ib.extend_from_slice(&crc.to_le_bytes());
    let index_len = ib.len() as u64;
    file.extend_from_slice(&ib);
    let n_tomb = (0..N_V2).filter(|&i| v2_tombstone(i)).count() as u32;
    file.extend_from_slice(&encode_footer(
        index_off,
        index_len,
        N_V2,
        n_tomb,
        0,
        8,
        2,
        b"PRSSTv2\0",
    ));
    file
}

#[test]
fn v2_golden_opens_readonly_under_the_v3_reader() {
    let bytes = load_fixture(GOLDEN_V2, encode_v2_golden);
    let dir = tmpdir("v2-open");
    let path = dir.join("00000002.sst");
    std::fs::write(&path, &bytes).unwrap();

    // v2 files are fixed-width: the expected width is enforced exactly.
    assert!(SstReader::open(&path, 2, 16).is_err(), "width mismatch must fail");
    let sst = SstReader::open(&path, 2, 8).unwrap();
    assert_eq!(sst.format_version, 2);
    assert_eq!(sst.n_entries, N_V2);
    assert_eq!(sst.n_tombstones, 5);
    assert_eq!(sst.min_key, u64_key(V2_KEY_BASE));
    assert_eq!(sst.max_key, u64_key(V2_KEY_BASE + N_V2 - 1));

    // Entries decode with the flag-byte layout; tombstones come out None.
    let mut scan = SstScanner::new(Arc::new(sst), Arc::new(Stats::default()));
    let mut i = 0u64;
    while let Some((k, v)) = scan.try_next().unwrap() {
        assert_eq!(k, u64_key(V2_KEY_BASE + i));
        if v2_tombstone(i) {
            assert_eq!(v, None, "entry {i} must be a tombstone");
        } else {
            assert_eq!(v.as_deref(), Some(v2_value(i).as_slice()), "entry {i} must be live");
        }
        i += 1;
    }
    assert_eq!(i, N_V2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v2_entry_flag_corruption_is_typed_not_silent() {
    let dir = tmpdir("flag-corrupt");
    let path = dir.join("00000009.sst");
    let orig = encode_v2_golden();
    std::fs::write(&path, &orig).unwrap();
    assert_eq!(orig[0], 0, "first block must be stored raw for this sweep");

    // First entry of the first block: [9B block header][4B n][8B key][flag].
    let flag_off = 9 + 4 + 8;
    for bad_flag in [0x02u8, 0x80, 0xFF, 0x03] {
        let mut bytes = orig.clone();
        bytes[flag_off] = bad_flag;
        std::fs::write(&path, &bytes).unwrap();
        let sst = SstReader::open(&path, 9, 8).unwrap(); // footer is fine
        let err = sst.read_block(0, &Stats::default());
        assert!(
            matches!(err, Err(Error::Corruption(_))),
            "flag {bad_flag:#04x} must be typed corruption, got {err:?}"
        );
    }
    // Tombstone flag on an entry that carries a value: also corruption.
    let mut bytes = orig.clone();
    bytes[flag_off] = 1;
    std::fs::write(&path, &bytes).unwrap();
    let sst = SstReader::open(&path, 9, 8).unwrap();
    assert!(matches!(sst.read_block(0, &Stats::default()), Err(Error::Corruption(_))));

    // The same corruption surfaces through the Db as a typed error on the
    // affected read path (never a panic, never a silent wrong answer).
    let db = Db::open(&dir, DbConfig::default(), Arc::new(NoFilterFactory)).unwrap();
    assert!(matches!(db.get_u64(V2_KEY_BASE), Err(Error::Corruption(_))));
    assert!(matches!(db.seek_u64(V2_KEY_BASE, V2_KEY_BASE + 5), Err(Error::Corruption(_))));
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// PRSSTv3 golden: length-prefixed keys, restart-point prefix compression.
// ---------------------------------------------------------------------------

/// The v3 golden key set: a 1-byte key, URL-style keys with heavy shared
/// prefixes (several per restart interval), and a 300-byte key — sorted,
/// strictly ascending, wildly different lengths.
fn v3_entries() -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
    let mut keys: Vec<Vec<u8>> = vec![vec![0x01]];
    for i in 0..40u32 {
        let page = "x".repeat((i % 5) as usize);
        keys.push(format!("https://example.com/{:02}/page-{page}", i / 4).into_bytes());
    }
    keys.push(vec![b'z'; 300]);
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .enumerate()
        .map(|(i, k)| {
            let v = (i % 7 != 3).then(|| {
                (0..10 + i % 7).map(|j| (i * 13 + j * 5 + 7) as u8 | 1).collect::<Vec<u8>>()
            });
            (k, v)
        })
        .collect()
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Encode one v3 block body's entry section (everything after the `u32 n`
/// count): `[u16 shared][u16 non_shared][u8 flags][u32 value_len]
/// [key_suffix][value]` per entry, with `shared = 0` at every 16-entry
/// restart point. Returns the bytes plus each entry's offset within them
/// (for targeted corruption).
fn encode_v3_entries(entries: &[(Vec<u8>, Option<Vec<u8>>)]) -> (Vec<u8>, Vec<usize>) {
    let mut payload = Vec::new();
    let mut offsets = Vec::new();
    let mut prev: &[u8] = &[];
    for (idx, (key, value)) in entries.iter().enumerate() {
        offsets.push(payload.len());
        let shared = if idx % 16 == 0 { 0 } else { common_prefix(prev, key) };
        payload.extend_from_slice(&(shared as u16).to_le_bytes());
        payload.extend_from_slice(&((key.len() - shared) as u16).to_le_bytes());
        match value {
            Some(v) => {
                payload.push(0x00);
                payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
                payload.extend_from_slice(&key[shared..]);
                payload.extend_from_slice(v);
            }
            None => {
                payload.push(0x01);
                payload.extend_from_slice(&0u32.to_le_bytes());
                payload.extend_from_slice(&key[shared..]);
            }
        }
        prev = key;
    }
    (payload, offsets)
}

/// Entries per data block in the v3 golden: 18 puts a second restart point
/// (entry 16) inside each full block, with compressed entries after it.
const V3_BLOCK_ENTRIES: usize = 18;

/// Emit the v3 SST layout byte-for-byte: raw (codec 0) data blocks of
/// prefix-compressed entries, the length-prefixed CRC'd index, no filter
/// block, and the `PRSSTv3` footer (the width field is only the canonical
/// filter-training width — it does not constrain key lengths).
fn encode_v3_golden() -> Vec<u8> {
    let entries = v3_entries();
    let mut file = Vec::new();
    let mut index: Vec<(Vec<u8>, Vec<u8>, u64, u32)> = Vec::new();
    for chunk in entries.chunks(V3_BLOCK_ENTRIES) {
        let mut body = (chunk.len() as u32).to_le_bytes().to_vec();
        body.extend_from_slice(&encode_v3_entries(chunk).0);
        let disk = raw_disk_block(&body);
        index.push((
            chunk[0].0.clone(),
            chunk.last().unwrap().0.clone(),
            file.len() as u64,
            disk.len() as u32,
        ));
        file.extend_from_slice(&disk);
    }
    let index_off = file.len() as u64;
    let mut ib = (index.len() as u32).to_le_bytes().to_vec();
    for (first, last, off, len) in &index {
        ib.extend_from_slice(&(first.len() as u16).to_le_bytes());
        ib.extend_from_slice(first);
        ib.extend_from_slice(&(last.len() as u16).to_le_bytes());
        ib.extend_from_slice(last);
        ib.extend_from_slice(&off.to_le_bytes());
        ib.extend_from_slice(&len.to_le_bytes());
    }
    let crc = crc32(&ib);
    ib.extend_from_slice(&crc.to_le_bytes());
    let index_len = ib.len() as u64;
    file.extend_from_slice(&ib);
    let n_tomb = entries.iter().filter(|(_, v)| v.is_none()).count() as u32;
    file.extend_from_slice(&encode_footer(
        index_off,
        index_len,
        entries.len() as u64,
        n_tomb,
        1,
        8,
        3,
        b"PRSSTv3\0",
    ));
    file
}

#[test]
fn v3_golden_decodes_byte_exactly_and_is_self_describing() {
    let bytes = load_fixture(GOLDEN_V3, encode_v3_golden);
    let dir = tmpdir("v3-open");
    let path = dir.join("00000003.sst");
    std::fs::write(&path, &bytes).unwrap();
    let entries = v3_entries();

    let sst = SstReader::open(&path, 3, 8).unwrap();
    assert_eq!(sst.format_version, 3);
    assert_eq!(sst.level, 1);
    assert_eq!(sst.n_entries, entries.len() as u64);
    assert_eq!(sst.n_tombstones, entries.iter().filter(|(_, v)| v.is_none()).count() as u64);
    assert_eq!(sst.min_key, entries[0].0);
    assert_eq!(sst.max_key, entries.last().unwrap().0);
    assert_eq!(sst.filter_width(), 8);

    // v3 files are self-describing: the caller's expected width is ignored
    // (it only constrains fixed-width v1/v2 files).
    let wide = SstReader::open(&path, 3, 32).unwrap();
    assert_eq!(wide.filter_width(), 8);

    // Every prefix-compressed entry reconstructs its raw key byte-exactly,
    // tombstones included, in order.
    let mut scan = SstScanner::new(Arc::new(sst), Arc::new(Stats::default()));
    let mut i = 0usize;
    while let Some((k, v)) = scan.try_next().unwrap() {
        assert_eq!(k, entries[i].0, "entry {i} key");
        assert_eq!(v, entries[i].1, "entry {i} value");
        i += 1;
    }
    assert_eq!(i, entries.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v3_entry_corruption_is_typed_not_silent() {
    let dir = tmpdir("v3-corrupt");
    let path = dir.join("00000003.sst");
    let orig = encode_v3_golden();
    assert_eq!(orig[0], 0, "first block must be stored raw for this sweep");
    let entries = v3_entries();
    let (_, offsets) = encode_v3_entries(&entries[..V3_BLOCK_ENTRIES]);

    // Entry j of block 0 starts at [9B block header][4B n] + offsets[j];
    // its fields: [u16 shared][u16 non_shared][u8 flags][u32 value_len].
    let entry = |j: usize| 9 + 4 + offsets[j];
    let corrupt = |mutate: &dyn Fn(&mut Vec<u8>), what: &str| {
        let mut bytes = orig.clone();
        mutate(&mut bytes);
        std::fs::write(&path, &bytes).unwrap();
        let sst = SstReader::open(&path, 3, 8).unwrap(); // footer is fine
        let err = sst.read_block(0, &Stats::default());
        assert!(matches!(err, Err(Error::Corruption(_))), "{what}: got {err:?}");
    };

    // A restart entry with a nonzero shared count.
    corrupt(&|b| b[entry(0)] = 1, "nonzero shared at restart");
    // A non-restart entry sharing more bytes than the previous key has.
    corrupt(
        &|b| b[entry(1)..entry(1) + 2].copy_from_slice(&u16::MAX.to_le_bytes()),
        "shared exceeds previous key length",
    );
    // A zero-length key (shared = 0 at the restart, non_shared forced 0).
    corrupt(
        &|b| b[entry(0) + 2..entry(0) + 4].copy_from_slice(&0u16.to_le_bytes()),
        "zero-length key",
    );
    // Reserved flag bits, and the tombstone flag on an entry with a value.
    for bad_flag in [0x02u8, 0x80, 0xFF, 0x01] {
        corrupt(&|b| b[entry(0) + 4] = bad_flag, "bad flag byte");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v3_golden_truncation_sweep_never_panics() {
    let orig = encode_v3_golden();
    let dir = tmpdir("v3-truncate");
    let path = dir.join("00000003.sst");
    // Any truncation either fails the open (footer/index damage) or, for
    // cuts inside the data section of an already-open reader, fails the
    // block read — always typed, never a panic.
    for cut in (0..orig.len()).step_by(3) {
        std::fs::write(&path, &orig[..cut]).unwrap();
        if let Ok(sst) = SstReader::open(&path, 3, 8) {
            let mut scan = SstScanner::new(Arc::new(sst), Arc::new(Stats::default()));
            while let Ok(Some(_)) = scan.try_next() {}
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Write a v3 file through the real writer (variable-length string keys),
/// for sweeps over writer-produced bytes (which may use the compressed
/// block codec, unlike the hand-encoded golden).
fn write_v3_with_writer(dir: &Path) -> PathBuf {
    let stats = Stats::default();
    let queue = QueryQueue::new(4, 1);
    let mut w = SstWriter::create(dir, 9, 8, 1 << 12, 0).unwrap();
    for (key, value) in v3_entries() {
        match value {
            Some(v) => w.add(&key, &v).unwrap(),
            None => w.delete(&key).unwrap(),
        }
    }
    drop(w.finish(&NoFilterFactory, &queue, 0.0, &stats).unwrap());
    dir.join("00000009.sst")
}

#[test]
fn writer_output_truncation_sweep_never_panics() {
    let dir = tmpdir("truncate");
    let path = write_v3_with_writer(&dir);
    let orig = std::fs::read(&path).unwrap();
    for cut in (0..orig.len()).step_by(7) {
        std::fs::write(&path, &orig[..cut]).unwrap();
        if let Ok(sst) = SstReader::open(&path, 9, 8) {
            let mut scan = SstScanner::new(Arc::new(sst), Arc::new(Stats::default()));
            while let Ok(Some(_)) = scan.try_next() {}
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn golden_fixtures_end_with_pinned_magics() {
    use proteus_lsm::sst::{SST_MAGIC, SST_MAGIC_V1, SST_MAGIC_V3};
    // The last 8 bytes of every footer are the format magic; each generation
    // is pinned here against its committed fixture so any accidental edit to
    // the exported constants (or the footer layout) breaks a golden test.
    let v1 = load_fixture(GOLDEN_V1, encode_v1_golden);
    let v2 = load_fixture(GOLDEN_V2, encode_v2_golden);
    let v3 = load_fixture(GOLDEN_V3, encode_v3_golden);
    assert_eq!(&v1[v1.len() - 8..], &SST_MAGIC_V1, "v1 magic drifted");
    assert_eq!(&v2[v2.len() - 8..], &SST_MAGIC, "v2 magic drifted");
    assert_eq!(&v3[v3.len() - 8..], &SST_MAGIC_V3, "v3 magic drifted");
    assert_eq!(SST_MAGIC_V1, *b"PRSSTv1\0");
    assert_eq!(SST_MAGIC, *b"PRSSTv2\0");
    assert_eq!(SST_MAGIC_V3, *b"PRSSTv3\0");
}

//! WAL on-disk format compatibility: a committed `PRWALv1` golden segment
//! pins the record layout byte-for-byte, the live writer must still emit
//! exactly those bytes, and replay must be *total* — a torn tail recovers
//! the longest valid prefix of commits, every other kind of damage is a
//! typed [`Error::Corruption`], and no malformed input ever panics.
//!
//! The golden fixture is committed at `tests/fixtures/wal/golden_v1.wal`
//! and is byte-exact, independent of the current writer. Regenerate
//! deliberately with
//! `PROTEUS_REGEN_FIXTURES=1 cargo test -p proteus-lsm --test wal_format`.

use proteus_core::codec::crc32;
use proteus_core::key::u64_key;
use proteus_lsm::wal::{
    self, replay_segment, segment_path, Wal, WalOp, WAL_HEADER_LEN, WAL_MAGIC, WAL_TAG_DELETE,
    WAL_TAG_PUT,
};
use proteus_lsm::{Error, Stats, SyncMode};
use std::path::{Path, PathBuf};

const GOLDEN: &str = "tests/fixtures/wal/golden_v1.wal";
const KEY_WIDTH: usize = 8;

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN)
}

fn k(i: u64) -> Vec<u8> {
    u64_key(i).to_vec()
}

/// The three commits frozen into the golden segment: a one-op put, a
/// one-op delete, and a multi-op `WriteBatch` (put + delete + put) that
/// pins batch-as-one-record atomicity into the format.
fn golden_commits() -> Vec<Vec<WalOp>> {
    vec![
        vec![(k(1), Some(b"alpha".to_vec()))],
        vec![(k(2), None)],
        vec![(k(3), Some(b"gamma-gamma".to_vec())), (k(1), None), (k(4), Some(vec![0xEE; 40]))],
    ]
}

/// Append one commit record for `ops` to `out`, mirroring the documented
/// layout by hand (independent of the writer): `u32 payload_len`,
/// `u32 crc32(payload)`, payload = `u32 n_ops` then per-op
/// `u8 tag, u64 key_len, key[, u64 value_len, value]`.
fn push_record(out: &mut Vec<u8>, ops: &[WalOp]) {
    let mut payload = (ops.len() as u32).to_le_bytes().to_vec();
    for (key, value) in ops {
        match value {
            Some(v) => {
                payload.push(WAL_TAG_PUT);
                payload.extend_from_slice(&(key.len() as u64).to_le_bytes());
                payload.extend_from_slice(key);
                payload.extend_from_slice(&(v.len() as u64).to_le_bytes());
                payload.extend_from_slice(v);
            }
            None => {
                payload.push(WAL_TAG_DELETE);
                payload.extend_from_slice(&(key.len() as u64).to_le_bytes());
                payload.extend_from_slice(key);
            }
        }
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Emit the golden segment byte-for-byte, plus the end offset of the
/// header and of every record (the legal truncation boundaries).
fn encode_v1_golden() -> (Vec<u8>, Vec<usize>) {
    let mut file = Vec::new();
    file.extend_from_slice(&WAL_MAGIC);
    file.extend_from_slice(&(KEY_WIDTH as u32).to_le_bytes());
    let crc = crc32(&file);
    file.extend_from_slice(&crc.to_le_bytes());
    assert_eq!(file.len() as u64, WAL_HEADER_LEN);
    let mut boundaries = vec![file.len()];
    for commit in golden_commits() {
        push_record(&mut file, &commit);
        boundaries.push(file.len());
    }
    (file, boundaries)
}

fn load_golden() -> Vec<u8> {
    let path = golden_path();
    if std::env::var("PROTEUS_REGEN_FIXTURES").is_ok() || !path.exists() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, encode_v1_golden().0).unwrap();
    }
    std::fs::read(&path).unwrap()
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("proteus-walfmt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Write `bytes` as a probe segment and replay it.
fn replay_bytes(dir: &Path, bytes: &[u8]) -> proteus_lsm::Result<wal::SegmentReplay> {
    let path = dir.join("probe.wal");
    std::fs::write(&path, bytes).unwrap();
    replay_segment(&path, KEY_WIDTH)
}

#[test]
fn committed_golden_bytes_match_the_generator() {
    // The committed fixture must stay byte-identical to the documented
    // layout; if this fails, someone changed either the fixture or the
    // generator — both are format-freezing mistakes.
    assert_eq!(load_golden(), encode_v1_golden().0, "golden WAL fixture drifted");
}

#[test]
fn live_writer_emits_the_golden_bytes_exactly() {
    // The writer has no legal freedom in the layout: appending the golden
    // commits through the real `Wal` must reproduce the fixture
    // byte-for-byte (same header, same per-record framing, same CRCs).
    let dir = tmpdir("writer-conformance");
    let stats = Stats::default();
    let w = Wal::create(&dir, 1, KEY_WIDTH, SyncMode::Off).unwrap();
    for commit in golden_commits() {
        w.append_commit(&commit, &stats).unwrap();
    }
    w.sync(&stats).unwrap();
    drop(w);
    let written = std::fs::read(segment_path(&dir, 1)).unwrap();
    assert_eq!(written, load_golden(), "live writer diverged from the frozen format");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_decodes_the_golden_segment() {
    let replay = replay_segment(&golden_path(), KEY_WIDTH).unwrap();
    assert!(!replay.torn_tail);
    assert_eq!(replay.commits, golden_commits());
    // The opener's key width is enforced against the header.
    assert!(matches!(replay_segment(&golden_path(), 16), Err(Error::Corruption(_))));
}

#[test]
fn torn_tail_truncation_sweep_recovers_the_prefix_at_every_cut() {
    let (full, boundaries) = encode_v1_golden();
    let want = golden_commits();
    let dir = tmpdir("torn-sweep");
    for cut in 0..=full.len() {
        let replay = replay_bytes(&dir, &full[..cut])
            .unwrap_or_else(|e| panic!("cut at {cut} must not fail open: {e}"));
        // Number of records whose end fits inside the cut.
        let n_complete = boundaries[1..].iter().filter(|&&b| b <= cut).count();
        assert_eq!(replay.commits, want[..n_complete], "cut {cut}: not the longest prefix");
        // The tail is torn exactly when the cut is not a record boundary
        // (a sub-header file is always a torn header).
        let at_boundary = cut >= WAL_HEADER_LEN as usize && boundaries.contains(&cut);
        assert_eq!(replay.torn_tail, !at_boundary, "cut {cut}: torn_tail mislabeled");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_byte_sweep_never_panics_and_types_every_error() {
    let (full, boundaries) = encode_v1_golden();
    let want = golden_commits();
    let last_record_start = boundaries[boundaries.len() - 2];
    let dir = tmpdir("flip-sweep");
    for i in 0..full.len() {
        let mut bytes = full.clone();
        bytes[i] ^= 0xFF;
        let result = replay_bytes(&dir, &bytes); // must never panic
                                                 // Any successful replay must still be a prefix of the real
                                                 // commits — corruption may cost records, never invent them.
        if let Ok(replay) = &result {
            assert!(want.starts_with(&replay.commits), "flip at {i}: replay fabricated commits");
        }
        if i < WAL_HEADER_LEN as usize {
            // Header damage (magic, width or header CRC) is always typed
            // corruption: nothing in the file can be trusted.
            assert!(matches!(result, Err(Error::Corruption(_))), "header flip at {i}");
        } else if i >= last_record_start + 4 {
            // CRC or payload of the *final* record: indistinguishable
            // from a torn write — the record is dropped, the prefix
            // survives.
            let replay = result.unwrap_or_else(|e| panic!("final-record flip at {i}: {e}"));
            assert!(replay.torn_tail, "final-record flip at {i} must read as torn");
            assert_eq!(replay.commits, want[..want.len() - 1]);
        } else if i >= last_record_start {
            // The final record's length field: a grown length reads as a
            // record running past EOF (torn tail); a shrunk one leaves a
            // checksum mismatch with bytes after it (corruption). Either
            // way the damaged record must be gone.
            match result {
                Err(Error::Corruption(_)) => {}
                Err(e) => panic!("flip at {i}: wrong error type {e}"),
                Ok(replay) => {
                    assert!(replay.torn_tail);
                    assert_eq!(replay.commits, want[..want.len() - 1]);
                }
            }
        } else {
            // Mid-log: a flip inside an earlier record's CRC or payload
            // must be hard corruption (intact records follow, so this is
            // not a torn tail). A flip inside a length field may instead
            // masquerade as a torn tail (documented limitation) — but
            // then it must cost every record from the flip on.
            let record_start = *boundaries.iter().take_while(|&&b| b <= i).last().unwrap();
            let in_length_field = i < record_start + 4;
            match result {
                Err(Error::Corruption(_)) => {}
                Err(e) => panic!("flip at {i}: wrong error type {e}"),
                Ok(replay) => {
                    assert!(in_length_field, "non-length flip at {i} must be corruption");
                    assert!(replay.torn_tail);
                    let n_before = boundaries[1..].iter().filter(|&&b| b <= i).count();
                    assert!(replay.commits.len() <= n_before, "flip at {i} kept later records");
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_op_tag_is_typed_corruption_even_with_a_valid_crc() {
    let (mut bytes, _) = encode_v1_golden();
    bytes.truncate(WAL_HEADER_LEN as usize);
    // A structurally plausible record whose op tag is undefined; the CRC
    // is valid, so this cannot be excused as a torn write.
    let mut payload = 1u32.to_le_bytes().to_vec();
    payload.push(7); // no such tag
    payload.extend_from_slice(&(KEY_WIDTH as u64).to_le_bytes());
    payload.extend_from_slice(&k(9));
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let dir = tmpdir("unknown-tag");
    assert!(matches!(replay_bytes(&dir, &bytes), Err(Error::Corruption(_))));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn structural_damage_inside_a_crc_valid_record_is_corruption() {
    let dir = tmpdir("structural");
    let header = encode_v1_golden().0[..WAL_HEADER_LEN as usize].to_vec();

    // Trailing garbage after the declared ops (CRC covers it, decode
    // must still reject it — a correct record consumes its payload
    // exactly).
    let mut payload = 1u32.to_le_bytes().to_vec();
    payload.push(WAL_TAG_DELETE);
    payload.extend_from_slice(&(KEY_WIDTH as u64).to_le_bytes());
    payload.extend_from_slice(&k(5));
    payload.extend_from_slice(b"junk");
    let mut bytes = header.clone();
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    assert!(matches!(replay_bytes(&dir, &bytes), Err(Error::Corruption(_))));

    // A zero-length key (the writer never logs one).
    let mut payload = 1u32.to_le_bytes().to_vec();
    payload.push(WAL_TAG_DELETE);
    payload.extend_from_slice(&0u64.to_le_bytes());
    let mut bytes = header.clone();
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    assert!(matches!(replay_bytes(&dir, &bytes), Err(Error::Corruption(_))));

    // A key longer than the segment's recorded key-length limit.
    let big = vec![0xAB; KEY_WIDTH + 1];
    let mut payload = 1u32.to_le_bytes().to_vec();
    payload.push(WAL_TAG_DELETE);
    payload.extend_from_slice(&(big.len() as u64).to_le_bytes());
    payload.extend_from_slice(&big);
    let mut bytes = header.clone();
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    assert!(matches!(replay_bytes(&dir, &bytes), Err(Error::Corruption(_))));

    // A commit claiming zero ops (the writer never emits one).
    let payload = 0u32.to_le_bytes().to_vec();
    let mut bytes = header;
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    assert!(matches!(replay_bytes(&dir, &bytes), Err(Error::Corruption(_))));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- variable-length records ----------------------------------------------

/// Key-length limit frozen into the var-len golden segment (the default
/// `DbConfig::max_key_bytes`).
const VARLEN_MAX: usize = 1024;

const VARLEN_GOLDEN: &str = "tests/fixtures/wal/golden_varlen.wal";

/// The commits frozen into the var-len golden segment: single-byte keys,
/// URL-shaped string keys, a shared-prefix pair, and one 300-byte key so
/// the torn-tail sweep has a cut point at every offset *inside* a long
/// key.
fn varlen_golden_commits() -> Vec<Vec<WalOp>> {
    let long_key = vec![b'L'; 300];
    vec![
        vec![(vec![0x00], Some(b"nul".to_vec()))],
        vec![(b"https://example.com/a".to_vec(), Some(b"page-a".to_vec()))],
        vec![
            (b"https://example.com/a/b".to_vec(), Some(b"page-ab".to_vec())),
            (b"https://example.com/a".to_vec(), None),
        ],
        vec![(long_key, Some(b"long".to_vec()))],
        vec![(vec![0xFF], None)],
    ]
}

fn encode_varlen_golden() -> (Vec<u8>, Vec<usize>) {
    let mut file = Vec::new();
    file.extend_from_slice(&WAL_MAGIC);
    file.extend_from_slice(&(VARLEN_MAX as u32).to_le_bytes());
    let crc = crc32(&file);
    file.extend_from_slice(&crc.to_le_bytes());
    let mut boundaries = vec![file.len()];
    for commit in varlen_golden_commits() {
        push_record(&mut file, &commit);
        boundaries.push(file.len());
    }
    (file, boundaries)
}

fn load_varlen_golden() -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(VARLEN_GOLDEN);
    if std::env::var("PROTEUS_REGEN_FIXTURES").is_ok() || !path.exists() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, encode_varlen_golden().0).unwrap();
    }
    std::fs::read(&path).unwrap()
}

#[test]
fn varlen_golden_bytes_match_writer_and_replay() {
    assert_eq!(load_varlen_golden(), encode_varlen_golden().0, "var-len WAL fixture drifted");
    // The live writer reproduces the fixture byte-for-byte.
    let dir = tmpdir("varlen-writer");
    let stats = Stats::default();
    let w = Wal::create(&dir, 1, VARLEN_MAX, SyncMode::Off).unwrap();
    for commit in varlen_golden_commits() {
        w.append_commit(&commit, &stats).unwrap();
    }
    w.sync(&stats).unwrap();
    drop(w);
    let written = std::fs::read(segment_path(&dir, 1)).unwrap();
    assert_eq!(written, load_varlen_golden(), "writer diverged on var-len records");
    // And replay round-trips the commits exactly.
    let replay = replay_segment(&segment_path(&dir, 1), VARLEN_MAX).unwrap();
    assert!(!replay.torn_tail);
    assert_eq!(replay.commits, varlen_golden_commits());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn varlen_torn_tail_sweep_cuts_inside_long_keys() {
    // Every cut point — including each of the 300 offsets inside the long
    // key's bytes — must recover exactly the commits whose records fit,
    // never a partial op and never an error.
    let (full, boundaries) = encode_varlen_golden();
    let want = varlen_golden_commits();
    let dir = tmpdir("varlen-torn");
    let path = dir.join("probe.wal");
    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let replay = replay_segment(&path, VARLEN_MAX)
            .unwrap_or_else(|e| panic!("cut at {cut} must not fail open: {e}"));
        let n_complete = boundaries[1..].iter().filter(|&&b| b <= cut).count();
        assert_eq!(replay.commits, want[..n_complete], "cut {cut}: not the longest prefix");
        let at_boundary = cut >= WAL_HEADER_LEN as usize && boundaries.contains(&cut);
        assert_eq!(replay.torn_tail, !at_boundary, "cut {cut}: torn_tail mislabeled");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Helpers shared by the lsm integration-test binaries.

/// Tiny deterministic per-thread RNG (splitmix64).
pub struct Rng(pub u64);

impl Rng {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

//! Helpers shared by the lsm integration-test binaries.
#![allow(dead_code)] // compiled once per test binary; not every binary uses every helper

use proteus_lsm::{Db, DbConfig, FilterFactory};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Tiny deterministic per-thread RNG (splitmix64).
pub struct Rng(pub u64);

impl Rng {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// How a crash point kills the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// `kill -9`: the process dies, the OS page cache survives. Every
    /// WAL append (which reached the OS before the write was acked) is
    /// still on "disk" at reopen, in any sync mode.
    ProcessKill,
    /// Power failure: the process dies *and* the active WAL segment
    /// loses everything past its last fsync. Only synced data survives.
    PowerLoss,
}

/// Crash point: kill `db` via `kind` — no flush, no graceful shutdown
/// sync — then reopen the same directory and return the recovered store.
/// Panics if the reopen fails (a torn WAL tail must never fail
/// `Db::open`).
pub fn crash_and_reopen(
    db: Db,
    dir: &Path,
    cfg: &DbConfig,
    factory: Arc<dyn FilterFactory>,
    kind: CrashKind,
) -> Db {
    match kind {
        CrashKind::ProcessKill => db.crash(),
        CrashKind::PowerLoss => db.crash_power_loss(),
    }
    Db::open(dir, cfg.clone(), factory).expect("reopen after crash must succeed")
}

/// The dir-snapshot variant of a crash point: byte-copy every regular
/// file of the *live* directory into `<dir>-<tag>` while `db` keeps
/// running, approximating what a crash at this instant would leave on
/// disk. Returns the snapshot directory (caller deletes it).
///
/// Caveat: the copy is not atomic across files. If a rotation+flush
/// completes *during* the copy, a middle generation could be missed
/// (its WAL segment deleted after we passed it, its SST created after
/// the listing) — callers avoid that window by snapshotting stores whose
/// MemTable cannot rotate mid-copy (large `memtable_bytes`).
pub fn snapshot_live_dir(dir: &Path, tag: &str) -> PathBuf {
    let snap = dir.with_file_name(format!(
        "{}-{tag}",
        dir.file_name().and_then(|n| n.to_str()).unwrap_or("snap")
    ));
    let _ = std::fs::remove_dir_all(&snap);
    std::fs::create_dir_all(&snap).unwrap();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if !path.is_file() {
            continue;
        }
        // A file may vanish between the listing and the copy (segment
        // deleted by the flusher, SST retired by the compactor) — that
        // is a legal crash state, not an error.
        if let Ok(bytes) = std::fs::read(&path) {
            std::fs::write(snap.join(path.file_name().unwrap()), bytes).unwrap();
        }
    }
    snap
}

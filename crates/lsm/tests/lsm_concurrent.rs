//! Multi-threaded stress tests for the concurrent LSM store: N writer +
//! M reader threads over disjoint and overlapping key ranges, asserting
//! zero false negatives for every acked write, no panics or deadlocks,
//! and consistent `Stats` totals after the threads join.
//!
//! Scale knobs (all overridable for the CI release-mode run):
//!
//! * `PROTEUS_STRESS_WRITERS` / `PROTEUS_STRESS_READERS` — thread counts
//!   (default 4 + 4);
//! * `PROTEUS_STRESS_OPS` — per-thread operation count (default 8_000 in
//!   debug builds, 15_000 in release, so the default release run is a
//!   ≥100k-op stress).

use proteus_core::key::u64_key;
use proteus_lsm::db::{Db, DbConfig};
use proteus_lsm::filter_hook::{FilterFactory, NoFilterFactory, ProteusFactory};
use proteus_lsm::query_queue::QueryQueue;
use proteus_lsm::sst::{SstReader, SstWriter};
use proteus_lsm::stats::Stats;
use proteus_lsm::WriteBatch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

mod common;
use common::Rng;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("proteus-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Small tables and files so the stress run exercises rotation, flush and
/// compaction constantly, not just the MemTable.
fn stress_cfg() -> DbConfig {
    DbConfig::builder()
        .memtable_bytes(32 << 10)
        .max_immutable_memtables(2)
        .sst_target_bytes(64 << 10)
        .l0_compaction_trigger(3)
        .level_base_bytes(256 << 10)
        .block_cache_bytes(512 << 10)
        .bits_per_key(10.0)
        .sample_every(10)
        .build()
        .unwrap()
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn writers() -> usize {
    env_usize("PROTEUS_STRESS_WRITERS", 4)
}

fn readers() -> usize {
    env_usize("PROTEUS_STRESS_READERS", 4)
}

fn ops_per_thread() -> usize {
    env_usize("PROTEUS_STRESS_OPS", if cfg!(debug_assertions) { 8_000 } else { 15_000 })
}

fn value(k: u64) -> Vec<u8> {
    let mut v = vec![0u8; 32];
    v[..8].copy_from_slice(&k.to_le_bytes());
    v
}

/// Disjoint stripes: writer `w` owns keyspace `w << 40`; readers verify
/// that every key a writer has acked (per-writer atomic high-water mark)
/// is findable, as points and as covering ranges.
#[test]
fn stress_disjoint_ranges_zero_false_negatives() {
    let dir = tmpdir("disjoint");
    let db = Db::open(&dir, stress_cfg(), Arc::new(ProteusFactory::default())).unwrap();
    let n_writers = writers();
    let n_readers = readers();
    let ops = ops_per_thread();
    const STEP: u64 = 1 << 16;
    let key_of = |w: usize, i: u64| ((w as u64) << 40) | (i * STEP);

    let acked: Vec<AtomicU64> = (0..n_writers).map(|_| AtomicU64::new(0)).collect();
    let reader_seeks = AtomicU64::new(0);
    let reader_found = AtomicU64::new(0);
    let reader_empty = AtomicU64::new(0);

    std::thread::scope(|s| {
        for w in 0..n_writers {
            let db = &db;
            let acked = &acked;
            s.spawn(move || {
                for i in 0..ops as u64 {
                    db.put_u64(key_of(w, i), &value(i)).unwrap();
                    // Release-publish: readers trusting this high-water
                    // mark must see the key.
                    acked[w].store(i + 1, Ordering::Release);
                }
            });
        }
        for r in 0..n_readers {
            let db = &db;
            let acked = &acked;
            let (seeks, found, empty) = (&reader_seeks, &reader_found, &reader_empty);
            s.spawn(move || {
                let mut rng = Rng(0xC0FFEE ^ ((r as u64) << 32));
                for _ in 0..ops {
                    let w = (rng.next() % n_writers as u64) as usize;
                    let a = acked[w].load(Ordering::Acquire);
                    let got = if a > 0 && !rng.next().is_multiple_of(4) {
                        // An acked key must be findable — as a point or as
                        // a range that covers it.
                        let i = rng.next() % a;
                        let k = key_of(w, i);
                        let got = if rng.next().is_multiple_of(2) {
                            db.seek_u64(k, k).unwrap()
                        } else {
                            db.seek_u64(k.saturating_sub(STEP / 2), k + STEP / 2).unwrap()
                        };
                        assert!(got, "false negative: writer {w} acked key index {i}");
                        got
                    } else {
                        // A gap between stripe keys: truth unknown only if
                        // writers raced past `a`; never a correctness
                        // assertion, just concurrent read load.
                        let i = rng.next() % (ops as u64);
                        let k = key_of(w, i) + 1;
                        db.seek_u64(k, k + STEP / 4).unwrap()
                    };
                    seeks.fetch_add(1, Ordering::Relaxed);
                    if got {
                        found.fetch_add(1, Ordering::Relaxed);
                    } else {
                        empty.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    // Consistent stats after join: every seek the readers issued is
    // accounted, found/empty splits agree, and §6.1 sampling counted
    // exactly the executed-empty seeks.
    let s = db.stats().snapshot();
    assert_eq!(s.seeks, reader_seeks.load(Ordering::Relaxed));
    assert_eq!(s.seeks_found, reader_found.load(Ordering::Relaxed));
    assert_eq!(s.sample_offers, reader_empty.load(Ordering::Relaxed));
    assert!(s.memtable_rotations > 0, "stress must rotate MemTables");

    // Settle and verify the full dataset (no acked write lost anywhere in
    // the rotation → flush → compaction pipeline).
    db.flush_and_settle().unwrap();
    let s = db.stats().snapshot();
    assert_eq!(s.flushes, s.memtable_rotations, "every rotation must flush");
    for (w, mark) in acked.iter().enumerate() {
        assert_eq!(mark.load(Ordering::Relaxed), ops as u64);
        for i in (0..ops as u64).step_by(101) {
            assert!(db.seek_u64(key_of(w, i), key_of(w, i)).unwrap(), "lost {w}/{i}");
        }
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Overlapping ranges: all writers interleave into the same keyspace
/// (writer `w` owns residues `k ≡ w mod n_writers`), so SSTs, filters and
/// compactions constantly mix data from every writer. Ground truth for a
/// range query is computed from the acked high-water marks *before* the
/// seek, which is a lower bound on the store's contents.
#[test]
fn stress_overlapping_ranges_zero_false_negatives() {
    let dir = tmpdir("overlap");
    let db = Db::open(&dir, stress_cfg(), Arc::new(NoFilterFactory)).unwrap();
    let n_writers = writers();
    let n_readers = readers();
    let ops = ops_per_thread();
    const SPREAD: u64 = 1 << 14;
    let key_of = |w: usize, i: u64| i * SPREAD * n_writers as u64 + (w as u64) * SPREAD;

    let acked: Vec<AtomicU64> = (0..n_writers).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|s| {
        for w in 0..n_writers {
            let db = &db;
            let acked = &acked;
            s.spawn(move || {
                for i in 0..ops as u64 {
                    db.put_u64(key_of(w, i), &value(i)).unwrap();
                    acked[w].store(i + 1, Ordering::Release);
                }
            });
        }
        for r in 0..n_readers {
            let db = &db;
            let acked = &acked;
            s.spawn(move || {
                let mut rng = Rng(0xFEED ^ ((r as u64) << 32));
                for _ in 0..ops {
                    // Snapshot high-water marks BEFORE issuing the seek.
                    let marks: Vec<u64> = acked.iter().map(|a| a.load(Ordering::Acquire)).collect();
                    let lo = rng.next() % (ops as u64 * SPREAD * n_writers as u64);
                    let hi = lo + rng.next() % (8 * SPREAD * n_writers as u64);
                    // Does any acked key fall in [lo, hi]?
                    let truth = (0..n_writers).any(|w| {
                        let first = lo
                            .saturating_sub((w as u64) * SPREAD)
                            .div_ceil(SPREAD * n_writers as u64);
                        let k = key_of(w, first);
                        first < marks[w] && k >= lo && k <= hi
                    });
                    let got = db.seek_u64(lo, hi).unwrap();
                    assert!(got || !truth, "false negative [{lo:#x},{hi:#x}] with marks {marks:?}");
                }
            });
        }
    });

    db.flush_and_settle().unwrap();
    for w in 0..n_writers {
        for i in (0..ops as u64).step_by(173) {
            assert!(db.seek_u64(key_of(w, i), key_of(w, i)).unwrap(), "lost {w}/{i}");
        }
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent barriers: `flush` / `flush_and_settle` may race with writes
/// and reads from other threads without deadlocking or losing data.
#[test]
fn stress_concurrent_barriers() {
    let dir = tmpdir("barriers");
    let db = Db::open(&dir, stress_cfg(), Arc::new(NoFilterFactory)).unwrap();
    let ops = (ops_per_thread() / 4).max(500) as u64;
    std::thread::scope(|s| {
        for w in 0..2usize {
            let db = &db;
            s.spawn(move || {
                for i in 0..ops {
                    db.put_u64(((w as u64) << 48) | (i * 997), &value(i)).unwrap();
                }
            });
        }
        let db2 = &db;
        s.spawn(move || {
            for _ in 0..20 {
                db2.flush().unwrap();
            }
        });
        let db3 = &db;
        s.spawn(move || {
            for _ in 0..5 {
                db3.flush_and_settle().unwrap();
            }
        });
    });
    db.flush_and_settle().unwrap();
    for w in 0..2u64 {
        for i in (0..ops).step_by(37) {
            assert!(db.seek_u64((w << 48) | (i * 997), (w << 48) | (i * 997)).unwrap());
        }
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Atomic `WriteBatch` visibility: one writer repeatedly rewrites a fixed
/// 8-key set, each round as a single batch carrying one generation
/// number; reader threads scan the covering range and must always observe
/// all 8 keys at exactly one generation — a batch is never visible half
/// applied, no matter how rotations, flushes and compactions interleave —
/// and generations must be monotone per reader (no time travel).
#[test]
fn write_batches_are_atomic_under_concurrent_scans() {
    let dir = tmpdir("batch-atomic");
    let db = Db::open(&dir, stress_cfg(), Arc::new(NoFilterFactory)).unwrap();
    let keys: Vec<u64> = (0..8u64).map(|i| (i + 1) << 20).collect();
    let (lo, hi) = (keys[0], *keys.last().unwrap());
    let rounds = (ops_per_thread() / 8).max(250) as u64;

    // Generation 0 so readers always find a complete set. Values are
    // padded so a few hundred batches cross the rotation threshold.
    let write_gen = |gen: u64| {
        let mut b = WriteBatch::with_capacity(keys.len());
        for &k in &keys {
            let mut v = vec![0u8; 64];
            v[..8].copy_from_slice(&gen.to_le_bytes());
            b.put_u64(k, &v);
        }
        db.write(b).unwrap();
    };
    write_gen(0);

    std::thread::scope(|s| {
        let (db, keys) = (&db, &keys);
        let write_gen = &write_gen;
        s.spawn(move || {
            for gen in 1..=rounds {
                write_gen(gen);
            }
        });
        for r in 0..readers().max(2) {
            s.spawn(move || {
                let mut last_gen = 0u64;
                for _ in 0..rounds {
                    let got: Vec<(u64, u64)> = db
                        .range_u64(lo..=hi)
                        .unwrap()
                        .map(|e| {
                            let (k, v) = e.unwrap();
                            (
                                u64::from_be_bytes(k.try_into().unwrap()),
                                u64::from_le_bytes(v[..8].try_into().unwrap()),
                            )
                        })
                        .collect();
                    let scanned: Vec<u64> = got.iter().map(|&(k, _)| k).collect();
                    assert_eq!(&scanned, keys, "reader {r}: key set torn");
                    let gens: Vec<u64> = got.iter().map(|&(_, g)| g).collect();
                    assert!(
                        gens.windows(2).all(|w| w[0] == w[1]),
                        "reader {r}: batch visible half-applied: {gens:?}"
                    );
                    assert!(gens[0] >= last_gen, "reader {r}: generation went backwards");
                    last_gen = gens[0];
                }
            });
        }
    });
    db.flush_and_settle().unwrap();
    let final_gen =
        u64::from_le_bytes(db.get_u64(keys[0]).unwrap().unwrap()[..8].try_into().unwrap());
    assert_eq!(final_gen, rounds, "last batch must win");
    assert!(db.stats().memtable_rotations.get() > 0, "batches must cross rotations");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hammer one `SstReader`'s lazy filter decode from many threads at once:
/// the `OnceLock` must run the decode exactly once and every thread must
/// observe the same loaded filter (never a torn or double-counted state).
#[test]
fn concurrent_lazy_filter_decode_is_once() {
    let dir = tmpdir("lazy-decode");
    std::fs::create_dir_all(&dir).unwrap();
    let stats = Stats::default();
    let queue = QueryQueue::new(64, 1);
    let mut w = SstWriter::create(&dir, 1, 8, 4096, 0).unwrap();
    for i in 0..5_000u64 {
        w.add(&u64_key(i * 11), &value(i)).unwrap();
    }
    w.finish(&ProteusFactory::default(), &queue, 12.0, &stats).unwrap();

    let reopened = SstReader::open(dir.join("00000001.sst"), 1, 8).unwrap();
    assert!(!reopened.filter_ready(), "decode must be lazy before first probe");
    let probe_stats = Stats::default();
    let n = 16;
    let barrier = Barrier::new(n);
    let sizes: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let (sst, ps, b) = (&reopened, &probe_stats, &barrier);
                s.spawn(move || {
                    b.wait(); // maximise decode contention
                    let f = sst.filter(ps).expect("persisted filter");
                    assert!(f.may_contain(&u64_key(110)));
                    f.size_bits()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(sizes.windows(2).all(|p| p[0] == p[1]), "all threads see one filter");
    assert_eq!(probe_stats.filters_loaded.get(), 1, "decode ran exactly once");
    assert_eq!(probe_stats.filters_degraded.get(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Compile-time `Send`/`Sync` contract for the store and its extension
/// points (the filters-side contract lives in `tests/filter_contract.rs`
/// at the workspace root). A type losing one of these bounds breaks this
/// test at compile time, not at 2 a.m. under load.
#[test]
fn lsm_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Db>();
    assert_send_sync::<proteus_lsm::Stats>();
    assert_send_sync::<proteus_lsm::QueryQueue>();
    assert_send_sync::<proteus_lsm::ShardedBlockCache>();
    assert_send_sync::<SstReader>();
    assert_send_sync::<NoFilterFactory>();
    assert_send_sync::<ProteusFactory>();
    assert_send_sync::<Arc<dyn FilterFactory>>();
    assert_send_sync::<Box<dyn proteus_core::RangeFilter>>();
}

//! Crash-injection suite: every durability promise of the WAL, proven by
//! killing the store at hostile moments and reopening.
//!
//! Two crash models (see `common::CrashKind`): *process kill* drops the
//! store without flushing or syncing anything further — every append that
//! reached the OS survives — and *power loss* additionally truncates the
//! active segment back to its last fsync, so only synced bytes survive.
//! The promises under test:
//!
//! - every acked write survives a process kill in **every** sync mode;
//! - under [`SyncMode::Always`] every acked write survives power loss,
//!   and under [`SyncMode::Off`] losing the unsynced tail never loses
//!   *flushed* data (the documented trade-off);
//! - a `WriteBatch` is all-or-nothing across a torn commit record;
//! - a torn WAL tail never fails `Db::open`;
//! - a deleted key never resurrects through a crash;
//! - a straggler `.sst.tmp` next to a live WAL replays exactly once;
//! - concurrent writers are amortized by group commit without losing a
//!   single write.

use proteus_core::key::{key_u64, u64_key};
use proteus_lsm::wal::{self, Wal};
use proteus_lsm::{Db, DbConfig, FilterFactory, NoFilterFactory, ProteusFactory, SyncMode};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::{crash_and_reopen, snapshot_live_dir, CrashKind, Rng};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("proteus-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn nofilter() -> Arc<dyn FilterFactory> {
    Arc::new(NoFilterFactory)
}

/// Tiny thresholds so a few hundred writes cross every lifecycle
/// boundary: rotation, sealed segments, flush + segment deletion,
/// compaction.
fn crash_cfg(mode: SyncMode) -> DbConfig {
    DbConfig::builder()
        .memtable_bytes(4 << 10)
        .max_immutable_memtables(2)
        .sst_target_bytes(16 << 10)
        .l0_compaction_trigger(2)
        .level_base_bytes(64 << 10)
        .block_cache_bytes(64 << 10)
        .sync_mode(mode)
        .build()
        .unwrap()
}

/// Large MemTable (no rotation) so every write lives only in the WAL —
/// the recovery path carries the whole store.
fn wal_only_cfg(mode: SyncMode) -> DbConfig {
    DbConfig::builder().sync_mode(mode).build().unwrap()
}

#[test]
fn acked_writes_survive_process_kill_in_every_sync_mode() {
    for (tag, mode) in [
        ("always", SyncMode::Always),
        ("interval", SyncMode::Interval(Duration::from_millis(2))),
        ("off", SyncMode::Off),
    ] {
        let dir = tmpdir(&format!("kill-{tag}"));
        let cfg = crash_cfg(mode);
        let db = Db::open(&dir, cfg.clone(), nofilter()).unwrap();
        let mut mirror: BTreeMap<u64, Option<Vec<u8>>> = BTreeMap::new();
        let mut rng = Rng(0xC4A5_0000 ^ mode_bits(mode));
        for step in 0..400u64 {
            let k = rng.next() % 256;
            if rng.next().is_multiple_of(5) {
                db.delete_u64(k).unwrap();
                mirror.insert(k, None);
            } else {
                let v = step.to_le_bytes().to_vec();
                db.put_u64(k, &v).unwrap();
                mirror.insert(k, Some(v));
            }
        }
        // A final acked write right before the kill: it can only live in
        // the active segment, so replay must have real work to do.
        db.put_u64(9_999, b"last-ack").unwrap();
        mirror.insert(9_999, Some(b"last-ack".to_vec()));

        let db = crash_and_reopen(db, &dir, &cfg, nofilter(), CrashKind::ProcessKill);
        assert!(
            db.stats().wal_replayed_records.get() > 0,
            "{tag}: crash recovery must replay the active segment"
        );
        for (k, want) in &mirror {
            assert_eq!(
                db.get_u64(*k).unwrap(),
                *want,
                "{tag}: key {k} diverged after kill -9 recovery"
            );
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn mode_bits(mode: SyncMode) -> u64 {
    match mode {
        SyncMode::Always => 1,
        SyncMode::Interval(_) => 2,
        SyncMode::Off => 3,
    }
}

#[test]
fn power_loss_with_sync_always_keeps_every_acked_write() {
    let dir = tmpdir("power-always");
    let cfg = wal_only_cfg(SyncMode::Always);
    let db = Db::open(&dir, cfg.clone(), nofilter()).unwrap();
    for k in 0..60u64 {
        db.put_u64(k, format!("v{k}").as_bytes()).unwrap();
    }
    // Deletes are acked writes too: the tombstone must survive.
    db.delete_u64(7).unwrap();
    db.delete_u64(42).unwrap();

    let db = crash_and_reopen(db, &dir, &cfg, nofilter(), CrashKind::PowerLoss);
    for k in 0..60u64 {
        let want = if k == 7 || k == 42 { None } else { Some(format!("v{k}").into_bytes()) };
        assert_eq!(db.get_u64(k).unwrap(), want, "key {k} after power loss");
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn power_loss_with_sync_off_loses_only_the_unsynced_tail() {
    let dir = tmpdir("power-off");
    let cfg = crash_cfg(SyncMode::Off);
    let db = Db::open(&dir, cfg.clone(), nofilter()).unwrap();
    for k in 0..40u64 {
        db.put_u64(k, b"durable").unwrap();
    }
    // Flush: data moves to an SST, the sealed segments are gone. What
    // follows lives only in the (unsynced) active segment.
    db.flush().unwrap();
    for k in 100..120u64 {
        db.put_u64(k, b"volatile").unwrap();
    }
    db.delete_u64(3).unwrap(); // unsynced tombstone

    let db = crash_and_reopen(db, &dir, &cfg, nofilter(), CrashKind::PowerLoss);
    for k in 0..40u64 {
        // The documented SyncMode::Off trade-off, including its ugliest
        // corner: key 3's delete was acked but unsynced, so the flushed
        // put *resurfaces* after power loss.
        assert_eq!(db.get_u64(k).unwrap().as_deref(), Some(&b"durable"[..]), "flushed key {k}");
    }
    for k in 100..120u64 {
        assert_eq!(db.get_u64(k).unwrap(), None, "unsynced key {k} must be gone");
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn power_loss_with_interval_sync_keeps_writes_past_the_deadline() {
    let dir = tmpdir("power-interval");
    let cfg = wal_only_cfg(SyncMode::Interval(Duration::from_millis(1)));
    let db = Db::open(&dir, cfg.clone(), nofilter()).unwrap();
    db.put_u64(1, b"one").unwrap();
    std::thread::sleep(Duration::from_millis(5));
    // Past the deadline: this commit triggers a sync covering both
    // appends before it acks.
    db.put_u64(2, b"two").unwrap();
    db.put_u64(3, b"maybe").unwrap(); // within the window — may be lost

    let db = crash_and_reopen(db, &dir, &cfg, nofilter(), CrashKind::PowerLoss);
    assert_eq!(db.get_u64(1).unwrap().as_deref(), Some(&b"one"[..]));
    assert_eq!(db.get_u64(2).unwrap().as_deref(), Some(&b"two"[..]));
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_mid_batch_commit_is_all_or_nothing_at_every_cut() {
    // Build a segment by hand: one synced single-put commit, then a
    // three-op batch commit. Truncating anywhere inside the batch record
    // must recover the first commit and *none* of the batch.
    let src = tmpdir("torn-batch-src");
    std::fs::create_dir_all(&src).unwrap();
    let stats = proteus_lsm::Stats::default();
    // The segment header records the opener's key-length limit; it must
    // match the config the probe dirs are opened with below.
    let max_key_bytes = wal_only_cfg(SyncMode::Off).max_key_bytes();
    let w = Wal::create(&src, 1, max_key_bytes, SyncMode::Always).unwrap();
    w.append_commit(&[(u64_key(10).to_vec(), Some(b"pre".to_vec()))], &stats).unwrap();
    w.sync(&stats).unwrap();
    let boundary = std::fs::metadata(wal::segment_path(&src, 1)).unwrap().len() as usize;
    w.append_commit(
        &[
            (u64_key(10).to_vec(), None), // the batch deletes key 10...
            (u64_key(20).to_vec(), Some(b"b20".to_vec())),
            (u64_key(30).to_vec(), Some(b"b30".to_vec())),
        ],
        &stats,
    )
    .unwrap();
    w.sync(&stats).unwrap();
    drop(w);
    let full = std::fs::read(wal::segment_path(&src, 1)).unwrap();
    let _ = std::fs::remove_dir_all(&src);

    let cfg = wal_only_cfg(SyncMode::Off);
    for cut in boundary..=full.len() {
        let dir = tmpdir("torn-batch-probe");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(wal::segment_path(&dir, 1), &full[..cut]).unwrap();
        let db = Db::open(&dir, cfg.clone(), nofilter())
            .unwrap_or_else(|e| panic!("cut {cut}: torn batch tail failed open: {e}"));
        if cut < full.len() {
            // Torn batch: not a single one of its ops may be visible.
            assert_eq!(
                db.get_u64(10).unwrap().as_deref(),
                Some(&b"pre"[..]),
                "cut {cut}: torn batch applied its delete"
            );
            assert_eq!(db.get_u64(20).unwrap(), None, "cut {cut}: partial batch put leaked");
            assert_eq!(db.get_u64(30).unwrap(), None, "cut {cut}: partial batch put leaked");
        } else {
            // The intact record: all three ops, atomically.
            assert_eq!(db.get_u64(10).unwrap(), None, "full: batch delete missing");
            assert_eq!(db.get_u64(20).unwrap().as_deref(), Some(&b"b20"[..]));
            assert_eq!(db.get_u64(30).unwrap().as_deref(), Some(&b"b30"[..]));
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn straggler_sst_tmp_next_to_live_wal_replays_exactly_once() {
    let dir = tmpdir("straggler");
    let cfg = wal_only_cfg(SyncMode::Always);
    let db = Db::open(&dir, cfg.clone(), nofilter()).unwrap();
    for k in 0..100u64 {
        db.put_u64(k, &k.to_le_bytes()).unwrap();
    }
    db.crash();
    // A flush that died mid-write leaves a `.sst.tmp` straggler; recovery
    // must discard it and replay the WAL exactly once — not zero times
    // (data loss), not twice (duplicate application).
    let straggler = dir.join("00000099.sst.tmp");
    std::fs::write(&straggler, b"half-written sst garbage").unwrap();

    let db = Db::open(&dir, cfg.clone(), nofilter()).unwrap();
    assert_eq!(db.stats().wal_replayed_records.get(), 100, "one replayed record per commit");
    assert!(!straggler.exists(), "recovery must discard the straggler");
    let scanned: Vec<(u64, Vec<u8>)> = db
        .range_u64(0..=u64::MAX)
        .unwrap()
        .map(|e| e.map(|(k, v)| (key_u64(&k), v)))
        .collect::<proteus_lsm::Result<Vec<_>>>()
        .unwrap();
    let want: Vec<(u64, Vec<u8>)> = (0..100u64).map(|k| (k, k.to_le_bytes().to_vec())).collect();
    assert_eq!(scanned, want, "each key exactly once with its value");

    // Settle and cycle again: the replayed data is now in SSTs and the
    // old segments are gone, so a clean reopen replays nothing.
    db.flush_and_settle().unwrap();
    drop(db);
    let db = Db::open(&dir, cfg, nofilter()).unwrap();
    assert_eq!(db.stats().wal_replayed_records.get(), 0);
    assert_eq!(db.get_u64(57).unwrap().as_deref(), Some(&57u64.to_le_bytes()[..]));
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_never_fails_open_and_recovers_the_replayable_prefix() {
    let dir = tmpdir("torn-tail-src");
    let cfg = wal_only_cfg(SyncMode::Always);
    let db = Db::open(&dir, cfg.clone(), nofilter()).unwrap();
    for k in 0..12u64 {
        db.put_u64(k, format!("val-{k}").as_bytes()).unwrap();
    }
    db.crash();
    // The largest-id segment is the active one holding all 12 commits.
    let (_, seg_path) = wal::list_segments(&dir).unwrap().pop().expect("an active segment");
    let full = std::fs::read(&seg_path).unwrap();

    for cut in (0..=full.len()).step_by(7).chain([full.len()]) {
        let probe = tmpdir("torn-tail-probe");
        std::fs::create_dir_all(&probe).unwrap();
        let truncated = &full[..cut];
        std::fs::write(probe.join(seg_path.file_name().unwrap()), truncated).unwrap();
        // Whatever `replay_segment` can salvage is exactly what the store
        // must serve — sub-header files count as empty, never as errors.
        let salvaged = if cut < 16 {
            Vec::new()
        } else {
            let tmp = probe.join("oracle.bin");
            std::fs::write(&tmp, truncated).unwrap();
            let commits = wal::replay_segment(&tmp, cfg.max_key_bytes()).unwrap().commits;
            std::fs::remove_file(&tmp).unwrap();
            commits
        };
        let recovered: std::collections::BTreeMap<u64, Vec<u8>> = salvaged
            .into_iter()
            .flatten()
            .map(|(k, v)| (key_u64(&k), v.expect("script only puts")))
            .collect();
        let db = Db::open(&probe, cfg.clone(), nofilter())
            .unwrap_or_else(|e| panic!("cut {cut}: torn tail failed open: {e}"));
        for k in 0..12u64 {
            assert_eq!(
                db.get_u64(k).unwrap(),
                recovered.get(&k).cloned(),
                "cut {cut}: key {k} diverged from salvageable prefix"
            );
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&probe);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deleted_key_never_resurrects_across_crashes() {
    // With Proteus filters in the stack: a filter may only skip I/O,
    // never bring a deleted key back — even when the tombstone's only
    // copy is the WAL.
    let dir = tmpdir("no-resurrect");
    let cfg = crash_cfg(SyncMode::Always);
    let factory: Arc<dyn FilterFactory> = Arc::new(ProteusFactory::default());
    let db = Db::open(&dir, cfg.clone(), Arc::clone(&factory)).unwrap();
    for k in 0..64u64 {
        db.put_u64(k, b"body").unwrap();
    }
    db.flush_and_settle().unwrap(); // key 33 now lives in an SST
    db.delete_u64(33).unwrap(); // ...and its tombstone only in the WAL

    let db = crash_and_reopen(db, &dir, &cfg, Arc::clone(&factory), CrashKind::ProcessKill);
    assert_eq!(db.get_u64(33).unwrap(), None, "tombstone lost in crash recovery");
    assert!(!db.seek_u64(33, 33).unwrap(), "range filter resurrected a deleted key");

    // Push the tombstone through flush + compaction, crash again: still
    // dead.
    db.flush_and_settle().unwrap();
    let db = crash_and_reopen(db, &dir, &cfg, factory, CrashKind::ProcessKill);
    assert_eq!(db.get_u64(33).unwrap(), None, "delete resurrected after compaction crash");
    assert_eq!(db.get_u64(34).unwrap().as_deref(), Some(&b"body"[..]), "neighbor survived");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_are_group_committed_and_fully_durable() {
    let dir = tmpdir("group-commit");
    let cfg = wal_only_cfg(SyncMode::Always);
    let db = Db::open(&dir, cfg.clone(), nofilter()).unwrap();
    const THREADS: u64 = 4;
    const PER: u64 = 300;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = &db;
            s.spawn(move || {
                for i in 0..PER {
                    db.put_u64(t * 10_000 + i, &(t ^ i).to_le_bytes()).unwrap();
                }
            });
        }
    });
    let snap = db.stats().snapshot();
    assert_eq!(snap.wal_appends, THREADS * PER, "one append per acked write");
    assert_eq!(
        snap.group_commit_sizes,
        THREADS * PER,
        "every commit is covered by exactly one sync"
    );
    assert!(snap.wal_syncs >= 1);
    // The whole point of group commit: with 4 writers racing, leaders
    // sync on behalf of followers, so syncs come out well under one per
    // write (the mean group size strictly beats 1).
    assert!(
        snap.wal_syncs < THREADS * PER,
        "no amortization: {} syncs for {} writes",
        snap.wal_syncs,
        THREADS * PER
    );

    let db = crash_and_reopen(db, &dir, &cfg, nofilter(), CrashKind::ProcessKill);
    for t in 0..THREADS {
        for i in 0..PER {
            assert_eq!(
                db.get_u64(t * 10_000 + i).unwrap().as_deref(),
                Some(&(t ^ i).to_le_bytes()[..]),
                "writer {t} op {i} lost"
            );
        }
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn string_keys_survive_kill_and_power_loss_like_u64_keys() {
    // Variable-length keys through the whole crash path: URL-ish strings
    // of wildly different lengths (1 byte up to 900 bytes, shared
    // prefixes included) put/deleted across rotations, then killed and
    // replayed. Every acked write must come back byte-exact.
    let keys: Vec<Vec<u8>> = (0..120u64)
        .map(|i| match i % 4 {
            0 => format!("https://example.com/{:03}", i).into_bytes(),
            1 => format!("https://example.com/{:03}/deep/path?q={}", i, i * 7).into_bytes(),
            2 => vec![b'a' + (i % 26) as u8],
            _ => {
                let mut k = format!("long/{:03}/", i).into_bytes();
                k.resize(900, b'x');
                k
            }
        })
        .collect();
    for (tag, kind) in [("kill", CrashKind::ProcessKill), ("power", CrashKind::PowerLoss)] {
        let dir = tmpdir(&format!("string-{tag}"));
        let cfg = crash_cfg(SyncMode::Always);
        let factory: Arc<dyn FilterFactory> = Arc::new(ProteusFactory::default());
        let db = Db::open(&dir, cfg.clone(), Arc::clone(&factory)).unwrap();
        let mut mirror: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            let v = format!("val-{i}").into_bytes();
            db.put(k, &v).unwrap();
            mirror.insert(k.clone(), Some(v));
        }
        db.flush().unwrap();
        for k in keys.iter().step_by(3) {
            db.delete(k).unwrap();
            mirror.insert(k.clone(), None);
        }
        let db = crash_and_reopen(db, &dir, &cfg, factory, kind);
        for (k, want) in &mirror {
            assert_eq!(
                db.get(k).unwrap(),
                *want,
                "{tag}: key {:?} diverged",
                String::from_utf8_lossy(k)
            );
        }
        // Ordered scan across the recovered store stays globally sorted.
        let scanned: Vec<Vec<u8>> = db
            .range::<&[u8], _>(..)
            .unwrap()
            .map(|e| e.map(|(k, _)| k))
            .collect::<proteus_lsm::Result<_>>()
            .unwrap();
        let live: Vec<&Vec<u8>> =
            mirror.iter().filter(|(_, v)| v.is_some()).map(|(k, _)| k).collect();
        assert_eq!(scanned.len(), live.len(), "{tag}: live key count diverged");
        assert!(scanned.windows(2).all(|w| w[0] < w[1]), "{tag}: scan not sorted");
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn clean_drop_preserves_the_active_memtable_through_the_wal() {
    // Graceful shutdown does a final WAL sync, so buffered writes that
    // never saw a flush still survive — even in SyncMode::Off.
    let dir = tmpdir("clean-drop");
    let cfg = wal_only_cfg(SyncMode::Off);
    let db = Db::open(&dir, cfg.clone(), nofilter()).unwrap();
    for k in 0..50u64 {
        db.put_u64(k, b"buffered").unwrap();
    }
    drop(db);

    let db = Db::open(&dir, cfg, nofilter()).unwrap();
    assert_eq!(db.stats().wal_replayed_records.get(), 50);
    for k in 0..50u64 {
        assert_eq!(db.get_u64(k).unwrap().as_deref(), Some(&b"buffered"[..]), "key {k}");
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_dir_snapshot_mid_write_opens_with_every_prior_acked_write() {
    // The copy-the-directory crash model: byte-copy the live dir while a
    // writer hammers it, then open the copy as if the machine had died at
    // that instant. Everything acked (and synced — SyncMode::Always)
    // before the copy began must be in it.
    let dir = tmpdir("live-snap");
    let cfg = wal_only_cfg(SyncMode::Always); // no rotation mid-copy
    let db = Db::open(&dir, cfg.clone(), nofilter()).unwrap();
    let progress = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let mut snap_dir = PathBuf::new();
    let mut acked_at_snapshot = 0;
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut k = 0u64;
            while !stop.load(Ordering::Acquire) {
                db.put_u64(k, &k.to_le_bytes()).unwrap();
                k += 1;
                progress.store(k, Ordering::Release);
            }
        });
        while progress.load(Ordering::Acquire) < 200 {
            std::thread::yield_now();
        }
        acked_at_snapshot = progress.load(Ordering::Acquire);
        snap_dir = snapshot_live_dir(&dir, "mid-write");
        stop.store(true, Ordering::Release);
    });
    db.crash();

    let db = Db::open(&snap_dir, cfg, nofilter()).unwrap();
    for k in 0..acked_at_snapshot {
        assert_eq!(
            db.get_u64(k).unwrap().as_deref(),
            Some(&k.to_le_bytes()[..]),
            "key {k} was acked before the snapshot began"
        );
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&snap_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

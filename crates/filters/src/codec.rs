//! `FilterCodec`: the one-stop encode/decode entry point for every range
//! filter in the workspace.
//!
//! Encoding asks the filter for its `(kind, payload)` via
//! [`RangeFilter::encode_payload`] and seals it in the versioned envelope
//! (`proteus_core::codec`: magic, format version, kind tag, length,
//! CRC-32). Decoding verifies the envelope and dispatches on the kind tag
//! to the concrete decoder:
//!
//! * corrupt, truncated or version-mismatched bytes → `Err(CodecError)`,
//!   never a panic;
//! * a *valid* envelope carrying an unknown kind tag (a filter from a
//!   newer build) → `Ok` with a [`NoFilter`] stand-in and
//!   [`DecodedFilter::degraded`] set, so old binaries keep serving reads
//!   (every Seek just pays the I/O for that SST).
//!
//! This module lives in `proteus-filters` because it is the lowest crate
//! that can see every serializable filter type (Proteus/1PBF/2PBF from
//! `proteus-core` plus SuRF and Rosetta defined here).

use crate::rosetta::Rosetta;
use crate::surf::Surf;
use proteus_core::codec::{
    seal, seal_with_fingerprint, unseal, ByteReader, CodecError, FilterKind,
};
use proteus_core::{NoFilter, OnePbf, Proteus, QuerySketch, RangeFilter, TwoPbf};

/// Outcome of a successful decode.
pub struct DecodedFilter {
    /// The reconstructed filter, ready to serve queries.
    pub filter: Box<dyn RangeFilter>,
    /// True when the envelope was valid but the kind tag unknown and the
    /// filter was replaced by [`NoFilter`] (callers surface this through a
    /// stats counter).
    pub degraded: bool,
    /// The training fingerprint persisted next to the filter (codec v2) —
    /// the prefix histogram of the sample queries it was trained on. `None`
    /// for v1 envelopes and for filters encoded without one; drift
    /// detection then falls back to observed-FPR triggers alone.
    pub fingerprint: Option<QuerySketch>,
}

/// Versioned binary serialization for every range filter in the workspace.
///
/// # Example
///
/// ```
/// use proteus_core::{KeySet, Proteus, ProteusOptions, RangeFilter, SampleQueries};
/// use proteus_core::key::u64_key;
/// use proteus_filters::FilterCodec;
///
/// let keys = KeySet::from_u64(&[1_000, 2_000, 3_000]);
/// let mut samples = SampleQueries::from_u64(&[(1_200, 1_300)]);
/// samples.retain_empty(&keys);
/// let filter = Proteus::train(&keys, &samples, 10 * keys.len() as u64,
///                             &ProteusOptions::default());
///
/// let bytes = FilterCodec::encode(&filter)?;
/// let decoded = FilterCodec::decode(&bytes)?;
/// assert!(!decoded.degraded);
/// assert_eq!(decoded.filter.name(), filter.name());
/// assert!(decoded.filter.may_contain(&u64_key(2_000))); // never a false negative
/// # Ok::<(), proteus_core::CodecError>(())
/// ```
pub struct FilterCodec;

impl FilterCodec {
    /// Encode `filter` into a self-describing envelope (no training
    /// fingerprint).
    ///
    /// Filters without a persistent form (e.g. ARF) yield
    /// [`CodecError::Unsupported`]; the SST writer treats that as "no
    /// filter block" rather than an I/O failure.
    pub fn encode(filter: &dyn RangeFilter) -> Result<Vec<u8>, CodecError> {
        let (kind, payload) =
            filter.encode_payload().ok_or(CodecError::Unsupported("filter kind"))?;
        Ok(seal(kind, &payload))
    }

    /// [`FilterCodec::encode`] plus the training fingerprint of the sample
    /// the filter was built from, so drift against that distribution stays
    /// measurable across a crash/reopen.
    pub fn encode_with_fingerprint(
        filter: &dyn RangeFilter,
        fingerprint: &QuerySketch,
    ) -> Result<Vec<u8>, CodecError> {
        let (kind, payload) =
            filter.encode_payload().ok_or(CodecError::Unsupported("filter kind"))?;
        if fingerprint.is_empty() {
            return Ok(seal(kind, &payload));
        }
        Ok(seal_with_fingerprint(kind, &payload, &fingerprint.encode()))
    }

    /// Decode an envelope produced by [`FilterCodec::encode`] (either
    /// supported envelope version).
    pub fn decode(bytes: &[u8]) -> Result<DecodedFilter, CodecError> {
        let u = unseal(bytes)?;
        let fingerprint = match u.fingerprint {
            Some(fp) => Some(QuerySketch::decode(fp)?),
            None => None,
        };
        let Some(kind) = FilterKind::from_tag(u.tag) else {
            // Forward-compatible degradation: the bytes are intact (the
            // checksum proved it) but this build cannot reconstruct the
            // filter. NoFilter preserves the no-false-negative contract.
            return Ok(DecodedFilter { filter: Box::new(NoFilter), degraded: true, fingerprint });
        };
        let mut r = ByteReader::new(u.payload);
        let filter: Box<dyn RangeFilter> = match kind {
            FilterKind::NoFilter => Box::new(NoFilter),
            FilterKind::Proteus => Box::new(Proteus::decode_from(&mut r)?),
            FilterKind::OnePbf => Box::new(OnePbf::decode_from(&mut r)?),
            FilterKind::TwoPbf => Box::new(TwoPbf::decode_from(&mut r)?),
            FilterKind::Surf => Box::new(Surf::decode_from(&mut r)?),
            FilterKind::Rosetta => Box::new(Rosetta::decode_from(&mut r)?),
        };
        r.finish()?;
        Ok(DecodedFilter { filter, degraded: false, fingerprint })
    }

    /// Round-trip helper: decode strictly, rejecting degraded outcomes
    /// (used by tests and tools that expect a known filter kind).
    pub fn decode_strict(bytes: &[u8]) -> Result<Box<dyn RangeFilter>, CodecError> {
        let d = Self::decode(bytes)?;
        if d.degraded {
            Err(CodecError::UnknownTag { what: "filter kind", tag: bytes[6] })
        } else {
            Ok(d.filter)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surf::SurfSuffix;
    use proteus_core::key::u64_key;
    use proteus_core::{KeySet, OnePbfOptions, ProteusOptions, SampleQueries, TwoPbfFilterOptions};

    fn fixture_keys() -> (Vec<u64>, KeySet, SampleQueries) {
        let keys: Vec<u64> = (0..800u64).map(|i| i.wrapping_mul(0x9E37_79B9) << 16).collect();
        let ks = KeySet::from_u64(&keys);
        let mut samples = SampleQueries::from_u64(
            &(0..200u64).map(|i| (i * 77 + 13, i * 77 + 50)).collect::<Vec<_>>(),
        );
        samples.retain_empty(&ks);
        (keys, ks, samples)
    }

    fn workspace_filters() -> Vec<Box<dyn RangeFilter>> {
        let (_, ks, samples) = fixture_keys();
        let m = 800 * 12;
        vec![
            Box::new(NoFilter),
            Box::new(Proteus::train(&ks, &samples, m, &ProteusOptions::default())),
            Box::new(OnePbf::train(&ks, &samples, m, &OnePbfOptions::default())),
            Box::new(TwoPbf::train(&ks, &samples, m, &TwoPbfFilterOptions::default())),
            Box::new(Surf::build(&ks, SurfSuffix::Base)),
            Box::new(Surf::build(&ks, SurfSuffix::Hash(8))),
            Box::new(Surf::build(&ks, SurfSuffix::Real(8))),
            Box::new(Rosetta::train(&ks, &samples, m, &crate::RosettaOptions::default())),
        ]
    }

    #[test]
    fn every_kind_roundtrips_with_identical_answers() {
        let (keys, _, _) = fixture_keys();
        for f in workspace_filters() {
            let bytes = FilterCodec::encode(f.as_ref()).unwrap();
            let back = FilterCodec::decode(&bytes).unwrap();
            assert!(!back.degraded, "{}", f.name());
            let g = back.filter;
            assert_eq!(g.name(), f.name());
            assert_eq!(g.size_bits(), f.size_bits(), "{}", f.name());
            for &k in keys.iter().step_by(17) {
                let key = u64_key(k);
                assert_eq!(g.may_contain(&key), f.may_contain(&key), "{} point", f.name());
                let lo = u64_key(k.saturating_sub(99));
                let hi = u64_key(k.saturating_add(99));
                assert_eq!(
                    g.may_contain_range(&lo, &hi),
                    f.may_contain_range(&lo, &hi),
                    "{} range",
                    f.name()
                );
            }
            // Off-key probes must agree too (false positives included).
            for q in (0..5000u64).step_by(37) {
                let key = u64_key(q.wrapping_mul(0xDEAD_BEEF_CAFE));
                assert_eq!(g.may_contain(&key), f.may_contain(&key), "{} fp probe", f.name());
            }
        }
    }

    #[test]
    fn fingerprint_rides_along_and_roundtrips() {
        let (_, ks, samples) = fixture_keys();
        let f = Proteus::train(&ks, &samples, 800 * 12, &ProteusOptions::default());
        let lo = u64_key(0);
        let hi = u64_key(u64::MAX);
        let sketch = QuerySketch::from_queries(samples.iter(), &lo, &hi);
        assert!(!sketch.is_empty());
        let bytes = FilterCodec::encode_with_fingerprint(&f, &sketch).unwrap();
        let d = FilterCodec::decode(&bytes).unwrap();
        assert!(!d.degraded);
        let got = d.fingerprint.expect("fingerprint must survive the envelope");
        assert_eq!(got, sketch);
        assert_eq!(got.divergence(&sketch), 0.0);
        // Without a fingerprint the same filter decodes to None.
        let plain = FilterCodec::encode(&f).unwrap();
        assert!(FilterCodec::decode(&plain).unwrap().fingerprint.is_none());
        // An empty sketch is not persisted at all.
        let empty = FilterCodec::encode_with_fingerprint(&f, &QuerySketch::default()).unwrap();
        assert_eq!(empty, plain);
        // Corrupting any byte of the fingerprinted envelope still errors.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            assert!(FilterCodec::decode(&bad).is_err(), "corrupt byte {i}");
        }
    }

    #[test]
    fn unknown_kind_degrades_to_nofilter() {
        let sealed = proteus_core::codec::seal_raw(200, b"future payload");
        let d = FilterCodec::decode(&sealed).unwrap();
        assert!(d.degraded);
        assert_eq!(d.filter.name(), "NoFilter");
        assert!(d.filter.may_contain_range(&u64_key(0), &u64_key(1)));
        assert!(FilterCodec::decode_strict(&sealed).is_err());
    }

    #[test]
    fn corruptions_and_truncations_error_never_panic() {
        let f = Surf::build(&KeySet::from_u64(&[1, 500, 90_000]), SurfSuffix::Real(4));
        let bytes = FilterCodec::encode(&f).unwrap();
        for cut in 0..bytes.len() {
            assert!(FilterCodec::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            assert!(FilterCodec::decode(&bad).is_err(), "corrupt byte {i}");
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        let mut s = 0xFEED_FACEu64;
        for len in [0usize, 1, 7, 16, 64, 1024] {
            let blob: Vec<u8> = (0..len)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s as u8
                })
                .collect();
            assert!(FilterCodec::decode(&blob).is_err(), "len {len}");
        }
    }
}

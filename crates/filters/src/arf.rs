//! ARF — the Adaptive Range Filter (Alexiou, Kossmann, Larson; VLDB 2013),
//! the §8 related-work baseline: a binary trie over the key domain whose
//! leaves carry one "may contain keys" bit, trained by escalating (splitting)
//! on false positives and retracting (merging) least-recently-useful
//! subtrees to stay within a space budget.
//!
//! The paper positions ARF as memory-inefficient and expensive to train
//! relative to prefix-filter designs ("ARF's encoding strategy limits its
//! memory efficiency and requires significant time and memory to
//! pre-train"); this implementation exists so that claim can be reproduced
//! and measured.

use proteus_core::key::{key_u64, u64_key};
use proteus_core::{KeySet, RangeFilter};

/// Arena node of the adaptive binary trie over `u64` key space.
#[derive(Debug, Clone)]
enum Node {
    /// Internal node: children indices.
    Inner { left: u32, right: u32 },
    /// Leaf: does the covered region possibly contain keys?
    Leaf { occupied: bool, used: u32 },
}

/// The Adaptive Range Filter over 64-bit keys.
#[derive(Debug, Clone)]
pub struct Arf {
    nodes: Vec<Node>,
    /// Logical clock for the LRU replacement of retractions.
    clock: u32,
    /// Node budget derived from the bit budget (the VLDB'13 encoding costs
    /// ~2 bits per node: one shape bit plus one leaf bit amortized).
    max_nodes: usize,
}

const ROOT: u32 = 0;

impl Arf {
    /// Build an ARF for `keys` within `m_bits`, pre-trained on
    /// `training_queries` (closed, *empty* ranges — exactly the sample
    /// queries the other filters receive).
    pub fn train(keys: &KeySet, training_queries: &[(u64, u64)], m_bits: u64) -> Self {
        assert_eq!(keys.width(), 8, "ARF is defined over u64 keys");
        let max_nodes = (m_bits / 2).max(8) as usize;
        let mut arf = Arf {
            nodes: vec![Node::Leaf { occupied: !keys.is_empty(), used: 0 }],
            clock: 0,
            max_nodes,
        };
        for &(lo, hi) in training_queries {
            arf.escalate(keys, lo, hi);
            // Keep within budget as we go, like the online ARF.
            while arf.nodes.len() > arf.max_nodes {
                if !arf.retract_one() {
                    break;
                }
            }
        }
        arf
    }

    /// Number of trie nodes.
    pub fn node_count(&self) -> usize {
        // Retractions leave garbage entries in the arena; count reachable.
        self.count_reachable(ROOT)
    }

    fn count_reachable(&self, n: u32) -> usize {
        match self.nodes[n as usize] {
            Node::Leaf { .. } => 1,
            Node::Inner { left, right } => {
                1 + self.count_reachable(left) + self.count_reachable(right)
            }
        }
    }

    /// Teach the filter that `[lo, hi]` is empty: split every intersecting
    /// occupied leaf until the query region is exactly covered by empty
    /// leaves (bounded by the true key positions).
    pub fn escalate(&mut self, keys: &KeySet, lo: u64, hi: u64) {
        if keys.range_overlaps(&u64_key(lo), &u64_key(hi)) {
            return; // not an empty query; nothing to learn
        }
        self.clock += 1;
        self.escalate_node(keys, ROOT, 0, u64::MAX, lo, hi, 0);
    }

    #[allow(clippy::too_many_arguments)]
    fn escalate_node(
        &mut self,
        keys: &KeySet,
        n: u32,
        node_lo: u64,
        node_hi: u64,
        q_lo: u64,
        q_hi: u64,
        depth: u32,
    ) {
        if node_hi < q_lo || node_lo > q_hi {
            return;
        }
        match self.nodes[n as usize] {
            Node::Inner { left, right } => {
                let mid = node_lo + (node_hi - node_lo) / 2;
                self.escalate_node(keys, left, node_lo, mid, q_lo, q_hi, depth + 1);
                self.escalate_node(keys, right, mid + 1, node_hi, q_lo, q_hi, depth + 1);
            }
            Node::Leaf { occupied, .. } => {
                let region_occupied = keys.range_overlaps(&u64_key(node_lo), &u64_key(node_hi));
                if !region_occupied {
                    // The whole leaf region is empty: flip the bit.
                    self.nodes[n as usize] = Node::Leaf { occupied: false, used: self.clock };
                    return;
                }
                if !occupied {
                    return; // already resolves the query negatively here
                }
                // Occupied leaf overlapping an empty query: split (if depth
                // remains) and recurse into both halves.
                if depth >= 63 || node_lo == node_hi {
                    return; // cannot refine further
                }
                let mid = node_lo + (node_hi - node_lo) / 2;
                let l_occ = keys.range_overlaps(&u64_key(node_lo), &u64_key(mid));
                let r_occ = keys.range_overlaps(&u64_key(mid + 1), &u64_key(node_hi));
                let li = self.nodes.len() as u32;
                self.nodes.push(Node::Leaf { occupied: l_occ, used: self.clock });
                let ri = self.nodes.len() as u32;
                self.nodes.push(Node::Leaf { occupied: r_occ, used: self.clock });
                self.nodes[n as usize] = Node::Inner { left: li, right: ri };
                self.escalate_node(keys, li, node_lo, mid, q_lo, q_hi, depth + 1);
                self.escalate_node(keys, ri, mid + 1, node_hi, q_lo, q_hi, depth + 1);
            }
        }
    }

    /// Merge the least-recently-used inner node whose children are both
    /// leaves. Returns `false` when nothing is mergeable.
    fn retract_one(&mut self) -> bool {
        let mut victim: Option<(u32, u32)> = None; // (node, recency)

        // Find mergeable inner nodes (both children leaves).
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Inner { left, right } = *node {
                if let (Node::Leaf { used: ul, .. }, Node::Leaf { used: ur, .. }) =
                    (&self.nodes[left as usize], &self.nodes[right as usize])
                {
                    let recency = (*ul).max(*ur);
                    if victim.is_none_or(|(_, r)| recency < r) {
                        victim = Some((i as u32, recency));
                    }
                }
            }
        }
        let Some((v, _)) = victim else {
            return false;
        };
        if let Node::Inner { left, right } = self.nodes[v as usize] {
            let occ = matches!(self.nodes[left as usize], Node::Leaf { occupied: true, .. })
                || matches!(self.nodes[right as usize], Node::Leaf { occupied: true, .. });
            // Merging loses resolution: the merged leaf must stay occupied
            // if either half was (no false negatives).
            self.nodes[v as usize] = Node::Leaf { occupied: occ, used: self.clock };
            // Arena slots for the children become garbage; reclaimed by
            // compact() when fragmentation grows.
            if self.garbage_heavy() {
                self.compact();
            }
            true
        } else {
            false
        }
    }

    fn garbage_heavy(&self) -> bool {
        self.nodes.len() > 64 && self.count_reachable(ROOT) * 2 < self.nodes.len()
    }

    /// Rebuild the arena with only reachable nodes.
    fn compact(&mut self) {
        let mut new_nodes = Vec::with_capacity(self.count_reachable(ROOT));
        fn copy(old: &[Node], n: u32, out: &mut Vec<Node>) -> u32 {
            let idx = out.len() as u32;
            out.push(old[n as usize].clone());
            if let Node::Inner { left, right } = old[n as usize] {
                let li = copy(old, left, out);
                let ri = copy(old, right, out);
                out[idx as usize] = Node::Inner { left: li, right: ri };
            }
            idx
        }
        copy(&self.nodes, ROOT, &mut new_nodes);
        self.nodes = new_nodes;
    }

    /// Closed-range emptiness query over `u64` bounds.
    pub fn query_u64(&self, lo: u64, hi: u64) -> bool {
        self.query_node(ROOT, 0, u64::MAX, lo, hi)
    }

    fn query_node(&self, n: u32, node_lo: u64, node_hi: u64, q_lo: u64, q_hi: u64) -> bool {
        if node_hi < q_lo || node_lo > q_hi {
            return false;
        }
        match self.nodes[n as usize] {
            Node::Leaf { occupied, .. } => occupied,
            Node::Inner { left, right } => {
                let mid = node_lo + (node_hi - node_lo) / 2;
                self.query_node(left, node_lo, mid, q_lo, q_hi)
                    || self.query_node(right, mid + 1, node_hi, q_lo, q_hi)
            }
        }
    }
}

impl RangeFilter for Arf {
    fn may_contain_range(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.query_u64(key_u64(lo), key_u64(hi))
    }
    fn size_bits(&self) -> u64 {
        // The VLDB'13 succinct encoding: 1 shape bit per node + 1 occupancy
        // bit per leaf ≈ 1.5 bits per node; we report 2 bits per reachable
        // node to stay conservative.
        (self.node_count() * 2) as u64
    }
    fn name(&self) -> String {
        format!("ARF({} nodes)", self.node_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(s: &mut u64) -> u64 {
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn empty_queries(keys: &KeySet, n: usize, rmax: u64, seed: u64) -> Vec<(u64, u64)> {
        let mut s = seed;
        let mut out = Vec::new();
        while out.len() < n {
            let lo = splitmix(&mut s) % (u64::MAX - rmax - 1);
            let hi = lo + splitmix(&mut s) % rmax.max(1);
            if !keys.range_overlaps(&u64_key(lo), &u64_key(hi)) {
                out.push((lo, hi));
            }
        }
        out
    }

    #[test]
    fn no_false_negatives_ever() {
        let mut s = 5u64;
        let raw: Vec<u64> = (0..500).map(|_| splitmix(&mut s)).collect();
        let keys = KeySet::from_u64(&raw);
        let train = empty_queries(&keys, 2_000, 1 << 16, 9);
        let arf = Arf::train(&keys, &train, 500 * 10);
        for &k in raw.iter().step_by(7) {
            assert!(arf.query_u64(k, k), "point {k:#x}");
            assert!(arf.query_u64(k.saturating_sub(100), k.saturating_add(100)));
        }
        assert!(arf.query_u64(0, u64::MAX));
    }

    #[test]
    fn training_teaches_trained_regions() {
        let raw: Vec<u64> = (0..100u64).map(|i| i << 40).collect();
        let keys = KeySet::from_u64(&raw);
        let train: Vec<(u64, u64)> =
            (0..99u64).map(|i| ((i << 40) + 1000, (i << 40) + 2000)).collect();
        let arf = Arf::train(&keys, &train, 100 * 256);
        // Trained gaps now resolve negative.
        let mut negs = 0;
        for &(lo, hi) in &train {
            negs += !arf.query_u64(lo, hi) as u32;
        }
        assert!(negs as usize > train.len() * 8 / 10, "{negs}/{} trained", train.len());
    }

    #[test]
    fn untrained_regions_stay_conservative() {
        let raw: Vec<u64> = vec![1 << 30];
        let keys = KeySet::from_u64(&raw);
        let arf = Arf::train(&keys, &[], 1024);
        // No training: the root is a single occupied leaf.
        assert!(arf.query_u64(0, 10));
        assert!(arf.query_u64(1 << 40, 1 << 41));
    }

    #[test]
    fn budget_forces_retraction() {
        let mut s = 3u64;
        let raw: Vec<u64> = (0..200).map(|_| splitmix(&mut s)).collect();
        let keys = KeySet::from_u64(&raw);
        let train = empty_queries(&keys, 5_000, 1 << 10, 4);
        let tight = Arf::train(&keys, &train, 256); // 128-node budget
        assert!(tight.node_count() <= 140, "{} nodes", tight.node_count());
        // Still sound after merging.
        for &k in raw.iter().step_by(11) {
            assert!(tight.query_u64(k, k));
        }
    }

    #[test]
    fn escalation_ignores_non_empty_queries() {
        let raw: Vec<u64> = vec![100, 200];
        let keys = KeySet::from_u64(&raw);
        let mut arf = Arf::train(&keys, &[], 1 << 16);
        let before = arf.node_count();
        arf.escalate(&keys, 50, 150); // overlaps key 100
        assert_eq!(arf.node_count(), before, "non-empty query must not train");
    }

    #[test]
    fn compaction_preserves_behavior() {
        let mut s = 9u64;
        let raw: Vec<u64> = (0..300).map(|_| splitmix(&mut s)).collect();
        let keys = KeySet::from_u64(&raw);
        let train = empty_queries(&keys, 3_000, 1 << 12, 5);
        let mut arf = Arf::train(&keys, &train, 2048);
        let probe = empty_queries(&keys, 200, 1 << 12, 77);
        let answers: Vec<bool> = probe.iter().map(|&(l, h)| arf.query_u64(l, h)).collect();
        arf.compact();
        let after: Vec<bool> = probe.iter().map(|&(l, h)| arf.query_u64(l, h)).collect();
        assert_eq!(answers, after);
    }
}

//! SuRF — the Succinct Range Filter (Zhang et al., SIGMOD 2018), the
//! state-of-the-art deterministic baseline of the Proteus paper (§2.2).
//!
//! SuRF prunes each key's trie branch to the shortest prefix that uniquely
//! identifies it, encoded as a LOUDS-DS fast succinct trie. Optional
//! per-key suffix bits refine the boundary comparisons:
//!
//! * **SuRF-Base** — no suffixes;
//! * **SuRF-Hash(h)** — `h` bits of a hash of the full key; helps point
//!   queries only ("these do not provide any additional benefit for range
//!   queries", §2.2);
//! * **SuRF-Real(r)** — the `r` key bits following the pruned prefix;
//!   refines both point and range queries.
//!
//! Keys are canonical fixed-width byte strings; NUL padding plays the role
//! of SuRF's `$` terminator for keys that are prefixes of other keys.

use proteus_amq::hash::{HashFamily, PrefixHasher};
use proteus_core::codec::{ByteReader, CodecError, FilterKind, WireWrite};
use proteus_core::key::{bit_slice, lcp_bytes};
use proteus_core::{KeySet, RangeFilter};
use proteus_succinct::{Fst, FstBuilder, ValueStore, Visit};

/// Suffix configuration (SuRF-Base / SuRF-Hash / SuRF-Real).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurfSuffix {
    /// No suffix bits: the trie alone answers queries.
    Base,
    /// `n` hash bits per key (point-query false positives only).
    Hash(u32),
    /// `n` real key bits past the trie depth (helps range queries too).
    Real(u32),
}

impl SurfSuffix {
    fn bits(self) -> u32 {
        match self {
            SurfSuffix::Base => 0,
            SurfSuffix::Hash(b) | SurfSuffix::Real(b) => b,
        }
    }
}

/// The SuRF baseline filter.
#[derive(Debug, Clone)]
pub struct Surf {
    fst: Fst,
    suffix: SurfSuffix,
    hasher: PrefixHasher,
    width: usize,
}

impl Surf {
    /// Build over a key set with the given suffix mode.
    pub fn build(keys: &KeySet, suffix: SurfSuffix) -> Self {
        let n = keys.len();
        let hasher = PrefixHasher::new(HashFamily::Murmur3, 0x5u32);
        // Branch per key: shortest unique byte prefix.
        let mut branches: Vec<&[u8]> = Vec::with_capacity(n);
        let mut branch_lens: Vec<u32> = Vec::with_capacity(n);
        for i in 0..n {
            let key = keys.key(i);
            let prev_lcp = if i > 0 { lcp_bytes(keys.key(i - 1), key) } else { 0 };
            let next_lcp = if i + 1 < n { lcp_bytes(key, keys.key(i + 1)) } else { 0 };
            let ub = (prev_lcp.max(next_lcp) + 1).min(keys.width());
            branches.push(&key[..ub]);
            branch_lens.push(ub as u32);
        }
        let (mut fst, slot_to_idx) = FstBuilder::new().build(&branches);
        let sbits = suffix.bits();
        if sbits > 0 {
            let values: Vec<u64> = slot_to_idx
                .iter()
                .map(|&i| {
                    let key = keys.key(i as usize);
                    match suffix {
                        SurfSuffix::Hash(_) => hasher.hash_bytes(key).h1 & mask_low(sbits),
                        SurfSuffix::Real(_) => {
                            real_suffix(key, branch_lens[i as usize] as usize * 8, sbits)
                        }
                        SurfSuffix::Base => unreachable!(),
                    }
                })
                .collect();
            fst.set_values(ValueStore::from_fixed_bits(&values, sbits));
        }
        Surf { fst, suffix, hasher, width: keys.width() }
    }

    /// The configured suffix mode.
    pub fn suffix_mode(&self) -> SurfSuffix {
        self.suffix
    }

    /// Trie + suffix memory, in bits.
    pub fn size_bits(&self) -> u64 {
        self.fst.size_bits()
    }

    /// Serialize: width, suffix mode, hasher, then the trie (covers all
    /// three suffix modes — the ValueStore carries the suffix bits).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u32(self.width as u32);
        let (tag, bits) = match self.suffix {
            SurfSuffix::Base => (0u8, 0u32),
            SurfSuffix::Hash(b) => (1, b),
            SurfSuffix::Real(b) => (2, b),
        };
        out.put_u8(tag);
        out.put_u32(bits);
        self.hasher.encode_into(out);
        self.fst.encode_into(out);
    }

    /// Decode a filter previously written by `encode_into`.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Surf, CodecError> {
        let width = r.u32()? as usize;
        if width == 0 {
            return Err(CodecError::Invalid("surf width zero"));
        }
        let tag = r.u8()?;
        let bits = r.u32()?;
        let suffix = match tag {
            0 => SurfSuffix::Base,
            1 => SurfSuffix::Hash(bits),
            2 => SurfSuffix::Real(bits),
            tag => return Err(CodecError::UnknownTag { what: "surf suffix", tag }),
        };
        if suffix != SurfSuffix::Base && !(1..=64).contains(&bits) {
            return Err(CodecError::Invalid("surf suffix bits"));
        }
        let hasher = PrefixHasher::decode_from(r)?;
        let fst = Fst::decode_from(r)?;
        Ok(Surf { fst, suffix, hasher, width })
    }

    /// Closed-range emptiness query over canonical bounds.
    pub fn query(&self, lo: &[u8], hi: &[u8]) -> bool {
        debug_assert_eq!(lo.len(), self.width);
        debug_assert!(lo <= hi);
        let point = lo == hi;
        self.fst.visit_overlapping(lo, hi, &mut |branch, slot| {
            if self.candidate_matches(branch, slot, lo, hi, point) {
                Visit::Stop
            } else {
                Visit::Continue
            }
        })
    }

    /// Convenience u64 query.
    pub fn query_u64(&self, lo: u64, hi: u64) -> bool {
        self.query(&proteus_core::key::u64_key(lo), &proteus_core::key::u64_key(hi))
    }

    /// Decide whether a candidate branch (possibly a proper prefix of a
    /// bound) survives suffix refinement.
    fn candidate_matches(
        &self,
        branch: &[u8],
        slot: usize,
        lo: &[u8],
        hi: &[u8],
        point: bool,
    ) -> bool {
        let blen = branch.len();
        let prefix_of_lo = blen < self.width && branch == &lo[..blen.min(lo.len())];
        let prefix_of_hi = blen < self.width && branch == &hi[..blen.min(hi.len())];
        match self.suffix {
            SurfSuffix::Base => true,
            SurfSuffix::Hash(bits) => {
                if point {
                    // Point query: the represented key equals `lo` only if
                    // the full-key hashes agree.
                    let want = self.hasher.hash_bytes(lo).h1 & mask_low(bits);
                    self.fst.values().fixed(slot) == want
                } else {
                    true // hash bits cannot refine range boundaries
                }
            }
            SurfSuffix::Real(bits) => {
                if !prefix_of_lo && !prefix_of_hi {
                    return true; // strictly inside the range
                }
                let stored = self.fst.values().fixed(slot);
                if prefix_of_lo {
                    // Represented key k extends `branch`; k >= lo requires
                    // its next `bits` key bits to be >= lo's.
                    let lo_bits = real_suffix(lo, blen * 8, bits);
                    if stored < lo_bits {
                        return false;
                    }
                }
                if prefix_of_hi {
                    let hi_bits = real_suffix(hi, blen * 8, bits);
                    if stored > hi_bits {
                        return false;
                    }
                }
                true
            }
        }
    }
}

#[inline]
fn mask_low(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// The `bits` key bits starting at `from` (zero-extended past the key end).
fn real_suffix(key: &[u8], from: usize, bits: u32) -> u64 {
    let total = key.len() * 8;
    if from >= total {
        return 0;
    }
    let avail = (total - from).min(bits as usize);
    let v = bit_slice(key, from, from + avail, u64::MAX);
    // Left-align within `bits` so lexicographic comparisons are value
    // comparisons even when truncated by the key end.
    v << (bits as usize - avail)
}

impl RangeFilter for Surf {
    fn may_contain_range(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.query(lo, hi)
    }
    fn size_bits(&self) -> u64 {
        self.size_bits()
    }
    fn name(&self) -> String {
        match self.suffix {
            SurfSuffix::Base => "SuRF-Base".to_string(),
            SurfSuffix::Hash(b) => format!("SuRF-Hash({b})"),
            SurfSuffix::Real(b) => format!("SuRF-Real({b})"),
        }
    }
    fn encode_payload(&self) -> Option<(FilterKind, Vec<u8>)> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        Some((FilterKind::Surf, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_core::key::u64_key;

    fn splitmix(s: &mut u64) -> u64 {
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn all_modes() -> Vec<SurfSuffix> {
        vec![
            SurfSuffix::Base,
            SurfSuffix::Hash(4),
            SurfSuffix::Hash(8),
            SurfSuffix::Real(4),
            SurfSuffix::Real(8),
        ]
    }

    #[test]
    fn no_false_negatives_points_and_ranges() {
        let mut s = 1u64;
        let keys: Vec<u64> = (0..2000).map(|_| splitmix(&mut s)).collect();
        let ks = KeySet::from_u64(&keys);
        for mode in all_modes() {
            let f = Surf::build(&ks, mode);
            for &k in keys.iter().step_by(29) {
                assert!(f.query_u64(k, k), "{mode:?} point {k:#x}");
                assert!(
                    f.query_u64(k.saturating_sub(100), k.saturating_add(100)),
                    "{mode:?} range around {k:#x}"
                );
                assert!(f.query_u64(0, u64::MAX), "{mode:?}");
            }
        }
    }

    #[test]
    fn hash_suffixes_cut_point_fprs() {
        let mut s = 2u64;
        let keys: Vec<u64> = (0..5000).map(|_| splitmix(&mut s)).collect();
        let ks = KeySet::from_u64(&keys);
        let base = Surf::build(&ks, SurfSuffix::Base);
        let hash = Surf::build(&ks, SurfSuffix::Hash(8));
        let mut fp_base = 0;
        let mut fp_hash = 0;
        let trials = 5000;
        for _ in 0..trials {
            let q = splitmix(&mut s);
            if keys.contains(&q) {
                continue;
            }
            fp_base += base.query_u64(q, q) as u32;
            fp_hash += hash.query_u64(q, q) as u32;
        }
        assert!(
            fp_hash * 4 < fp_base.max(4),
            "hash suffix should slash point FPR: base {fp_base}, hash {fp_hash}"
        );
    }

    #[test]
    fn real_suffixes_cut_range_fprs_near_keys() {
        // Clustered keys so pruned prefixes are long and queries nearby.
        let mut s = 3u64;
        let keys: Vec<u64> =
            (0..3000).map(|_| (0xAAu64 << 56) | (splitmix(&mut s) >> 20)).collect();
        let ks = KeySet::from_u64(&keys);
        let base = Surf::build(&ks, SurfSuffix::Base);
        let real = Surf::build(&ks, SurfSuffix::Real(8));
        let mut fp_base = 0;
        let mut fp_real = 0;
        let mut trials = 0;
        while trials < 3000 {
            let k = keys[(splitmix(&mut s) as usize) % keys.len()];
            let lo = k.wrapping_add(1 + splitmix(&mut s) % 64);
            let hi = lo + 4;
            if ks.range_overlaps(&u64_key(lo), &u64_key(hi)) {
                continue;
            }
            trials += 1;
            fp_base += base.query_u64(lo, hi) as u32;
            fp_real += real.query_u64(lo, hi) as u32;
        }
        assert!(
            fp_real < fp_base,
            "real suffixes should help correlated ranges: base {fp_base}, real {fp_real}"
        );
    }

    #[test]
    fn string_keys_with_prefix_relationships() {
        let width = 12;
        let raw: Vec<&[u8]> = vec![b"app", b"apple", b"applesauce", b"banana", b"band"];
        let ks = KeySet::from_strings(&raw, width);
        for mode in all_modes() {
            let f = Surf::build(&ks, mode);
            for k in &raw {
                let ck = proteus_core::key::pad_key(k, width);
                assert!(f.query(&ck, &ck), "{mode:?} {}", String::from_utf8_lossy(k));
            }
            // A range that straddles "banana".."band".
            let lo = proteus_core::key::pad_key(b"banaa", width);
            let hi = proteus_core::key::pad_key(b"bane", width);
            assert!(f.query(&lo, &hi), "{mode:?}");
        }
    }

    #[test]
    fn memory_grows_with_suffix_bits() {
        let mut s = 6u64;
        let keys: Vec<u64> = (0..4000).map(|_| splitmix(&mut s)).collect();
        let ks = KeySet::from_u64(&keys);
        let base = Surf::build(&ks, SurfSuffix::Base).size_bits();
        let real4 = Surf::build(&ks, SurfSuffix::Real(4)).size_bits();
        let real8 = Surf::build(&ks, SurfSuffix::Real(8)).size_bits();
        assert!(base < real4 && real4 < real8);
        // BPK sanity: SuRF-Base on uniform 64-bit keys lands near 10-14 BPK.
        let bpk = base as f64 / keys.len() as f64;
        assert!((6.0..20.0).contains(&bpk), "SuRF-Base at {bpk:.1} BPK");
    }

    #[test]
    fn far_queries_are_negative() {
        // Keys clustered high; queries low: unique prefixes resolve quickly.
        let keys: Vec<u64> = (0..1000).map(|i| (0xFFu64 << 56) | i).collect();
        let ks = KeySet::from_u64(&keys);
        let f = Surf::build(&ks, SurfSuffix::Base);
        let mut fps = 0;
        for i in 0..1000u64 {
            fps += f.query_u64(i << 30, (i << 30) + 1000) as u32;
        }
        assert_eq!(fps, 0, "distant queries must all resolve in the trie");
    }
}

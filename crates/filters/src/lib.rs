//! # proteus-filters
//!
//! The state-of-the-art baseline range filters the Proteus paper evaluates
//! against (§2, §5, §6):
//!
//! * [`Surf`] — the Succinct Range Filter (deterministic; LOUDS-DS trie
//!   with Base/Hash/Real suffix modes);
//! * [`Rosetta`] — the multi-level prefix-Bloom segment-tree filter
//!   (probabilistic; dyadic decomposition with doubting).
//!
//! Both implement [`proteus_core::RangeFilter`], so they can be swapped
//! into the LSM harness and every benchmark interchangeably with Proteus.
//!
//! This crate also hosts [`FilterCodec`], the versioned binary
//! serialization entry point for *every* filter in the workspace (it is
//! the lowest crate that can see all of their types); the LSM harness uses
//! it to embed filters in SST files and reload them on reopen.

#![warn(missing_docs)]

pub mod arf;
pub mod codec;
pub mod rosetta;
pub mod surf;

pub use arf::Arf;
pub use codec::{DecodedFilter, FilterCodec};
pub use rosetta::{Rosetta, RosettaOptions};
pub use surf::{Surf, SurfSuffix};

#[cfg(test)]
mod cross_filter_tests {
    use super::*;
    use proteus_core::key::u64_key;
    use proteus_core::{KeySet, RangeFilter, SampleQueries};

    fn splitmix(s: &mut u64) -> u64 {
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Every filter in the workspace obeys the same no-false-negative
    /// contract through the trait object interface.
    #[test]
    fn all_filters_honor_the_contract() {
        let mut s = 42u64;
        let keys: Vec<u64> = (0..1500).map(|_| splitmix(&mut s)).collect();
        let ks = KeySet::from_u64(&keys);
        let mut samples = SampleQueries::new(8);
        while samples.len() < 200 {
            let lo = splitmix(&mut s) % (u64::MAX - 1000);
            let hi = lo + splitmix(&mut s) % 512;
            if !ks.range_overlaps(&u64_key(lo), &u64_key(hi)) {
                samples.push(&u64_key(lo), &u64_key(hi));
            }
        }
        let m = 1500 * 12;
        let filters: Vec<Box<dyn RangeFilter>> = vec![
            Box::new(Surf::build(&ks, SurfSuffix::Base)),
            Box::new(Surf::build(&ks, SurfSuffix::Real(6))),
            Box::new(Surf::build(&ks, SurfSuffix::Hash(6))),
            Box::new(Rosetta::train(&ks, &samples, m, &RosettaOptions::default())),
            Box::new(proteus_core::Proteus::train(
                &ks,
                &samples,
                m,
                &proteus_core::ProteusOptions::default(),
            )),
        ];
        for f in &filters {
            for &k in keys.iter().step_by(31) {
                assert!(f.may_contain(&u64_key(k)), "{}", f.name());
                let lo = u64_key(k.saturating_sub(7));
                let hi = u64_key(k.saturating_add(7));
                assert!(f.may_contain_range(&lo, &hi), "{}", f.name());
            }
            assert!(f.size_bits() > 0);
        }
    }
}

//! Rosetta — Robust Space-Time Optimized Range Filter (Luo et al., SIGMOD
//! 2020), the probabilistic state-of-the-art baseline of the Proteus paper
//! (§2.1).
//!
//! Rosetta conceptually encodes every level of a binary trie over the key
//! space into per-level Bloom filters. A range query decomposes into dyadic
//! intervals; each positive probe is "doubted" by probing its two children
//! until the deepest level confirms or everything resolves negative. In
//! practice only the last few levels are instantiated and they receive the
//! whole memory budget (§2.1); our constructor tunes the level count and
//! the bottom-level memory fraction with the same sampled empty queries
//! Proteus uses (the paper gives both filters the sample queue).

use proteus_amq::hash::HashFamily;
use proteus_amq::standard_bloom_fpr;
use proteus_core::codec::{ByteReader, CodecError, FilterKind, WireWrite};
use proteus_core::key::{get_bit, set_tail_ones, u64_key};
use proteus_core::model::{extract_contexts, BitScan};
use proteus_core::prefix_bf::PrefixBloom;
use proteus_core::{KeySet, RangeFilter, SampleQueries};

/// Construction options for [`Rosetta`].
#[derive(Debug, Clone)]
pub struct RosettaOptions {
    /// Which hash family the per-level Bloom filters use.
    pub hash_family: HashFamily,
    /// Cap on Bloom probes per query (the doubting budget).
    pub probe_cap: u64,
    /// Seed for the per-level hashers.
    pub seed: u32,
    /// Candidate bottom-level memory fractions for the tuner.
    pub bottom_fractions: Vec<f64>,
    /// Hard cap on instantiated levels (cost control).
    pub max_levels: usize,
}

impl Default for RosettaOptions {
    fn default() -> Self {
        RosettaOptions {
            hash_family: HashFamily::Murmur3,
            probe_cap: proteus_core::DEFAULT_PROBE_CAP,
            seed: 0x0520_2020,
            bottom_fractions: vec![0.5, 0.7, 0.9],
            max_levels: 24,
        }
    }
}

/// The Rosetta baseline: Bloom filters over the deepest `n` prefix levels.
#[derive(Debug, Clone)]
pub struct Rosetta {
    /// Filters for prefix lengths `bits - n + 1 ..= bits`, shortest first.
    filters: Vec<PrefixBloom>,
    /// Prefix length of `filters[0]`.
    top_len: usize,
    bits: usize,
    width: usize,
    probe_cap: u64,
}

impl Rosetta {
    /// Tune (levels, bottom fraction) on the sample queries and build.
    pub fn train(
        keys: &KeySet,
        samples: &SampleQueries,
        m_bits: u64,
        opts: &RosettaOptions,
    ) -> Self {
        let bits = keys.bits();
        // Candidate level counts from the sampled range sizes: enough levels
        // that the dyadic decomposition of typical queries is covered.
        let mut spans: Vec<usize> =
            samples.iter().map(|(lo, hi)| bits - proteus_core::key::lcp_bits(lo, hi)).collect();
        spans.sort_unstable();
        let pick = |q: f64| -> usize {
            if spans.is_empty() {
                1
            } else {
                spans[((spans.len() - 1) as f64 * q) as usize] + 1
            }
        };
        let mut candidates: Vec<usize> = vec![1, pick(0.5), pick(0.95), pick(1.0)];
        candidates.iter_mut().for_each(|c| *c = (*c).clamp(1, opts.max_levels.min(bits)));
        candidates.sort_unstable();
        candidates.dedup();

        let ctxs = extract_contexts(keys, samples);
        let mut best: Option<(f64, usize, f64)> = None; // (fpr, levels, frac)
        for &levels in &candidates {
            for &frac in &opts.bottom_fractions {
                if levels == 1 && frac != opts.bottom_fractions[0] {
                    continue; // fraction is irrelevant with a single level
                }
                let alloc = Self::allocate(m_bits, levels, frac);
                let fpr = Self::estimate_fpr(keys, samples, &ctxs, &alloc, bits);
                if best.is_none_or(|(b, _, _)| fpr < b) {
                    best = Some((fpr, levels, frac));
                }
            }
        }
        let (_, levels, frac) = best.unwrap_or((1.0, 1, 0.5));
        Self::build_with_levels(keys, m_bits, levels, frac, opts)
    }

    /// Build with an explicit level count and bottom fraction.
    pub fn build_with_levels(
        keys: &KeySet,
        m_bits: u64,
        levels: usize,
        bottom_frac: f64,
        opts: &RosettaOptions,
    ) -> Self {
        let bits = keys.bits();
        let levels = levels.clamp(1, bits);
        let alloc = Self::allocate(m_bits, levels, bottom_frac);
        let top_len = bits - levels + 1;
        let filters: Vec<PrefixBloom> = alloc
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                PrefixBloom::build(keys, top_len + i, m, opts.hash_family, opts.seed ^ i as u32)
            })
            .collect();
        Rosetta { filters, top_len, bits, width: keys.width(), probe_cap: opts.probe_cap }
    }

    /// Memory allocation across `levels` filters: the bottom (full-length)
    /// level takes `bottom_frac`, the remainder splits evenly.
    fn allocate(m_bits: u64, levels: usize, bottom_frac: f64) -> Vec<u64> {
        if levels == 1 {
            return vec![m_bits];
        }
        let bottom = (m_bits as f64 * bottom_frac) as u64;
        let upper = (m_bits - bottom) / (levels as u64 - 1);
        let mut v = vec![upper; levels - 1];
        v.push(m_bits - upper * (levels as u64 - 1));
        v
    }

    /// Expected-FPR estimate for the tuner.
    ///
    /// A Rosetta query is a false positive only when a *bottom-level* probe
    /// false-positives; upper-level false positives merely multiply the
    /// descents. We track `U_l`, the expected number of probed-but-empty
    /// regions per level: the top instantiated level probes all |Q_top|
    /// regions; each empty region survives with probability `p_l` and
    /// spawns two children, and each truthfully-occupied end region (there
    /// are at most two, located by the neighbor LCPs) always spawns its
    /// children. The query FPR is then `1 - (1-p_bottom)^U_bottom`.
    fn estimate_fpr(
        keys: &KeySet,
        samples: &SampleQueries,
        ctxs: &[proteus_core::model::QueryCtx],
        alloc: &[u64],
        bits: usize,
    ) -> f64 {
        let levels = alloc.len();
        let top_len = bits - levels + 1;
        let p: Vec<f64> = alloc
            .iter()
            .enumerate()
            .map(|(i, &m)| standard_bloom_fpr(m, keys.unique_prefixes(top_len + i)))
            .collect();
        let occupied = |ctx: &proteus_core::model::QueryCtx, l: usize| -> f64 {
            let mut n = 0.0;
            if ctx.first_occupied(l) {
                n += 1.0;
            }
            if ctx.last_occupied(l) && !ctx.single_region(l) {
                n += 1.0;
            }
            n
        };
        let mut fp_sum = 0.0;
        for (i, (lo, hi)) in samples.iter().enumerate() {
            let ctx = ctxs[i];
            let mut scan = BitScan::seed(lo, hi, top_len - 1);
            scan.step(get_bit(lo, top_len - 1), get_bit(hi, top_len - 1));
            let mut u = (scan.regions() as f64 - occupied(&ctx, top_len)).max(0.0);
            for l in top_len..bits {
                let li = l - top_len;
                let survivors = u * p[li] + occupied(&ctx, l);
                scan.step(get_bit(lo, l), get_bit(hi, l));
                let q_next = scan.regions() as f64;
                u = (2.0 * survivors).min(q_next) - occupied(&ctx, l + 1);
                u = u.max(0.0);
            }
            let p_bottom = p[levels - 1];
            fp_sum += if p_bottom >= 1.0 { 1.0 } else { 1.0 - (u * (1.0 - p_bottom).ln()).exp() };
        }
        fp_sum / samples.len().max(1) as f64
    }

    /// Number of instantiated levels.
    pub fn levels(&self) -> usize {
        self.filters.len()
    }

    /// Shortest instantiated prefix length.
    pub fn top_len(&self) -> usize {
        self.top_len
    }

    /// Total filter memory, in bits.
    pub fn size_bits(&self) -> u64 {
        self.filters.iter().map(|f| f.size_bits()).sum()
    }

    /// Serialize: geometry + every per-level prefix Bloom filter.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u32(self.width as u32);
        out.put_u32(self.bits as u32);
        out.put_u32(self.top_len as u32);
        out.put_u64(self.probe_cap);
        out.put_u32(self.filters.len() as u32);
        for f in &self.filters {
            f.encode_into(out);
        }
    }

    /// Decode a filter previously written by `encode_into`, validating
    /// the level geometry.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Rosetta, CodecError> {
        let width = r.u32()? as usize;
        let bits = r.u32()? as usize;
        let top_len = r.u32()? as usize;
        let probe_cap = r.u64()?;
        let n = r.u32()? as usize;
        if width == 0 || bits != width * 8 {
            return Err(CodecError::Invalid("rosetta width/bits"));
        }
        if n == 0 || top_len == 0 || top_len + n != bits + 1 {
            return Err(CodecError::Invalid("rosetta level geometry"));
        }
        let mut filters = Vec::with_capacity(n.min(bits));
        for i in 0..n {
            let f = PrefixBloom::decode_from(r)?;
            if f.prefix_len() != top_len + i {
                return Err(CodecError::Invalid("rosetta level prefix length"));
            }
            filters.push(f);
        }
        Ok(Rosetta { filters, top_len, bits, width, probe_cap })
    }

    /// Closed-range emptiness query: dyadic descent with doubting.
    pub fn query(&self, lo: &[u8], hi: &[u8]) -> bool {
        debug_assert!(lo <= hi);
        let mut budget = self.probe_cap;
        let mut prefix = vec![0u8; self.width];
        self.descend(&mut prefix, 0, lo, hi, &mut budget)
    }

    /// [`Rosetta::query`] over `u64` keys (closed range).
    pub fn query_u64(&self, lo: u64, hi: u64) -> bool {
        self.query(&u64_key(lo), &u64_key(hi))
    }

    /// Recursive binary descent over prefix regions. `prefix` holds the
    /// current `level`-bit prefix (trailing bits zero).
    fn descend(
        &self,
        prefix: &mut [u8],
        level: usize,
        lo: &[u8],
        hi: &[u8],
        budget: &mut u64,
    ) -> bool {
        // Region bounds at this level: [prefix·00.., prefix·11..].
        // Disjoint from the query -> resolved negative.
        {
            let mut end = prefix.to_vec();
            set_tail_ones(&mut end, level);
            if end.as_slice() < lo || prefix[..] > hi[..] {
                return false;
            }
        }
        if level >= self.top_len {
            let f = &self.filters[level - self.top_len];
            if *budget == 0 {
                return true;
            }
            *budget -= 1;
            if !f.contains_prefix_of(prefix) {
                return false;
            }
            if level == self.bits {
                return true; // deepest level positive: report non-empty
            }
        } else if level == self.bits {
            return true;
        }
        // Descend into both children (bit `level` = 0, then 1).
        if self.descend(prefix, level + 1, lo, hi, budget) {
            return true;
        }
        let byte = level / 8;
        let mask = 0x80u8 >> (level % 8);
        prefix[byte] |= mask;
        let r = self.descend(prefix, level + 1, lo, hi, budget);
        prefix[byte] &= !mask;
        r
    }
}

impl RangeFilter for Rosetta {
    fn may_contain_range(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.query(lo, hi)
    }
    fn size_bits(&self) -> u64 {
        self.size_bits()
    }
    fn name(&self) -> String {
        format!("Rosetta(levels={}, top={})", self.filters.len(), self.top_len)
    }
    fn encode_payload(&self) -> Option<(FilterKind, Vec<u8>)> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        Some((FilterKind::Rosetta, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(s: &mut u64) -> u64 {
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn sample_ranges(ks: &KeySet, n: usize, rmax: u64, seed: u64) -> SampleQueries {
        let mut s = seed;
        let mut q = SampleQueries::new(8);
        while q.len() < n {
            let lo = splitmix(&mut s) % (u64::MAX - rmax - 2);
            let hi = lo + splitmix(&mut s) % rmax.max(1);
            if !ks.range_overlaps(&u64_key(lo), &u64_key(hi)) {
                q.push(&u64_key(lo), &u64_key(hi));
            }
        }
        q
    }

    #[test]
    fn no_false_negatives() {
        let mut s = 1u64;
        let keys: Vec<u64> = (0..2000).map(|_| splitmix(&mut s)).collect();
        let ks = KeySet::from_u64(&keys);
        let samples = sample_ranges(&ks, 200, 64, 7);
        let f = Rosetta::train(&ks, &samples, 2000 * 14, &RosettaOptions::default());
        for &k in keys.iter().step_by(23) {
            assert!(f.query_u64(k, k), "point {k:#x} ({})", f.name());
            assert!(f.query_u64(k.saturating_sub(30), k.saturating_add(30)));
        }
    }

    #[test]
    fn point_workload_gets_low_fpr() {
        let mut s = 2u64;
        let keys: Vec<u64> = (0..5000).map(|_| splitmix(&mut s)).collect();
        let ks = KeySet::from_u64(&keys);
        // Point-query sample: Rosetta should pick ~1 level (a plain Bloom
        // filter) and achieve Bloom-grade FPR.
        let samples = sample_ranges(&ks, 500, 1, 9);
        let f = Rosetta::train(&ks, &samples, 5000 * 14, &RosettaOptions::default());
        assert!(f.levels() <= 3, "{}", f.name());
        let mut fps = 0;
        let mut trials = 0;
        while trials < 3000 {
            let q = splitmix(&mut s);
            if keys.contains(&q) {
                continue;
            }
            trials += 1;
            fps += f.query_u64(q, q) as u32;
        }
        let fpr = fps as f64 / trials as f64;
        assert!(fpr < 0.02, "point FPR {fpr} with {}", f.name());
    }

    /// On uniform keys every level holds |K| distinct prefixes, so upper
    /// levels are expensive and a near-single-level design can genuinely be
    /// Rosetta-optimal (the paper: its "performance trends towards that of
    /// an AMQ"). The tuner's obligation is consistency: the configuration
    /// it picks must not observably lose to the single-level baseline.
    #[test]
    fn tuned_config_is_no_worse_than_single_level() {
        let mut s = 3u64;
        let keys: Vec<u64> = (0..3000).map(|_| splitmix(&mut s)).collect();
        let ks = KeySet::from_u64(&keys);
        let samples = sample_ranges(&ks, 400, 1 << 12, 11);
        let m = 3000 * 16;
        let tuned = Rosetta::train(&ks, &samples, m, &RosettaOptions::default());
        let single = Rosetta::build_with_levels(&ks, m, 1, 0.5, &RosettaOptions::default());
        let mut fps_tuned = 0;
        let mut fps_single = 0;
        let mut trials = 0;
        while trials < 1000 {
            let lo = splitmix(&mut s) % (u64::MAX - (1 << 13));
            let hi = lo + splitmix(&mut s) % (1 << 12);
            if ks.range_overlaps(&u64_key(lo), &u64_key(hi)) {
                continue;
            }
            trials += 1;
            fps_tuned += tuned.query_u64(lo, hi) as u32;
            fps_single += single.query_u64(lo, hi) as u32;
        }
        assert!(
            fps_tuned <= fps_single + 50,
            "tuned Rosetta ({}, {fps_tuned} FPs) lost badly to single-level ({fps_single} FPs)",
            tuned.name()
        );
    }

    /// Clustered keys make short-prefix filters nearly free (|K_l| ≪ |K|),
    /// which is where Rosetta's multi-level structure pays off: correlated
    /// queries resolve in cheap upper levels and the tuner should exploit
    /// that.
    #[test]
    fn clustered_keys_reward_multiple_levels() {
        let mut s = 8u64;
        // 128 dense clusters: |K_l| collapses for l <= 44.
        let keys: Vec<u64> =
            (0..4000).map(|i| ((i % 128) << 44) | (splitmix(&mut s) & 0xFFFF)).collect();
        let ks = KeySet::from_u64(&keys);
        let samples = sample_ranges(&ks, 300, 1 << 10, 19);
        let m = 4000 * 14;
        let tuned = Rosetta::train(&ks, &samples, m, &RosettaOptions::default());
        let single = Rosetta::build_with_levels(&ks, m, 1, 0.5, &RosettaOptions::default());
        let mut fps_tuned = 0;
        let mut fps_single = 0;
        let mut trials = 0;
        while trials < 1000 {
            let lo = splitmix(&mut s) % (u64::MAX - (1 << 11));
            let hi = lo + splitmix(&mut s) % (1 << 10);
            if ks.range_overlaps(&u64_key(lo), &u64_key(hi)) {
                continue;
            }
            trials += 1;
            fps_tuned += tuned.query_u64(lo, hi) as u32;
            fps_single += single.query_u64(lo, hi) as u32;
        }
        assert!(
            fps_tuned <= fps_single,
            "tuned ({}) {fps_tuned} FPs vs single {fps_single} FPs",
            tuned.name()
        );
    }

    #[test]
    fn large_uniform_ranges_degrade_gracefully() {
        // Ranges far bigger than the instantiated levels: Rosetta probes
        // many top-level prefixes; the budget keeps it safe (positive), so
        // no false negatives even out of envelope.
        let mut s = 4u64;
        let keys: Vec<u64> = (0..500).map(|_| splitmix(&mut s)).collect();
        let ks = KeySet::from_u64(&keys);
        let samples = sample_ranges(&ks, 100, 16, 13);
        let opts = RosettaOptions { probe_cap: 1 << 12, ..Default::default() };
        let f = Rosetta::train(&ks, &samples, 500 * 12, &opts);
        assert!(f.query_u64(0, u64::MAX));
    }

    #[test]
    fn allocation_sums_to_budget() {
        for levels in [1usize, 2, 5, 20] {
            for frac in [0.3, 0.5, 0.9] {
                let alloc = Rosetta::allocate(1_000_000, levels, frac);
                assert_eq!(alloc.len(), levels);
                assert_eq!(alloc.iter().sum::<u64>(), 1_000_000);
                if levels > 1 && frac >= 0.5 {
                    // Bottom-heavy allocations keep the deepest filter
                    // largest (the paper's "last few prefix lengths" note).
                    assert!(alloc[levels - 1] >= alloc[0]);
                }
            }
        }
    }

    #[test]
    fn explicit_levels_build() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 7919).collect();
        let ks = KeySet::from_u64(&keys);
        let f = Rosetta::build_with_levels(&ks, 1000 * 12, 8, 0.7, &RosettaOptions::default());
        assert_eq!(f.levels(), 8);
        assert_eq!(f.top_len(), 64 - 7);
        for &k in keys.iter().step_by(97) {
            assert!(f.query_u64(k, k));
        }
    }
}
